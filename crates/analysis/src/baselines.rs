//! E6/E7: the baselines the paper argues against.
//!
//! * **Minimum rule** (§1.1): a T-bounded adversary erases the minority
//!   value, waits arbitrarily long, then revives one copy — the min rule
//!   re-cascades, so no stable consensus within any time bound. The median
//!   rule shrugs the revival off.
//! * **Mean rule** (§1.2): converges to a *number*, not to one of the
//!   initial values — it fails validity, the defining property of consensus.

use std::sync::Arc;

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::protocol::ProtocolSpec;
use stabcon_core::runner::SimSpec;
use stabcon_util::table::{fmt_sig, Table};

use crate::experiment::run_trials;

/// The last observed round with more than one value present, per trial
/// (requires trajectories). `None` if the run never had support > 1 after
/// round 0 — not expected here.
fn last_unsettled_round(spec: &SimSpec, trials: u64, seed: u64, threads: usize) -> Vec<u64> {
    let results = run_trials(spec, trials, seed, threads);
    results
        .iter()
        .map(|r| {
            r.trajectory
                .as_ref()
                .expect("trajectory recording required")
                .iter()
                .filter(|obs| obs.support > 1)
                .map(|obs| obs.round)
                .max()
                .unwrap_or(0)
        })
        .collect()
}

/// E6: median vs minimum rule under the hide-and-revive adversary.
///
/// For each revive delay `d`, both rules run with full horizon
/// `d + horizon_slack` and we report the mean *last unsettled round* — the
/// round after which the system never again left consensus. For the min rule
/// this tracks `d` (unbounded); for the median rule it stays `O(log n)`.
pub fn min_rule_table(n: usize, delays: &[u64], trials: u64, seed: u64, threads: usize) -> Table {
    let t_budget = crate::figure1::sqrt_budget(n);
    let mut table = Table::new(
        format!(
            "Minimum rule counterexample (E6): hide-and-revive adversary, n = {n}, T = {t_budget}"
        ),
        &[
            "revive delay d",
            "median: last unsettled",
            "min: last unsettled",
            "min tracks d?",
        ],
    );
    let horizon_slack = 40 * (n.max(2) as f64).log2().ceil() as u64;
    for &d in delays {
        // Initial state from the paper's story: at most T processes hold the
        // smaller value.
        let init = InitialCondition::TwoBins {
            left: (t_budget as usize).min(n / 4).max(1),
        };
        let base = |p: ProtocolSpec| {
            SimSpec::new(n)
                .init(init.clone())
                .protocol(p)
                .adversary(AdversarySpec::Reviver { revive_at: d }, t_budget)
                .max_rounds(d + horizon_slack)
                .full_horizon(true)
                .record_trajectory(true)
        };
        let median_last =
            last_unsettled_round(&base(ProtocolSpec::Median), trials, seed ^ d, threads);
        let min_last =
            last_unsettled_round(&base(ProtocolSpec::Min), trials, seed ^ (d << 8), threads);
        let mean = |xs: &[u64]| xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64;
        let median_mean = mean(&median_last);
        let min_mean = mean(&min_last);
        table.push_row(vec![
            d.to_string(),
            fmt_sig(median_mean),
            fmt_sig(min_mean),
            if min_mean >= d as f64 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table.push_note(
        "min rule: revival at round d forces a fresh cascade, so settlement ≥ d (unbounded)",
    );
    table.push_note("median rule: one revived ball cannot move the median — settles in O(log n) regardless of d");
    table
}

/// E7: validity of median vs mean rule on a two-value instance `{0, K}`.
pub fn mean_rule_table(n: usize, trials: u64, seed: u64, threads: usize) -> Table {
    const K: u32 = 1_000_000;
    let init: Arc<Vec<u32>> = Arc::new((0..n).map(|i| if i % 2 == 0 { 0 } else { K }).collect());
    let mut table = Table::new(
        format!("Mean rule validity failure (E7): values {{0, {K}}}, n = {n}"),
        &[
            "rule",
            "converged%",
            "validity%",
            "mean winner",
            "winner in {0,K}?",
        ],
    );
    for p in [ProtocolSpec::Median, ProtocolSpec::Mean] {
        let spec = SimSpec::new(n)
            .init(InitialCondition::Custom(Arc::clone(&init)))
            .protocol(p)
            .max_rounds(4000);
        let results = run_trials(&spec, trials, seed ^ p.label().len() as u64, threads);
        let converged = results
            .iter()
            .filter(|r| r.consensus_round.is_some())
            .count();
        let valid = results.iter().filter(|r| r.winner_valid).count();
        let mean_winner: f64 =
            results.iter().map(|r| r.winner as f64).sum::<f64>() / results.len() as f64;
        let all_endpoint = results.iter().all(|r| r.winner == 0 || r.winner == K);
        table.push_row(vec![
            p.label(),
            format!("{:.0}", converged as f64 / results.len() as f64 * 100.0),
            format!("{:.0}", valid as f64 / results.len() as f64 * 100.0),
            fmt_sig(mean_winner),
            if all_endpoint {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    table.push_note("median: winner always one of the initial values (validity)");
    table.push_note("mean: settles near K/2 — a value nobody proposed (the §1.2 objection)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_rule_tracks_delay_median_does_not() {
        let t = min_rule_table(256, &[40], 3, 11, 2);
        assert_eq!(t.len(), 1);
        let text = t.to_text();
        assert!(text.contains("yes"), "min rule should track d:\n{text}");
    }

    #[test]
    fn mean_rule_fails_validity() {
        let t = mean_rule_table(512, 4, 13, 2);
        let text = t.to_text();
        assert!(text.contains("NO"), "mean rule must fail validity:\n{text}");
    }
}

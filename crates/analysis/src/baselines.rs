//! E6/E7: the baselines the paper argues against.
//!
//! * **Minimum rule** (§1.1): a T-bounded adversary erases the minority
//!   value, waits arbitrarily long, then revives one copy — the min rule
//!   re-cascades, so no stable consensus within any time bound. The median
//!   rule shrugs the revival off.
//! * **Mean rule** (§1.2): converges to a *number*, not to one of the
//!   initial values — it fails validity, the defining property of consensus.

use std::sync::Arc;

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::protocol::ProtocolSpec;
use stabcon_core::runner::SimSpec;
use stabcon_exp::{chunk_for, run_cell, CellSpec, HitMetric, TrialObserver};
use stabcon_par::ThreadPool;
use stabcon_util::table::{fmt_sig, Table};

/// Mean over trials of the last observed round with more than one value
/// present (requires trajectories; 0 if a run never had support > 1 after
/// round 0 — not expected here). Streamed through a campaign cell: the
/// scalar is extracted worker-side and the trajectories never accumulate.
fn mean_last_unsettled_round(pool: &ThreadPool, spec: &SimSpec, trials: u64, seed: u64) -> f64 {
    let cell =
        CellSpec::new(spec.clone(), trials, seed).observer(TrialObserver::LastUnsettledRound);
    run_cell(pool, &cell, chunk_for(cell.trials, pool.threads()))
        .int_extra(0)
        .expect("last-unsettled channel")
        .mean()
}

/// E6: median vs minimum rule under the hide-and-revive adversary.
///
/// For each revive delay `d`, both rules run with full horizon
/// `d + horizon_slack` and we report the mean *last unsettled round* — the
/// round after which the system never again left consensus. For the min rule
/// this tracks `d` (unbounded); for the median rule it stays `O(log n)`.
pub fn min_rule_table(n: usize, delays: &[u64], trials: u64, seed: u64, threads: usize) -> Table {
    let t_budget = crate::figure1::sqrt_budget(n);
    let mut table = Table::new(
        format!(
            "Minimum rule counterexample (E6): hide-and-revive adversary, n = {n}, T = {t_budget}"
        ),
        &[
            "revive delay d",
            "median: last unsettled",
            "min: last unsettled",
            "min tracks d?",
        ],
    );
    let pool = ThreadPool::new(threads);
    let horizon_slack = 40 * (n.max(2) as f64).log2().ceil() as u64;
    for &d in delays {
        // Initial state from the paper's story: at most T processes hold the
        // smaller value.
        let init = InitialCondition::TwoBins {
            left: (t_budget as usize).min(n / 4).max(1),
        };
        let base = |p: ProtocolSpec| {
            SimSpec::new(n)
                .init(init.clone())
                .protocol(p)
                .adversary(AdversarySpec::Reviver { revive_at: d }, t_budget)
                .max_rounds(d + horizon_slack)
                .full_horizon(true)
                .record_trajectory(true)
        };
        let median_mean =
            mean_last_unsettled_round(&pool, &base(ProtocolSpec::Median), trials, seed ^ d);
        let min_mean =
            mean_last_unsettled_round(&pool, &base(ProtocolSpec::Min), trials, seed ^ (d << 8));
        table.push_row(vec![
            d.to_string(),
            fmt_sig(median_mean),
            fmt_sig(min_mean),
            if min_mean >= d as f64 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table.push_note(
        "min rule: revival at round d forces a fresh cascade, so settlement ≥ d (unbounded)",
    );
    table.push_note("median rule: one revived ball cannot move the median — settles in O(log n) regardless of d");
    table
}

/// E7: validity of median vs mean rule on a two-value instance `{0, K}`.
pub fn mean_rule_table(n: usize, trials: u64, seed: u64, threads: usize) -> Table {
    const K: u32 = 1_000_000;
    let init: Arc<Vec<u32>> = Arc::new((0..n).map(|i| if i % 2 == 0 { 0 } else { K }).collect());
    let mut table = Table::new(
        format!("Mean rule validity failure (E7): values {{0, {K}}}, n = {n}"),
        &[
            "rule",
            "converged%",
            "validity%",
            "mean winner",
            "winner in {0,K}?",
        ],
    );
    let pool = ThreadPool::new(threads);
    for p in [ProtocolSpec::Median, ProtocolSpec::Mean] {
        let spec = SimSpec::new(n)
            .init(InitialCondition::Custom(Arc::clone(&init)))
            .protocol(p)
            .max_rounds(4000);
        let cell = CellSpec::new(spec, trials, seed ^ p.label().len() as u64);
        let agg = run_cell(&pool, &cell, chunk_for(cell.trials, pool.threads()));
        let converged = agg.hits(HitMetric::Consensus).count();
        let all_endpoint = agg
            .winners()
            .pairs()
            .iter()
            .all(|&(v, _)| v == 0 || v == K as u64);
        table.push_row(vec![
            p.label(),
            format!("{:.0}", converged as f64 / agg.trials() as f64 * 100.0),
            format!("{:.0}", agg.validity_rate() * 100.0),
            fmt_sig(agg.winners().mean()),
            if all_endpoint {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    table.push_note("median: winner always one of the initial values (validity)");
    table.push_note("mean: settles near K/2 — a value nobody proposed (the §1.2 objection)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_rule_tracks_delay_median_does_not() {
        let t = min_rule_table(256, &[40], 3, 11, 2);
        assert_eq!(t.len(), 1);
        let text = t.to_text();
        assert!(text.contains("yes"), "min rule should track d:\n{text}");
    }

    #[test]
    fn mean_rule_fails_validity() {
        let t = mean_rule_table(512, 4, 13, 2);
        let text = t.to_text();
        assert!(text.contains("NO"), "mean rule must fail validity:\n{text}");
    }
}

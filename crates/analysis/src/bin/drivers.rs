//! Deterministic small-scale runs of the five campaign-ported analysis
//! drivers, for the CI `driver-parity` job.
//!
//! ```text
//! drivers --out DIR [--driver NAME]
//! ```
//!
//! Writes `<driver>.txt` per driver (`theorems`, `threshold`, `robustness`,
//! `stability`, `drift`; default: all) with **fixed** seeds and scales. The
//! campaign scheduler's aggregation is thread- and chunk-invariant, so the
//! output is byte-stable across machines and runner core counts — CI diffs
//! it against the committed golden files in `golden/` to catch any change
//! to driver numerics that slips past the unit-level parity tests.

use std::path::PathBuf;
use std::process::ExitCode;

use stabcon_analysis::{drift, robustness, stability, theorems, threshold};
use stabcon_core::adversary::AdversarySpec;

/// All driver names, in output order.
const DRIVERS: [&str; 5] = ["theorems", "threshold", "robustness", "stability", "drift"];

/// Fixed worker count: the numbers don't depend on it (that's the point of
/// the campaign port), but a constant keeps run times predictable on CI.
const THREADS: usize = 2;

fn render(driver: &str) -> String {
    match driver {
        "theorems" => {
            theorems::constant_m_table(&[2, 3], &[128, 256], 6, 0x90_1D, THREADS).to_text()
        }
        "threshold" => {
            let mut out =
                threshold::threshold_table(256, &[0.2, 0.5, 0.9], 6, 30, 0x90_1D, THREADS)
                    .to_text();
            out.push('\n');
            out.push_str(
                &threshold::threshold_hist_table(&[16], &[0.25, 0.75], 4, 40, 0x90_1D).to_text(),
            );
            out
        }
        "robustness" => {
            let mut out = robustness::tournament_table(256, 4, 0x90_1D, THREADS).to_text();
            out.push('\n');
            out.push_str(
                &robustness::asynchrony_table(512, &[1.0, 0.5], 5, 0x90_1D, THREADS).to_text(),
            );
            out
        }
        "stability" => stability::stability_horizon_table(
            1024,
            &[AdversarySpec::Random, AdversarySpec::Balancer],
            5,
            30,
            0x90_1D,
            THREADS,
        )
        .to_text(),
        "drift" => {
            let mut out =
                drift::one_step_drift_table(4096, &[1.0, 2.0, 4.0], 64, 0x90_1D, THREADS).to_text();
            out.push('\n');
            out.push_str(
                &drift::doubling_regime_table(&[512, 2048], 6, 0x90_1D, THREADS).to_text(),
            );
            out
        }
        other => panic!("unknown driver '{other}'"),
    }
}

fn main() -> ExitCode {
    let mut out_dir: Option<PathBuf> = None;
    let mut only: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_dir = it.next().map(PathBuf::from),
            "--driver" => only = it.next().cloned(),
            other => {
                eprintln!("unknown flag '{other}'\nusage: drivers --out DIR [--driver NAME]");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_dir) = out_dir else {
        eprintln!("--out is required\nusage: drivers --out DIR [--driver NAME]");
        return ExitCode::FAILURE;
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("{}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let selected: Vec<&str> = match &only {
        Some(name) => match DRIVERS.iter().find(|d| *d == name) {
            Some(d) => vec![*d],
            None => {
                eprintln!(
                    "unknown driver '{name}' (expected one of {})",
                    DRIVERS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
        None => DRIVERS.to_vec(),
    };
    for driver in selected {
        let path = out_dir.join(format!("{driver}.txt"));
        let text = render(driver);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

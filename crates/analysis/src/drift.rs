//! E10/E11: the two-bin drift lemmas, measured.
//!
//! * Lemma 12/15: from imbalance `Δ_t ≥ c√n` the expected next imbalance is
//!   `≥ (3/2)Δ_t` and `Pr[Δ_{t+1} ≥ (4/3)Δ_t] ≥ 1 − exp(−Θ(Δ_t²/n))`.
//! * Lemma 11: once `Δ ≥ n/3`, the minority bin collapses in `O(log log n)`
//!   further rounds (successive squaring of the minority fraction).
//!
//! Both tables execute through the campaign scheduler: E10 as one-round
//! cells with the [`TrialObserver::DriftGrowth`] observer (growth samples
//! reduced worker-side from the per-round trajectory), E11 as plain
//! consensus-hitting-time sweeps.

use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_exp::{chunk_for, run_cell, sweep_stats, CellSpec, HitMetric, TrialObserver};
use stabcon_par::ThreadPool;
use stabcon_util::table::{fmt_f64, fmt_sig, Table};

use crate::scaling::{describe_line, fit_loglog_n};

/// The one-step cell for a starting minority load (shared by the driver and
/// its parity test): one median-rule round from the two-bin state, with the
/// drift observer reading the recorded round pair.
fn one_step_cell(n: usize, minority: usize, trials: u64, seed: u64) -> CellSpec {
    let sim = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: minority })
        .max_rounds(1);
    CellSpec::new(sim, trials, seed)
        .observer(TrialObserver::DriftGrowth)
        .label("minority", minority.to_string())
}

/// E10: one-step drift table. For each starting imbalance `Δ₀` (as a
/// fraction of the Lemma-15 scale `√n`), measure `E[Δ₁/Δ₀]` and
/// `Pr[Δ₁ ≥ (4/3)Δ₀]`.
pub fn one_step_drift_table(
    n: usize,
    deltas_sqrt: &[f64],
    trials: u64,
    seed: u64,
    threads: usize,
) -> Table {
    let sqrt_n = (n as f64).sqrt();
    let mut table = Table::new(
        format!("One-step drift (E10, Lemmas 12/15) at n = {n}"),
        &[
            "Δ0/√n",
            "Δ0",
            "E[Δ1/Δ0]",
            "Pr[Δ1 ≥ (4/3)Δ0]",
            "paper E-bound",
            "paper P-bound",
        ],
    );
    let pool = ThreadPool::new(threads);
    for &ds in deltas_sqrt {
        let delta0 = (ds * sqrt_n).round() as usize;
        if delta0 == 0 || 2 * delta0 >= n {
            continue;
        }
        let minority = n / 2 - delta0;
        let cell = one_step_cell(n, minority, trials, seed ^ delta0 as u64);
        let agg = run_cell(&pool, &cell, chunk_for(cell.trials, pool.threads()));
        let ratio = agg.float_extra(0).expect("drift_ratio channel");
        let growth = agg.float_extra(1).expect("drift_growth channel");
        // Lemma 15's qualitative bound: 1 − exp(−Δ²/n) up to constants; we
        // print the Θ-form with constant 1 for orientation.
        let paper_p = 1.0 - (-((delta0 * delta0) as f64) / n as f64).exp();
        table.push_row(vec![
            fmt_f64(ds, 2),
            delta0.to_string(),
            fmt_f64(ratio.mean(), 3),
            fmt_f64(growth.mean(), 3),
            "≥ 1.5".into(),
            format!("≈ {}", fmt_sig(paper_p)),
        ]);
    }
    table.push_note("Lemma 12: E[Δ_{t+1}] ≥ (3/2)Δ_t in the c√n ≤ Δ < n/3 regime");
    table.push_note("Lemma 15: Pr[Δ_{t+1} ≥ (4/3)Δ_t] ≥ 1 − exp(−Θ(Δ_t²/n))");
    table
}

/// E11: rounds from `Δ₀ = n/6` (minority n/3) to full consensus, vs
/// `log log n` (Lemma 11's doubling regime).
///
/// Mean/max are over trials that *hit* consensus within the 10 000-round
/// cap; the `hit%` column makes any timed-out trial visible (the paper's
/// regime converges in a handful of rounds, so anything below 100 is a
/// finding in itself).
pub fn doubling_regime_table(ns: &[usize], trials: u64, seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "Doubling regime (E11, Lemma 11): Δ0 = n/6 → consensus",
        &["n", "mean rounds", "max rounds", "hit%", "ln ln n"],
    );
    let pool = ThreadPool::new(threads);
    let mut pts = Vec::new();
    for &n in ns {
        let sim = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 3 })
            .max_rounds(10_000);
        let stats = sweep_stats(&pool, &sim, trials, seed ^ n as u64, HitMetric::Consensus);
        let q = stats.rounds.as_ref();
        if stats.mean().is_finite() {
            pts.push((n as f64, stats.mean()));
        }
        table.push_row(vec![
            n.to_string(),
            fmt_f64(stats.mean(), 2),
            fmt_f64(q.map(|q| q.max).unwrap_or(f64::NAN), 0),
            format!("{:.0}", stats.hit_rate() * 100.0),
            fmt_f64((n as f64).ln().ln(), 3),
        ]);
    }
    if pts.len() >= 2 {
        let (ns_f, ts): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
        table.push_note(describe_line(&fit_loglog_n(&ns_f, &ts), "ln ln n"));
    }
    table.push_note("paper: O(log log n) from Δ ≥ n/3 (Lemma 11, successive squaring)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_exp::{CellAggregate, TrialMetrics};
    use stabcon_util::rng::derive_seed;

    #[test]
    fn drift_exceeds_paper_bound_in_regime() {
        // At Δ0 = 2√n the measured mean growth must be ≥ 1.3 (paper: 1.5 in
        // expectation for the idealized process; finite-n effects shave it).
        let t = one_step_drift_table(4096, &[2.0], 200, 5, 2);
        let text = t.to_text();
        assert!(t.len() == 1, "{text}");
        // Extract the mean ratio cell and sanity-check it.
        let row = text
            .lines()
            .find(|l| l.trim_start().starts_with("2.00"))
            .expect("row");
        let cells: Vec<&str> = row.split('|').collect();
        let ratio: f64 = cells[2].trim().parse().expect("ratio cell");
        assert!(ratio > 1.3, "drift ratio {ratio} too small:\n{text}");
    }

    #[test]
    fn doubling_regime_is_fast() {
        let t = doubling_regime_table(&[512, 2048], 5, 6, 2);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.contains("ln ln n"), "{text}");
    }

    #[test]
    fn campaign_port_is_numerically_unchanged() {
        // E10: the streamed observer fold equals the materialized fold, and
        // the channel means equal the hand-computed trajectory statistics.
        let (n, trials, seed) = (4096usize, 24u64, 5u64);
        let delta0 = (2.0 * (n as f64).sqrt()).round() as usize; // Δ0 = 2√n
        let minority = n / 2 - delta0;
        let cell = one_step_cell(n, minority, trials, seed);
        let pool = ThreadPool::new(4);
        let streamed = run_cell(&pool, &cell, 3);
        let mut materialized = CellAggregate::new();
        let mut ratio_sum = 0.0f64;
        let mut growth_hits = 0u64;
        for i in 0..trials {
            let r = cell.sim.run_seeded(derive_seed(cell.seed, i));
            let traj = r.trajectory.as_ref().expect("recorded");
            let (d0, d1) = (traj[0].imbalance, traj[1].imbalance);
            ratio_sum += d1 / d0;
            growth_hits += u64::from(d1 >= (4.0 / 3.0) * d0);
            materialized.push(&TrialMetrics::capture(&r, cell.observer));
        }
        assert_eq!(streamed, materialized);
        let ratio = streamed.float_extra(0).expect("ratio");
        assert_eq!(ratio.count, trials);
        assert_eq!(ratio.sum, ratio_sum, "trial-order fold must match");
        let growth = streamed.float_extra(1).expect("growth");
        assert_eq!(growth.sum, growth_hits as f64);

        // E11: sweep_stats equals the materialized convergence fold.
        use crate::experiment::{run_trials, ConvergenceStats};
        let sim = SimSpec::new(512)
            .init(InitialCondition::TwoBins { left: 512 / 3 })
            .max_rounds(10_000);
        let legacy =
            ConvergenceStats::from_results(&run_trials(&sim, 6, 0xE11, 3), HitMetric::Consensus);
        let ported = sweep_stats(&pool, &sim, 6, 0xE11, HitMetric::Consensus);
        assert_eq!(legacy.rounds, ported.rounds);
        assert_eq!(legacy.hits, ported.hits);
    }
}

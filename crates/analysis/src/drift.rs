//! E10/E11: the two-bin drift lemmas, measured.
//!
//! * Lemma 12/15: from imbalance `Δ_t ≥ c√n` the expected next imbalance is
//!   `≥ (3/2)Δ_t` and `Pr[Δ_{t+1} ≥ (4/3)Δ_t] ≥ 1 − exp(−Θ(Δ_t²/n))`.
//! * Lemma 11: once `Δ ≥ n/3`, the minority bin collapses in `O(log log n)`
//!   further rounds (successive squaring of the minority fraction).

use stabcon_core::engine::dense;
use stabcon_core::protocol::MedianRule;
use stabcon_core::value::Value;
use stabcon_util::rng::derive_seed;
use stabcon_util::stats::RunningStats;
use stabcon_util::table::{fmt_f64, fmt_sig, Table};

use crate::scaling::{describe_line, fit_loglog_n};

/// One median-rule step from a two-bin state with the given minority load.
/// Returns the new minority load (bin 0 = minority side label).
fn one_step_minority(n: usize, minority: usize, seed: u64) -> usize {
    let mut old: Vec<Value> = vec![1; n];
    for slot in old.iter_mut().take(minority) {
        *slot = 0;
    }
    let mut new = vec![0; n];
    dense::step_seq(&old, &mut new, &MedianRule, seed, 0);
    new.iter().filter(|&&v| v == 0).count()
}

/// E10: one-step drift table. For each starting imbalance `Δ₀` (as a
/// fraction of the Lemma-15 scale `√n`), measure `E[Δ₁/Δ₀]` and
/// `Pr[Δ₁ ≥ (4/3)Δ₀]`.
pub fn one_step_drift_table(n: usize, deltas_sqrt: &[f64], trials: u64, seed: u64) -> Table {
    let sqrt_n = (n as f64).sqrt();
    let mut table = Table::new(
        format!("One-step drift (E10, Lemmas 12/15) at n = {n}"),
        &[
            "Δ0/√n",
            "Δ0",
            "E[Δ1/Δ0]",
            "Pr[Δ1 ≥ (4/3)Δ0]",
            "paper E-bound",
            "paper P-bound",
        ],
    );
    for &ds in deltas_sqrt {
        let delta0 = (ds * sqrt_n).round() as usize;
        if delta0 == 0 || 2 * delta0 >= n {
            continue;
        }
        let minority = n / 2 - delta0;
        let mut ratio = RunningStats::new();
        let mut growth_hits = 0u64;
        for tr in 0..trials {
            let new_minority = one_step_minority(n, minority, derive_seed(seed, tr));
            let delta1 = (n as f64 / 2.0 - new_minority as f64).abs();
            ratio.push(delta1 / delta0 as f64);
            if delta1 >= (4.0 / 3.0) * delta0 as f64 {
                growth_hits += 1;
            }
        }
        let p_growth = growth_hits as f64 / trials as f64;
        // Lemma 15's qualitative bound: 1 − exp(−Δ²/n) up to constants; we
        // print the Θ-form with constant 1 for orientation.
        let paper_p = 1.0 - (-((delta0 * delta0) as f64) / n as f64).exp();
        table.push_row(vec![
            fmt_f64(ds, 2),
            delta0.to_string(),
            fmt_f64(ratio.mean(), 3),
            fmt_f64(p_growth, 3),
            "≥ 1.5".into(),
            format!("≈ {}", fmt_sig(paper_p)),
        ]);
    }
    table.push_note("Lemma 12: E[Δ_{t+1}] ≥ (3/2)Δ_t in the c√n ≤ Δ < n/3 regime");
    table.push_note("Lemma 15: Pr[Δ_{t+1} ≥ (4/3)Δ_t] ≥ 1 − exp(−Θ(Δ_t²/n))");
    table
}

/// E11: rounds from `Δ₀ = n/6` (minority n/3) to full consensus, vs
/// `log log n` (Lemma 11's doubling regime).
pub fn doubling_regime_table(ns: &[usize], trials: u64, seed: u64) -> Table {
    let mut table = Table::new(
        "Doubling regime (E11, Lemma 11): Δ0 = n/6 → consensus",
        &["n", "mean rounds", "max rounds", "ln ln n"],
    );
    let mut pts = Vec::new();
    for &n in ns {
        let minority0 = n / 3;
        let mut stats = RunningStats::new();
        for tr in 0..trials {
            let s = derive_seed(seed ^ n as u64, tr);
            let mut state: Vec<Value> = vec![1; n];
            for slot in state.iter_mut().take(minority0) {
                *slot = 0;
            }
            let mut scratch = vec![0; n];
            let mut rounds = 0u64;
            for round in 0..10_000u64 {
                if state.iter().all(|&v| v == state[0]) {
                    break;
                }
                dense::step_seq(&state, &mut scratch, &MedianRule, s, round);
                std::mem::swap(&mut state, &mut scratch);
                rounds += 1;
            }
            stats.push(rounds as f64);
        }
        pts.push((n as f64, stats.mean()));
        table.push_row(vec![
            n.to_string(),
            fmt_f64(stats.mean(), 2),
            fmt_f64(stats.max(), 0),
            fmt_f64((n as f64).ln().ln(), 3),
        ]);
    }
    if pts.len() >= 2 {
        let (ns_f, ts): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
        table.push_note(describe_line(&fit_loglog_n(&ns_f, &ts), "ln ln n"));
    }
    table.push_note("paper: O(log log n) from Δ ≥ n/3 (Lemma 11, successive squaring)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_exceeds_paper_bound_in_regime() {
        // At Δ0 = 2√n the measured mean growth must be ≥ 1.3 (paper: 1.5 in
        // expectation for the idealized process; finite-n effects shave it).
        let t = one_step_drift_table(4096, &[2.0], 200, 5);
        let text = t.to_text();
        assert!(t.len() == 1, "{text}");
        // Extract the mean ratio cell and sanity-check it.
        let row = text
            .lines()
            .find(|l| l.trim_start().starts_with("2.00"))
            .expect("row");
        let cells: Vec<&str> = row.split('|').collect();
        let ratio: f64 = cells[2].trim().parse().expect("ratio cell");
        assert!(ratio > 1.3, "drift ratio {ratio} too small:\n{text}");
    }

    #[test]
    fn doubling_regime_is_fast() {
        let t = doubling_regime_table(&[512, 2048], 5, 6);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.contains("ln ln n"), "{text}");
    }
}

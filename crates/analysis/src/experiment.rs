//! Parallel trial sweeps and convergence statistics.
//!
//! The metric/summary types moved to `stabcon-exp` (the campaign subsystem
//! owns sweep execution now) and are re-exported here unchanged. Every
//! driver executes through `stabcon_exp::sweep_stats` / `stabcon_exp::
//! run_cell` (streamed per-cell aggregates, trajectory-derived extras via
//! `stabcon_exp::TrialObserver`); [`run_trials`] survives only as the
//! *materialized reference implementation* that the per-driver
//! `campaign_port_is_numerically_unchanged` regression tests pin the
//! streaming path against — no driver calls it outside tests.

use stabcon_core::runner::{RunResult, SimSpec};
use stabcon_util::rng::derive_seed;

pub use stabcon_exp::metrics::{ConvergenceStats, HitMetric};

/// Run `trials` independent trials of `spec` in parallel, materializing
/// every `RunResult`; trial `i` uses seed `derive_seed(master_seed, i)`, so
/// results are reproducible and thread-count independent (the same
/// derivation the campaign scheduler uses — a materialized sweep and a
/// campaign cell see identical trials).
///
/// **Test fixture.** Production drivers stream through
/// `stabcon_exp::run_cell`; this stays as the independent reference the
/// parity regression tests compare against (and for ad-hoc trajectory
/// spelunking in examples).
pub fn run_trials(spec: &SimSpec, trials: u64, master_seed: u64, threads: usize) -> Vec<RunResult> {
    let seeds: Vec<u64> = (0..trials).map(|i| derive_seed(master_seed, i)).collect();
    stabcon_par::par_map(threads, &seeds, |&s| spec.run_seeded(s))
}

/// Format a possibly-NaN cell.
pub fn cell(x: f64) -> String {
    if x.is_nan() {
        "—".to_string()
    } else {
        stabcon_util::table::fmt_sig(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_core::init::InitialCondition;

    #[test]
    fn trials_are_reproducible_and_thread_independent() {
        let spec = SimSpec::new(256).init(InitialCondition::TwoBins { left: 128 });
        let a = run_trials(&spec, 8, 42, 1);
        let b = run_trials(&spec, 8, 42, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.consensus_round, y.consensus_round);
            assert_eq!(x.winner, y.winner);
        }
    }

    #[test]
    fn stats_aggregate_sanely() {
        let spec = SimSpec::new(256).init(InitialCondition::TwoBins { left: 128 });
        let results = run_trials(&spec, 16, 7, 4);
        let stats = ConvergenceStats::from_results(&results, HitMetric::Consensus);
        assert_eq!(stats.trials, 16);
        assert_eq!(stats.hits, 16, "all two-bin runs must converge");
        assert_eq!(stats.timeouts, 0);
        assert!(stats.validity_rate == 1.0);
        let q = stats.rounds.expect("hits recorded");
        assert!(q.mean > 0.0 && q.mean < 200.0);
        assert!(q.p95 >= q.p50);
    }

    #[test]
    fn materialized_sweep_equals_campaign_cell() {
        // The invariant the figure1/baselines ports rely on: run_trials +
        // from_results is numerically identical to the streaming cell path.
        let spec = SimSpec::new(256).init(InitialCondition::UniformRandom { m: 4 });
        let results = run_trials(&spec, 10, 33, 2);
        let materialized = ConvergenceStats::from_results(&results, HitMetric::Consensus);
        let pool = stabcon_par::ThreadPool::new(2);
        let streamed = stabcon_exp::sweep_stats(&pool, &spec, 10, 33, HitMetric::Consensus);
        assert_eq!(materialized.rounds, streamed.rounds);
        assert_eq!(materialized.hits, streamed.hits);
        assert!(materialized.validity_rate == streamed.validity_rate);
    }

    #[test]
    fn metric_fallback() {
        let spec = SimSpec::new(128).init(InitialCondition::TwoBins { left: 64 });
        let results = run_trials(&spec, 4, 9, 2);
        for r in &results {
            // Without adversary: threshold 0, so almost-stable == consensus.
            assert_eq!(
                HitMetric::AlmostStable.of(r),
                HitMetric::Consensus.of(r).map(|c| {
                    // almost-stable may trail consensus by the window, but
                    // falls back to consensus when missing.
                    r.almost_stable_round.unwrap_or(c)
                })
            );
        }
    }

    #[test]
    fn nan_cells_render_as_dash() {
        assert_eq!(cell(f64::NAN), "—");
        assert_eq!(cell(12.0), "12.0");
    }
}

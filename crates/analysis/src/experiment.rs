//! Parallel trial sweeps and convergence statistics.

use stabcon_core::runner::{RunResult, SimSpec};
use stabcon_util::rng::derive_seed;
use stabcon_util::stats::Quantiles;

/// Which hitting time a sweep aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitMetric {
    /// First round with full consensus (support 1) — the no-adversary
    /// "stable consensus" metric.
    Consensus,
    /// Start of the sustained almost-stable window — the adversarial
    /// metric (falls back to consensus when it was recorded first).
    AlmostStable,
}

impl HitMetric {
    /// Extract the metric from one run.
    pub fn of(&self, r: &RunResult) -> Option<u64> {
        match self {
            HitMetric::Consensus => r.consensus_round,
            HitMetric::AlmostStable => r.almost_stable_round.or(r.consensus_round),
        }
    }
}

/// Run `trials` independent trials of `spec` in parallel; trial `i` uses
/// seed `derive_seed(master_seed, i)`, so results are reproducible and
/// thread-count independent.
pub fn run_trials(spec: &SimSpec, trials: u64, master_seed: u64, threads: usize) -> Vec<RunResult> {
    let seeds: Vec<u64> = (0..trials).map(|i| derive_seed(master_seed, i)).collect();
    stabcon_par::par_map(threads, &seeds, |&s| spec.run_seeded(s))
}

/// Aggregated convergence behaviour of a batch of trials.
#[derive(Debug, Clone)]
pub struct ConvergenceStats {
    /// Total trials.
    pub trials: u64,
    /// Trials that hit the metric within the round budget.
    pub hits: u64,
    /// Trials that exhausted `max_rounds` without hitting.
    pub timeouts: u64,
    /// Quantiles of the hitting time over successful trials (`None` when
    /// no trial hit).
    pub rounds: Option<Quantiles>,
    /// Fraction of trials whose winner was an initial value.
    pub validity_rate: f64,
}

impl ConvergenceStats {
    /// Aggregate a batch under the chosen metric.
    pub fn from_results(results: &[RunResult], metric: HitMetric) -> Self {
        let trials = results.len() as u64;
        let hit_times: Vec<f64> = results
            .iter()
            .filter_map(|r| metric.of(r))
            .map(|t| t as f64)
            .collect();
        let hits = hit_times.len() as u64;
        let valid = results.iter().filter(|r| r.winner_valid).count();
        Self {
            trials,
            hits,
            timeouts: trials - hits,
            rounds: (!hit_times.is_empty()).then(|| Quantiles::from(&hit_times)),
            validity_rate: if trials == 0 {
                0.0
            } else {
                valid as f64 / trials as f64
            },
        }
    }

    /// Mean hitting time (`NaN` if nothing hit — callers print "—").
    pub fn mean(&self) -> f64 {
        self.rounds.as_ref().map(|q| q.mean).unwrap_or(f64::NAN)
    }

    /// 95th percentile hitting time.
    pub fn p95(&self) -> f64 {
        self.rounds.as_ref().map(|q| q.p95).unwrap_or(f64::NAN)
    }

    /// Fraction of trials that hit.
    pub fn hit_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }
}

/// Format a possibly-NaN cell.
pub fn cell(x: f64) -> String {
    if x.is_nan() {
        "—".to_string()
    } else {
        stabcon_util::table::fmt_sig(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_core::init::InitialCondition;

    #[test]
    fn trials_are_reproducible_and_thread_independent() {
        let spec = SimSpec::new(256).init(InitialCondition::TwoBins { left: 128 });
        let a = run_trials(&spec, 8, 42, 1);
        let b = run_trials(&spec, 8, 42, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.consensus_round, y.consensus_round);
            assert_eq!(x.winner, y.winner);
        }
    }

    #[test]
    fn stats_aggregate_sanely() {
        let spec = SimSpec::new(256).init(InitialCondition::TwoBins { left: 128 });
        let results = run_trials(&spec, 16, 7, 4);
        let stats = ConvergenceStats::from_results(&results, HitMetric::Consensus);
        assert_eq!(stats.trials, 16);
        assert_eq!(stats.hits, 16, "all two-bin runs must converge");
        assert_eq!(stats.timeouts, 0);
        assert!(stats.validity_rate == 1.0);
        let q = stats.rounds.expect("hits recorded");
        assert!(q.mean > 0.0 && q.mean < 200.0);
        assert!(q.p95 >= q.p50);
    }

    #[test]
    fn metric_fallback() {
        let spec = SimSpec::new(128).init(InitialCondition::TwoBins { left: 64 });
        let results = run_trials(&spec, 4, 9, 2);
        for r in &results {
            // Without adversary: threshold 0, so almost-stable == consensus.
            assert_eq!(
                HitMetric::AlmostStable.of(r),
                HitMetric::Consensus.of(r).map(|c| {
                    // almost-stable may trail consensus by the window, but
                    // falls back to consensus when missing.
                    r.almost_stable_round.unwrap_or(c)
                })
            );
        }
    }

    #[test]
    fn nan_cells_render_as_dash() {
        assert_eq!(cell(f64::NAN), "—");
        assert_eq!(cell(12.0), "12.0");
    }
}

//! Figure 1 regeneration: the paper's results table, measured (E1–E3).
//!
//! Paper claims (rounds to (almost) stable consensus, w.h.p.):
//!
//! | | with adversary | without adversary |
//! |---|---|---|
//! | worst-case 2 bins | O(log n) | O(log n) |
//! | worst-case m bins | O(log m·log log n + log n) | O(log n) |
//! | average-case m bins | O(log m + log log n) odd m, Θ(log n) even m | same |

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_exp::sweep_stats;
use stabcon_par::ThreadPool;
use stabcon_util::table::{fmt_sig, Table};

use crate::experiment::{cell, HitMetric};
use crate::scaling::{describe_line, fit_log_m, fit_log_n};

pub use stabcon_exp::campaign::sqrt_budget;

/// Sweep parameters shared by the Figure 1 experiments.
#[derive(Debug, Clone)]
pub struct SweepCfg {
    /// Population sizes.
    pub ns: Vec<usize>,
    /// Trials per point.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for SweepCfg {
    /// The compact test/smoke configuration (also [`SweepCfg::small`]);
    /// `threads` defaults to [`stabcon_par::default_threads`] so callers
    /// override only the axes they care about.
    fn default() -> Self {
        Self {
            ns: vec![256, 512, 1024],
            trials: 12,
            seed: 0xF161,
            threads: stabcon_par::default_threads(),
        }
    }
}

impl SweepCfg {
    /// A compact configuration for tests and smoke runs.
    pub fn small() -> Self {
        Self::default()
    }

    /// The paper-scale configuration used by the benches.
    pub fn paper() -> Self {
        Self {
            ns: vec![
                1 << 10,
                1 << 11,
                1 << 12,
                1 << 13,
                1 << 14,
                1 << 15,
                1 << 16,
            ],
            trials: 100,
            seed: 0xF162,
            ..Self::default()
        }
    }
}

/// E1 — Figure 1 row 1 / Theorem 10: two bins, worst-case split, with and
/// without a √n-bounded balancing adversary.
pub fn two_bins_table(cfg: &SweepCfg) -> Table {
    let mut table = Table::new(
        "Figure 1 row 1 (E1): worst-case 2 bins — rounds to (almost) stable consensus",
        &[
            "n",
            "T",
            "no-adv mean",
            "no-adv p95",
            "no-adv hit%",
            "adv mean",
            "adv p95",
            "adv hit%",
        ],
    );
    let pool = ThreadPool::new(cfg.threads);
    let mut means_no = Vec::new();
    let mut means_adv = Vec::new();
    for &n in &cfg.ns {
        let base = SimSpec::new(n).init(InitialCondition::TwoBins { left: n / 2 });
        let no_adv = sweep_stats(
            &pool,
            &base,
            cfg.trials,
            cfg.seed ^ n as u64,
            HitMetric::Consensus,
        );
        let t = sqrt_budget(n);
        let adv_spec = base.clone().adversary(AdversarySpec::Balancer, t);
        let adv = sweep_stats(
            &pool,
            &adv_spec,
            cfg.trials,
            cfg.seed ^ (n as u64) << 1,
            HitMetric::AlmostStable,
        );
        means_no.push((n as f64, no_adv.mean()));
        means_adv.push((n as f64, adv.mean()));
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            cell(no_adv.mean()),
            cell(no_adv.p95()),
            format!("{:.0}", no_adv.hit_rate() * 100.0),
            cell(adv.mean()),
            cell(adv.p95()),
            format!("{:.0}", adv.hit_rate() * 100.0),
        ]);
    }
    add_logn_fits(&mut table, &means_no, &means_adv);
    table.push_note("paper: O(log n) in both columns (Thm 10)");
    table
}

/// E2 — Figure 1 row 2 / Theorems 1 & 20: worst-case m bins (all-distinct,
/// m = n), with and without a √n-bounded adversary.
pub fn m_bins_table(cfg: &SweepCfg) -> Table {
    let mut table = Table::new(
        "Figure 1 row 2 (E2): worst-case m bins (all-distinct, m = n)",
        &[
            "n",
            "T",
            "no-adv mean",
            "no-adv p95",
            "rand-adv mean",
            "push-adv mean",
            "push-adv hit%",
        ],
    );
    let pool = ThreadPool::new(cfg.threads);
    let mut means_no = Vec::new();
    let mut means_push = Vec::new();
    for &n in &cfg.ns {
        let base = SimSpec::new(n).init(InitialCondition::AllDistinct);
        let no_adv = sweep_stats(
            &pool,
            &base,
            cfg.trials,
            cfg.seed ^ n as u64,
            HitMetric::Consensus,
        );
        let t = sqrt_budget(n);
        let rand_adv = sweep_stats(
            &pool,
            &base.clone().adversary(AdversarySpec::Random, t),
            cfg.trials,
            cfg.seed ^ (n as u64) << 1,
            HitMetric::AlmostStable,
        );
        let push_adv = sweep_stats(
            &pool,
            &base.clone().adversary(AdversarySpec::MedianPusher, t),
            cfg.trials,
            cfg.seed ^ (n as u64) << 2,
            HitMetric::AlmostStable,
        );
        means_no.push((n as f64, no_adv.mean()));
        means_push.push((n as f64, push_adv.mean()));
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            cell(no_adv.mean()),
            cell(no_adv.p95()),
            cell(rand_adv.mean()),
            cell(push_adv.mean()),
            format!("{:.0}", push_adv.hit_rate() * 100.0),
        ]);
    }
    add_logn_fits(&mut table, &means_no, &means_push);
    table.push_note(
        "paper: O(log n) without adversary (Thm 1); O(log m·log log n + log n) with (Thm 20)",
    );
    table
}

/// E3 — Figure 1 row 3 / Theorems 4 & 21: average case, uniform random over
/// `m` bins, sweeping `m` over both parities at fixed `n`.
pub fn average_case_table(n: usize, ms: &[u32], trials: u64, seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!("Figure 1 row 3 (E3): average-case m bins at n = {n}"),
        &[
            "m",
            "parity",
            "no-adv mean",
            "no-adv p95",
            "adv mean",
            "adv hit%",
        ],
    );
    let pool = ThreadPool::new(threads);
    let t = sqrt_budget(n);
    let mut odd_pts = Vec::new();
    let mut even_pts = Vec::new();
    for &m in ms {
        let base = SimSpec::new(n).init(InitialCondition::UniformRandom { m });
        let no_adv = sweep_stats(&pool, &base, trials, seed ^ m as u64, HitMetric::Consensus);
        let adv = sweep_stats(
            &pool,
            &base.clone().adversary(AdversarySpec::Random, t),
            trials,
            seed ^ ((m as u64) << 13),
            HitMetric::AlmostStable,
        );
        let parity = if m % 2 == 0 { "even" } else { "odd" };
        if m % 2 == 1 {
            odd_pts.push((m as f64, no_adv.mean()));
        } else {
            even_pts.push((m as f64, no_adv.mean()));
        }
        table.push_row(vec![
            m.to_string(),
            parity.into(),
            cell(no_adv.mean()),
            cell(no_adv.p95()),
            cell(adv.mean()),
            format!("{:.0}", adv.hit_rate() * 100.0),
        ]);
    }
    if odd_pts.len() >= 2 {
        let (ms, ts): (Vec<f64>, Vec<f64>) = odd_pts.iter().copied().unzip();
        table.push_note(format!(
            "odd m:  {}",
            describe_line(&fit_log_m(&ms, &ts), "ln m")
        ));
    }
    if even_pts.len() >= 2 && odd_pts.len() >= 2 {
        let odd_mean: f64 = odd_pts.iter().map(|&(_, t)| t).sum::<f64>() / odd_pts.len() as f64;
        let even_mean: f64 = even_pts.iter().map(|&(_, t)| t).sum::<f64>() / even_pts.len() as f64;
        table.push_note(format!(
            "parity gap: mean(even) / mean(odd) = {} (paper: even m is Θ(log n), odd m is O(log m + log log n))",
            fmt_sig(even_mean / odd_mean)
        ));
    }
    table
}

fn add_logn_fits(table: &mut Table, no_adv: &[(f64, f64)], adv: &[(f64, f64)]) {
    if no_adv.len() >= 2 && no_adv.iter().all(|&(_, t)| t.is_finite()) {
        let (ns, ts): (Vec<f64>, Vec<f64>) = no_adv.iter().copied().unzip();
        table.push_note(format!(
            "no-adv: {}",
            describe_line(&fit_log_n(&ns, &ts), "ln n")
        ));
    }
    let adv_ok: Vec<(f64, f64)> = adv
        .iter()
        .copied()
        .filter(|&(_, t)| t.is_finite())
        .collect();
    if adv_ok.len() >= 2 {
        let (ns, ts): (Vec<f64>, Vec<f64>) = adv_ok.iter().copied().unzip();
        table.push_note(format!(
            "adv:    {}",
            describe_line(&fit_log_n(&ns, &ts), "ln n")
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bins_small_sweep_runs() {
        let cfg = SweepCfg {
            ns: vec![128, 256],
            trials: 5,
            seed: 1,
            ..Default::default()
        };
        let t = two_bins_table(&cfg);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.contains("128"));
        assert!(text.contains("ln n"), "fit note missing:\n{text}");
    }

    #[test]
    fn m_bins_small_sweep_runs() {
        let cfg = SweepCfg {
            ns: vec![128, 256],
            trials: 4,
            seed: 2,
            ..Default::default()
        };
        let t = m_bins_table(&cfg);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn campaign_port_is_numerically_unchanged() {
        // Acceptance criterion: routing the figure1 driver through
        // stabcon-exp leaves the numbers identical to the pre-campaign
        // materialized `run_trials` path.
        use crate::experiment::{run_trials, ConvergenceStats};
        let cfg = SweepCfg {
            ns: vec![128, 256],
            trials: 5,
            seed: 77,
            ..Default::default()
        };
        let text = two_bins_table(&cfg).to_text();
        for &n in &cfg.ns {
            let base = SimSpec::new(n).init(InitialCondition::TwoBins { left: n / 2 });
            let legacy = ConvergenceStats::from_results(
                &run_trials(&base, cfg.trials, cfg.seed ^ n as u64, 2),
                HitMetric::Consensus,
            );
            assert!(
                text.contains(&cell(legacy.mean())),
                "n={n}: legacy no-adv mean {} missing from\n{text}",
                cell(legacy.mean())
            );
            let t = sqrt_budget(n);
            let legacy_adv = ConvergenceStats::from_results(
                &run_trials(
                    &base.clone().adversary(AdversarySpec::Balancer, t),
                    cfg.trials,
                    cfg.seed ^ (n as u64) << 1,
                    2,
                ),
                HitMetric::AlmostStable,
            );
            assert!(
                text.contains(&cell(legacy_adv.mean())),
                "n={n}: legacy adv mean {} missing from\n{text}",
                cell(legacy_adv.mean())
            );
        }
    }

    #[test]
    fn average_case_parity_rows() {
        let t = average_case_table(512, &[3, 4, 5, 8], 6, 3, 2);
        assert_eq!(t.len(), 4);
        let text = t.to_text();
        assert!(text.contains("odd"));
        assert!(text.contains("even"));
    }
}

//! E8: Equation (1) — empirical gravity vs the exact sum vs the paper's
//! closed form `6(n−i)i/n²`.

use stabcon_core::gravity::{gravity_empirical, gravity_exact, gravity_formula};
use stabcon_util::table::{fmt_f64, Table};

/// Measure gravity at a grid of ball positions for the all-distinct
/// configuration.
pub fn gravity_table(n: u64, positions: &[u64], trials: u64, seed: u64) -> Table {
    let mut table = Table::new(
        format!("Gravity (E8, Eq. 1): all-distinct configuration, n = {n}, {trials} trials"),
        &[
            "ball i",
            "empirical g(i)",
            "± se",
            "exact g(i)",
            "6(n−i)i/n²",
            "|emp − exact|/se",
        ],
    );
    for &i in positions {
        let stats = gravity_empirical(n, i, trials, seed ^ i);
        let exact = gravity_exact(n, i);
        let formula = gravity_formula(n, i);
        // Guard against a degenerate (all-identical) sample: fall back to
        // the binomial-scale standard error 1/trials so the z-score stays
        // meaningful at the extreme balls where g(i) ≈ 0.
        let se = stats.std_err().max(1.0 / trials as f64);
        table.push_row(vec![
            i.to_string(),
            fmt_f64(stats.mean(), 4),
            fmt_f64(stats.std_err(), 4),
            fmt_f64(exact, 4),
            fmt_f64(formula, 4),
            fmt_f64((stats.mean() - exact).abs() / se, 2),
        ]);
    }
    table.push_note("paper: g(i) = 6(n−i)i/n² + O(1/n); maximized at the median ball (≈ 3/2)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_table_matches_theory() {
        let n = 256u64;
        let t = gravity_table(n, &[1, 64, 128, 192, 256], 300, 9);
        assert_eq!(t.len(), 5);
        // Every |z|-score must be small.
        for line in t.to_text().lines().skip(3).take(5) {
            let z: f64 = line
                .split('|')
                .next_back()
                .expect("z cell")
                .trim()
                .parse()
                .expect("parse z");
            assert!(z < 6.0, "z-score too large: {z}\n{line}");
        }
    }
}

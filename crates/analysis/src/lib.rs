//! # stabcon-analysis
//!
//! The experiment harness: everything needed to regenerate the paper's
//! results table (Figure 1) and the theorem-level claims as *measured*
//! tables.
//!
//! * [`experiment`] — convergence statistics (mean/p50/p95/p99/max hitting
//!   times, timeout and validity rates; the stat types live in
//!   `stabcon-exp` and are re-exported here) plus the materialized
//!   `run_trials` parity reference. **Every** table driver executes
//!   through the `stabcon-exp` campaign scheduler (streamed aggregates, no
//!   materialized result vectors; trajectory-derived extras through
//!   `stabcon_exp::TrialObserver`), each pinned by a
//!   `campaign_port_is_numerically_unchanged` regression test;
//! * [`scaling`] — the paper's predictors as regression models: `log n`,
//!   `log log n`, `log m · log log n + log n` (Theorem 20) and
//!   `log m + log log n` (Theorem 21);
//! * [`figure1`] — the three rows of Figure 1 as measured tables (E1–E3);
//! * [`theorems`] — Theorem 2 (constant number of values, E4);
//! * [`threshold`] — tightness of the `T ≤ √n` bound (E5);
//! * [`baselines`] — the §1.1 minimum-rule counterexample (E6) and the §1.2
//!   mean-rule validity failure (E7);
//! * [`drift`] — Lemmas 11/12/15: one-step imbalance drift and the
//!   `O(log log n)` doubling regime (E10/E11);
//! * [`stability`] — post-stabilization disagreement horizons (E12);
//! * [`gravity_exp`] — Equation (1) empirical vs exact vs closed form (E8).
//!
//! Every module returns [`stabcon_util::table::Table`]s so bench targets
//! print uniformly formatted, diffable output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod drift;
pub mod experiment;
pub mod figure1;
pub mod gravity_exp;
pub mod robustness;
pub mod scaling;
pub mod stability;
pub mod theorems;
pub mod threshold;

/// One-stop imports.
pub mod prelude {
    pub use crate::experiment::{run_trials, ConvergenceStats, HitMetric};
    pub use crate::scaling::{fit_log_n, fit_loglog_n};
    pub use stabcon_util::table::Table;
}

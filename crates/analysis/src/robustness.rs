//! Robustness studies beyond the paper's theorems (its §6 asks for exactly
//! this): a protocol × adversary tournament and the α-asynchrony ablation.

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::protocol::ProtocolSpec;
use stabcon_core::runner::SimSpec;
use stabcon_exp::sweep_stats;
use stabcon_par::ThreadPool;
use stabcon_util::table::Table;

use crate::experiment::{cell, HitMetric};
use crate::figure1::sqrt_budget;

/// Every protocol against every adversary at `T = √n/4`: mean rounds to
/// (almost) stability, with the hit rate in parentheses. Executes through
/// the campaign scheduler (streamed per-pairing aggregates).
pub fn tournament_table(n: usize, trials: u64, seed: u64, threads: usize) -> Table {
    let t_budget = sqrt_budget(n);
    let protocols = [
        ProtocolSpec::Median,
        ProtocolSpec::KMedian(4),
        ProtocolSpec::Majority,
        ProtocolSpec::Voter,
        ProtocolSpec::Min,
    ];
    let adversaries = [
        AdversarySpec::None,
        AdversarySpec::Random,
        AdversarySpec::Balancer,
        AdversarySpec::MedianPusher,
        AdversarySpec::Stubborn,
    ];
    let mut headers: Vec<&str> = vec!["protocol \\ adversary"];
    let labels: Vec<String> = adversaries.iter().map(|a| a.label().to_string()).collect();
    headers.extend(labels.iter().map(|s| s.as_str()));
    let mut table = Table::new(
        format!("Tournament: rounds to (almost) stable consensus, n = {n}, T = {t_budget}"),
        &headers,
    );
    let pool = ThreadPool::new(threads);
    for p in protocols {
        let mut row = vec![p.label()];
        for (ai, &adv) in adversaries.iter().enumerate() {
            let spec = SimSpec::new(n)
                .init(InitialCondition::UniformRandom { m: 5 })
                .protocol(p)
                .adversary(adv, t_budget)
                .max_rounds(1500);
            let stats = sweep_stats(
                &pool,
                &spec,
                trials,
                seed ^ ((ai as u64) << 24) ^ p.label().len() as u64,
                HitMetric::AlmostStable,
            );
            row.push(format!(
                "{} ({:.0}%)",
                cell(stats.mean()),
                stats.hit_rate() * 100.0
            ));
        }
        table.push_row(row);
    }
    table.push_note("the median family tolerates every strategy shown; the min rule looks fast here but is destroyed by revival attacks (E6), and the voter model needs Θ(n) rounds");
    table.push_note(
        "curiosity: the stubborn adversary *helps* the voter model by pinning a growing camp",
    );
    table
}

/// α-asynchrony ablation: only an α-fraction of balls updates per round.
/// The effective per-ball round rate is α, so rounds should scale ≈ 1/α —
/// the dynamics themselves survive partial participation.
pub fn asynchrony_table(n: usize, alphas: &[f64], trials: u64, seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!("α-asynchrony ablation: two bins at n = {n}"),
        &["alpha", "mean rounds", "p95", "mean · alpha", "hit%"],
    );
    let pool = ThreadPool::new(threads);
    for &alpha in alphas {
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .update_fraction(alpha)
            .max_rounds(20_000);
        let stats = sweep_stats(
            &pool,
            &spec,
            trials,
            seed ^ (alpha * 1000.0) as u64,
            HitMetric::Consensus,
        );
        table.push_row(vec![
            format!("{alpha:.2}"),
            cell(stats.mean()),
            cell(stats.p95()),
            cell(stats.mean() * alpha),
            format!("{:.0}", stats.hit_rate() * 100.0),
        ]);
    }
    table.push_note(
        "mean·α should be roughly constant: asynchrony rescales time without breaking convergence",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_runs_small() {
        let t = tournament_table(256, 3, 5, 2);
        assert_eq!(t.len(), 5);
        let text = t.to_text();
        assert!(text.contains("median"), "{text}");
        assert!(text.contains("stubborn"), "{text}");
    }

    #[test]
    fn campaign_port_is_numerically_unchanged() {
        use crate::experiment::{run_trials, ConvergenceStats};
        let (n, trials, seed) = (256usize, 3u64, 5u64);
        let text = tournament_table(n, trials, seed, 2).to_text();
        let t_budget = sqrt_budget(n);
        // Spot-check two pairings against the materialized path.
        for (p, ai, adv) in [
            (ProtocolSpec::Median, 2usize, AdversarySpec::Balancer),
            (ProtocolSpec::Voter, 0, AdversarySpec::None),
        ] {
            let spec = SimSpec::new(n)
                .init(InitialCondition::UniformRandom { m: 5 })
                .protocol(p)
                .adversary(adv, t_budget)
                .max_rounds(1500);
            let legacy = ConvergenceStats::from_results(
                &run_trials(
                    &spec,
                    trials,
                    seed ^ ((ai as u64) << 24) ^ p.label().len() as u64,
                    3,
                ),
                HitMetric::AlmostStable,
            );
            let expected = format!(
                "{} ({:.0}%)",
                cell(legacy.mean()),
                legacy.hit_rate() * 100.0
            );
            assert!(
                text.contains(&expected),
                "{}/{}: materialized cell '{expected}' missing from\n{text}",
                p.label(),
                adv.label()
            );
        }
    }

    #[test]
    fn asynchrony_scales_inverse_alpha() {
        let t = asynchrony_table(512, &[1.0, 0.25], 6, 7, 2);
        assert_eq!(t.len(), 2);
        // Parse the "mean rounds" cells and compare.
        let text = t.to_text();
        let mut means = Vec::new();
        for line in text.lines() {
            let cells: Vec<&str> = line.split('|').collect();
            if cells.len() >= 2 {
                if let Ok(v) = cells[1].trim().parse::<f64>() {
                    means.push(v);
                }
            }
        }
        assert_eq!(means.len(), 2, "{text}");
        assert!(
            means[1] > 2.0 * means[0],
            "α = 0.25 should be ≫ slower: {means:?}\n{text}"
        );
    }
}

//! Scaling-law fits in the paper's predictors.
//!
//! The reproduction never expects to match absolute constants — the claim
//! under test is always the *functional form*: is the measured time linear
//! in `log n`? In `log m · log log n + log n`? The fits here return `R²` so
//! tables can print goodness-of-fit next to slopes.

use stabcon_util::stats::{fit_line, ols, LineFit, OlsFit};

/// Fit `T = a + b·ln n`.
pub fn fit_log_n(ns: &[f64], times: &[f64]) -> LineFit {
    let xs: Vec<f64> = ns.iter().map(|&n| n.ln()).collect();
    fit_line(&xs, times)
}

/// Fit `T = a + b·ln ln n`.
pub fn fit_loglog_n(ns: &[f64], times: &[f64]) -> LineFit {
    let xs: Vec<f64> = ns.iter().map(|&n| n.ln().ln()).collect();
    fit_line(&xs, times)
}

/// Fit `T = a + b·ln m` (average-case odd m at fixed n).
pub fn fit_log_m(ms: &[f64], times: &[f64]) -> LineFit {
    let xs: Vec<f64> = ms.iter().map(|&m| m.ln()).collect();
    fit_line(&xs, times)
}

/// Theorem 20's form: `T = a + b·(ln m · ln ln n) + c·ln n` over
/// `(n, m, T)` triples.
pub fn fit_thm20(points: &[(f64, f64, f64)]) -> OlsFit {
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|&(n, m, _)| vec![m.ln() * n.ln().ln(), n.ln()])
        .collect();
    let ys: Vec<f64> = points.iter().map(|&(_, _, t)| t).collect();
    ols(&rows, &ys)
}

/// Theorem 21's odd-m form: `T = a + b·ln m + c·ln ln n`.
pub fn fit_thm21_odd(points: &[(f64, f64, f64)]) -> OlsFit {
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|&(n, m, _)| vec![m.ln(), n.ln().ln()])
        .collect();
    let ys: Vec<f64> = points.iter().map(|&(_, _, t)| t).collect();
    ols(&rows, &ys)
}

/// Pretty "T ≈ a + b·X (R²)" string for table footnotes.
pub fn describe_line(fit: &LineFit, predictor: &str) -> String {
    format!(
        "T ≈ {:.2} + {:.2}·{predictor}   (R² = {:.3})",
        fit.intercept, fit.slope, fit.r2
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_n_fit_recovers_synthetic_law() {
        let ns: Vec<f64> = (8..=20).map(|k| (1u64 << k) as f64).collect();
        let ts: Vec<f64> = ns.iter().map(|n| 3.0 + 2.5 * n.ln()).collect();
        let fit = fit_log_n(&ns, &ts);
        assert!((fit.slope - 2.5).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loglog_fit_recovers_synthetic_law() {
        let ns: Vec<f64> = (8..=30).map(|k| (1u64 << k) as f64).collect();
        let ts: Vec<f64> = ns.iter().map(|n| 1.0 + 4.0 * n.ln().ln()).collect();
        let fit = fit_loglog_n(&ns, &ts);
        assert!((fit.slope - 4.0).abs() < 1e-9);
    }

    #[test]
    fn thm20_fit_recovers_planted_coefficients() {
        let mut pts = Vec::new();
        for k in [10u32, 12, 14, 16] {
            for lm in [1u32, 3, 5, 7] {
                let n = (1u64 << k) as f64;
                let m = (1u64 << lm) as f64;
                let t = 2.0 + 1.5 * (m.ln() * n.ln().ln()) + 3.0 * n.ln();
                pts.push((n, m, t));
            }
        }
        let fit = fit_thm20(&pts);
        assert!((fit.beta[1] - 1.5).abs() < 1e-8, "beta = {:?}", fit.beta);
        assert!((fit.beta[2] - 3.0).abs() < 1e-8);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn thm21_fit_recovers_planted_coefficients() {
        let mut pts = Vec::new();
        for k in [12u32, 16, 20, 24] {
            for m in [3u64, 5, 9, 17, 33] {
                let n = (1u64 << k) as f64;
                let t = 1.0 + 2.0 * (m as f64).ln() + 5.0 * n.ln().ln();
                pts.push((n, m as f64, t));
            }
        }
        let fit = fit_thm21_odd(&pts);
        assert!((fit.beta[1] - 2.0).abs() < 1e-8);
        assert!((fit.beta[2] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn describe_is_readable() {
        let ns = [256.0, 1024.0, 4096.0];
        let ts = [10.0, 12.0, 14.0];
        let d = describe_line(&fit_log_n(&ns, &ts), "ln n");
        assert!(d.contains("ln n"));
        assert!(d.contains("R²"));
    }
}

//! E12: once almost-stable, disagreement stays O(T) under continuous attack.
//!
//! The paper's definition demands more than hitting a good state once — it
//! must *persist*: for every round after `r`, all but `O(T)` processes hold
//! `v`. We run past the hit for a long horizon under each adversary and
//! report the worst disagreement ever seen after stabilization.

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_util::table::Table;

use crate::experiment::run_trials;

/// For each adversary, run `horizon_mult·⌈log₂ n⌉` rounds at `T = √n` and
/// report: hit rate, mean hit round, and the maximum post-hit disagreement
/// (in units of `T`).
pub fn stability_horizon_table(
    n: usize,
    adversaries: &[AdversarySpec],
    trials: u64,
    horizon_mult: u64,
    seed: u64,
    threads: usize,
) -> Table {
    let t_budget = crate::figure1::sqrt_budget(n);
    let lg = (n.max(2) as f64).log2().ceil() as u64;
    let horizon = horizon_mult * lg;
    let mut table = Table::new(
        format!("Stability horizon (E12): n = {n}, T = {t_budget}, horizon = {horizon} rounds"),
        &[
            "adversary",
            "stabilized%",
            "mean hit round",
            "max post-hit disagreement",
            "…in units of T",
        ],
    );
    for &adv in adversaries {
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .adversary(adv, t_budget)
            .max_rounds(horizon)
            .full_horizon(true);
        let results = run_trials(&spec, trials, seed ^ adv.label().len() as u64, threads);
        let hits: Vec<&stabcon_core::runner::RunResult> = results
            .iter()
            .filter(|r| r.almost_stable_round.is_some())
            .collect();
        let hit_rate = hits.len() as f64 / results.len() as f64;
        let mean_hit: f64 = if hits.is_empty() {
            f64::NAN
        } else {
            hits.iter()
                .map(|r| r.almost_stable_round.expect("filtered") as f64)
                .sum::<f64>()
                / hits.len() as f64
        };
        let worst_post = hits
            .iter()
            .filter_map(|r| r.max_disagreement_after_stable)
            .max()
            .unwrap_or(0);
        table.push_row(vec![
            adv.label().to_string(),
            format!("{:.0}", hit_rate * 100.0),
            crate::experiment::cell(mean_hit),
            worst_post.to_string(),
            format!("{:.2}", worst_post as f64 / t_budget as f64),
        ]);
    }
    table.push_note("paper: after round r, all but O(T) processes agree — the last column is the measured constant");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_table_bounds_disagreement() {
        let t = stability_horizon_table(
            1024,
            &[AdversarySpec::Random, AdversarySpec::Balancer],
            4,
            30,
            3,
            2,
        );
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.contains("random"), "{text}");
        assert!(text.contains("balancer"), "{text}");
    }
}

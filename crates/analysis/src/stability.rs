//! E12: once almost-stable, disagreement stays O(T) under continuous attack.
//!
//! The paper's definition demands more than hitting a good state once — it
//! must *persist*: for every round after `r`, all but `O(T)` processes hold
//! `v`. We run past the hit for a long horizon under each adversary and
//! report the worst disagreement ever seen after stabilization, plus how
//! many post-hit rounds even left the `O(T)` band at all (excursions).
//!
//! Executes through the campaign scheduler with the
//! [`TrialObserver::StabilityExcursions`] observer: each worker reduces its
//! trial's trajectory to three scalars (raw hit round, max post-hit
//! disagreement, excursion-round count) and the full-horizon trajectories
//! never accumulate.

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_exp::{chunk_for, run_cell, CellSpec, HitMetric, TrialObserver};
use stabcon_par::ThreadPool;
use stabcon_util::table::Table;

/// The cell the stability horizon runs per adversary (shared by the driver
/// and its parity test).
fn horizon_cell(
    n: usize,
    adv: AdversarySpec,
    trials: u64,
    horizon: u64,
    t_budget: u64,
    seed: u64,
) -> CellSpec {
    let spec = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .adversary(adv, t_budget)
        .max_rounds(horizon)
        .full_horizon(true);
    let observer = TrialObserver::StabilityExcursions {
        n: n as u64,
        threshold: spec.disagreement_threshold(),
    };
    CellSpec::new(spec, trials, seed ^ adv.label().len() as u64)
        .metric(HitMetric::AlmostStable)
        .observer(observer)
        .label("adversary", adv.label())
}

/// For each adversary, run `horizon_mult·⌈log₂ n⌉` rounds at `T = √n` and
/// report: hit rate, mean hit round, the maximum post-hit disagreement (in
/// units of `T`), and the mean number of post-hit excursion rounds.
pub fn stability_horizon_table(
    n: usize,
    adversaries: &[AdversarySpec],
    trials: u64,
    horizon_mult: u64,
    seed: u64,
    threads: usize,
) -> Table {
    let t_budget = crate::figure1::sqrt_budget(n);
    let lg = (n.max(2) as f64).log2().ceil() as u64;
    let horizon = horizon_mult * lg;
    let mut table = Table::new(
        format!("Stability horizon (E12): n = {n}, T = {t_budget}, horizon = {horizon} rounds"),
        &[
            "adversary",
            "stabilized%",
            "mean hit round",
            "max post-hit disagreement",
            "…in units of T",
            "mean excursion rounds",
        ],
    );
    let pool = ThreadPool::new(threads);
    for &adv in adversaries {
        let cell = horizon_cell(n, adv, trials, horizon, t_budget, seed);
        let agg = run_cell(&pool, &cell, chunk_for(cell.trials, pool.threads()));
        let stable = agg.int_extra(0).expect("stable_round channel");
        let post = agg.int_extra(1).expect("post_disagreement channel");
        let excursions = agg.int_extra(2).expect("excursion_rounds channel");
        let hit_rate = stable.count() as f64 / agg.trials() as f64;
        let worst_post = post.max().unwrap_or(0);
        table.push_row(vec![
            adv.label().to_string(),
            format!("{:.0}", hit_rate * 100.0),
            crate::experiment::cell(stable.mean()),
            worst_post.to_string(),
            format!("{:.2}", worst_post as f64 / t_budget as f64),
            crate::experiment::cell(excursions.mean()),
        ]);
    }
    table.push_note("paper: after round r, all but O(T) processes agree — the disagreement column is the measured constant");
    table.push_note(
        "excursion rounds: post-hit rounds whose plurality left more than the O(T) threshold disagreeing",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_exp::{CellAggregate, TrialMetrics};
    use stabcon_util::rng::derive_seed;

    #[test]
    fn horizon_table_bounds_disagreement() {
        let t = stability_horizon_table(
            1024,
            &[AdversarySpec::Random, AdversarySpec::Balancer],
            4,
            30,
            3,
            2,
        );
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.contains("random"), "{text}");
        assert!(text.contains("balancer"), "{text}");
    }

    #[test]
    fn campaign_port_is_numerically_unchanged() {
        // The streamed observer path must equal the materialized fold: run
        // every trial seed by hand, capture with the same observer, fold in
        // trial order, and compare whole aggregates.
        let (n, trials, horizon_mult, seed) = (1024usize, 5u64, 30u64, 3u64);
        let t_budget = crate::figure1::sqrt_budget(n);
        let horizon = horizon_mult * (n.max(2) as f64).log2().ceil() as u64;
        for adv in [AdversarySpec::Random, AdversarySpec::Balancer] {
            let cell = horizon_cell(n, adv, trials, horizon, t_budget, seed);
            let mut materialized = CellAggregate::new();
            for i in 0..cell.trials {
                let r = cell.sim.run_seeded(derive_seed(cell.seed, i));
                materialized.push(&TrialMetrics::capture(&r, cell.observer));
            }
            let pool = ThreadPool::new(4);
            let streamed = run_cell(&pool, &cell, 2);
            assert_eq!(streamed, materialized, "{}", adv.label());
            // And the legacy per-result formulas agree with the channels.
            let results: Vec<_> = (0..cell.trials)
                .map(|i| cell.sim.run_seeded(derive_seed(cell.seed, i)))
                .collect();
            let hits: Vec<_> = results
                .iter()
                .filter(|r| r.almost_stable_round.is_some())
                .collect();
            assert_eq!(
                streamed.int_extra(0).expect("stable").count(),
                hits.len() as u64
            );
            let worst = hits
                .iter()
                .filter_map(|r| r.max_disagreement_after_stable)
                .max()
                .unwrap_or(0);
            assert_eq!(
                streamed.int_extra(1).expect("post").max().unwrap_or(0),
                worst
            );
        }
    }
}

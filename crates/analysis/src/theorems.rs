//! Theorem 2 (E4): constant number of initial values + √n-bounded
//! adversary ⇒ almost stable consensus in O(log n) rounds.

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_util::table::Table;

use crate::experiment::{cell, run_trials, ConvergenceStats, HitMetric};
use crate::scaling::{describe_line, fit_log_n};

/// E4: for each constant `m`, sweep `n` with a √n balancing/random adversary
/// and fit `log n`.
pub fn constant_m_table(ms: &[u32], ns: &[usize], trials: u64, seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "Theorem 2 (E4): constant #values, √n-bounded adversary — rounds to almost stable consensus",
        &["m", "n", "T", "balancer mean", "balancer p95", "random mean", "hit%"],
    );
    for &m in ms {
        let mut pts = Vec::new();
        for &n in ns {
            let t = crate::figure1::sqrt_budget(n);
            let base = SimSpec::new(n).init(InitialCondition::MBinsEqual { m });
            let bal = ConvergenceStats::from_results(
                &run_trials(
                    &base.clone().adversary(AdversarySpec::Balancer, t),
                    trials,
                    seed ^ (m as u64) << 32 ^ n as u64,
                    threads,
                ),
                HitMetric::AlmostStable,
            );
            let rnd = ConvergenceStats::from_results(
                &run_trials(
                    &base.clone().adversary(AdversarySpec::Random, t),
                    trials,
                    seed ^ (m as u64) << 33 ^ n as u64,
                    threads,
                ),
                HitMetric::AlmostStable,
            );
            if bal.mean().is_finite() {
                pts.push((n as f64, bal.mean()));
            }
            table.push_row(vec![
                m.to_string(),
                n.to_string(),
                t.to_string(),
                cell(bal.mean()),
                cell(bal.p95()),
                cell(rnd.mean()),
                format!("{:.0}", bal.hit_rate() * 100.0),
            ]);
        }
        if pts.len() >= 2 {
            let (ns_f, ts): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
            table.push_note(format!(
                "m = {m}: {}",
                describe_line(&fit_log_n(&ns_f, &ts), "ln n")
            ));
        }
    }
    table.push_note("paper: O(log n) for any constant m (Thm 2)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_m_small_run() {
        let t = constant_m_table(&[2, 3], &[128, 256], 4, 5, 2);
        assert_eq!(t.len(), 4);
        assert!(t.to_text().contains("m = 2"));
    }
}

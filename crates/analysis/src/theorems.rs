//! Theorem 2 (E4): constant number of initial values + √n-bounded
//! adversary ⇒ almost stable consensus in O(log n) rounds.

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_exp::sweep_stats;
use stabcon_par::ThreadPool;
use stabcon_util::table::Table;

use crate::experiment::{cell, HitMetric};
use crate::scaling::{describe_line, fit_log_n};

/// E4: for each constant `m`, sweep `n` with a √n balancing/random adversary
/// and fit `log n`. Executes through the campaign scheduler
/// ([`stabcon_exp::run_cell`]): per-point trials are sharded on a shared
/// pool and folded streamingly, never materialized.
pub fn constant_m_table(ms: &[u32], ns: &[usize], trials: u64, seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "Theorem 2 (E4): constant #values, √n-bounded adversary — rounds to almost stable consensus",
        &["m", "n", "T", "balancer mean", "balancer p95", "random mean", "hit%"],
    );
    let pool = ThreadPool::new(threads);
    for &m in ms {
        let mut pts = Vec::new();
        for &n in ns {
            let t = crate::figure1::sqrt_budget(n);
            let base = SimSpec::new(n).init(InitialCondition::MBinsEqual { m });
            let bal = sweep_stats(
                &pool,
                &base.clone().adversary(AdversarySpec::Balancer, t),
                trials,
                seed ^ (m as u64) << 32 ^ n as u64,
                HitMetric::AlmostStable,
            );
            let rnd = sweep_stats(
                &pool,
                &base.clone().adversary(AdversarySpec::Random, t),
                trials,
                seed ^ (m as u64) << 33 ^ n as u64,
                HitMetric::AlmostStable,
            );
            if bal.mean().is_finite() {
                pts.push((n as f64, bal.mean()));
            }
            table.push_row(vec![
                m.to_string(),
                n.to_string(),
                t.to_string(),
                cell(bal.mean()),
                cell(bal.p95()),
                cell(rnd.mean()),
                format!("{:.0}", bal.hit_rate() * 100.0),
            ]);
        }
        if pts.len() >= 2 {
            let (ns_f, ts): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
            table.push_note(format!(
                "m = {m}: {}",
                describe_line(&fit_log_n(&ns_f, &ts), "ln n")
            ));
        }
    }
    table.push_note("paper: O(log n) for any constant m (Thm 2)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_m_small_run() {
        let t = constant_m_table(&[2, 3], &[128, 256], 4, 5, 2);
        assert_eq!(t.len(), 4);
        assert!(t.to_text().contains("m = 2"));
    }

    #[test]
    fn campaign_port_is_numerically_unchanged() {
        // Acceptance criterion: the sweep_stats port reproduces the
        // materialized `run_trials` + `from_results` numbers exactly.
        use crate::experiment::{run_trials, ConvergenceStats};
        let (ms, ns, trials, seed) = ([2u32, 3], [128usize, 256], 4u64, 5u64);
        let text = constant_m_table(&ms, &ns, trials, seed, 2).to_text();
        for m in ms {
            for n in ns {
                let t = crate::figure1::sqrt_budget(n);
                let base = SimSpec::new(n).init(InitialCondition::MBinsEqual { m });
                let legacy = ConvergenceStats::from_results(
                    &run_trials(
                        &base.clone().adversary(AdversarySpec::Balancer, t),
                        trials,
                        seed ^ (m as u64) << 32 ^ n as u64,
                        3,
                    ),
                    HitMetric::AlmostStable,
                );
                assert!(
                    text.contains(&cell(legacy.mean())),
                    "m={m} n={n}: materialized balancer mean {} missing from\n{text}",
                    cell(legacy.mean())
                );
            }
        }
    }
}

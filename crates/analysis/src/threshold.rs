//! E5: tightness of the √n adversary bound.
//!
//! The paper remarks after Theorem 2 that `T = Ω̃(√n)` defeats the median
//! rule: a balancing adversary can hold two equal camps in perfect balance
//! for polynomially long. We sweep `T = n^α` with the balancing adversary on
//! a tied two-bin instance and report how many trials stabilize within a
//! fixed multiple of `log n` rounds — the stabilization probability should
//! collapse as α crosses 1/2.

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_exp::sweep_stats;
use stabcon_par::ThreadPool;
use stabcon_util::table::Table;

use crate::experiment::{cell, HitMetric};

/// Sweep `T = n^α` for the given exponents; a trial "stabilizes" if it
/// reaches almost-stability within `round_cap_mult · ⌈log₂ n⌉` rounds.
/// Executes through the campaign scheduler (streamed per-point aggregates).
pub fn threshold_table(
    n: usize,
    alphas: &[f64],
    trials: u64,
    round_cap_mult: u64,
    seed: u64,
    threads: usize,
) -> Table {
    let lg = (n.max(2) as f64).log2().ceil() as u64;
    let cap = round_cap_mult * lg;
    let mut table = Table::new(
        format!("Adversary threshold (E5): balancer with T = n^α at n = {n}, cap = {cap} rounds"),
        &["alpha", "T", "stabilized%", "mean rounds", "p95 rounds"],
    );
    let pool = ThreadPool::new(threads);
    for &alpha in alphas {
        assert!((0.0..1.0).contains(&alpha), "alpha out of range");
        let t = (n as f64).powf(alpha).round().max(1.0) as u64;
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .adversary(AdversarySpec::Balancer, t)
            .max_rounds(cap);
        let stats = sweep_stats(&pool, &spec, trials, seed ^ t, HitMetric::AlmostStable);
        table.push_row(vec![
            format!("{alpha:.2}"),
            t.to_string(),
            format!("{:.0}", stats.hit_rate() * 100.0),
            cell(stats.mean()),
            cell(stats.p95()),
        ]);
    }
    table.push_note(
        "paper: stabilizes w.h.p. for T ≤ √n; Ω̃(√n) budget lets the balancer stall the drift",
    );
    table
}

/// E5 at populations far beyond dense reach: the same α sweep on the
/// histogram engine (`O(m²)` per round regardless of `n`), with the
/// histogram-level balancer. This shows the √n crossover *moving* with n —
/// the cleanest signature that the threshold really is a power of n.
pub fn threshold_hist_table(
    log2_ns: &[u32],
    alphas: &[f64],
    trials: u64,
    round_cap_mult: u64,
    seed: u64,
) -> Table {
    use stabcon_core::adversary::HistAdversarySpec;
    use stabcon_core::histogram::Histogram;
    use stabcon_core::runner::HistSpec;

    let mut table = Table::new(
        "Adversary threshold at scale (E5b): histogram engine, balancer with T = n^α",
        &["n", "alpha", "T", "stabilized%", "mean rounds"],
    );
    for &lg in log2_ns {
        let n = 1u64 << lg;
        let cap = round_cap_mult * lg as u64;
        for &alpha in alphas {
            assert!((0.0..1.0).contains(&alpha), "alpha out of range");
            let t = (n as f64).powf(alpha).round().max(1.0) as u64;
            let init = Histogram::new(&[(0, n / 2), (1, n - n / 2)]);
            let spec = HistSpec::new(init)
                .adversary(HistAdversarySpec::Balancer, t)
                .max_rounds(cap);
            let mut hits = 0u64;
            let mut total = 0.0f64;
            for tr in 0..trials {
                let r = spec.run_seeded(stabcon_util::rng::derive_seed(seed ^ n, tr));
                if let Some(h) = r.almost_stable_round {
                    hits += 1;
                    total += h as f64;
                }
            }
            table.push_row(vec![
                format!("2^{lg}"),
                format!("{alpha:.2}"),
                t.to_string(),
                format!("{:.0}", hits as f64 / trials as f64 * 100.0),
                if hits > 0 {
                    format!("{:.1}", total / hits as f64)
                } else {
                    "—".into()
                },
            ]);
        }
    }
    table.push_note(
        "same sweep as E5 but at populations the dense engine cannot touch (up to 2^40)",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_sweep_runs_and_orders() {
        // Tiny instance: low alpha should stabilize at least as often as
        // the (over-)budgeted balancer.
        let t = threshold_table(256, &[0.2, 0.9], 6, 30, 7, 2);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.contains("alpha"), "{text}");
    }

    #[test]
    #[should_panic]
    fn alpha_must_be_fraction() {
        threshold_table(64, &[1.5], 1, 10, 1, 1);
    }

    #[test]
    fn campaign_port_is_numerically_unchanged() {
        use crate::experiment::{run_trials, ConvergenceStats};
        let (n, alphas, trials, cap_mult, seed) = (256usize, [0.2f64, 0.9], 6u64, 30u64, 7u64);
        let text = threshold_table(n, &alphas, trials, cap_mult, seed, 2).to_text();
        let cap = cap_mult * (n.max(2) as f64).log2().ceil() as u64;
        for alpha in alphas {
            let t = (n as f64).powf(alpha).round().max(1.0) as u64;
            let spec = SimSpec::new(n)
                .init(InitialCondition::TwoBins { left: n / 2 })
                .adversary(AdversarySpec::Balancer, t)
                .max_rounds(cap);
            let legacy = ConvergenceStats::from_results(
                &run_trials(&spec, trials, seed ^ t, 3),
                HitMetric::AlmostStable,
            );
            assert!(
                text.contains(&cell(legacy.mean())),
                "alpha={alpha}: materialized mean {} missing from\n{text}",
                cell(legacy.mean())
            );
            assert!(
                text.contains(&format!("{:.0}", legacy.hit_rate() * 100.0)),
                "alpha={alpha}: materialized hit rate missing from\n{text}"
            );
        }
    }

    #[test]
    fn hist_threshold_low_alpha_stabilizes() {
        let t = threshold_hist_table(&[20], &[0.25], 4, 40, 3);
        let text = t.to_text();
        assert!(
            text.contains("100"),
            "α=0.25 at n=2^20 must stabilize:\n{text}"
        );
    }

    #[test]
    fn hist_threshold_high_alpha_stalls() {
        let t = threshold_hist_table(&[20], &[0.75], 3, 40, 4);
        let text = t.to_text();
        assert!(
            text.contains(" 0 "),
            "α=0.75 at n=2^20 must stall the balancer sweep:\n{text}"
        );
    }
}

//! Ablations beyond the paper's headline results:
//!
//! * **power of k choices**: median over own value + k samples, k ∈ 1..=6 —
//!   k = 2 is the paper's rule; higher k buys little, k = 1 is qualitatively
//!   slower (no majority information);
//! * **rule comparison** on many initial values: median vs 3-majority vs
//!   voter (single choice).

use stabcon_analysis::experiment::{cell, HitMetric};
use stabcon_bench::scaled_trials;
use stabcon_core::init::InitialCondition;
use stabcon_core::protocol::ProtocolSpec;
use stabcon_core::runner::SimSpec;
use stabcon_exp::sweep_stats;
use stabcon_par::ThreadPool;
use stabcon_util::table::Table;

fn main() {
    let pool = ThreadPool::new(stabcon_par::default_threads());
    let trials = scaled_trials(30, 5);

    // --- Ablation 1: k choices ---
    let n = 1 << 12;
    eprintln!("[ablation k] n = {n} × {trials} trials…");
    let mut table = Table::new(
        format!("Power of k choices: rounds to consensus at n = {n}"),
        &[
            "k",
            "multiset",
            "two-bins mean",
            "two-bins p95",
            "uniform(9) mean",
            "hit%",
        ],
    );
    for k in 1..=6usize {
        // Odd k ⇒ even multiset size (own + k samples): the lower-median is
        // biased toward smaller values (k = 1 degenerates to the min rule),
        // which converges fast but for the wrong reason. Even k is the
        // honest "power of k choices" family (k = 2 = the paper's rule).
        let multiset = if k % 2 == 0 {
            "odd (unbiased)"
        } else {
            "even (low-biased)"
        };
        let two = sweep_stats(
            &pool,
            &SimSpec::new(n)
                .init(InitialCondition::TwoBins { left: n / 2 })
                .protocol(ProtocolSpec::KMedian(k)),
            trials,
            0xAB1 ^ k as u64,
            HitMetric::Consensus,
        );
        let uni = sweep_stats(
            &pool,
            &SimSpec::new(n)
                .init(InitialCondition::UniformRandom { m: 9 })
                .protocol(ProtocolSpec::KMedian(k)),
            trials,
            0xAB2 ^ k as u64,
            HitMetric::Consensus,
        );
        table.push_row(vec![
            k.to_string(),
            multiset.into(),
            cell(two.mean()),
            cell(two.p95()),
            cell(uni.mean()),
            format!("{:.0}", two.hit_rate().min(uni.hit_rate()) * 100.0),
        ]);
    }
    table.push_note("compare even k only (odd multiset ⇒ unbiased median): k = 2 is the paper's rule; larger k converges faster with diminishing returns");
    table.push_note("odd k rows take the lower middle of an even multiset — a min-rule-flavoured bias that \"wins\" quickly but inherits the min rule's fragility (see E6)");
    println!("{}", table.to_text());

    // --- Ablation 2: rule comparison ---
    eprintln!("[ablation rules] …");
    let mut table = Table::new(
        format!("Rule comparison from all-distinct values at n = {n}"),
        &["rule", "mean rounds", "p95", "hit%", "validity%"],
    );
    for p in [
        ProtocolSpec::Median,
        ProtocolSpec::Majority,
        ProtocolSpec::Voter,
        ProtocolSpec::Min,
    ] {
        let spec = SimSpec::new(n)
            .init(InitialCondition::AllDistinct)
            .protocol(p)
            .max_rounds(3000);
        let stats = sweep_stats(
            &pool,
            &spec,
            trials.min(15),
            0xAB3 ^ p.label().len() as u64,
            HitMetric::Consensus,
        );
        table.push_row(vec![
            p.label(),
            cell(stats.mean()),
            cell(stats.p95()),
            format!("{:.0}", stats.hit_rate() * 100.0),
            format!("{:.0}", stats.validity_rate * 100.0),
        ]);
    }
    table.push_note("3-majority keeps its own value on disagreeing samples — slower than the median on ordered domains with many values");
    print!("{}", table.to_text());
}

//! E5 — tightness of the √n bound: the balancing adversary with budget
//! T = n^α. Stabilization probability should collapse as α crosses ≈ 1/2.

use stabcon_analysis::threshold::{threshold_hist_table, threshold_table};
use stabcon_bench::scaled_trials;

fn main() {
    let n = 1 << 14;
    let alphas = [0.30, 0.40, 0.45, 0.50, 0.55, 0.60, 0.70];
    let trials = scaled_trials(30, 6);
    eprintln!("[E5] n = {n}, α sweep × {trials} trials…");
    let table = threshold_table(
        n,
        &alphas,
        trials,
        60,
        0xE5AD,
        stabcon_par::default_threads(),
    );
    println!("{}", table.to_text());

    // The same sweep at populations only the histogram engine reaches.
    let trials = scaled_trials(10, 3);
    eprintln!("[E5b] histogram engine, n ∈ {{2^20, 2^30, 2^40}} × {trials} trials…");
    let table = threshold_hist_table(&[20, 30, 40], &alphas, trials, 60, 0xE5B0);
    print!("{}", table.to_text());
}

//! E7 — the §1.2 mean-rule comparison: the mean rule converges to a number
//! nobody proposed (validity failure); the median rule never leaves the
//! initial value set.

use stabcon_analysis::baselines::mean_rule_table;
use stabcon_bench::scaled_trials;

fn main() {
    let n = 1 << 12;
    let trials = scaled_trials(30, 6);
    eprintln!("[E7] n = {n} × {trials} trials…");
    let table = mean_rule_table(n, trials, 0xE73A, stabcon_par::default_threads());
    print!("{}", table.to_text());
}

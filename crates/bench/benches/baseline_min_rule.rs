//! E6 — the §1.1 minimum-rule counterexample: hide-and-revive adversary.
//! The min rule's settlement time tracks the revive delay (unbounded); the
//! median rule settles in O(log n) regardless.

use stabcon_analysis::baselines::min_rule_table;
use stabcon_bench::scaled_trials;

fn main() {
    let n = 1 << 11;
    let delays = [50u64, 200, 800, 2000];
    let trials = scaled_trials(15, 4);
    eprintln!("[E6] n = {n}, delays {delays:?} × {trials} trials…");
    let table = min_rule_table(n, &delays, trials, 0xE63E, stabcon_par::default_threads());
    print!("{}", table.to_text());
}

//! E10/E11 — the two-bin drift lemmas: one-step growth factors (Lemmas 12 &
//! 15) and the O(log log n) doubling regime (Lemma 11).

use stabcon_analysis::drift::{doubling_regime_table, one_step_drift_table};
use stabcon_bench::scaled_trials;

fn main() {
    let threads = stabcon_par::default_threads();
    let trials = scaled_trials(400, 50);
    eprintln!("[E10] one-step drift × {trials} trials…");
    let t1 = one_step_drift_table(
        1 << 14,
        &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
        trials,
        0xE10,
        threads,
    );
    println!("{}", t1.to_text());

    let trials = scaled_trials(60, 10);
    eprintln!("[E11] doubling regime × {trials} trials…");
    let t2 = doubling_regime_table(
        &[1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18],
        trials,
        0xE11,
        threads,
    );
    print!("{}", t2.to_text());
}

//! P1 — engine performance (criterion): cost of one median-rule round under
//! each engine, and the parallel speedup of the dense engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stabcon_core::engine::{dense, hist, MessageConfig, MessageEngine};
use stabcon_core::histogram::Histogram;
use stabcon_core::protocol::MedianRule;
use stabcon_core::value::Value;
use stabcon_util::rng::Xoshiro256pp;

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_round");
    group.sample_size(10);
    for exp in [14u32, 16, 18] {
        let n = 1usize << exp;
        let old: Vec<Value> = (0..n as u32).map(|i| i % 64).collect();
        let mut new = vec![0 as Value; n];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| dense::step_seq(&old, &mut new, &MedianRule, 42, 1));
        });
        let threads = stabcon_par::default_threads();
        group.bench_with_input(BenchmarkId::new(format!("par{threads}"), n), &n, |b, _| {
            b.iter(|| dense::step_par(threads, &old, &mut new, &MedianRule, 42, 1));
        });
    }
    group.finish();
}

fn bench_hist(c: &mut Criterion) {
    let mut group = c.benchmark_group("hist_round");
    group.sample_size(10);
    for m in [16u32, 256, 1024] {
        // 2^40 balls spread over m bins: population size is irrelevant to
        // the engine's cost.
        let pairs: Vec<(Value, u64)> = (0..m).map(|v| (v, (1u64 << 40) / m as u64)).collect();
        let h = Histogram::new(&pairs);
        let mut rng = Xoshiro256pp::seed(7);
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| hist::step(&h, &mut rng));
        });
    }
    group.finish();
}

fn bench_message(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_round");
    group.sample_size(10);
    for exp in [10u32, 12] {
        let n = 1usize << exp;
        let old: Vec<Value> = (0..n as u32).map(|i| i % 2).collect();
        let mut new = vec![0 as Value; n];
        let mut engine = MessageEngine::new(n, MessageConfig::default(), 5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            let mut round = 0u64;
            b.iter(|| {
                engine.step(&old, &mut new, &MedianRule, 5, round);
                round += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense, bench_hist, bench_message);
criterion_main!(benches);

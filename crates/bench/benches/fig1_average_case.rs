//! E3 — Figure 1 row 3 / Theorems 4 & 21: average case over m bins.
//! The table interleaves odd and even m — the parity effect should be
//! visible row by row: odd m fast (O(log m + log log n)), even m pinned to
//! the two-bin Θ(log n) time.

use stabcon_analysis::figure1::average_case_table;
use stabcon_bench::scaled_trials;

fn main() {
    let n = 1 << 14;
    let ms: Vec<u32> = (2..=24).collect();
    let trials = scaled_trials(50, 8);
    eprintln!("[E3] n = {n}, m ∈ 2..=24 × {trials} trials…");
    let table = average_case_table(n, &ms, trials, 0xE3AC, stabcon_par::default_threads());
    print!("{}", table.to_text());
}

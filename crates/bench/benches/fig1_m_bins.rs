//! E2 — Figure 1 row 2 / Theorems 1 & 20: worst-case m bins (all-distinct,
//! m = n). Expect O(log n) without adversary; the adversarial column carries
//! the extra log m·log log n term.

use stabcon_analysis::figure1::{m_bins_table, SweepCfg};
use stabcon_bench::scaled_trials;

fn main() {
    let cfg = SweepCfg {
        ns: vec![1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13],
        trials: scaled_trials(40, 6),
        seed: 0xE23B,
        threads: stabcon_par::default_threads(),
    };
    eprintln!("[E2] {} sizes × {} trials…", cfg.ns.len(), cfg.trials);
    let table = m_bins_table(&cfg);
    print!("{}", table.to_text());
}

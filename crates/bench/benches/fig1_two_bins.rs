//! E1 — Figure 1 row 1 / Theorem 10: worst-case two bins, with and without
//! the √n-bounded balancing adversary. Expect both columns ≈ a + b·ln n.

use stabcon_analysis::figure1::{two_bins_table, SweepCfg};
use stabcon_bench::scaled_trials;

fn main() {
    let cfg = SweepCfg {
        ns: vec![1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14],
        trials: scaled_trials(60, 8),
        seed: 0xE12B,
        threads: stabcon_par::default_threads(),
    };
    eprintln!("[E1] {} sizes × {} trials…", cfg.ns.len(), cfg.trials);
    let table = two_bins_table(&cfg);
    print!("{}", table.to_text());
}

//! E9 — Lemma 17: the fineness partial order, verified by exact coupling.
//! Running a configuration and its monotone coarsening with identical
//! randomness must keep them related by `f` forever, and the finer run must
//! never finish first.

use stabcon_core::fineness::verify_coupling;
use stabcon_core::value::Value;
use stabcon_util::table::Table;

fn main() {
    let n = 4096usize;
    let trials = 20u64;
    let mut table = Table::new(
        format!("Fineness coupling (E9, Lemma 17): n = {n}, {trials} coupled runs each"),
        &[
            "map",
            "invariant held",
            "coarse ≤ fine (rounds)",
            "mean fine",
            "mean coarse",
        ],
    );

    type MapFn = fn(Value) -> Value;
    let maps: Vec<(&str, MapFn)> = vec![
        ("v ↦ v/2 (halve 8 values)", |v| v / 2),
        ("v ↦ v/4", |v| v / 4),
        ("v ↦ min(v, 3) (clamp)", |v| v.min(3)),
        ("v ↦ c (constant)", |_| 1),
    ];

    for (name, f) in maps {
        let mut all_held = true;
        let mut all_ordered = true;
        let mut fine_sum = 0.0;
        let mut coarse_sum = 0.0;
        let mut hits = 0u64;
        for t in 0..trials {
            let fine0: Vec<Value> = (0..n as u32).map(|i| i % 8).collect();
            let report = verify_coupling(&fine0, &f, 5000, 0xE917 + t);
            all_held &= report.invariant_held;
            if let (Some(fc), Some(cc)) = (report.fine_consensus, report.coarse_consensus) {
                all_ordered &= cc <= fc;
                fine_sum += fc as f64;
                coarse_sum += cc as f64;
                hits += 1;
            }
        }
        table.push_row(vec![
            name.into(),
            if all_held { "yes" } else { "NO" }.into(),
            if all_ordered { "yes" } else { "NO" }.into(),
            format!("{:.1}", fine_sum / hits.max(1) as f64),
            format!("{:.1}", coarse_sum / hits.max(1) as f64),
        ]);
    }
    table.push_note("Lemma 17: median commutes with monotone maps, so the coupling is exact — pointwise in the probability space");
    print!("{}", table.to_text());
}

//! E8 — Equation (1): measured gravity vs the exact law vs 6(n−i)i/n².
//! Every |z| column entry should be O(1); the curve peaks at ≈ 3/2 at the
//! median ball.

use stabcon_analysis::gravity_exp::gravity_table;
use stabcon_bench::scaled_trials;

fn main() {
    for n in [256u64, 1024, 4096] {
        let positions: Vec<u64> = (1..=8).map(|k| (n * k / 8).max(1)).collect();
        let trials = scaled_trials(400, 50);
        eprintln!("[E8] n = {n} × {trials} trials…");
        let table = gravity_table(n, &positions, trials, 0xE864 ^ n);
        println!("{}", table.to_text());
    }
}

//! The paper's §6 open problem, measured: does the coordinate-wise median
//! rule converge in O(log n) in higher dimensions?
//!
//! We cannot prove it (neither could the authors); we can measure the shape.
//! For D ∈ {1, 2, 3} and a product-grid initial condition, the mean
//! convergence time is fitted against ln n.

use stabcon_bench::scaled_trials;
use stabcon_core::ndim::{run_nd, Point};
use stabcon_util::rng::derive_seed;
use stabcon_util::stats::{fit_line, RunningStats};
use stabcon_util::table::{fmt_f64, Table};

fn grid_init<const D: usize>(n: usize, side: u32) -> Vec<Point<D>> {
    (0..n)
        .map(|i| {
            let mut p = [0u32; D];
            let mut x = i as u32;
            for slot in p.iter_mut() {
                *slot = x % side;
                x /= side;
            }
            p
        })
        .collect()
}

fn sweep<const D: usize>(ns: &[usize], trials: u64, seed: u64, table: &mut Table) {
    let mut pts = Vec::new();
    let mut invented = 0u64;
    let mut total_runs = 0u64;
    for &n in ns {
        let init = grid_init::<D>(n, 3);
        let mut stats = RunningStats::new();
        for t in 0..trials {
            let r = run_nd(&init, 5000, derive_seed(seed ^ n as u64, t));
            if let Some(c) = r.consensus_round {
                stats.push(c as f64);
            }
            if !r.winner_was_initial {
                invented += 1;
            }
            total_runs += 1;
            assert!(r.winner_coordinate_valid, "coordinate validity violated");
        }
        pts.push((n as f64, stats.mean()));
        table.push_row(vec![
            format!("{D}"),
            n.to_string(),
            fmt_f64(stats.mean(), 2),
            fmt_f64(stats.max(), 0),
            format!("{}", stats.count()),
        ]);
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = pts.iter().map(|&(n, t)| (n.ln(), t)).unzip();
    let fit = fit_line(&xs, &ys);
    table.push_note(format!(
        "D = {D}: T ≈ {:.2} + {:.2}·ln n (R² = {:.3}); winner was a non-initial point in {}/{} runs",
        fit.intercept, fit.slope, fit.r2, invented, total_runs
    ));
}

fn main() {
    let ns = [512usize, 1024, 2048, 4096, 8192];
    let trials = scaled_trials(25, 5);
    eprintln!("[higher-dims] D ∈ 1..=3, n ∈ {ns:?} × {trials} trials…");
    let mut table = Table::new(
        "Higher dimensions (§6 open problem): coordinate-wise median rule, 3^D grid of opinions",
        &["D", "n", "mean rounds", "max", "converged"],
    );
    sweep::<1>(&ns, trials, 0xD1, &mut table);
    sweep::<2>(&ns, trials, 0xD2, &mut table);
    sweep::<3>(&ns, trials, 0xD3, &mut table);
    table.push_note("empirically still O(log n)-shaped in every dimension — evidence for the paper's conjecture, not a proof");
    print!("{}", table.to_text());
}

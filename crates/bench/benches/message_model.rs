//! E13 — the communication model: median rule under real request/response
//! rounds with logarithmic inbox caps and (adversarial) drop selection.
//! Convergence should stay O(log n), degrading gracefully as the cap
//! tightens.

// This bench still materializes results on purpose: it aggregates
// `RunResult::net_totals` (request/drop counters), which the campaign
// cells don't carry yet — the ROADMAP's "message-model campaigns" item.
use stabcon_analysis::experiment::{cell, run_trials, ConvergenceStats, HitMetric};
use stabcon_bench::scaled_trials;
use stabcon_core::engine::{DropSpec, EngineSpec, MessageConfig, OnMissing};
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_util::table::Table;

fn main() {
    let n = 1 << 12;
    let trials = scaled_trials(25, 5);
    let threads = stabcon_par::default_threads();
    eprintln!("[E13] n = {n} × {trials} trials…");

    let mut table = Table::new(
        format!("Message model (E13): two bins at n = {n}, cap = c·⌈log₂ n⌉"),
        &[
            "engine",
            "cap c",
            "drop policy",
            "mean rounds",
            "p95",
            "hit%",
            "drop rate %",
        ],
    );

    // Idealized baseline.
    let dense = SimSpec::new(n).init(InitialCondition::TwoBins { left: n / 2 });
    let stats = ConvergenceStats::from_results(
        &run_trials(&dense, trials, 0xE13, threads),
        HitMetric::Consensus,
    );
    table.push_row(vec![
        "dense (ideal)".into(),
        "—".into(),
        "—".into(),
        cell(stats.mean()),
        cell(stats.p95()),
        format!("{:.0}", stats.hit_rate() * 100.0),
        "0.00".into(),
    ]);

    let drops = [
        DropSpec::Random,
        DropSpec::KeepFirst,
        DropSpec::StarveFirstK { k: n / 16 },
    ];
    for cap in [1usize, 2, 3] {
        for drop in drops {
            let cfg = MessageConfig {
                cap_mult: cap,
                drop,
                on_missing: OnMissing::KeepOwn,
                ..MessageConfig::default()
            };
            let spec = SimSpec::new(n)
                .init(InitialCondition::TwoBins { left: n / 2 })
                .engine(EngineSpec::Message(cfg));
            let results = run_trials(&spec, trials, 0xE13 ^ (cap as u64) << 8, threads);
            let stats = ConvergenceStats::from_results(&results, HitMetric::Consensus);
            let (dropped, requests) = results
                .iter()
                .filter_map(|r| r.net_totals)
                .fold((0u64, 0u64), |(d, q), m| (d + m.dropped, q + m.requests));
            table.push_row(vec![
                "message".into(),
                cap.to_string(),
                drop.label(),
                cell(stats.mean()),
                cell(stats.p95()),
                format!("{:.0}", stats.hit_rate() * 100.0),
                format!("{:.2}", dropped as f64 / requests.max(1) as f64 * 100.0),
            ]);
        }
    }
    table.push_note("paper model (§1.1): a process answers only Θ(log n) requests per round, the rest are dropped — possibly selected by an adversary");
    table.push_note("the Θ(log n) cap sits above the max inbox load w.h.p. — drop rate ≈ 0 is the *correct* physics of the model");
    println!("{}", table.to_text());

    // Stress: sub-logarithmic absolute caps, where drops actually bite.
    stress_fixed_caps(n, trials);
}

/// Drive the message engine manually with absolute inbox caps far below
/// log₂ n: the regime the model's cap rule protects against.
fn stress_fixed_caps(n: usize, trials: u64) {
    use stabcon_core::engine::MessageEngine;
    use stabcon_core::protocol::MedianRule;
    use stabcon_core::value::Value;
    use stabcon_util::rng::derive_seed;
    use stabcon_util::stats::RunningStats;

    let mut table = Table::new(
        format!("Message model stress: absolute inbox caps at n = {n}"),
        &[
            "cap (absolute)",
            "mean rounds",
            "max",
            "hit%",
            "drop rate %",
        ],
    );
    for cap in [1usize, 2, 3, 6] {
        let mut stats = RunningStats::new();
        let mut hits = 0u64;
        let mut dropped = 0u64;
        let mut requests = 0u64;
        for t in 0..trials {
            let seed = derive_seed(0xE13F ^ cap as u64, t);
            let mut engine = MessageEngine::new(
                n,
                MessageConfig {
                    cap_mult: 1,
                    drop: DropSpec::Random,
                    on_missing: OnMissing::KeepOwn,
                    ..MessageConfig::default()
                },
                seed,
            )
            .with_inbox_cap(cap);
            let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
            let mut scratch = vec![0 as Value; n];
            let mut converged = None;
            for round in 0..4000u64 {
                if state.iter().all(|&v| v == state[0]) {
                    converged = Some(round);
                    break;
                }
                engine.step(&state, &mut scratch, &MedianRule, seed, round);
                std::mem::swap(&mut state, &mut scratch);
            }
            if let Some(r) = converged {
                stats.push(r as f64);
                hits += 1;
            }
            dropped += engine.totals().dropped;
            requests += engine.totals().requests;
        }
        table.push_row(vec![
            cap.to_string(),
            if stats.count() > 0 {
                format!("{:.1}", stats.mean())
            } else {
                "—".into()
            },
            if stats.count() > 0 {
                format!("{:.0}", stats.max())
            } else {
                "—".into()
            },
            format!("{:.0}", hits as f64 / trials as f64 * 100.0),
            format!("{:.2}", dropped as f64 / requests.max(1) as f64 * 100.0),
        ]);
    }
    table.push_note("even with a cap of 1 answered request per round the median rule converges — degraded samples fall back to the ball's own value");
    print!("{}", table.to_text());
}

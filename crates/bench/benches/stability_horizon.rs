//! E12 — almost stability is *sustained*: post-hit disagreement stays O(T)
//! for a long horizon under continuous attack.

use stabcon_analysis::stability::stability_horizon_table;
use stabcon_bench::scaled_trials;
use stabcon_core::adversary::AdversarySpec;

fn main() {
    let n = 1 << 13;
    let advs = [
        AdversarySpec::Random,
        AdversarySpec::Balancer,
        AdversarySpec::MedianPusher,
        AdversarySpec::Stubborn,
    ];
    let trials = scaled_trials(20, 4);
    eprintln!("[E12] n = {n}, 3 adversaries × {trials} trials…");
    let table =
        stability_horizon_table(n, &advs, trials, 60, 0xE12, stabcon_par::default_threads());
    print!("{}", table.to_text());
}

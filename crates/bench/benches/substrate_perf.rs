//! Substrate micro-benchmarks (criterion): the primitives the engines are
//! built on. These pin the cost model the DESIGN.md discussion relies on
//! (counter-RNG word ≈ a few ns, binomial draw O(1), alias sample O(1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stabcon_net::FeistelPerm;
use stabcon_util::dist::{AliasTable, Binomial};
use stabcon_util::rng::{gen_index, CounterRng, Xoshiro256pp};

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("xoshiro256pp_next", |b| {
        let mut rng = Xoshiro256pp::seed(1);
        b.iter(|| rng.next());
    });
    group.bench_function("counter_rng_word", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            CounterRng::word(42, 7, k)
        });
    });
    group.bench_function("gen_index_1e6", |b| {
        let mut rng = Xoshiro256pp::seed(2);
        b.iter(|| gen_index(&mut rng, 1_000_000));
    });
    group.finish();
}

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial");
    group.throughput(Throughput::Elements(1));
    for (label, n, p) in [
        ("binv_np5", 1000u64, 0.005),
        ("btrs_np40", 100, 0.4),
        ("btrs_huge_n", 1 << 40, 0.3),
    ] {
        let dist = Binomial::new(n, p);
        group.bench_with_input(BenchmarkId::from_parameter(label), &dist, |b, d| {
            let mut rng = Xoshiro256pp::seed(3);
            b.iter(|| d.sample(&mut rng));
        });
    }
    group.finish();
}

fn bench_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias");
    for m in [16usize, 1024] {
        let weights: Vec<f64> = (1..=m).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("build", m), &weights, |b, w| {
            b.iter(|| AliasTable::new(w));
        });
        let table = AliasTable::new(&weights);
        group.bench_with_input(BenchmarkId::new("sample", m), &table, |b, t| {
            let mut rng = Xoshiro256pp::seed(4);
            b.iter(|| t.sample(&mut rng));
        });
    }
    group.finish();
}

fn bench_feistel(c: &mut Criterion) {
    let mut group = c.benchmark_group("feistel");
    group.throughput(Throughput::Elements(1));
    let perm = FeistelPerm::new(1_000_000, 9);
    group.bench_function("apply_1e6", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1_000_000;
            perm.apply(i)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rng,
    bench_binomial,
    bench_alias,
    bench_feistel
);
criterion_main!(benches);

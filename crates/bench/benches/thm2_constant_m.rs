//! E4 — Theorem 2: constant number of initial values under √n-bounded
//! adversaries. Expect O(log n) for every fixed m.

use stabcon_analysis::theorems::constant_m_table;
use stabcon_bench::scaled_trials;

fn main() {
    let ms = [2u32, 3, 4, 8];
    let ns = [1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13];
    let trials = scaled_trials(40, 6);
    eprintln!("[E4] m ∈ {ms:?} × n ∈ {ns:?} × {trials} trials…");
    let table = constant_m_table(&ms, &ns, trials, 0xE4C0, stabcon_par::default_threads());
    print!("{}", table.to_text());
}

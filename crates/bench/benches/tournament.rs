//! Protocol × adversary tournament plus the α-asynchrony ablation —
//! the robustness studies the paper's conclusion asks for.

use stabcon_analysis::robustness::{asynchrony_table, tournament_table};
use stabcon_bench::scaled_trials;

fn main() {
    let n = 1 << 12;
    let trials = scaled_trials(20, 4);
    let threads = stabcon_par::default_threads();
    eprintln!("[tournament] n = {n} × {trials} trials…");
    println!("{}", tournament_table(n, trials, 0x70E1, threads).to_text());

    eprintln!("[asynchrony] …");
    let alphas = [1.0, 0.5, 0.25, 0.1];
    print!(
        "{}",
        asynchrony_table(n, &alphas, trials, 0x70E2, threads).to_text()
    );
}

//! Bench-regression gate: compare a fresh `BENCH_engine.json` against the
//! committed baseline and fail if a gated throughput metric regressed by
//! more than the tolerance.
//!
//! ```text
//! bench_gate BASELINE.json FRESH.json [--max-regression 0.25]
//! ```
//!
//! Gated metrics:
//!
//! * `campaign.trials_per_sec` — full-trial throughput through the
//!   `stabcon-exp` scheduler (what bounds results-table reproduction);
//! * `rounds_per_sec` entries with `engine == "dense-seq"` (the
//!   monomorphized dense hot path), one metric per population size;
//! * `rounds_per_sec` entries with `engine == "dense-seq-step-only"` —
//!   the batched phase-split kernel in isolation (no observables), which
//!   is where the dense-engine perf work lands first;
//! * `rounds_per_sec` entries with `engine == "message-seq"` — full trials
//!   through the request/response message engine on a clean network, the
//!   path the fault-injection scenario layer sits on.
//!
//! The fabric's `merge.cells_per_sec` entry (shard-store stitching
//! throughput) is printed as an **informational** row but never gated:
//! merge time is I/O-shaped and does not bound campaign reproduction.
//!
//! **Core-count awareness.** Multi-worker entries (currently the 8-thread
//! campaign number) are not gated when either file *reports*
//! `available_parallelism` below 8: an 8-worker pool on a smaller box
//! measures scheduler churn, not scaling, and comparing such numbers
//! across machines gates noise. Such entries still print a per-entry
//! `skipped` verdict row naming both core counts — every gated metric
//! gets an explicit ok/REGRESSED/skipped/MISSING line, nothing vanishes
//! silently. A file without the field (older baselines) is treated as
//! unknown and gated as before.
//!
//! **Machine normalization.** The baseline is a *committed* file, so the
//! fresh run usually executes on a different machine (a CI runner vs the
//! laptop that produced the baseline) — comparing absolute throughput
//! would gate machine speed, not the code. Each file therefore carries its
//! own calibration: the `dense-seq-dyn-step-only` entry at n = 10⁴, the
//! seed repository's legacy round loop kept verbatim precisely as an
//! optimization-free yardstick. Every gated metric is divided by its own
//! file's calibration value before the ratio is taken, so the gate
//! measures *our code relative to the same machine's untouched baseline
//! path* (a falling ratio means the scheduler or hot path got slower
//! relative to the hardware, wherever the bench ran). Pass `--absolute`
//! to skip normalization when both files come from the same machine.
//!
//! The default 25% tolerance absorbs shared-CI-runner noise on top of
//! that; a genuine scheduler or hot-path regression lands far beyond it.
//! The comparison table is printed either way. A metric missing from the
//! *baseline* is reported and skipped (older baselines predate some
//! metrics); a metric missing from the *fresh* file fails the gate — the
//! bench stopped measuring something we gate on.

use std::process::ExitCode;

/// The machine-speed yardstick: the verbatim legacy (dyn-dispatch,
/// per-ball-RNG) step loop at n = 10⁴, which no PR optimizes.
const CALIBRATION_ENGINE: &str = "dense-seq-dyn-step-only";
const CALIBRATION_N: f64 = 10_000.0;

/// Scan `text` from `from`, returning the f64 right after the next
/// occurrence of `"<key>":` (tolerating whitespace), plus the position
/// after the match.
fn number_after(text: &str, from: usize, key: &str) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\"");
    let rel = text[from..].find(&pat)?;
    let mut pos = from + rel + pat.len();
    let bytes = text.as_bytes();
    while bytes
        .get(pos)
        .is_some_and(|b| b.is_ascii_whitespace() || *b == b':')
    {
        pos += 1;
    }
    let start = pos;
    while bytes
        .get(pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(*b, b'.' | b'-' | b'+' | b'e' | b'E'))
    {
        pos += 1;
    }
    text[start..pos].parse().ok().map(|v| (v, pos))
}

/// `rounds_per_sec` entries for one engine name, as `(n, value)` pairs.
fn engine_entries(text: &str, engine: &str) -> Vec<(f64, f64)> {
    let pat = format!("\"engine\": \"{engine}\"");
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = text[from..].find(&pat) {
        let at = from + rel;
        let Some((n, after_n)) = number_after(text, at, "n") else {
            break;
        };
        if let Some((rps, _)) = number_after(text, after_n, "rounds_per_sec") {
            out.push((n, rps));
        }
        from = after_n;
    }
    out
}

/// The file's machine-speed calibration value, if present.
fn calibration(text: &str) -> Option<f64> {
    engine_entries(text, CALIBRATION_ENGINE)
        .into_iter()
        .find(|&(n, _)| n == CALIBRATION_N)
        .map(|(_, v)| v)
        .filter(|v| *v > 0.0)
}

/// Entries of the `campaigns` sweep array, as `(n, threads, trials_per_sec)`
/// triples. Bounded to the array's bracket span so the scan cannot wander
/// into later top-level objects.
fn campaign_entries(text: &str) -> Vec<(f64, f64, f64)> {
    let Some(at) = text.find("\"campaigns\"") else {
        return Vec::new();
    };
    let end = text[at..]
        .find(']')
        .map(|rel| at + rel)
        .unwrap_or(text.len());
    let slice = &text[..end];
    let mut out = Vec::new();
    let mut from = at;
    while let Some((n, after_n)) = number_after(slice, from, "n") {
        let Some((threads, after_t)) = number_after(slice, after_n, "threads") else {
            break;
        };
        let Some((tps, after_v)) = number_after(slice, after_t, "trials_per_sec") else {
            break;
        };
        out.push((n, threads, tps));
        from = after_v;
    }
    out
}

/// The multi-worker metric that is only meaningful on ≥ 8-core machines.
const THREAD8_METRIC: &str = "campaign trials/sec @ 8 threads";

/// The runner core count recorded by `engine_bench`, if present.
fn available_parallelism(text: &str) -> Option<f64> {
    number_after(text, 0, "available_parallelism").map(|(v, _)| v)
}

/// The fabric merge throughput (`merge.cells_per_sec`), if present.
/// Informational only — printed alongside the gate table, never gated:
/// merge time is I/O-shaped and does not bound campaign reproduction.
fn merge_cells_per_sec(text: &str) -> Option<f64> {
    let at = text.find("\"merge\"")?;
    number_after(text, at, "cells_per_sec").map(|(v, _)| v)
}

/// Every gated metric in one bench file, as `(name, value)` pairs.
/// The exact engine-name match excludes "dense-seq-dyn" etc.
fn gated_metrics(text: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = engine_entries(text, "dense-seq")
        .into_iter()
        .map(|(n, rps)| (format!("dense-seq rounds/sec @ n={n}"), rps))
        .collect();
    out.extend(
        engine_entries(text, "dense-seq-step-only")
            .into_iter()
            .map(|(n, rps)| (format!("dense-seq-step-only rounds/sec @ n={n}"), rps)),
    );
    out.extend(
        engine_entries(text, "message-seq")
            .into_iter()
            .map(|(n, rps)| (format!("message-seq rounds/sec @ n={n}"), rps)),
    );
    // Campaign scheduler throughput (1 thread, n = 10⁴).
    if let Some(at) = text.find("\"campaign\"") {
        if let Some((tps, _)) = number_after(text, at, "trials_per_sec") {
            out.push(("campaign trials/sec".into(), tps));
        }
    }
    // Multi-thread campaign throughput (8 workers, n = 10⁴) from the
    // `campaigns` sweep — gated with the same calibration normalization.
    if let Some(&(_, _, tps)) = campaign_entries(text)
        .iter()
        .find(|&&(n, threads, _)| n == 10_000.0 && threads == 8.0)
    {
        out.push((THREAD8_METRIC.into(), tps));
    }
    out
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.25f64;
    let mut absolute = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regression" => {
                let Some(v) = it.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--max-regression: expected a fraction like 0.25");
                    return ExitCode::FAILURE;
                };
                max_regression = v;
            }
            "--absolute" => absolute = true,
            _ => paths.push(arg.clone()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_gate BASELINE.json FRESH.json [--max-regression 0.25] [--absolute]"
        );
        return ExitCode::FAILURE;
    };
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("{p}: {e}");
            None
        }
    };
    let (Some(baseline), Some(fresh)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::FAILURE;
    };
    let base_metrics = gated_metrics(&baseline);
    let fresh_metrics = gated_metrics(&fresh);
    // Multi-worker throughput is only comparable when both runs had the
    // cores to back the workers: on a smaller machine the 8-worker number
    // measures scheduler churn (e.g. 8 workers time-slicing one core), and
    // gating it compares incomparable setups. Files predating the
    // `available_parallelism` field are treated as unknown and gated as
    // before. The entry still gets its own verdict row below — a silently
    // vanishing metric reads as "nothing was skipped".
    let (base_cores, fresh_cores) = (
        available_parallelism(&baseline),
        available_parallelism(&fresh),
    );
    let skip_thread8 = base_cores.is_some_and(|c| c < 8.0) || fresh_cores.is_some_and(|c| c < 8.0);
    if base_metrics.is_empty() {
        eprintln!(
            "warning: no gated metrics found in baseline {baseline_path} — nothing to compare"
        );
        return ExitCode::SUCCESS;
    }
    // Per-file machine-speed normalization (see the module docs). Without
    // a calibration entry on either side, fall back to absolute and say so.
    let (base_cal, fresh_cal) = if absolute {
        (1.0, 1.0)
    } else {
        match (calibration(&baseline), calibration(&fresh)) {
            (Some(b), Some(f)) => {
                println!(
                    "machine calibration ({CALIBRATION_ENGINE} @ n={CALIBRATION_N}): \
                     baseline {b:.2}, fresh {f:.2} rounds/sec — gating normalized ratios \
                     (normalization factor {:.3}x applied to every fresh/baseline ratio)",
                    b / f
                );
                (b, f)
            }
            _ => {
                println!(
                    "warning: no {CALIBRATION_ENGINE} calibration entry in one of the files — \
                     comparing absolute throughput (cross-machine comparisons will be noisy)"
                );
                (1.0, 1.0)
            }
        }
    };

    println!(
        "{:<34} {:>14} {:>14} {:>8}  verdict (tolerance −{:.0}%)",
        "metric",
        "baseline",
        "fresh",
        "ratio",
        max_regression * 100.0
    );
    let mut failed = false;
    for (name, base) in &base_metrics {
        if name == THREAD8_METRIC && skip_thread8 {
            let new = fresh_metrics
                .iter()
                .find(|(n, _)| n == name)
                .map_or("—".into(), |(_, v)| format!("{v:.2}"));
            println!(
                "{name:<34} {base:>14.2} {new:>14}      —   skipped (runner below 8 cores: \
                 available_parallelism baseline {}, fresh {})",
                base_cores.map_or("unknown".into(), |c| format!("{c:.0}")),
                fresh_cores.map_or("unknown".into(), |c| format!("{c:.0}")),
            );
            continue;
        }
        match fresh_metrics.iter().find(|(n, _)| n == name) {
            Some((_, new)) if *base > 0.0 => {
                let ratio = (new / fresh_cal) / (base / base_cal);
                let ok = ratio >= 1.0 - max_regression;
                println!(
                    "{name:<34} {base:>14.2} {new:>14.2} {ratio:>7.2}x  {}",
                    if ok { "ok" } else { "REGRESSED" }
                );
                failed |= !ok;
            }
            Some((_, new)) => {
                println!("{name:<34} {base:>14.2} {new:>14.2}      —   skipped (zero baseline)");
            }
            None => {
                println!(
                    "{name:<34} {base:>14.2} {:>14}      —   MISSING from fresh run",
                    "—"
                );
                failed = true;
            }
        }
    }
    // Informational rows (never gated).
    if let Some(fresh_merge) = merge_cells_per_sec(&fresh) {
        let base_merge = merge_cells_per_sec(&baseline).map_or("—".into(), |v| format!("{v:.2}"));
        println!(
            "{:<34} {base_merge:>14} {fresh_merge:>14.2}      —   informational (not gated)",
            "merge cells/sec"
        );
    }
    for (name, _) in &fresh_metrics {
        if !base_metrics.iter().any(|(n, _)| n == name) {
            if name == THREAD8_METRIC && skip_thread8 {
                println!("{name:<34} (new metric, and runner below 8 cores — not gated)");
            } else {
                println!("{name:<34} (new metric — no baseline yet, not gated)");
            }
        }
    }
    if failed {
        eprintln!(
            "bench gate: regression beyond {:.0}% (or a gated metric disappeared)",
            max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "stabcon-engine-bench/1",
  "available_parallelism": 16,
  "rounds_per_sec": [
    {"engine": "dense-seq", "n": 10000, "rounds_per_sec": 8000.5},
    {"engine": "dense-seq-dyn", "n": 10000, "rounds_per_sec": 5500.0},
    {"engine": "dense-seq-step-only", "n": 10000, "rounds_per_sec": 14000.0},
    {"engine": "dense-seq-dyn-step-only", "n": 10000, "rounds_per_sec": 11000.0},
    {"engine": "dense-seq-dyn-step-only", "n": 1000000, "rounds_per_sec": 48.0},
    {"engine": "dense-seq-step-only", "n": 1000000, "rounds_per_sec": 85.0},
    {"engine": "dense-seq", "n": 1000000, "rounds_per_sec": 82.25},
    {"engine": "message-seq", "n": 10000, "rounds_per_sec": 950.0}
  ],
  "kernel": [
    {"n": 10000, "path": "uniform", "scalar_rounds_per_sec": 12000.0, "batched_rounds_per_sec": 14000.0, "speedup": 1.167}
  ],
  "campaign": {"n": 10000, "trials": 640, "trials_per_sec": 1234.56},
  "campaigns": [
    {"n": 10000, "threads": 1, "engine": "dense-seq", "trials_per_sec": 1234.56},
    {"n": 10000, "threads": 8, "engine": "dense-seq", "trials_per_sec": 4321.0},
    {"n": 1000000, "threads": 8, "engine": "adaptive", "trials_per_sec": 99.0}
  ],
  "workspace_reuse": {"n": 10000, "fresh_trials_per_sec": 400.0, "reused_trials_per_sec": 700.0, "speedup": 1.75},
  "merge": {"cells": 512, "shards": 4, "merges": 120, "cells_per_sec": 250000.0}
}"#;

    #[test]
    fn extracts_exactly_the_gated_metrics() {
        let m = gated_metrics(SAMPLE);
        assert_eq!(
            m,
            vec![
                ("dense-seq rounds/sec @ n=10000".to_string(), 8000.5),
                ("dense-seq rounds/sec @ n=1000000".to_string(), 82.25),
                (
                    "dense-seq-step-only rounds/sec @ n=10000".to_string(),
                    14000.0
                ),
                (
                    "dense-seq-step-only rounds/sec @ n=1000000".to_string(),
                    85.0
                ),
                ("message-seq rounds/sec @ n=10000".to_string(), 950.0),
                ("campaign trials/sec".to_string(), 1234.56),
                ("campaign trials/sec @ 8 threads".to_string(), 4321.0),
            ],
            "dyn entries, kernel-sweep pairs, non-n=10⁴ sweeps, and the \
             microbench must not be gated"
        );
    }

    #[test]
    fn single_line_json_parses_too() {
        let flat = SAMPLE.replace('\n', " ");
        assert_eq!(gated_metrics(&flat).len(), 7);
    }

    #[test]
    fn available_parallelism_is_read_and_optional() {
        assert_eq!(available_parallelism(SAMPLE), Some(16.0));
        assert_eq!(available_parallelism("{}"), None);
        let one_core = SAMPLE.replace(
            "\"available_parallelism\": 16",
            "\"available_parallelism\": 1",
        );
        assert_eq!(available_parallelism(&one_core), Some(1.0));
    }

    #[test]
    fn campaigns_scan_stays_inside_the_array() {
        let entries = campaign_entries(SAMPLE);
        assert_eq!(
            entries,
            vec![
                (10000.0, 1.0, 1234.56),
                (10000.0, 8.0, 4321.0),
                (1000000.0, 8.0, 99.0),
            ],
            "must not pick up workspace_reuse numbers"
        );
        assert!(campaign_entries("{}").is_empty());
    }

    #[test]
    fn calibration_picks_the_legacy_step_loop_at_small_n() {
        assert_eq!(
            calibration(SAMPLE),
            Some(11000.0),
            "must take the n=10⁴ entry"
        );
        assert_eq!(calibration("{}"), None);
    }

    #[test]
    fn merge_throughput_is_informational_not_gated() {
        assert_eq!(merge_cells_per_sec(SAMPLE), Some(250000.0));
        assert_eq!(merge_cells_per_sec("{}"), None);
        assert!(
            !gated_metrics(SAMPLE)
                .iter()
                .any(|(n, _)| n.contains("merge")),
            "merge throughput must never enter the gated set"
        );
    }

    #[test]
    fn number_scanner_handles_whitespace_and_exponents() {
        let (v, _) = number_after("\"x\":   1.5e2,", 0, "x").expect("parse");
        assert_eq!(v, 150.0);
        assert!(number_after("\"y\": 3", 0, "x").is_none());
    }
}

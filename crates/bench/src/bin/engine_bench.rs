//! `BENCH_engine.json` emitter: engine round throughput over time.
//!
//! Records rounds/sec for dense-seq (monomorphized and `dyn`-dispatched),
//! dense-par, hist, and adaptive at n ∈ {10⁴, 10⁶}, the message engine
//! (clean network) at n = 10⁴, a `kernel` sweep
//! isolating the batched phase-split dense round against its scalar
//! reference (uniform and load-sampled paths), the end-to-end wall time
//! of a full `TwoBins` n = 10⁶ trial under `DenseSeq` vs `Adaptive`,
//! full-trial throughput through the `stabcon-exp` campaign scheduler
//! (the gated 1-thread n = 10⁴ entry plus a `campaigns` sweep over
//! {1, 8} workers × {10⁴, 10⁶}), a workspace-vs-fresh microbenchmark
//! isolating the per-trial allocation cost, a `merge` entry (cells/sec
//! stitching a 512-cell synthetic store from 4 shard files through the
//! fabric's `merge_stores` — informational, not gated), and a `phase_profile` section
//! (a telemetry-enabled dense n = 10⁶ run broken down by `stabcon-obs`
//! phase — RNG/index/gather/apply shares of the kernel), so successive PRs
//! have a perf trajectory to compare against. The output also records the runner's
//! `available_parallelism`, which `bench_gate` uses to skip gating
//! multi-worker entries measured on machines with fewer cores.
//!
//! Usage: `cargo run --release --bin engine_bench [-- out.json]`
//! (default output: `BENCH_engine.json` in the current directory). Scale
//! measurement time with `STABCON_BENCH_SCALE` like the bench targets.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use stabcon_core::engine::{dense, hist, EngineSpec};
use stabcon_core::histogram::Histogram;
use stabcon_core::init::InitialCondition;
use stabcon_core::protocol::{MedianRule, Protocol};
use stabcon_core::runner::SimSpec;
use stabcon_core::value::Value;
use stabcon_core::workspace::TrialWorkspace;
use stabcon_exp::{chunk_for, run_cell, CellSpec};
use stabcon_util::jsonl::{JsonArr, JsonObj};
use stabcon_util::rng::Xoshiro256pp;

/// Measure `step` repeatedly for roughly `budget`, returning rounds/sec.
fn rounds_per_sec(budget: Duration, mut step: impl FnMut(u64)) -> f64 {
    // Warm-up round (page in buffers, spin up pool threads).
    step(0);
    let start = Instant::now();
    let mut rounds = 0u64;
    while start.elapsed() < budget || rounds < 3 {
        rounds += 1;
        step(rounds);
    }
    rounds as f64 / start.elapsed().as_secs_f64()
}

/// Mid-trial-shaped dense state: `support` values spread evenly.
fn dense_state(n: usize, support: u32) -> Vec<Value> {
    (0..n as u32).map(|i| i % support).collect()
}

/// The seed repository's dense round, verbatim: one `CounterRng::new` per
/// ball (full 3-input hash per word), a `MAX_SAMPLES` scratch buffer sliced
/// at runtime, and a `&dyn Protocol` virtual call per ball. This is the
/// "dyn baseline" the monomorphized engine is measured against.
fn legacy_step_seq(
    old: &[Value],
    new: &mut [Value],
    protocol: &dyn Protocol,
    seed: u64,
    round: u64,
) {
    use stabcon_core::protocol::MAX_SAMPLES;
    use stabcon_util::rng::{gen_index, CounterRng};
    let n = old.len() as u64;
    let k = protocol.samples();
    let mut samples = [0 as Value; MAX_SAMPLES];
    for (j, slot) in new.iter_mut().enumerate() {
        let ball = j as u64;
        let mut rng = CounterRng::new(seed, round.wrapping_mul(n).wrapping_add(ball));
        for sample in samples.iter_mut().take(k) {
            *sample = old[gen_index(&mut rng, n) as usize];
        }
        *slot = protocol.combine(old[ball as usize], &samples[..k]);
    }
}

/// The seed runner's per-round observable pass, verbatim: a full `O(n)`
/// hash-map rebuild (support, plurality, median, imbalance).
fn legacy_observe(state: &[Value]) -> (usize, Value, u64, Value, f64) {
    use std::collections::HashMap;
    let mut counts: HashMap<Value, u64> = HashMap::with_capacity(64);
    for &v in state {
        *counts.entry(v).or_insert(0) += 1;
    }
    let support = counts.len();
    let (&pv, &pc) = counts
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .expect("nonempty state");
    let mut pairs: Vec<(Value, u64)> = counts.iter().map(|(&v, &c)| (v, c)).collect();
    pairs.sort_unstable_by_key(|&(v, _)| v);
    let target = (state.len() as u64).div_ceil(2);
    let mut acc = 0u64;
    let mut median = pairs[0].0;
    for &(v, c) in &pairs {
        acc += c;
        if acc >= target {
            median = v;
            break;
        }
    }
    let mut loads: Vec<u64> = pairs.iter().map(|&(_, c)| c).collect();
    loads.sort_unstable_by(|a, b| b.cmp(a));
    let imbalance = (loads[0] as f64 - loads.get(1).copied().unwrap_or(0) as f64) / 2.0;
    (support, pv, pc, median, imbalance)
}

struct Record {
    engine: &'static str,
    n: u64,
    rounds_per_sec: f64,
}

/// Full-trial throughput through `run_cell` on a fresh `threads`-worker
/// pool, batched like a campaign cell, with the production chunk size.
fn campaign_trials_per_sec(budget: Duration, sim: &SimSpec, threads: usize) -> (u64, f64) {
    let pool = stabcon_par::ThreadPool::new(threads);
    let batch = 64u64;
    let chunk = chunk_for(batch, threads);
    let mut trials = 0u64;
    let mut batch_seed = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget || trials < batch {
        batch_seed += 1;
        let cell = CellSpec::new(sim.clone(), batch, batch_seed);
        trials += run_cell(&pool, &cell, chunk).trials();
    }
    (trials, trials as f64 / start.elapsed().as_secs_f64())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let scale = stabcon_bench::bench_scale();
    let budget = Duration::from_secs_f64(0.4 * scale.clamp(0.05, 10.0));
    let threads = stabcon_par::default_threads();
    let support = 64u32;

    let mut records: Vec<Record> = Vec::new();
    let mut dyn_per_mono_ratio: Vec<(u64, f64)> = Vec::new();
    // (n, path, scalar-reference rounds/sec, batched rounds/sec).
    let mut kernel: Vec<(u64, &'static str, f64, f64)> = Vec::new();

    for &n in &[10_000usize, 1_000_000] {
        let old = dense_state(n, support);
        let mut new = vec![0 as Value; n];

        // Simulated rounds as the runner executes them — full trials from
        // UniformRandom{64} to consensus, repeated until the budget is
        // spent. New path: monomorphized step, load-sampled draws once the
        // support is small, incremental O(m) observables.
        let init = InitialCondition::UniformRandom { m: support };
        let spec = SimSpec::new(n)
            .init(init.clone())
            .engine(EngineSpec::DenseSeq);
        let mut trial_seed = 0u64;
        let mut total_rounds = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget || trial_seed < 2 {
            trial_seed += 1;
            total_rounds += spec.run_seeded(trial_seed).rounds_executed;
        }
        let mono = total_rounds as f64 / start.elapsed().as_secs_f64();
        records.push(Record {
            engine: "dense-seq",
            n: n as u64,
            rounds_per_sec: mono,
        });

        // The pre-refactor baseline round, verbatim: dyn dispatch +
        // per-ball CounterRng in the step, O(n) hash-map rebuild for the
        // observables, same trial shape.
        let dyn_protocol: &dyn Protocol = &MedianRule;
        let mut trial_seed = 0u64;
        let mut total_rounds = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget || trial_seed < 2 {
            trial_seed += 1;
            let mut rng = Xoshiro256pp::seed(trial_seed);
            let mut state = init.materialize(n, &mut rng);
            let mut scratch = vec![0 as Value; n];
            for round in 0..10_000u64 {
                let (support, _, pc, _, _) = legacy_observe(&state);
                std::hint::black_box(support);
                if support == 1 && pc == n as u64 {
                    break;
                }
                legacy_step_seq(&state, &mut scratch, dyn_protocol, trial_seed, round);
                std::mem::swap(&mut state, &mut scratch);
                total_rounds += 1;
            }
        }
        let dynamic = total_rounds as f64 / start.elapsed().as_secs_f64();
        records.push(Record {
            engine: "dense-seq-dyn",
            n: n as u64,
            rounds_per_sec: dynamic,
        });
        dyn_per_mono_ratio.push((n as u64, mono / dynamic));

        // Step-only variants (no observables), for the raw engine cost.
        let mono_step = rounds_per_sec(budget, |round| {
            dense::step_seq(&old, &mut new, &MedianRule, 42, round);
        });
        records.push(Record {
            engine: "dense-seq-step-only",
            n: n as u64,
            rounds_per_sec: mono_step,
        });
        let dyn_step = rounds_per_sec(budget, |round| {
            legacy_step_seq(&old, &mut new, dyn_protocol, 42, round);
        });
        records.push(Record {
            engine: "dense-seq-dyn-step-only",
            n: n as u64,
            rounds_per_sec: dyn_step,
        });

        // Kernel sweep: the batched phase-split round against the scalar
        // reference it replaced, on both sampling paths. The uniform
        // batched number is the same measurement as `dense-seq-step-only`
        // above; the sweep pairs it with its own-file baseline so the
        // batched-vs-scalar ratio survives machine changes. The sampled
        // pair additionally isolates alias reuse: the reference builds a
        // fresh `PackedAlias` per round (the pre-reuse cost), the batched
        // side rebuilds a parked `LoadSampler` in place, exactly as the
        // runner does.
        let scalar_step = rounds_per_sec(budget, |round| {
            dense::step_seq_reference(&old, &mut new, &MedianRule, 42, round);
        });
        kernel.push((n as u64, "uniform", scalar_step, mono_step));
        let bins: Vec<(Value, u64)> = (0..support)
            .map(|v| {
                let extra = (v as usize) < n % support as usize;
                (v, (n / support as usize + extra as usize) as u64)
            })
            .collect();
        let scalar_sampled = rounds_per_sec(budget, |round| {
            dense::step_seq_with_loads_reference(&old, &mut new, &MedianRule, 42, round, &bins);
        });
        let mut sampler = dense::LoadSampler::new();
        let batched_sampled = rounds_per_sec(budget, |round| {
            sampler.rebuild(bins.iter().copied(), n as u64);
            dense::step_seq_sampled(&old, &mut new, &MedianRule, 42, round, &sampler);
        });
        kernel.push((n as u64, "sampled", scalar_sampled, batched_sampled));

        // Parallel dense.
        let par = rounds_per_sec(budget, |round| {
            dense::step_par(threads, &old, &mut new, &MedianRule, 42, round);
        });
        records.push(Record {
            engine: "dense-par",
            n: n as u64,
            rounds_per_sec: par,
        });

        // Histogram engine at the same population (m = support bins).
        let pairs: Vec<(Value, u64)> = (0..support)
            .map(|v| (v, (n as u64) / support as u64 + 1))
            .collect();
        let h0 = Histogram::new(&pairs);
        let mut h = h0.clone();
        let mut rng = Xoshiro256pp::seed(7);
        let hist_rps = rounds_per_sec(budget, |round| {
            h = hist::step(&h, &mut rng);
            if round % 64 == 0 {
                // Reset so the support doesn't collapse mid-measurement.
                h = h0.clone();
            }
        });
        records.push(Record {
            engine: "hist",
            n: n as u64,
            rounds_per_sec: hist_rps,
        });

        // Adaptive: rounds/sec over full trials (the engine changes phase
        // mid-trial, so a per-round number only makes sense trial-averaged).
        let spec = SimSpec::new(n)
            .init(InitialCondition::UniformRandom { m: support })
            .engine(EngineSpec::Adaptive {
                threads,
                handoff_support: 64,
            });
        let mut trial_seed = 0u64;
        let mut total_rounds = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget || trial_seed < 3 {
            trial_seed += 1;
            total_rounds += spec.run_seeded(trial_seed).rounds_executed;
        }
        records.push(Record {
            engine: "adaptive",
            n: n as u64,
            rounds_per_sec: total_rounds as f64 / start.elapsed().as_secs_f64(),
        });
    }

    // Message engine: full trials through the request/response router at
    // n = 10⁴ (the network-semantics engine is O(n·k) per round with real
    // inbox traffic, so 10⁶ would eat the whole budget for one number).
    // Gated — the scenario layer sits on this path, so a fault-injection
    // change that slows the clean-network case shows up here.
    {
        use stabcon_core::engine::MessageConfig;
        let n = 10_000usize;
        let spec = SimSpec::new(n)
            .init(InitialCondition::UniformRandom { m: support })
            .engine(EngineSpec::Message(MessageConfig::default()));
        let mut ws = TrialWorkspace::new();
        let mut trial_seed = 0u64;
        let mut total_rounds = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget || trial_seed < 2 {
            trial_seed += 1;
            let r = spec.run_seeded_into(trial_seed, &mut ws);
            total_rounds += r.rounds_executed;
            ws.recycle(r);
        }
        records.push(Record {
            engine: "message-seq",
            n: n as u64,
            rounds_per_sec: total_rounds as f64 / start.elapsed().as_secs_f64(),
        });
    }

    // End-to-end: full TwoBins n = 10⁶ trial to consensus, DenseSeq vs
    // Adaptive (the ≥5× acceptance criterion).
    let n = 1_000_000usize;
    let base = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .max_rounds(100_000);
    let t0 = Instant::now();
    let dense_result = base.clone().engine(EngineSpec::DenseSeq).run_seeded(1);
    let dense_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let adaptive_result = base
        .clone()
        .engine(EngineSpec::Adaptive {
            threads: 1,
            handoff_support: 64,
        })
        .run_seeded(1);
    let adaptive_secs = t1.elapsed().as_secs_f64();

    // Campaign-path throughput: full trials/sec through the stabcon-exp
    // scheduler (persistent workers, workspace reuse, chunk-partial
    // aggregation) at n = 10⁴ and 1 thread — the gated number that bounds
    // how fast a results-table grid can be reproduced.
    let (campaign_trials, campaign_tps) = campaign_trials_per_sec(
        budget,
        &SimSpec::new(10_000).init(InitialCondition::UniformRandom { m: 8 }),
        1,
    );

    // The same scheduler at other shapes: 8 workers (oversubscribed pools
    // are the campaign-CLI default on big machines), and n = 10⁶ through
    // the adaptive engine (the realistic engine choice at that scale).
    let adaptive_1e6 = SimSpec::new(1_000_000)
        .init(InitialCondition::UniformRandom { m: 64 })
        .engine(EngineSpec::Adaptive {
            threads: 1,
            handoff_support: 64,
        });
    let campaigns: Vec<(u64, usize, &str, f64)> = vec![
        (10_000, 1, "dense-seq", campaign_tps),
        (
            10_000,
            8,
            "dense-seq",
            campaign_trials_per_sec(
                budget,
                &SimSpec::new(10_000).init(InitialCondition::UniformRandom { m: 8 }),
                8,
            )
            .1,
        ),
        (
            1_000_000,
            1,
            "adaptive",
            campaign_trials_per_sec(budget, &adaptive_1e6, 1).1,
        ),
        (
            1_000_000,
            8,
            "adaptive",
            campaign_trials_per_sec(budget, &adaptive_1e6, 8).1,
        ),
    ];

    // Workspace-vs-fresh microbenchmark: the same trial sequence through
    // `run_seeded` (fresh buffers every trial) and `run_seeded_into` (one
    // reused workspace) — the isolated cost of per-trial allocation. At
    // n = 10⁶ a fresh trial faults in two 4 MB state buffers, which is
    // where buffer reuse pays (at n = 10⁴ the buffers are arena-cheap and
    // the two paths measure equal).
    let ws_sim = adaptive_1e6.clone();
    let fresh_tps = {
        let mut trials = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget || trials < 8 {
            trials += 1;
            std::hint::black_box(ws_sim.run_seeded(trials));
        }
        trials as f64 / start.elapsed().as_secs_f64()
    };
    let reused_tps = {
        let mut ws = TrialWorkspace::new();
        let mut trials = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget || trials < 8 {
            trials += 1;
            let r = ws_sim.run_seeded_into(trials, &mut ws);
            ws.recycle(std::hint::black_box(r));
        }
        trials as f64 / start.elapsed().as_secs_f64()
    };

    // Merge-path throughput: stitch a 512-cell store back together from 4
    // shard files through the fabric's `merge_stores` (header equality,
    // disjoint-coverage check, id-ordered re-emit). The cell lines are
    // synthetic — merge speed depends on line count and byte volume, not on
    // what the cells contain — and sized like real result rows.
    // Informational: `bench_gate` prints it but does not gate it, since
    // merge time is I/O-shaped and never bounds a campaign reproduction.
    let merge_bench = {
        use stabcon_exp::fabric::merge_stores;
        use stabcon_exp::store::StoreHeader;
        let cells = 512u64;
        let shards = 4u64;
        let header = StoreHeader {
            name: "merge-bench".into(),
            seed: 0xBE11C4,
            trials: 8,
            cells,
            fingerprint: 0xFAB51DE5,
        };
        let dir = std::env::temp_dir().join(format!("stabcon-merge-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("merge-bench tmp dir");
        let mut shard_paths = Vec::new();
        for s in 0..shards {
            let path = dir.join(format!("shard-{s}.jsonl"));
            let mut text = header.to_line();
            text.push('\n');
            for id in (s * cells / shards)..((s + 1) * cells / shards) {
                text.push_str(
                    &JsonObj::new()
                        .str_field("kind", "cell")
                        .u64_field("cell", id)
                        .u64_field("seed", id.wrapping_mul(0x9E3779B97F4A7C15))
                        .u64_field("trials", 8)
                        .str_field("metric", "consensus")
                        .u64_field("n", 10_000)
                        .str_field("init", "two-bins-half")
                        .fixed_field("hit_rate", 1.0, 4)
                        .fixed_field("mean", 9.75, 4)
                        .fixed_field("p50", 10.0, 4)
                        .fixed_field("p95", 11.0, 4)
                        .fixed_field("max", 12.0, 4)
                        .finish(),
                );
                text.push('\n');
            }
            std::fs::write(&path, text).expect("write synthetic shard");
            shard_paths.push(path);
        }
        let out = dir.join("merged.jsonl");
        let mut merges = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget || merges < 3 {
            std::fs::remove_file(&out).ok();
            merge_stores(&shard_paths, &out, Some(&header)).expect("synthetic merge");
            merges += 1;
        }
        let cells_per_sec = (merges * cells) as f64 / start.elapsed().as_secs_f64();
        std::fs::remove_dir_all(&dir).ok();
        JsonObj::new()
            .u64_field("cells", cells)
            .u64_field("shards", shards)
            .u64_field("merges", merges)
            .fixed_field("cells_per_sec", cells_per_sec, 2)
            .finish()
    };

    // Phase profile: where a dense n = 10⁶ trial's time actually goes,
    // measured through the stabcon-obs phase timers (RNG / index / gather /
    // apply / coin plus the runner's handoff and trial spans). Runs last —
    // with telemetry enabled — so the guard overhead (a few percent inside
    // the kernel) never touches the gated throughput numbers above, which
    // all ran with the flag off.
    let phase_profile = {
        use stabcon_obs as obs;
        let registry = obs::MetricRegistry::new(1);
        let spec = SimSpec::new(1_000_000)
            .init(InitialCondition::UniformRandom { m: support })
            .engine(EngineSpec::DenseSeq);
        obs::set_enabled(true);
        let mut ws = TrialWorkspace::new();
        let mut trials = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget || trials < 2 {
            trials += 1;
            let r = spec.run_seeded_into(trials, &mut ws);
            ws.recycle(r);
        }
        registry.handle(0).drain_local();
        obs::set_enabled(false);
        let mut snap = obs::Snapshot::new(1);
        registry.snapshot_into(&mut snap);
        let total = snap.total();
        let mut phases = JsonArr::new();
        for ph in obs::Phase::ALL {
            phases.push_raw(
                &JsonObj::new()
                    .str_field("phase", ph.name())
                    .u64_field("nanos", total.phase_nanos(ph))
                    .u64_field("calls", total.phase_calls(ph))
                    .fixed_field("share", total.phase_share(ph), 4)
                    .finish(),
            );
        }
        JsonObj::new()
            .str_field("engine", "dense-seq")
            .u64_field("n", 1_000_000)
            .u64_field("trials", trials)
            .raw_field("phases", &phases.finish())
            .finish()
    };

    let timestamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let mut rps = JsonArr::new();
    for r in &records {
        rps.push_raw(
            &JsonObj::new()
                .str_field("engine", r.engine)
                .u64_field("n", r.n)
                .fixed_field("rounds_per_sec", r.rounds_per_sec, 2)
                .finish(),
        );
    }
    let mut speedups = JsonArr::new();
    for &(n, ratio) in &dyn_per_mono_ratio {
        speedups.push_raw(
            &JsonObj::new()
                .u64_field("n", n)
                .fixed_field("speedup", ratio, 3)
                .finish(),
        );
    }
    let mut kernel_arr = JsonArr::new();
    for &(n, path, scalar, batched) in &kernel {
        kernel_arr.push_raw(
            &JsonObj::new()
                .u64_field("n", n)
                .str_field("path", path)
                .fixed_field("scalar_rounds_per_sec", scalar, 2)
                .fixed_field("batched_rounds_per_sec", batched, 2)
                .fixed_field("speedup", batched / scalar.max(1e-12), 3)
                .finish(),
        );
    }
    let end_to_end = JsonObj::new()
        .fixed_field("dense_seq_secs", dense_secs, 4)
        .u64_field("dense_seq_rounds", dense_result.rounds_executed)
        .fixed_field("adaptive_secs", adaptive_secs, 4)
        .u64_field("adaptive_rounds", adaptive_result.rounds_executed)
        .fixed_field("adaptive_speedup", dense_secs / adaptive_secs.max(1e-12), 2)
        .finish();
    let campaign = JsonObj::new()
        .u64_field("n", 10_000)
        .u64_field("trials", campaign_trials)
        .u64_field("threads", 1)
        .fixed_field("trials_per_sec", campaign_tps, 2)
        .finish();
    let mut campaign_arr = JsonArr::new();
    for &(n, c_threads, engine, tps) in &campaigns {
        campaign_arr.push_raw(
            &JsonObj::new()
                .u64_field("n", n)
                .u64_field("threads", c_threads as u64)
                .str_field("engine", engine)
                .fixed_field("trials_per_sec", tps, 2)
                .finish(),
        );
    }
    let workspace_reuse = JsonObj::new()
        .u64_field("n", 1_000_000)
        .str_field("engine", "adaptive")
        .fixed_field("fresh_trials_per_sec", fresh_tps, 2)
        .fixed_field("reused_trials_per_sec", reused_tps, 2)
        .fixed_field("speedup", reused_tps / fresh_tps.max(1e-12), 3)
        .finish();
    // How many cores this runner actually has: `bench_gate` refuses to
    // compare multi-worker entries across machines with fewer cores than
    // workers (an 8-worker pool on a 1-core box measures scheduler churn,
    // not scaling). If the query fails the field is omitted — the gate
    // treats a missing field as "unknown, gate as before", which is the
    // right reading of an error too.
    let cores = std::thread::available_parallelism().map(|c| c.get() as u64);

    let json = JsonObj::new()
        .str_field("schema", "stabcon-engine-bench/1")
        .u64_field("timestamp_unix", timestamp)
        .u64_field("threads", threads as u64);
    let mut json = match cores {
        Ok(c) => json.u64_field("available_parallelism", c),
        Err(_) => json,
    }
    .u64_field("support", support as u64)
    .raw_field("rounds_per_sec", &rps.finish())
    .raw_field("kernel", &kernel_arr.finish())
    .raw_field("mono_over_dyn_speedup", &speedups.finish())
    .raw_field("two_bins_1e6_end_to_end", &end_to_end)
    .raw_field("campaign", &campaign)
    .raw_field("campaigns", &campaign_arr.finish())
    .raw_field("workspace_reuse", &workspace_reuse)
    .raw_field("merge", &merge_bench)
    .raw_field("phase_profile", &phase_profile)
    .finish();
    json.push('\n');

    std::fs::write(&out_path, &json).expect("writing BENCH_engine.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}

//! Shared helpers for the stabcon benchmark harness.
//!
//! Each bench target regenerates one paper table/figure; this crate hosts
//! the tiny amount of shared glue (environment-variable scaling knobs).

#![forbid(unsafe_code)]

/// Read a scale factor from `STABCON_BENCH_SCALE` (default 1.0).
///
/// Benches multiply their trial counts and maximum `n` by this factor, so
/// CI can run quick smoke versions (`STABCON_BENCH_SCALE=0.1`) while paper
/// reproduction runs use the default or larger.
pub fn bench_scale() -> f64 {
    std::env::var("STABCON_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Scale a trial count, keeping at least `min`.
pub fn scaled_trials(base: u64, min: u64) -> u64 {
    ((base as f64 * bench_scale()) as u64).max(min)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_default_is_identity() {
        // Note: assumes the variable is unset in the test environment.
        if std::env::var("STABCON_BENCH_SCALE").is_err() {
            assert_eq!(super::scaled_trials(100, 1), 100);
        }
    }

    #[test]
    fn scaled_trials_respects_min() {
        assert!(super::scaled_trials(0, 5) >= 5);
    }
}

//! The T-bounded adversary framework and the paper's concrete strategies.
//!
//! Model (§1.1): at the beginning of each round the adversary — who knows
//! the full history — may change the state of up to `T` processes, but only
//! to values from the initial set `{v₁, …, v_n}`.
//!
//! Both constraints are enforced **by construction**: strategies never touch
//! raw state, they go through a [`Corruptor`] (dense engines) or
//! [`HistCorruptor`] (histogram engine) that refuses over-budget writes and
//! out-of-set values. A strategy cannot cheat even if buggy.

use std::collections::HashMap;

use rand::RngCore;
use stabcon_util::rng::gen_index;

use crate::value::{Value, ValueSet};

// ---------------------------------------------------------------------------
// Dense corruption API
// ---------------------------------------------------------------------------

/// Budget- and validity-enforcing write handle over dense state.
pub struct Corruptor<'a> {
    state: &'a mut [Value],
    allowed: &'a ValueSet,
    budget: u64,
    /// Touched process → its value *before* the first corrupting write this
    /// round (lets the runner maintain incremental load counts).
    touched: HashMap<u32, Value>,
}

impl<'a> Corruptor<'a> {
    /// Wrap `state` with budget `T` and the initial-value-set constraint.
    pub fn new(state: &'a mut [Value], allowed: &'a ValueSet, budget: u64) -> Self {
        Self {
            state,
            allowed,
            budget,
            touched: HashMap::new(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.state.len()
    }

    /// Read a process state (the adversary sees everything).
    pub fn get(&self, i: usize) -> Value {
        self.state[i]
    }

    /// Read-only view of the whole state.
    pub fn values(&self) -> &[Value] {
        self.state
    }

    /// Distinct processes still corruptible this round.
    pub fn remaining(&self) -> u64 {
        self.budget - self.touched.len() as u64
    }

    /// Processes changed so far this round.
    pub fn touched(&self) -> u64 {
        self.touched.len() as u64
    }

    /// Attempt to set process `i` to `v`. Returns `false` (state untouched)
    /// if `v` is outside the initial value set or the budget is exhausted.
    /// Rewriting an already-touched process is free; writing a process's
    /// current value back costs nothing.
    pub fn try_set(&mut self, i: usize, v: Value) -> bool {
        if self.state[i] == v {
            return true;
        }
        if !self.allowed.contains(v) {
            return false;
        }
        if self.touched.contains_key(&(i as u32)) {
            self.state[i] = v;
            return true;
        }
        if (self.touched.len() as u64) < self.budget {
            self.touched.insert(i as u32, self.state[i]);
            self.state[i] = v;
            return true;
        }
        false
    }

    /// The allowed (initial) value set.
    pub fn allowed(&self) -> &ValueSet {
        self.allowed
    }

    /// The net effect of this round's corruption: `(process, before, after)`
    /// for every touched process. Processes written back to their original
    /// value still appear (with `before == after`); consumers should treat
    /// those as no-ops.
    pub fn changes(&self) -> impl Iterator<Item = (usize, Value, Value)> + '_ {
        self.touched
            .iter()
            .map(|(&i, &before)| (i as usize, before, self.state[i as usize]))
    }
}

/// A T-bounded adversary strategy over dense state.
pub trait Adversary: Send {
    /// Short identifier for tables.
    fn name(&self) -> &'static str;

    /// Inspect and corrupt the state at the beginning of round `round`.
    fn corrupt(&mut self, round: u64, c: &mut Corruptor<'_>, rng: &mut dyn RngCore);
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// The absent adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAdversary;

impl Adversary for NoAdversary {
    fn name(&self) -> &'static str {
        "none"
    }
    fn corrupt(&mut self, _round: u64, _c: &mut Corruptor<'_>, _rng: &mut dyn RngCore) {}
}

/// Corrupts `T` uniformly random processes to uniformly random initial
/// values — the "noise floor" adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomCorruptor;

impl Adversary for RandomCorruptor {
    fn name(&self) -> &'static str {
        "random"
    }
    fn corrupt(&mut self, _round: u64, c: &mut Corruptor<'_>, rng: &mut dyn RngCore) {
        let n = c.n() as u64;
        let m = c.allowed().len() as u64;
        let budget = c.remaining();
        for _ in 0..budget {
            let i = gen_index(rng, n) as usize;
            let v = c.allowed().nth(gen_index(rng, m) as usize);
            let _ = c.try_set(i, v);
        }
    }
}

/// The lower-bound strategy from the Theorem 2 discussion: keep the two
/// largest bins in perfect balance. With budget `T = Ω̃(√n)` this stalls the
/// median rule for polynomially long; with `T ≪ √n` the random drift
/// escapes it.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoBinBalancer;

impl Adversary for TwoBinBalancer {
    fn name(&self) -> &'static str {
        "balancer"
    }
    fn corrupt(&mut self, _round: u64, c: &mut Corruptor<'_>, _rng: &mut dyn RngCore) {
        // Count loads over the allowed values.
        let allowed = c.allowed().values().to_vec();
        let mut loads: Vec<(Value, u64)> = allowed.iter().map(|&v| (v, 0)).collect();
        for &v in c.values() {
            if let Ok(idx) = allowed.binary_search(&v) {
                loads[idx].1 += 1;
            }
        }
        // Two most loaded allowed values.
        loads.sort_by_key(|&(_, load)| std::cmp::Reverse(load));
        let (big, big_load) = loads[0];
        let (small, small_load) = match loads.get(1) {
            Some(&(v, l)) => (v, l),
            None => return, // single allowed value: nothing to balance
        };
        if big_load <= small_load {
            return;
        }
        // Each flip big→small closes the gap by 2.
        let flips = ((big_load - small_load) / 2).min(c.remaining());
        if flips == 0 {
            return;
        }
        let mut done = 0u64;
        for i in 0..c.n() {
            if done == flips {
                break;
            }
            if c.get(i) == big && c.try_set(i, small) {
                done += 1;
            }
        }
    }
}

/// The §1.1 minimum-rule killer: first erase every holder of the smallest
/// initial value (so the min rule "commits" to the second value), then at
/// `revive_at` reintroduce a single copy of the smallest value, forcing the
/// min rule to restart its cascade. Harmless to the median rule.
#[derive(Debug, Clone, Copy)]
pub struct Reviver {
    /// Round at which the erased value is reintroduced.
    pub revive_at: u64,
}

impl Adversary for Reviver {
    fn name(&self) -> &'static str {
        "reviver"
    }
    fn corrupt(&mut self, round: u64, c: &mut Corruptor<'_>, _rng: &mut dyn RngCore) {
        let victim = c.allowed().min();
        if c.allowed().len() < 2 {
            return;
        }
        let replacement = c.allowed().nth(1);
        if round < self.revive_at {
            // Erase phase: flip holders of the victim value.
            for i in 0..c.n() {
                if c.remaining() == 0 {
                    break;
                }
                if c.get(i) == victim {
                    let _ = c.try_set(i, replacement);
                }
            }
        } else if round == self.revive_at {
            // Revival: one ball suffices to poison the min rule forever.
            let _ = c.try_set(0, victim);
        }
    }
}

/// Pushes balls *away from the current median bin* toward the extreme
/// initial values, alternating sides — the natural "stall the median"
/// heuristic attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianPusher;

impl Adversary for MedianPusher {
    fn name(&self) -> &'static str {
        "median-pusher"
    }
    fn corrupt(&mut self, _round: u64, c: &mut Corruptor<'_>, rng: &mut dyn RngCore) {
        // Current median value (recomputed from live state).
        let mut sorted: Vec<Value> = c.values().to_vec();
        sorted.sort_unstable();
        let median = sorted[(sorted.len() - 1) / 2];
        let lo = c.allowed().min();
        let hi = c.allowed().max();
        if lo == hi {
            return;
        }
        let mut flip_low = gen_index(rng, 2) == 0;
        for i in 0..c.n() {
            if c.remaining() == 0 {
                break;
            }
            if c.get(i) == median {
                let target = if flip_low { lo } else { hi };
                if target != median && c.try_set(i, target) {
                    flip_low = !flip_low;
                }
            }
        }
    }
}

/// Stubborn agents: processes `0..T` re-assert the smallest initial value
/// every round, no matter what the protocol did to them. The median rule
/// tolerates them with disagreement exactly `T`; order-sensitive rules
/// (min/max) are captured completely.
#[derive(Debug, Clone, Copy, Default)]
pub struct StubbornSet;

impl Adversary for StubbornSet {
    fn name(&self) -> &'static str {
        "stubborn"
    }
    fn corrupt(&mut self, _round: u64, c: &mut Corruptor<'_>, _rng: &mut dyn RngCore) {
        let target = c.allowed().min();
        for i in 0..c.n() {
            if c.remaining() == 0 && c.get(i) != target {
                break;
            }
            if !c.try_set(i, target) {
                break;
            }
        }
    }
}

/// Selector for [`crate::runner::SimSpec`]; builds a fresh strategy object
/// per trial so runs stay independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarySpec {
    /// No adversary (`T` is ignored).
    None,
    /// Uniform random corruption.
    Random,
    /// Keep the top-two bins balanced (lower-bound strategy).
    Balancer,
    /// Hide the smallest value, revive it at the given round.
    Reviver {
        /// Round of reintroduction.
        revive_at: u64,
    },
    /// Push balls from the median bin to the extremes.
    MedianPusher,
    /// T processes permanently re-assert the smallest initial value.
    Stubborn,
}

impl AdversarySpec {
    /// Instantiate the strategy.
    pub fn build(&self) -> Box<dyn Adversary> {
        match *self {
            AdversarySpec::None => Box::new(NoAdversary),
            AdversarySpec::Random => Box::new(RandomCorruptor),
            AdversarySpec::Balancer => Box::new(TwoBinBalancer),
            AdversarySpec::Reviver { revive_at } => Box::new(Reviver { revive_at }),
            AdversarySpec::MedianPusher => Box::new(MedianPusher),
            AdversarySpec::Stubborn => Box::new(StubbornSet),
        }
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            AdversarySpec::None => "none",
            AdversarySpec::Random => "random",
            AdversarySpec::Balancer => "balancer",
            AdversarySpec::Reviver { .. } => "reviver",
            AdversarySpec::MedianPusher => "median-pusher",
            AdversarySpec::Stubborn => "stubborn",
        }
    }
}

// ---------------------------------------------------------------------------
// Histogram-level corruption (for the O(m²) engine at huge n)
// ---------------------------------------------------------------------------

/// Budget-enforcing ball mover over aggregated loads.
pub struct HistCorruptor<'a> {
    loads: &'a mut Vec<(Value, u64)>,
    allowed: &'a ValueSet,
    budget: u64,
    moved: u64,
}

impl<'a> HistCorruptor<'a> {
    /// Wrap sorted `(value, load)` pairs with budget `T`.
    pub fn new(loads: &'a mut Vec<(Value, u64)>, allowed: &'a ValueSet, budget: u64) -> Self {
        Self {
            loads,
            allowed,
            budget,
            moved: 0,
        }
    }

    /// Read-only view of the loads.
    pub fn loads(&self) -> &[(Value, u64)] {
        self.loads
    }

    /// Remaining budget.
    pub fn remaining(&self) -> u64 {
        self.budget - self.moved
    }

    /// The allowed value set.
    pub fn allowed(&self) -> &ValueSet {
        self.allowed
    }

    /// Move up to `k` balls from bin `from` to bin `to`; returns how many
    /// moved (limited by budget, availability, and `to ∈ allowed`).
    pub fn move_balls(&mut self, from: Value, to: Value, k: u64) -> u64 {
        if from == to || !self.allowed.contains(to) {
            return 0;
        }
        let k = k.min(self.remaining());
        if k == 0 {
            return 0;
        }
        let Some(src) = self.loads.iter().position(|&(v, _)| v == from) else {
            return 0;
        };
        let take = self.loads[src].1.min(k);
        if take == 0 {
            return 0;
        }
        self.loads[src].1 -= take;
        match self.loads.iter().position(|&(v, _)| v == to) {
            Some(dst) => self.loads[dst].1 += take,
            None => {
                self.loads.push((to, take));
                self.loads.sort_unstable_by_key(|&(v, _)| v);
            }
        }
        self.loads.retain(|&(_, c)| c > 0);
        self.moved += take;
        take
    }
}

/// A T-bounded adversary over aggregated loads.
pub trait HistAdversary: Send {
    /// Short identifier for tables.
    fn name(&self) -> &'static str;
    /// Inspect and corrupt the loads at the beginning of a round.
    fn corrupt(&mut self, round: u64, c: &mut HistCorruptor<'_>, rng: &mut dyn RngCore);
}

/// No-op histogram adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistNoAdversary;

impl HistAdversary for HistNoAdversary {
    fn name(&self) -> &'static str {
        "none"
    }
    fn corrupt(&mut self, _round: u64, _c: &mut HistCorruptor<'_>, _rng: &mut dyn RngCore) {}
}

/// Histogram-level two-bin balancer (the Ω̃(√n) lower-bound strategy at
/// populations far beyond dense-engine reach).
#[derive(Debug, Clone, Copy, Default)]
pub struct HistBalancer;

impl HistAdversary for HistBalancer {
    fn name(&self) -> &'static str {
        "balancer"
    }
    fn corrupt(&mut self, _round: u64, c: &mut HistCorruptor<'_>, _rng: &mut dyn RngCore) {
        let mut loads: Vec<(Value, u64)> = c.loads().to_vec();
        if loads.len() < 2 {
            // Try to resurrect a second allowed value if the budget allows.
            if let Some(&(only, _)) = loads.first() {
                if let Some(&other) = c.allowed().values().iter().find(|&&v| v != only) {
                    let want = c.remaining();
                    c.move_balls(only, other, want);
                }
            }
            return;
        }
        loads.sort_by_key(|&(_, load)| std::cmp::Reverse(load));
        let (big, big_load) = loads[0];
        let (small, small_load) = loads[1];
        if big_load > small_load {
            let flips = (big_load - small_load) / 2;
            c.move_balls(big, small, flips);
        }
    }
}

/// Histogram selector for [`crate::runner::HistSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistAdversarySpec {
    /// No adversary.
    None,
    /// Load balancer over the top two bins.
    Balancer,
}

impl HistAdversarySpec {
    /// Instantiate the strategy.
    pub fn build(&self) -> Box<dyn HistAdversary> {
        match self {
            HistAdversarySpec::None => Box::new(HistNoAdversary),
            HistAdversarySpec::Balancer => Box::new(HistBalancer),
        }
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            HistAdversarySpec::None => "none",
            HistAdversarySpec::Balancer => "balancer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_util::rng::Xoshiro256pp;

    fn setup(values: Vec<Value>) -> (Vec<Value>, ValueSet) {
        let set = ValueSet::from_values(&values);
        (values, set)
    }

    #[test]
    fn corruptor_enforces_budget() {
        let (mut state, set) = setup(vec![0, 0, 0, 0, 1, 1]);
        let mut c = Corruptor::new(&mut state, &set, 2);
        assert!(c.try_set(0, 1));
        assert!(c.try_set(1, 1));
        assert!(!c.try_set(2, 1), "third distinct process must be refused");
        assert_eq!(c.touched(), 2);
        assert_eq!(state, vec![1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn corruptor_enforces_value_set() {
        let (mut state, set) = setup(vec![0, 1]);
        let mut c = Corruptor::new(&mut state, &set, 10);
        assert!(!c.try_set(0, 99), "99 not an initial value");
        assert!(c.try_set(0, 1));
        assert_eq!(state, vec![1, 1]);
    }

    #[test]
    fn corruptor_noop_writes_are_free() {
        let (mut state, set) = setup(vec![0, 1]);
        let mut c = Corruptor::new(&mut state, &set, 1);
        assert!(c.try_set(0, 0), "same-value write is free");
        assert_eq!(c.touched(), 0);
        assert!(c.try_set(1, 0));
        assert_eq!(c.touched(), 1);
    }

    #[test]
    fn corruptor_retouching_is_free() {
        let (mut state, set) = setup(vec![0, 1, 0, 1]);
        let mut c = Corruptor::new(&mut state, &set, 1);
        assert!(c.try_set(0, 1));
        assert!(c.try_set(0, 0), "retouching the same process is free");
        assert_eq!(c.touched(), 1);
    }

    #[test]
    fn balancer_balances() {
        let (mut state, set) = setup(vec![0, 0, 0, 0, 0, 0, 1, 1]);
        let mut rng = Xoshiro256pp::seed(1);
        let mut adv = TwoBinBalancer;
        let mut c = Corruptor::new(&mut state, &set, 10);
        adv.corrupt(0, &mut c, &mut rng);
        let zeros = state.iter().filter(|&&v| v == 0).count();
        let ones = state.iter().filter(|&&v| v == 1).count();
        assert_eq!(zeros, 4);
        assert_eq!(ones, 4);
    }

    #[test]
    fn balancer_respects_budget() {
        let (mut state, set) = setup(vec![0; 100].into_iter().chain(vec![1; 10]).collect());
        let mut rng = Xoshiro256pp::seed(2);
        let mut adv = TwoBinBalancer;
        let mut c = Corruptor::new(&mut state, &set, 5);
        adv.corrupt(0, &mut c, &mut rng);
        let ones = state.iter().filter(|&&v| v == 1).count();
        assert_eq!(ones, 15, "exactly budget-many flips");
    }

    #[test]
    fn reviver_erases_then_revives() {
        let (mut state, set) = setup(vec![0, 0, 1, 1, 1, 1]);
        let mut rng = Xoshiro256pp::seed(3);
        let mut adv = Reviver { revive_at: 5 };
        {
            let mut c = Corruptor::new(&mut state, &set, 10);
            adv.corrupt(0, &mut c, &mut rng);
        }
        assert!(
            state.iter().all(|&v| v == 1),
            "victim value erased: {state:?}"
        );
        // Rounds in between do nothing.
        {
            let mut c = Corruptor::new(&mut state, &set, 10);
            adv.corrupt(3, &mut c, &mut rng);
        }
        assert!(state.iter().all(|&v| v == 1));
        // Revival.
        {
            let mut c = Corruptor::new(&mut state, &set, 10);
            adv.corrupt(5, &mut c, &mut rng);
        }
        assert_eq!(state.iter().filter(|&&v| v == 0).count(), 1);
    }

    #[test]
    fn median_pusher_attacks_median_bin() {
        let (mut state, set) = setup(vec![0, 5, 5, 5, 9]);
        let mut rng = Xoshiro256pp::seed(4);
        let mut adv = MedianPusher;
        let mut c = Corruptor::new(&mut state, &set, 2);
        adv.corrupt(0, &mut c, &mut rng);
        let fives = state.iter().filter(|&&v| v == 5).count();
        assert_eq!(fives, 1, "two median balls pushed out: {state:?}");
        for &v in &state {
            assert!(set.contains(v));
        }
    }

    #[test]
    fn stubborn_pins_exactly_budget_processes() {
        let (mut state, set) = setup(vec![5, 5, 5, 5, 5, 5, 1, 1]);
        let mut rng = Xoshiro256pp::seed(8);
        let mut adv = StubbornSet;
        let mut c = Corruptor::new(&mut state, &set, 3);
        adv.corrupt(0, &mut c, &mut rng);
        // Budget 3: the first three non-holders of value 1 get pinned.
        let ones = state.iter().filter(|&&v| v == 1).count();
        assert_eq!(ones, 5, "{state:?}"); // 2 original + 3 pinned
        assert_eq!(&state[0..3], &[1, 1, 1]);
    }

    #[test]
    fn stubborn_repins_every_round() {
        let (mut state, set) = setup(vec![9, 9, 9, 9]);
        let mut rng = Xoshiro256pp::seed(9);
        let mut adv = StubbornSet;
        for round in 0..3 {
            // Protocol "heals" the stubborn agent between rounds.
            state[0] = 9;
            let mut c = Corruptor::new(&mut state, &set, 1);
            adv.corrupt(round, &mut c, &mut rng);
            assert_eq!(state[0], 9, "single allowed value: nothing to assert");
        }
        // With two allowed values the pin is real.
        let (mut state, set) = setup(vec![3, 9, 9, 9]);
        for round in 0..3 {
            state[0] = 9;
            let mut c = Corruptor::new(&mut state, &set, 1);
            adv.corrupt(round, &mut c, &mut rng);
            assert_eq!(state[0], 3, "round {round}: stubborn pin lost");
        }
    }

    #[test]
    fn all_specs_build() {
        for spec in [
            AdversarySpec::None,
            AdversarySpec::Random,
            AdversarySpec::Balancer,
            AdversarySpec::Reviver { revive_at: 10 },
            AdversarySpec::MedianPusher,
            AdversarySpec::Stubborn,
        ] {
            let adv = spec.build();
            assert!(!adv.name().is_empty());
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn random_corruptor_stays_within_bounds() {
        let (mut state, set) = setup(vec![3, 7, 3, 7, 3, 7, 3, 7]);
        let before = state.clone();
        let mut rng = Xoshiro256pp::seed(5);
        let mut adv = RandomCorruptor;
        let mut c = Corruptor::new(&mut state, &set, 3);
        adv.corrupt(0, &mut c, &mut rng);
        let changed = state.iter().zip(&before).filter(|(a, b)| a != b).count();
        assert!(changed <= 3, "budget violated: {changed}");
        for &v in &state {
            assert!(set.contains(v));
        }
    }

    // --- histogram level ---

    #[test]
    fn hist_corruptor_moves_and_enforces() {
        let set = ValueSet::from_values(&[1, 2, 3]);
        let mut loads = vec![(1u32, 100u64), (2, 50)];
        let mut c = HistCorruptor::new(&mut loads, &set, 30);
        assert_eq!(c.move_balls(1, 2, 20), 20);
        assert_eq!(c.remaining(), 10);
        // Out-of-set target refused.
        assert_eq!(c.move_balls(1, 99, 5), 0);
        // Budget-limited.
        assert_eq!(c.move_balls(1, 3, 50), 10);
        assert_eq!(c.remaining(), 0);
        assert_eq!(loads, vec![(1, 70), (2, 70), (3, 10)]);
    }

    #[test]
    fn hist_corruptor_drains_bin() {
        let set = ValueSet::from_values(&[1, 2]);
        let mut loads = vec![(1u32, 5u64), (2, 5)];
        let mut c = HistCorruptor::new(&mut loads, &set, 100);
        assert_eq!(c.move_balls(1, 2, 100), 5);
        assert_eq!(loads, vec![(2, 10)]);
    }

    #[test]
    fn hist_balancer_balances() {
        let set = ValueSet::from_values(&[0, 1]);
        let mut loads = vec![(0u32, 80u64), (1, 20)];
        let mut rng = Xoshiro256pp::seed(6);
        let mut adv = HistBalancer;
        let mut c = HistCorruptor::new(&mut loads, &set, 1000);
        adv.corrupt(0, &mut c, &mut rng);
        assert_eq!(loads, vec![(0, 50), (1, 50)]);
    }

    #[test]
    fn hist_balancer_resurrects_dead_bin() {
        let set = ValueSet::from_values(&[0, 1]);
        let mut loads = vec![(0u32, 100u64)];
        let mut rng = Xoshiro256pp::seed(7);
        let mut adv = HistBalancer;
        let mut c = HistCorruptor::new(&mut loads, &set, 8);
        adv.corrupt(0, &mut c, &mut rng);
        assert_eq!(loads, vec![(0, 92), (1, 8)]);
    }
}

//! Dense balls-into-bins configurations and their observables.
//!
//! A [`Config`] stores the value of every ball. The analysis-side
//! observables mirror the quantities in the paper: support size, plurality
//! (the candidate consensus value), the median ball `m_t` (§2.1), and the
//! two-bin imbalances `Δ_t` and `Ψ_t` (§3).

use std::collections::BTreeMap;

use crate::value::Value;

/// A configuration: the current value of each of the `n` balls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    values: Vec<Value>,
}

impl Config {
    /// Wrap a value vector.
    ///
    /// # Panics
    /// Panics if empty.
    pub fn new(values: Vec<Value>) -> Self {
        assert!(!values.is_empty(), "Config: empty");
        Self { values }
    }

    /// Number of balls.
    #[inline]
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// Read-only view of all ball values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable view (used by adversaries through the corruptor and by
    /// engines through the runner).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Consume into the raw vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Bin loads, ascending by value.
    pub fn counts(&self) -> Vec<(Value, u64)> {
        let mut map: BTreeMap<Value, u64> = BTreeMap::new();
        for &v in &self.values {
            *map.entry(v).or_insert(0) += 1;
        }
        map.into_iter().collect()
    }

    /// Number of distinct values present.
    pub fn support_size(&self) -> usize {
        self.counts().len()
    }

    /// `Some(v)` iff every ball holds `v` (stable consensus reached).
    pub fn consensus_value(&self) -> Option<Value> {
        let first = self.values[0];
        self.values.iter().all(|&v| v == first).then_some(first)
    }

    /// The most loaded bin `(value, count)`; ties broken toward the smaller
    /// value (deterministic reporting).
    pub fn plurality(&self) -> (Value, u64) {
        self.counts()
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("nonempty config")
    }

    /// Number of balls **not** holding `v`.
    pub fn disagreement_with(&self, v: Value) -> u64 {
        self.values.iter().filter(|&&x| x != v).count() as u64
    }

    /// The paper's median bin `m_t` (§2.1): the value of the ⌈n/2⌉-th
    /// smallest ball, computed in `O(m)` from the counts.
    pub fn median_value(&self) -> Value {
        let n = self.values.len() as u64;
        let target = n.div_ceil(2);
        let mut acc = 0u64;
        for (v, c) in self.counts() {
            acc += c;
            if acc >= target {
                return v;
            }
        }
        unreachable!("counts must cover all balls")
    }

    /// Two-bin imbalance `Δ_t = (Y_t − X_t)/2` where `X, Y` are the smaller/
    /// larger loads of the **two most loaded** bins (exact match to §3 when
    /// only two bins are non-empty; a useful progress measure otherwise).
    pub fn imbalance(&self) -> f64 {
        let mut counts: Vec<u64> = self.counts().into_iter().map(|(_, c)| c).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.first().copied().unwrap_or(0);
        let second = counts.get(1).copied().unwrap_or(0);
        (top as f64 - second as f64) / 2.0
    }

    /// Labelled two-bin imbalance `Ψ_t = (R_t − L_t)/2` for configurations
    /// with support ≤ 2 (right = larger value). `None` if support > 2.
    pub fn labelled_imbalance(&self) -> Option<f64> {
        let counts = self.counts();
        match counts.as_slice() {
            [(_, _)] => Some(self.n() as f64 / 2.0),
            [(_, l), (_, r)] => Some((*r as f64 - *l as f64) / 2.0),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_support() {
        let c = Config::new(vec![3, 1, 3, 3, 2, 1]);
        assert_eq!(c.counts(), vec![(1, 2), (2, 1), (3, 3)]);
        assert_eq!(c.support_size(), 3);
        assert_eq!(c.n(), 6);
    }

    #[test]
    fn consensus_detection() {
        assert_eq!(Config::new(vec![4, 4, 4]).consensus_value(), Some(4));
        assert_eq!(Config::new(vec![4, 4, 5]).consensus_value(), None);
        assert_eq!(Config::new(vec![9]).consensus_value(), Some(9));
    }

    #[test]
    fn plurality_and_disagreement() {
        let c = Config::new(vec![1, 2, 2, 3, 2, 1]);
        assert_eq!(c.plurality(), (2, 3));
        assert_eq!(c.disagreement_with(2), 3);
        assert_eq!(c.disagreement_with(7), 6);
    }

    #[test]
    fn plurality_tie_breaks_to_smaller_value() {
        let c = Config::new(vec![5, 5, 9, 9]);
        assert_eq!(c.plurality(), (5, 2));
    }

    #[test]
    fn median_value_odd_even() {
        // 5 balls: median is the 3rd smallest.
        assert_eq!(Config::new(vec![1, 2, 3, 4, 5]).median_value(), 3);
        // 6 balls: ⌈6/2⌉ = 3rd smallest.
        assert_eq!(Config::new(vec![1, 1, 2, 9, 9, 9]).median_value(), 2);
        // Heavily skewed.
        assert_eq!(Config::new(vec![7, 7, 7, 7, 100]).median_value(), 7);
    }

    #[test]
    fn imbalance_two_bins() {
        let c = Config::new(vec![0, 0, 0, 1]); // loads 3 and 1
        assert_eq!(c.imbalance(), 1.0);
        assert_eq!(c.labelled_imbalance(), Some(-1.0)); // right bin smaller
        let d = Config::new(vec![0, 1, 1, 1]);
        assert_eq!(d.labelled_imbalance(), Some(1.0));
    }

    #[test]
    fn imbalance_single_bin() {
        let c = Config::new(vec![2, 2, 2, 2]);
        assert_eq!(c.imbalance(), 2.0); // top=4, second=0
        assert_eq!(c.labelled_imbalance(), Some(2.0));
    }

    #[test]
    fn labelled_imbalance_none_for_many_bins() {
        let c = Config::new(vec![0, 1, 2]);
        assert_eq!(c.labelled_imbalance(), None);
    }
}

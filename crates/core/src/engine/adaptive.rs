//! The adaptive engine: dense while the support is wide, histogram once it
//! narrows.
//!
//! Every trial of the median rule spends its early rounds with many live
//! values (where the dense `O(n)` engine is the only exact option for
//! arbitrary protocols) and its long tail near consensus with a handful
//! (where the `O(m²)` multinomial histogram engine simulates the *same*
//! process for free — the median rule's destination law depends only on the
//! load CDF, see [`super::hist`]). The adaptive engine runs dense, maintains
//! an **incremental histogram** of loads as balls move, and hands off to the
//! histogram engine the moment the number of distinct values drops to the
//! configured threshold.
//!
//! The handoff is *statistically exact*: conditioned on the loads at the
//! handoff round, the dense process and the multinomial process induce the
//! same distribution over subsequent load trajectories. It is **not**
//! samplewise identical — the trajectory after the handoff is driven by the
//! histogram engine's RNG stream — so seed-for-seed comparisons against
//! `DenseSeq` agree in distribution, not bit-for-bit
//! (`tests/adaptive_props.rs` pins this with a KS-style check).
//!
//! The incremental histogram also powers the runner's per-round observables
//! ([`crate::runner::RoundObs`]): support, plurality, median, and imbalance
//! fall out of one `O(m)` walk instead of the previous `O(n)` hash-map
//! rebuild over the full state.

use std::collections::BTreeMap;

use crate::histogram::Histogram;
use crate::runner::RoundObs;
use crate::value::Value;

/// Default handoff threshold: hand off once at most this many distinct
/// values survive. `m = 64` keeps the histogram step (`O(m²)` binomial
/// draws) far below one dense round even at `n = 10⁴`.
pub const DEFAULT_HANDOFF_SUPPORT: usize = 64;

/// Live bin loads maintained incrementally as balls move.
///
/// Updates are `O(log m)` per *changed* ball (balls that keep their value
/// cost one comparison), observables are one `O(m)` ordered walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalHistogram {
    counts: BTreeMap<Value, u64>,
    n: u64,
}

impl IncrementalHistogram {
    /// Count a full state vector (`O(n)`; done once per trial).
    pub fn from_values(state: &[Value]) -> Self {
        let mut this = Self {
            counts: BTreeMap::new(),
            n: 0,
        };
        this.rebuild_from(state);
        this
    }

    /// Recount a fresh trial's state into this maintainer. The tree itself
    /// cannot keep its nodes across a clear, so this is `O(m)` small
    /// allocations — still far below the `O(n)` state walk (and the tree
    /// path only serves value-inventing rules; see [`RankedCounts`] for the
    /// allocation-free fast path).
    pub fn rebuild_from(&mut self, state: &[Value]) {
        self.counts.clear();
        for &v in state {
            *self.counts.entry(v).or_insert(0) += 1;
        }
        self.n = state.len() as u64;
    }

    /// Total number of balls.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of distinct live values.
    #[inline]
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Balls currently holding `v`.
    pub fn count_of(&self, v: Value) -> u64 {
        self.counts.get(&v).copied().unwrap_or(0)
    }

    /// Record one ball moving `from → to` (no-op when equal).
    ///
    /// # Panics
    /// Panics if no ball holds `from`.
    pub fn record_move(&mut self, from: Value, to: Value) {
        if from == to {
            return;
        }
        match self.counts.get_mut(&from) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(&from);
            }
            None => panic!("IncrementalHistogram: move from empty bin {from}"),
        }
        *self.counts.entry(to).or_insert(0) += 1;
    }

    /// Fold in one engine round: every ball whose value changed between
    /// `old` and `new` moves. Cost is one pass of comparisons plus
    /// `O(log m)` per changed ball — near consensus almost nothing changes,
    /// which is exactly when rounds are most numerous.
    pub fn apply_step(&mut self, old: &[Value], new: &[Value]) {
        debug_assert_eq!(old.len(), new.len());
        for (&o, &n) in old.iter().zip(new) {
            if o != n {
                self.record_move(o, n);
            }
        }
    }

    /// Snapshot as an immutable [`Histogram`] (the handoff point).
    pub fn to_histogram(&self) -> Histogram {
        let pairs: Vec<(Value, u64)> = self.counts.iter().map(|(&v, &c)| (v, c)).collect();
        Histogram::new(&pairs)
    }

    /// Derive the round observables in one ordered `O(m)` walk.
    pub fn observe(&self) -> RoundObs {
        observe_bins(self.n, self.counts.iter().map(|(&v, &c)| (v, c)))
    }
}

/// Round observables straight from an aggregated histogram (post-handoff).
pub fn observe_histogram(h: &Histogram) -> RoundObs {
    observe_bins(h.n(), h.bins().iter().copied())
}

/// Linear-probe insert of `rank` for a value known to be absent — the one
/// probe loop shared by [`RankedCounts::rebuild_from`]'s grow-rehash and
/// its final re-key.
#[inline]
fn insert_rank(table: &mut [u32], shift: u32, mask: usize, v: Value, rank: u32) {
    let mut slot = (RankedCounts::hash(v) >> shift) as usize & mask;
    while table[slot] != 0 {
        slot = (slot + 1) & mask;
    }
    table[slot] = rank + 1;
}

/// Rank-indexed load counts over a *fixed* value universe — the fast
/// maintainer for validity-preserving protocols, where every value a ball
/// can ever hold comes from the initial set.
///
/// Values are mapped to their rank in the sorted initial set through a small
/// open-addressing hash table (multiply-shift, linear probing), so one ball
/// move costs two O(1) lookups and two array bumps — roughly an order of
/// magnitude cheaper than a tree or SipHash map update, which is what makes
/// per-round maintenance affordable mid-trial when most balls move.
#[derive(Debug, Clone, Default)]
pub struct RankedCounts {
    /// Sorted distinct values of the universe (rank → value).
    values: Vec<Value>,
    /// Load per rank (same order as `values`).
    counts: Vec<u64>,
    /// Open-addressing table: slot → rank+1, 0 = empty. Power-of-two size.
    table: Vec<u32>,
    /// `table.len() - 1`.
    mask: usize,
    /// Multiply-shift: home slot = (v · K) >> shift (top bits of the hash).
    shift: u32,
    /// Number of ranks with a nonzero load.
    support: usize,
    n: u64,
    /// Rebuild scratch: `(value, load)` pairs co-sorted between passes.
    pairs_scratch: Vec<(Value, u64)>,
}

impl RankedCounts {
    /// Build from the initial state (`O(n + m log m)`; once per trial).
    pub fn from_values(state: &[Value]) -> Self {
        let mut this = Self::default();
        this.rebuild_from(state);
        this
    }

    /// Recount a fresh trial's state, reusing every internal buffer
    /// (`values`, the open-addressing `table`, `counts`): the per-trial
    /// path of workspace reuse. Unlike the seed construction this never
    /// sorts the full state — distinct values are discovered through the
    /// probe table in one `O(n)` pass, then only the `m` survivors are
    /// sorted into rank order.
    ///
    /// # Panics
    /// Panics if `state` is empty.
    pub fn rebuild_from(&mut self, state: &[Value]) {
        assert!(!state.is_empty(), "RankedCounts: empty state");
        self.n = state.len() as u64;
        self.values.clear();
        self.counts.clear();
        self.resize_table(self.table.len().max(8));
        // Pass 1: discover distinct values (insertion order) and their
        // loads, growing the table whenever the load factor would pass 1/2.
        for &v in state {
            if 2 * (self.values.len() + 1) > self.table.len() {
                self.resize_table(self.table.len() * 2);
                for (rank, &u) in self.values.iter().enumerate() {
                    insert_rank(&mut self.table, self.shift, self.mask, u, rank as u32);
                }
            }
            let mut slot = (Self::hash(v) >> self.shift) as usize & self.mask;
            loop {
                let e = self.table[slot];
                if e == 0 {
                    self.values.push(v);
                    self.counts.push(1);
                    self.table[slot] = self.values.len() as u32;
                    break;
                }
                let rank = (e - 1) as usize;
                if self.values[rank] == v {
                    self.counts[rank] += 1;
                    break;
                }
                slot = (slot + 1) & self.mask;
            }
        }
        // Pass 2: establish rank order (value-ascending) and re-key the
        // table with the final ranks. The re-key rebuilds at the size a
        // fresh construction would use, so a huge-universe trial does not
        // leave every later small trial through the same workspace paying
        // full-table zeroing passes forever.
        self.pairs_scratch.clear();
        self.pairs_scratch
            .extend(self.values.iter().copied().zip(self.counts.iter().copied()));
        self.pairs_scratch.sort_unstable_by_key(|&(v, _)| v);
        self.values.clear();
        self.counts.clear();
        for &(v, c) in &self.pairs_scratch {
            self.values.push(v);
            self.counts.push(c);
        }
        self.resize_table((2 * self.values.len()).next_power_of_two().max(8));
        for (rank, &v) in self.values.iter().enumerate() {
            insert_rank(&mut self.table, self.shift, self.mask, v, rank as u32);
        }
        // Every universe value came from the state, so all loads are ≥ 1.
        self.support = self.values.len();
    }

    /// Zero the probe table at `table_len` slots (a power of two) and
    /// refresh the derived hash parameters.
    fn resize_table(&mut self, table_len: usize) {
        debug_assert!(table_len.is_power_of_two());
        self.table.clear();
        self.table.resize(table_len, 0);
        self.mask = table_len - 1;
        self.shift = 32 - table_len.trailing_zeros();
    }

    #[inline(always)]
    fn hash(v: Value) -> u32 {
        v.wrapping_mul(0x9E37_79B9)
    }

    /// Rank of `v` in the fixed universe.
    ///
    /// # Panics
    /// Panics if `v` was not in the initial state (the protocol invented a
    /// value — use [`IncrementalHistogram`] for such rules).
    #[inline]
    fn rank_of(&self, v: Value) -> usize {
        let mut slot = (Self::hash(v) >> self.shift) as usize & self.mask;
        loop {
            let e = self.table[slot];
            assert!(e != 0, "RankedCounts: value {v} outside the fixed universe");
            let rank = (e - 1) as usize;
            if self.values[rank] == v {
                return rank;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Total number of balls.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of distinct live values.
    #[inline]
    pub fn support_size(&self) -> usize {
        self.support
    }

    /// Balls currently holding `v` (0 for values outside the universe).
    pub fn count_of(&self, v: Value) -> u64 {
        let mut slot = (Self::hash(v) >> self.shift) as usize & self.mask;
        loop {
            let e = self.table[slot];
            if e == 0 {
                return 0;
            }
            let rank = (e - 1) as usize;
            if self.values[rank] == v {
                return self.counts[rank];
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Record one ball moving `from → to` (no-op when equal).
    #[inline]
    pub fn record_move(&mut self, from: Value, to: Value) {
        if from == to {
            return;
        }
        let rf = self.rank_of(from);
        let rt = self.rank_of(to);
        debug_assert!(self.counts[rf] > 0, "move from empty bin {from}");
        self.counts[rf] -= 1;
        if self.counts[rf] == 0 {
            self.support -= 1;
        }
        if self.counts[rt] == 0 {
            self.support += 1;
        }
        self.counts[rt] += 1;
    }

    /// Universe-size cutoff for the recount fast path of
    /// [`RankedCounts::apply_step`]: below it the whole rank table is a few
    /// cache lines and one branch-free probe per ball beats a diff walk
    /// whose `old != new` branch mispredicts on every second ball mid-trial.
    const RECOUNT_UNIVERSE_MAX: usize = 64;

    /// Fold in one engine round (see
    /// [`IncrementalHistogram::apply_step`]).
    ///
    /// Two strategies with identical results: for small universes, recount
    /// `new` outright (one predictable probe per ball, no data-dependent
    /// branches); otherwise diff `old` against `new` and move only the
    /// changed balls (near consensus almost nothing changes, which is
    /// exactly when rounds are most numerous).
    pub fn apply_step(&mut self, old: &[Value], new: &[Value]) {
        debug_assert_eq!(old.len(), new.len());
        if self.values.len() <= Self::RECOUNT_UNIVERSE_MAX {
            self.counts.iter_mut().for_each(|c| *c = 0);
            for &v in new {
                let rank = self.rank_of(v);
                self.counts[rank] += 1;
            }
            self.support = self.counts.iter().filter(|&&c| c > 0).count();
            return;
        }
        for (&o, &n) in old.iter().zip(new) {
            if o != n {
                self.record_move(o, n);
            }
        }
    }

    /// The live `(value, load)` pairs, value-ascending.
    pub fn live_bins_iter(&self) -> impl Iterator<Item = (Value, u64)> + '_ {
        self.values
            .iter()
            .zip(&self.counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&v, &c)| (v, c))
    }

    /// Snapshot the live bins as an immutable [`Histogram`].
    pub fn to_histogram(&self) -> Histogram {
        Histogram::new(&self.live_bins_iter().collect::<Vec<_>>())
    }

    /// Derive the round observables in one `O(m)` walk over the universe.
    pub fn observe(&self) -> RoundObs {
        observe_bins(self.n, self.live_bins_iter())
    }
}

/// Per-trial load maintainer: rank-indexed for rules that can only output
/// values they saw, tree-backed for value-inventing rules (the mean rule).
#[derive(Debug, Clone)]
pub enum LoadCounts {
    /// Fixed-universe fast path.
    Ranked(RankedCounts),
    /// Open-universe fallback.
    Tree(IncrementalHistogram),
}

impl LoadCounts {
    /// Choose the maintainer for a protocol: ranked iff validity-preserving.
    pub fn for_state(state: &[Value], validity_preserving: bool) -> Self {
        if validity_preserving {
            LoadCounts::Ranked(RankedCounts::from_values(state))
        } else {
            LoadCounts::Tree(IncrementalHistogram::from_values(state))
        }
    }

    /// [`LoadCounts::for_state`] reusing a previous trial's maintainer when
    /// the kind matches (the workspace-reuse path) — behaviorally identical
    /// to a fresh build, without the per-trial `values`/`table`/`counts`
    /// allocations.
    pub fn rebuild(prev: Option<LoadCounts>, state: &[Value], validity_preserving: bool) -> Self {
        match (prev, validity_preserving) {
            (Some(LoadCounts::Ranked(mut r)), true) => {
                r.rebuild_from(state);
                LoadCounts::Ranked(r)
            }
            (Some(LoadCounts::Tree(mut t)), false) => {
                t.rebuild_from(state);
                LoadCounts::Tree(t)
            }
            (_, vp) => Self::for_state(state, vp),
        }
    }

    /// Refill `set` with the maintainer's distinct values (ascending).
    /// Right after a (re)build from the initial state these are exactly the
    /// initial value set, so the runner shares one pass instead of
    /// re-sorting the whole state.
    pub fn rebuild_value_set(&self, set: &mut crate::value::ValueSet) {
        match self {
            LoadCounts::Ranked(r) => set.rebuild_sorted_unique(r.values.iter().copied()),
            LoadCounts::Tree(t) => set.rebuild_sorted_unique(t.counts.keys().copied()),
        }
    }

    /// Snapshot the live bins into `slot`, reusing the histogram allocation
    /// when one is parked there (the adaptive handoff path).
    pub fn snapshot_into(&self, slot: &mut Option<Histogram>) {
        match slot {
            Some(h) => match self {
                LoadCounts::Ranked(r) => h.rebuild_from_sorted(r.live_bins_iter()),
                LoadCounts::Tree(t) => {
                    h.rebuild_from_sorted(t.counts.iter().map(|(&v, &c)| (v, c)))
                }
            },
            None => *slot = Some(self.to_histogram()),
        }
    }

    /// Number of distinct live values.
    pub fn support_size(&self) -> usize {
        match self {
            LoadCounts::Ranked(r) => r.support_size(),
            LoadCounts::Tree(t) => t.support_size(),
        }
    }

    /// Balls currently holding `v`.
    pub fn count_of(&self, v: Value) -> u64 {
        match self {
            LoadCounts::Ranked(r) => r.count_of(v),
            LoadCounts::Tree(t) => t.count_of(v),
        }
    }

    /// Record one ball moving `from → to`.
    pub fn record_move(&mut self, from: Value, to: Value) {
        match self {
            LoadCounts::Ranked(r) => r.record_move(from, to),
            LoadCounts::Tree(t) => t.record_move(from, to),
        }
    }

    /// Fold in one engine round by diffing the state buffers.
    pub fn apply_step(&mut self, old: &[Value], new: &[Value]) {
        match self {
            LoadCounts::Ranked(r) => r.apply_step(old, new),
            LoadCounts::Tree(t) => t.apply_step(old, new),
        }
    }

    /// Snapshot as an immutable [`Histogram`].
    pub fn to_histogram(&self) -> Histogram {
        match self {
            LoadCounts::Ranked(r) => r.to_histogram(),
            LoadCounts::Tree(t) => t.to_histogram(),
        }
    }

    /// The live `(value, load)` pairs, value-ascending (for the
    /// load-sampled dense round).
    pub fn live_bins(&self) -> Vec<(Value, u64)> {
        let mut out = Vec::new();
        self.live_bins_into(&mut out);
        out
    }

    /// [`LoadCounts::live_bins`] into a reused buffer.
    pub fn live_bins_into(&self, out: &mut Vec<(Value, u64)>) {
        out.clear();
        match self {
            LoadCounts::Ranked(r) => out.extend(r.live_bins_iter()),
            LoadCounts::Tree(t) => out.extend(t.counts.iter().map(|(&v, &c)| (v, c))),
        }
    }

    /// Rebuild a [`crate::engine::dense::LoadSampler`] from the live bins —
    /// the load-sampled dense round's per-round refresh. Streams the bins
    /// straight into the sampler (no intermediate pair vector) and rebuilds
    /// its alias table in place, so a sampled round allocates nothing at
    /// steady state.
    pub fn rebuild_sampler(&self, sampler: &mut crate::engine::dense::LoadSampler) {
        match self {
            LoadCounts::Ranked(r) => sampler.rebuild(r.live_bins_iter(), r.n()),
            LoadCounts::Tree(t) => sampler.rebuild(t.counts.iter().map(|(&v, &c)| (v, c)), t.n()),
        }
    }

    /// Derive the round observables.
    pub fn observe(&self) -> RoundObs {
        match self {
            LoadCounts::Ranked(r) => r.observe(),
            LoadCounts::Tree(t) => t.observe(),
        }
    }
}

/// Shared single-pass observable derivation over value-ascending bins.
fn observe_bins(n: u64, bins: impl Iterator<Item = (Value, u64)>) -> RoundObs {
    let target = n.div_ceil(2);
    let mut support = 0usize;
    let mut plurality: (Value, u64) = (0, 0);
    let mut top = 0u64;
    let mut second = 0u64;
    let mut acc = 0u64;
    let mut median: Option<Value> = None;
    for (v, c) in bins {
        support += 1;
        // Plurality: highest count, ties to the smaller value (first seen in
        // ascending value order).
        if c > plurality.1 {
            plurality = (v, c);
        }
        // Two largest loads for the imbalance Δ.
        if c > top {
            second = top;
            top = c;
        } else if c > second {
            second = c;
        }
        // Median bin: first bin where the load prefix reaches ⌈n/2⌉.
        if median.is_none() {
            acc += c;
            if acc >= target {
                median = Some(v);
            }
        }
    }
    RoundObs {
        round: 0,
        support,
        plurality_value: plurality.0,
        plurality_count: plurality.1,
        median_value: median.expect("nonempty bins"),
        imbalance: (top as f64 - second as f64) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_counts() {
        let inc = IncrementalHistogram::from_values(&[3, 1, 3, 3, 9]);
        assert_eq!(inc.n(), 5);
        assert_eq!(inc.support_size(), 3);
        assert_eq!(inc.count_of(3), 3);
        assert_eq!(inc.count_of(7), 0);
    }

    #[test]
    fn moves_update_counts_and_drop_empty_bins() {
        let mut inc = IncrementalHistogram::from_values(&[0, 0, 1]);
        inc.record_move(1, 0);
        assert_eq!(inc.support_size(), 1);
        assert_eq!(inc.count_of(0), 3);
        inc.record_move(0, 5);
        assert_eq!(inc.count_of(5), 1);
        assert_eq!(inc.n(), 3);
    }

    #[test]
    #[should_panic]
    fn move_from_empty_bin_panics() {
        let mut inc = IncrementalHistogram::from_values(&[0]);
        inc.record_move(9, 0);
    }

    #[test]
    fn apply_step_tracks_engine_round() {
        let old = vec![0u32, 1, 2, 2, 1];
        let new = vec![0u32, 2, 2, 2, 0];
        let mut inc = IncrementalHistogram::from_values(&old);
        inc.apply_step(&old, &new);
        assert_eq!(inc, IncrementalHistogram::from_values(&new));
    }

    #[test]
    fn observe_matches_histogram_observables() {
        let state = vec![5u32, 5, 5, 2, 2, 9, 9, 9, 9];
        let inc = IncrementalHistogram::from_values(&state);
        let h = inc.to_histogram();
        let obs = inc.observe();
        assert_eq!(obs.support, h.support_size());
        assert_eq!((obs.plurality_value, obs.plurality_count), h.plurality());
        assert_eq!(obs.median_value, h.median_value());
        assert_eq!(obs.imbalance, h.imbalance());
        let obs2 = observe_histogram(&h);
        assert_eq!(obs.support, obs2.support);
        assert_eq!(obs.plurality_value, obs2.plurality_value);
        assert_eq!(obs.median_value, obs2.median_value);
        assert_eq!(obs.imbalance, obs2.imbalance);
    }

    #[test]
    fn ranked_rebuild_reuses_buffers_and_matches_fresh() {
        let mut r = RankedCounts::from_values(&[7, 7, 3, 9, 3, 3]);
        // Dirty it with a different, larger universe, then rebuild small.
        let big: Vec<Value> = (0..500u32).map(|i| i * 3).collect();
        r.rebuild_from(&big);
        assert_eq!(r.support_size(), 500);
        r.rebuild_from(&[7, 7, 3, 9, 3, 3]);
        let fresh = RankedCounts::from_values(&[7, 7, 3, 9, 3, 3]);
        assert_eq!(r.n(), fresh.n());
        assert_eq!(r.support_size(), 3);
        for v in [3u32, 7, 9, 100] {
            assert_eq!(r.count_of(v), fresh.count_of(v), "value {v}");
        }
        assert_eq!(r.observe(), fresh.observe());
        assert_eq!(r.to_histogram(), fresh.to_histogram());
    }

    #[test]
    fn ranked_rebuild_shrinks_an_oversized_probe_table() {
        let small = [4u32, 4, 9];
        let mut r = RankedCounts::from_values(&small);
        let fresh_len = r.table.len();
        let big: Vec<Value> = (0..10_000u32).collect();
        r.rebuild_from(&big);
        assert!(r.table.len() >= 20_000);
        r.rebuild_from(&small);
        assert_eq!(
            r.table.len(),
            fresh_len,
            "re-key must restore the fresh-construction table size"
        );
        assert_eq!(r.count_of(4), 2);
        assert_eq!(r.count_of(9), 1);
    }

    #[test]
    fn load_counts_rebuild_switches_maintainer_kind() {
        let state = [1u32, 1, 2, 5];
        let ranked = LoadCounts::rebuild(None, &state, true);
        assert!(matches!(ranked, LoadCounts::Ranked(_)));
        // Kind mismatch: fall back to a fresh build of the right kind.
        let tree = LoadCounts::rebuild(Some(ranked), &state, false);
        assert!(matches!(tree, LoadCounts::Tree(_)));
        let back = LoadCounts::rebuild(Some(tree), &state, true);
        assert!(matches!(back, LoadCounts::Ranked(_)));
        assert_eq!(back.count_of(1), 2);
        let mut set = crate::value::ValueSet::default();
        back.rebuild_value_set(&mut set);
        assert_eq!(set.values(), &[1, 2, 5]);
    }

    #[test]
    fn observe_plurality_tie_prefers_smaller_value() {
        let inc = IncrementalHistogram::from_values(&[4, 4, 7, 7, 1]);
        let obs = inc.observe();
        assert_eq!(obs.plurality_value, 4);
        assert_eq!(obs.plurality_count, 2);
    }
}

//! The dense engine: `O(n)` per round over a flat value vector.
//!
//! Each ball's two (or `k`) samples are drawn from a [`CounterRng`] at
//! coordinates `(seed, round·n + ball)`. Consequences:
//!
//! * sequential and parallel execution produce **identical** states;
//! * a round can be recomputed for any single ball (useful in tests);
//! * rejection in the bounded-uniform sampler consumes extra words from the
//!   ball's *own* stream only, so streams never interfere.

use stabcon_util::rng::{gen_index, CounterRng};

use crate::protocol::{Protocol, MAX_SAMPLES};
use crate::value::Value;

/// Advance one synchronous round sequentially: reads `old`, writes `new`.
///
/// # Panics
/// Panics if `old.len() != new.len()` or the protocol requests more than
/// [`MAX_SAMPLES`] samples.
pub fn step_seq(old: &[Value], new: &mut [Value], protocol: &dyn Protocol, seed: u64, round: u64) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    update_range(old, new, 0, protocol, seed, round);
}

/// Advance one synchronous round with `threads` workers. Bit-identical to
/// [`step_seq`].
pub fn step_par(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &dyn Protocol,
    seed: u64,
    round: u64,
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    if threads <= 1 || old.len() < 4096 {
        update_range(old, new, 0, protocol, seed, round);
        return;
    }
    stabcon_par::par_chunks_mut(threads, new, 1024, |offset, chunk| {
        update_range(old, chunk, offset, protocol, seed, round);
    });
}

/// Compute the new values for balls `offset..offset + chunk.len()`.
fn update_range(
    old: &[Value],
    chunk: &mut [Value],
    offset: usize,
    protocol: &dyn Protocol,
    seed: u64,
    round: u64,
) {
    let n = old.len() as u64;
    let k = protocol.samples();
    assert!(k <= MAX_SAMPLES, "protocol requests too many samples");
    let mut samples = [0 as Value; MAX_SAMPLES];
    for (j, slot) in chunk.iter_mut().enumerate() {
        let ball = (offset + j) as u64;
        let mut rng = CounterRng::new(seed, round.wrapping_mul(n).wrapping_add(ball));
        for sample in samples.iter_mut().take(k) {
            *sample = old[gen_index(&mut rng, n) as usize];
        }
        *slot = protocol.combine(old[ball as usize], &samples[..k]);
    }
}

/// Advance one *partially synchronous* round: each ball updates
/// independently with probability `update_prob`, otherwise keeps its value
/// (the α-asynchrony ablation — the paper assumes fully synchronized rounds;
/// this knob checks the dynamics survive partial participation).
///
/// The participation coin is the first word of each ball's counter stream,
/// so sequential/parallel determinism is preserved.
///
/// # Panics
/// Panics if `update_prob ∉ [0, 1]` or buffer lengths differ.
pub fn step_partial(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &dyn Protocol,
    seed: u64,
    round: u64,
    update_prob: f64,
) {
    assert!(
        (0.0..=1.0).contains(&update_prob),
        "update_prob = {update_prob}"
    );
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    if update_prob >= 1.0 {
        step_par(threads, old, new, protocol, seed, round);
        return;
    }
    let body = |offset: usize, chunk: &mut [Value]| {
        let n = old.len() as u64;
        let k = protocol.samples();
        let mut samples = [0 as Value; MAX_SAMPLES];
        for (j, slot) in chunk.iter_mut().enumerate() {
            let ball = (offset + j) as u64;
            let mut rng = CounterRng::new(seed, round.wrapping_mul(n).wrapping_add(ball));
            if stabcon_util::rng::gen_f64(&mut rng) >= update_prob {
                *slot = old[ball as usize];
                continue;
            }
            for sample in samples.iter_mut().take(k) {
                *sample = old[gen_index(&mut rng, n) as usize];
            }
            *slot = protocol.combine(old[ball as usize], &samples[..k]);
        }
    };
    if threads <= 1 || old.len() < 4096 {
        body(0, new);
    } else {
        stabcon_par::par_chunks_mut(threads, new, 1024, body);
    }
}

/// Recompute the post-round value of a single ball (test/debug helper).
pub fn replay_ball(
    old: &[Value],
    ball: usize,
    protocol: &dyn Protocol,
    seed: u64,
    round: u64,
) -> Value {
    let n = old.len() as u64;
    let k = protocol.samples();
    let mut rng = CounterRng::new(seed, round.wrapping_mul(n).wrapping_add(ball as u64));
    let mut samples = [0 as Value; MAX_SAMPLES];
    for sample in samples.iter_mut().take(k) {
        *sample = old[gen_index(&mut rng, n) as usize];
    }
    protocol.combine(old[ball], &samples[..k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{MedianRule, MinRule, VoterRule};

    fn all_distinct(n: usize) -> Vec<Value> {
        (0..n as u32).collect()
    }

    #[test]
    fn seq_equals_par_exactly() {
        let old = all_distinct(10_000);
        let mut seq = vec![0; old.len()];
        step_seq(&old, &mut seq, &MedianRule, 42, 3);
        for threads in [2, 4, 8] {
            let mut par = vec![0; old.len()];
            step_par(threads, &old, &mut par, &MedianRule, 42, 3);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn replay_matches_step() {
        let old = all_distinct(500);
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MedianRule, 7, 11);
        for ball in [0usize, 1, 250, 499] {
            assert_eq!(replay_ball(&old, ball, &MedianRule, 7, 11), new[ball]);
        }
    }

    #[test]
    fn different_rounds_differ() {
        let old = all_distinct(1000);
        let mut a = vec![0; old.len()];
        let mut b = vec![0; old.len()];
        step_seq(&old, &mut a, &MedianRule, 5, 0);
        step_seq(&old, &mut b, &MedianRule, 5, 1);
        assert_ne!(a, b, "round index must enter the randomness");
    }

    #[test]
    fn different_seeds_differ() {
        let old = all_distinct(1000);
        let mut a = vec![0; old.len()];
        let mut b = vec![0; old.len()];
        step_seq(&old, &mut a, &MedianRule, 5, 0);
        step_seq(&old, &mut b, &MedianRule, 6, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn consensus_is_absorbing_for_median() {
        let old = vec![17 as Value; 2000];
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MedianRule, 1, 0);
        assert_eq!(old, new, "median of identical values must not move");
    }

    #[test]
    fn min_rule_monotone_nonincreasing() {
        let old = all_distinct(2000);
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MinRule, 3, 0);
        for (o, n) in old.iter().zip(&new) {
            assert!(n <= o, "min rule may never increase a value");
        }
    }

    #[test]
    fn voter_output_subset_of_input() {
        let old: Vec<Value> = (0..997u32).map(|i| i % 13).collect();
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &VoterRule, 9, 2);
        for v in &new {
            assert!(*v < 13);
        }
    }

    #[test]
    fn median_validity_over_many_rounds() {
        // The median rule may only ever hold initial values.
        let mut state: Vec<Value> = (0..512u32).map(|i| (i % 7) * 100).collect();
        let allowed: std::collections::HashSet<Value> = state.iter().copied().collect();
        let mut scratch = vec![0; state.len()];
        for round in 0..50 {
            step_seq(&state, &mut scratch, &MedianRule, 123, round);
            std::mem::swap(&mut state, &mut scratch);
            for v in &state {
                assert!(allowed.contains(v), "median invented value {v}");
            }
        }
    }

    #[test]
    fn partial_update_prob_one_equals_full_step() {
        let old = all_distinct(5000);
        let mut full = vec![0; old.len()];
        let mut partial = vec![0; old.len()];
        step_seq(&old, &mut full, &MedianRule, 8, 4);
        step_partial(1, &old, &mut partial, &MedianRule, 8, 4, 1.0);
        assert_eq!(full, partial);
    }

    #[test]
    fn partial_update_prob_zero_freezes() {
        let old = all_distinct(1000);
        let mut new = vec![0; old.len()];
        step_partial(1, &old, &mut new, &MedianRule, 8, 0, 0.0);
        assert_eq!(old, new);
    }

    #[test]
    fn partial_update_fraction_roughly_alpha() {
        // With all-distinct values, an updating ball almost surely changes
        // value; count changed balls ≈ α·n.
        let n = 20_000usize;
        let old = all_distinct(n);
        let mut new = vec![0; n];
        step_partial(1, &old, &mut new, &MedianRule, 77, 0, 0.3);
        let changed = old.iter().zip(&new).filter(|(a, b)| a != b).count();
        let frac = changed as f64 / n as f64;
        // An updating ball keeps its value iff it is the median of the
        // sampled triple; for the all-distinct configuration that happens
        // with probability 2·E[x(1−x)] = 1/3, so the expected change rate is
        // α·(2/3) = 0.2.
        assert!(
            (frac - 0.2).abs() < 0.02,
            "changed fraction {frac} vs expected 0.2"
        );
    }

    #[test]
    fn partial_update_seq_equals_par() {
        let old = all_distinct(10_000);
        let mut seq = vec![0; old.len()];
        let mut par = vec![0; old.len()];
        step_partial(1, &old, &mut seq, &MedianRule, 9, 2, 0.5);
        step_partial(4, &old, &mut par, &MedianRule, 9, 2, 0.5);
        assert_eq!(seq, par);
    }

    #[test]
    fn partial_update_still_converges() {
        let n = 2048usize;
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        let mut converged = false;
        for round in 0..3000u64 {
            if state.iter().all(|&v| v == state[0]) {
                converged = true;
                break;
            }
            step_partial(1, &state, &mut scratch, &MedianRule, 3, round, 0.25);
            std::mem::swap(&mut state, &mut scratch);
        }
        assert!(converged, "α = 0.25 asynchrony should only slow convergence");
    }

    #[test]
    fn two_bins_converge_within_bound() {
        // n = 4096, balanced split: O(log n) rounds w.h.p. — give 40× slack.
        let n = 4096usize;
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        let mut converged = None;
        for round in 0..500u64 {
            if state.iter().all(|&v| v == state[0]) {
                converged = Some(round);
                break;
            }
            step_seq(&state, &mut scratch, &MedianRule, 2024, round);
            std::mem::swap(&mut state, &mut scratch);
        }
        let r = converged.expect("median rule failed to converge in 500 rounds");
        assert!(r <= 500);
    }
}

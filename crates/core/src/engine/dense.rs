//! The dense engine: `O(n)` per round over a flat value vector.
//!
//! Each ball's two (or `k`) samples are drawn from a counter-RNG stream at
//! coordinates `(seed, round·n + ball)`. Consequences:
//!
//! * sequential and parallel execution produce **identical** states;
//! * a round can be recomputed for any single ball (useful in tests);
//! * rejection in the bounded-uniform sampler consumes extra words from the
//!   ball's *own* stream only, so streams never interfere.
//!
//! The step functions are **generic over the protocol** (`P: Protocol +
//! ?Sized`), so calls with a concrete rule (`&MedianRule`) monomorphize to
//! a branch-free inner loop with no virtual dispatch, while existing callers
//! holding a `&dyn Protocol` keep compiling unchanged (and pay dynamic
//! dispatch, exactly as before the refactor). The two paths are bit-identical
//! — same streams, same draws — which `mono_equals_dyn` pins down.
//!
//! Hot-loop engineering (measured ≥2× on the median rule at `n = 10⁶`):
//!
//! * the seed fold of the counter hash is hoisted once per chunk
//!   ([`CounterKey`]), and the stream fold once per ball — one `mix64` per
//!   draw remains;
//! * own values are read by iterating the chunk's slice of `old` in lock
//!   step with the output chunk, so no per-ball bounds check;
//! * the `k = 1` / `k = 2` sample counts (every paper rule) use fixed-size
//!   sample arrays whose indexing the compiler can see through, instead of a
//!   runtime-length slice of the `MAX_SAMPLES` scratch buffer.

use stabcon_util::dist::PackedAlias;
use stabcon_util::rng::{gen_index, CounterKey};

use crate::protocol::{Protocol, MAX_SAMPLES};
use crate::value::Value;

/// Advance one synchronous round sequentially: reads `old`, writes `new`.
///
/// # Panics
/// Panics if `old.len() != new.len()` or the protocol requests more than
/// [`MAX_SAMPLES`] samples.
pub fn step_seq<P: Protocol + ?Sized>(
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    update_range(old, new, 0, protocol, seed, round);
}

/// Advance one synchronous round with `threads` workers. Bit-identical to
/// [`step_seq`].
pub fn step_par<P: Protocol + ?Sized>(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    if threads <= 1 || old.len() < 4096 {
        update_range(old, new, 0, protocol, seed, round);
        return;
    }
    stabcon_par::par_chunks_mut(threads, new, 1024, |offset, chunk| {
        update_range(old, chunk, offset, protocol, seed, round);
    });
}

/// Compute the new values for balls `offset..offset + chunk.len()`.
fn update_range<P: Protocol + ?Sized>(
    old: &[Value],
    chunk: &mut [Value],
    offset: usize,
    protocol: &P,
    seed: u64,
    round: u64,
) {
    let n = old.len() as u64;
    let k = protocol.samples();
    assert!(k <= MAX_SAMPLES, "protocol requests too many samples");
    let key = CounterKey::new(seed);
    let stream_base = round.wrapping_mul(n).wrapping_add(offset as u64);
    let own_values = &old[offset..offset + chunk.len()];
    match k {
        1 => {
            for (j, (slot, &own)) in chunk.iter_mut().zip(own_values).enumerate() {
                let mut rng = key.stream(stream_base.wrapping_add(j as u64)).rng();
                let a = old[gen_index(&mut rng, n) as usize];
                *slot = protocol.combine(own, &[a]);
            }
        }
        2 => {
            for (j, (slot, &own)) in chunk.iter_mut().zip(own_values).enumerate() {
                let mut rng = key.stream(stream_base.wrapping_add(j as u64)).rng();
                let a = old[gen_index(&mut rng, n) as usize];
                let b = old[gen_index(&mut rng, n) as usize];
                *slot = protocol.combine(own, &[a, b]);
            }
        }
        _ => {
            let mut samples = [0 as Value; MAX_SAMPLES];
            for (j, (slot, &own)) in chunk.iter_mut().zip(own_values).enumerate() {
                let mut rng = key.stream(stream_base.wrapping_add(j as u64)).rng();
                for sample in samples.iter_mut().take(k) {
                    *sample = old[gen_index(&mut rng, n) as usize];
                }
                *slot = protocol.combine(own, &samples[..k]);
            }
        }
    }
}

/// Support-size limit for the load-sampled dense round: above this many
/// live values the alias tables stop being cache-resident and the plain
/// per-ball indexing path wins again.
pub const SAMPLED_SUPPORT_MAX: usize = 1024;

/// Population floor for the load-sampled dense round: below this the state
/// array itself is cache-resident, random indexing into it is cheap, and
/// the alias lookup is pure overhead.
pub const SAMPLED_N_MIN: usize = 1 << 18;

/// [`step_seq`] with the live bin loads supplied: peer samples are drawn
/// from the load distribution by a packed single-word alias method (one
/// random word and one L1 read per draw) instead of reading the 4·n-byte
/// state array at a random index.
///
/// **Equal in law** to [`step_seq`] up to the sampler's `2⁻³²` quantization
/// (see [`PackedAlias`]) — a uniformly chosen ball holds value `v` with
/// probability `load_v / n` either way — but the two random DRAM reads per
/// ball become L1 reads once `m` is small, and each draw costs one
/// SplitMix64 word instead of a double-mixed one. Trajectories for a fixed
/// seed differ from [`step_seq`] (different stream family), which is why
/// the runner switches paths for whole rounds only, keeping seq/par
/// bit-identity and determinism intact.
///
/// # Panics
/// Panics if buffer lengths differ, `bins` is empty or unsorted, or loads
/// don't sum to `old.len()`.
pub fn step_seq_with_loads<P: Protocol + ?Sized>(
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    bins: &[(Value, u64)],
) {
    step_par_with_loads(1, old, new, protocol, seed, round, bins);
}

/// Parallel variant of [`step_seq_with_loads`]; bit-identical to it.
#[allow(clippy::too_many_arguments)]
pub fn step_par_with_loads<P: Protocol + ?Sized>(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    bins: &[(Value, u64)],
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    let mut values = Vec::with_capacity(bins.len());
    let mut loads = Vec::with_capacity(bins.len());
    let mut acc = 0u64;
    let mut prev: Option<Value> = None;
    for &(v, c) in bins {
        assert!(prev.is_none_or(|p| p < v), "bins must be value-sorted");
        prev = Some(v);
        acc += c;
        values.push(v);
        loads.push(c as f64);
    }
    assert_eq!(acc, old.len() as u64, "loads must cover the population");
    let alias = PackedAlias::new(&loads);
    if threads <= 1 || old.len() < 4096 {
        update_range_with_loads(old, new, 0, protocol, seed, round, &values, &alias);
        return;
    }
    stabcon_par::par_chunks_mut(threads, new, 1024, |offset, chunk| {
        update_range_with_loads(old, chunk, offset, protocol, seed, round, &values, &alias);
    });
}

#[allow(clippy::too_many_arguments)]
fn update_range_with_loads<P: Protocol + ?Sized>(
    old: &[Value],
    chunk: &mut [Value],
    offset: usize,
    protocol: &P,
    seed: u64,
    round: u64,
    values: &[Value],
    alias: &PackedAlias,
) {
    let n = old.len() as u64;
    let k = protocol.samples();
    assert!(k <= MAX_SAMPLES, "protocol requests too many samples");
    let key = CounterKey::new(seed);
    let stream_base = round.wrapping_mul(n).wrapping_add(offset as u64);
    let own_values = &old[offset..offset + chunk.len()];
    match k {
        1 => {
            for (j, (slot, &own)) in chunk.iter_mut().zip(own_values).enumerate() {
                let stream = key.stream(stream_base.wrapping_add(j as u64));
                let a = values[alias.sample_word(stream.word_fast(0))];
                *slot = protocol.combine(own, &[a]);
            }
        }
        2 => {
            for (j, (slot, &own)) in chunk.iter_mut().zip(own_values).enumerate() {
                let stream = key.stream(stream_base.wrapping_add(j as u64));
                let a = values[alias.sample_word(stream.word_fast(0))];
                let b = values[alias.sample_word(stream.word_fast(1))];
                *slot = protocol.combine(own, &[a, b]);
            }
        }
        _ => {
            let mut samples = [0 as Value; MAX_SAMPLES];
            for (j, (slot, &own)) in chunk.iter_mut().zip(own_values).enumerate() {
                let stream = key.stream(stream_base.wrapping_add(j as u64));
                for (c, sample) in samples.iter_mut().take(k).enumerate() {
                    *sample = values[alias.sample_word(stream.word_fast(c as u64))];
                }
                *slot = protocol.combine(own, &samples[..k]);
            }
        }
    }
}

/// Advance one *partially synchronous* round: each ball updates
/// independently with probability `update_prob`, otherwise keeps its value
/// (the α-asynchrony ablation — the paper assumes fully synchronized rounds;
/// this knob checks the dynamics survive partial participation).
///
/// The participation coin is the first word of each ball's counter stream,
/// so sequential/parallel determinism is preserved.
///
/// # Panics
/// Panics if `update_prob ∉ [0, 1]` or buffer lengths differ.
pub fn step_partial<P: Protocol + ?Sized>(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    update_prob: f64,
) {
    assert!(
        (0.0..=1.0).contains(&update_prob),
        "update_prob = {update_prob}"
    );
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    if update_prob >= 1.0 {
        step_par(threads, old, new, protocol, seed, round);
        return;
    }
    let body = |offset: usize, chunk: &mut [Value]| {
        let n = old.len() as u64;
        let k = protocol.samples();
        let key = CounterKey::new(seed);
        let stream_base = round.wrapping_mul(n).wrapping_add(offset as u64);
        let own_values = &old[offset..offset + chunk.len()];
        let mut samples = [0 as Value; MAX_SAMPLES];
        for (j, (slot, &own)) in chunk.iter_mut().zip(own_values).enumerate() {
            let mut rng = key.stream(stream_base.wrapping_add(j as u64)).rng();
            if stabcon_util::rng::gen_f64(&mut rng) >= update_prob {
                *slot = own;
                continue;
            }
            for sample in samples.iter_mut().take(k) {
                *sample = old[gen_index(&mut rng, n) as usize];
            }
            *slot = protocol.combine(own, &samples[..k]);
        }
    };
    if threads <= 1 || old.len() < 4096 {
        body(0, new);
    } else {
        stabcon_par::par_chunks_mut(threads, new, 1024, body);
    }
}

/// Recompute the post-round value of a single ball (test/debug helper).
pub fn replay_ball<P: Protocol + ?Sized>(
    old: &[Value],
    ball: usize,
    protocol: &P,
    seed: u64,
    round: u64,
) -> Value {
    let n = old.len() as u64;
    let k = protocol.samples();
    let mut rng = CounterKey::new(seed)
        .stream(round.wrapping_mul(n).wrapping_add(ball as u64))
        .rng();
    let mut samples = [0 as Value; MAX_SAMPLES];
    for sample in samples.iter_mut().take(k) {
        *sample = old[gen_index(&mut rng, n) as usize];
    }
    protocol.combine(old[ball], &samples[..k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{KMedianRule, MedianRule, MinRule, VoterRule};

    fn all_distinct(n: usize) -> Vec<Value> {
        (0..n as u32).collect()
    }

    #[test]
    fn seq_equals_par_exactly() {
        let old = all_distinct(10_000);
        let mut seq = vec![0; old.len()];
        step_seq(&old, &mut seq, &MedianRule, 42, 3);
        for threads in [2, 4, 8] {
            let mut par = vec![0; old.len()];
            step_par(threads, &old, &mut par, &MedianRule, 42, 3);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn mono_equals_dyn() {
        // Static and dynamic dispatch must draw identical streams.
        let old = all_distinct(5000);
        for (rule, label) in [
            (&MedianRule as &dyn Protocol, "median"),
            (&MinRule as &dyn Protocol, "min"),
            (&KMedianRule::new(4) as &dyn Protocol, "k-median-4"),
        ] {
            let mut dynamic = vec![0; old.len()];
            step_seq(&old, &mut dynamic, rule, 11, 2);
            let mut mono = vec![0; old.len()];
            match label {
                "median" => step_seq(&old, &mut mono, &MedianRule, 11, 2),
                "min" => step_seq(&old, &mut mono, &MinRule, 11, 2),
                _ => step_seq(&old, &mut mono, &KMedianRule::new(4), 11, 2),
            }
            assert_eq!(mono, dynamic, "rule = {label}");
        }
    }

    #[test]
    fn with_loads_seq_equals_par() {
        let old: Vec<Value> = (0..20_000u32).map(|i| (i % 7) * 3).collect();
        let bins: Vec<(Value, u64)> =
            crate::histogram::Histogram::from_config(&crate::config::Config::new(old.clone()))
                .bins()
                .to_vec();
        let mut seq = vec![0; old.len()];
        step_seq_with_loads(&old, &mut seq, &MedianRule, 5, 2, &bins);
        for threads in [2, 4, 8] {
            let mut par = vec![0; old.len()];
            step_par_with_loads(threads, &old, &mut par, &MedianRule, 5, 2, &bins);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn with_loads_matches_plain_step_in_law() {
        // Same seed gives different trajectories, but one round from a fixed
        // state must produce statistically identical load vectors. Compare
        // the mean load of bin 0 across many seeds.
        let n = 4096usize;
        let old: Vec<Value> = (0..n as u32)
            .map(|i| if i < 1024 { 0 } else { 1 })
            .collect();
        let bins = vec![(0u32, 1024u64), (1, n as u64 - 1024)];
        let mut plain_sum = 0u64;
        let mut sampled_sum = 0u64;
        let trials = 200;
        for seed in 0..trials {
            let mut new = vec![0; n];
            step_seq(&old, &mut new, &MedianRule, seed, 0);
            plain_sum += new.iter().filter(|&&v| v == 0).count() as u64;
            step_seq_with_loads(&old, &mut new, &MedianRule, seed, 0, &bins);
            sampled_sum += new.iter().filter(|&&v| v == 0).count() as u64;
        }
        let plain_mean = plain_sum as f64 / trials as f64;
        let sampled_mean = sampled_sum as f64 / trials as f64;
        // Both estimate the same expectation; allow 5σ of the trial noise
        // (σ per trial ≲ √n/2, so σ of the mean ≲ 32/√200 · 2).
        assert!(
            (plain_mean - sampled_mean).abs() < 5.0 * 2.0 * 32.0 / (trials as f64).sqrt(),
            "plain {plain_mean} vs sampled {sampled_mean}"
        );
    }

    #[test]
    #[should_panic]
    fn with_loads_rejects_wrong_total() {
        let old = vec![0u32; 100];
        let mut new = vec![0u32; 100];
        step_seq_with_loads(&old, &mut new, &MedianRule, 1, 0, &[(0, 99)]);
    }

    #[test]
    fn replay_matches_step() {
        let old = all_distinct(500);
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MedianRule, 7, 11);
        for ball in [0usize, 1, 250, 499] {
            assert_eq!(replay_ball(&old, ball, &MedianRule, 7, 11), new[ball]);
        }
    }

    #[test]
    fn different_rounds_differ() {
        let old = all_distinct(1000);
        let mut a = vec![0; old.len()];
        let mut b = vec![0; old.len()];
        step_seq(&old, &mut a, &MedianRule, 5, 0);
        step_seq(&old, &mut b, &MedianRule, 5, 1);
        assert_ne!(a, b, "round index must enter the randomness");
    }

    #[test]
    fn different_seeds_differ() {
        let old = all_distinct(1000);
        let mut a = vec![0; old.len()];
        let mut b = vec![0; old.len()];
        step_seq(&old, &mut a, &MedianRule, 5, 0);
        step_seq(&old, &mut b, &MedianRule, 6, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn consensus_is_absorbing_for_median() {
        let old = vec![17 as Value; 2000];
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MedianRule, 1, 0);
        assert_eq!(old, new, "median of identical values must not move");
    }

    #[test]
    fn min_rule_monotone_nonincreasing() {
        let old = all_distinct(2000);
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MinRule, 3, 0);
        for (o, n) in old.iter().zip(&new) {
            assert!(n <= o, "min rule may never increase a value");
        }
    }

    #[test]
    fn voter_output_subset_of_input() {
        let old: Vec<Value> = (0..997u32).map(|i| i % 13).collect();
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &VoterRule, 9, 2);
        for v in &new {
            assert!(*v < 13);
        }
    }

    #[test]
    fn median_validity_over_many_rounds() {
        // The median rule may only ever hold initial values.
        let mut state: Vec<Value> = (0..512u32).map(|i| (i % 7) * 100).collect();
        let allowed: std::collections::HashSet<Value> = state.iter().copied().collect();
        let mut scratch = vec![0; state.len()];
        for round in 0..50 {
            step_seq(&state, &mut scratch, &MedianRule, 123, round);
            std::mem::swap(&mut state, &mut scratch);
            for v in &state {
                assert!(allowed.contains(v), "median invented value {v}");
            }
        }
    }

    #[test]
    fn partial_update_prob_one_equals_full_step() {
        let old = all_distinct(5000);
        let mut full = vec![0; old.len()];
        let mut partial = vec![0; old.len()];
        step_seq(&old, &mut full, &MedianRule, 8, 4);
        step_partial(1, &old, &mut partial, &MedianRule, 8, 4, 1.0);
        assert_eq!(full, partial);
    }

    #[test]
    fn partial_update_prob_zero_freezes() {
        let old = all_distinct(1000);
        let mut new = vec![0; old.len()];
        step_partial(1, &old, &mut new, &MedianRule, 8, 0, 0.0);
        assert_eq!(old, new);
    }

    #[test]
    fn partial_update_fraction_roughly_alpha() {
        // With all-distinct values, an updating ball almost surely changes
        // value; count changed balls ≈ α·n.
        let n = 20_000usize;
        let old = all_distinct(n);
        let mut new = vec![0; n];
        step_partial(1, &old, &mut new, &MedianRule, 77, 0, 0.3);
        let changed = old.iter().zip(&new).filter(|(a, b)| a != b).count();
        let frac = changed as f64 / n as f64;
        // An updating ball keeps its value iff it is the median of the
        // sampled triple; for the all-distinct configuration that happens
        // with probability 2·E[x(1−x)] = 1/3, so the expected change rate is
        // α·(2/3) = 0.2.
        assert!(
            (frac - 0.2).abs() < 0.02,
            "changed fraction {frac} vs expected 0.2"
        );
    }

    #[test]
    fn partial_update_seq_equals_par() {
        let old = all_distinct(10_000);
        let mut seq = vec![0; old.len()];
        let mut par = vec![0; old.len()];
        step_partial(1, &old, &mut seq, &MedianRule, 9, 2, 0.5);
        step_partial(4, &old, &mut par, &MedianRule, 9, 2, 0.5);
        assert_eq!(seq, par);
    }

    #[test]
    fn partial_update_still_converges() {
        let n = 2048usize;
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        let mut converged = false;
        for round in 0..3000u64 {
            if state.iter().all(|&v| v == state[0]) {
                converged = true;
                break;
            }
            step_partial(1, &state, &mut scratch, &MedianRule, 3, round, 0.25);
            std::mem::swap(&mut state, &mut scratch);
        }
        assert!(
            converged,
            "α = 0.25 asynchrony should only slow convergence"
        );
    }

    #[test]
    fn two_bins_converge_within_bound() {
        // n = 4096, balanced split: O(log n) rounds w.h.p. — give 40× slack.
        let n = 4096usize;
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        let mut converged = None;
        for round in 0..500u64 {
            if state.iter().all(|&v| v == state[0]) {
                converged = Some(round);
                break;
            }
            step_seq(&state, &mut scratch, &MedianRule, 2024, round);
            std::mem::swap(&mut state, &mut scratch);
        }
        let r = converged.expect("median rule failed to converge in 500 rounds");
        assert!(r <= 500);
    }
}

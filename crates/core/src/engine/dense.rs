//! The dense engine: `O(n)` per round over a flat value vector.
//!
//! Each ball's two (or `k`) samples are drawn from a counter-RNG stream at
//! coordinates `(seed, round·n + ball)`. Consequences:
//!
//! * sequential and parallel execution produce **identical** states;
//! * a round can be recomputed for any single ball (useful in tests);
//! * rejection in the bounded-uniform sampler consumes extra words from the
//!   ball's *own* stream only, so streams never interfere.
//!
//! The step functions are **generic over the protocol** (`P: Protocol +
//! ?Sized`), so calls with a concrete rule (`&MedianRule`) monomorphize to
//! a branch-free inner loop with no virtual dispatch, while existing callers
//! holding a `&dyn Protocol` keep compiling unchanged (and pay dynamic
//! dispatch, exactly as before the refactor).
//!
//! # The batched phase-split kernel
//!
//! Balls are processed in blocks of [`KERNEL_BLOCK`], with one tight loop
//! per pipeline phase instead of one mega-loop of dependent work per ball:
//!
//! 1. **RNG** — batch-generate each ball's counter-stream words (the same
//!    `mix64` folds at the same `(seed, round·n + ball, counter)`
//!    coordinates as the scalar kernel) into a word buffer;
//! 2. **resolve** — turn every word into a sample index: one Lemire
//!    multiply-shift per word for the uniform path
//!    ([`stabcon_util::rng::lemire_candidate`]), one packed-alias lookup
//!    per word for the load-sampled path;
//! 3. **gather** — read the sampled values through the index buffer (a
//!    pure load loop, so the out-of-order core keeps many cache misses in
//!    flight instead of serializing them behind hash and combine work);
//! 4. **apply** — run the monomorphized protocol over own value + gathered
//!    samples and write the output chunk.
//!
//! The kernel is **bit-identical** to the scalar reference (kept below as
//! [`step_seq_reference`] and friends, pinned by
//! `tests/dense_kernel_props.rs`): phase 1 reproduces the exact word
//! stream, and the one place where batching could diverge — Lemire
//! rejection, which makes a ball consume extra words from its own stream —
//! is detected conservatively (`low < n` proves a word *cannot* reject)
//! and handled by replaying the affected ball through scalar `gen_index`.
//! For any state that fits in memory (`n ≤ 2³²`) a candidate word rejects
//! with probability `< 2⁻³²`, so the fallback is essentially never taken
//! but keeps the stream contract exact.
//!
//! The phase buffers are fixed-size stack arrays (~44 KiB): every caller —
//! the sequential runner path and each `par_chunks_mut` worker alike —
//! gets private buffers with zero plumbing, they cost one memset per
//! `update_range` call (once per round sequentially, once per ≥ 15 k-ball
//! chunk in parallel), and they are L1/L2-resident throughout the block.
//! The load-sampled path's *alias table* is the piece worth parking across
//! rounds: a [`LoadSampler`] rebuilds its [`PackedAlias`] in place each
//! round (bit-identical to a fresh build) and lives in
//! [`crate::workspace::TrialWorkspace`], so load-sampled rounds at
//! `n ≥ 2¹⁸` allocate nothing at steady state.

use stabcon_obs as obs;
use stabcon_util::dist::{AliasScratch, PackedAlias};
use stabcon_util::rng::{
    gen_f64, gen_index, lemire_candidate, unit_f64_from_word, CounterKey, CounterStream,
};

use crate::protocol::{Protocol, MAX_SAMPLES};
use crate::value::Value;

/// Balls per block of the phase-split kernel at `k = 2` (the word buffer
/// holds `2 · KERNEL_BLOCK` words; `k = 1` doubles the balls per block,
/// `k > 2` shrinks them). 1024 balls keep all three phase buffers inside
/// L1/L2 while amortizing per-block loop overhead, and match the parallel
/// splitter's minimum chunk so a parallel worker never sees a partial
/// block it didn't have to.
pub const KERNEL_BLOCK: usize = 1024;

/// Capacity of the per-phase buffers, in words / indices / values.
const WORD_CAP: usize = 2 * KERNEL_BLOCK;

/// The kernel's per-block phase buffers — stack-allocated by each
/// `update_range*` call (sequential callers construct one per round,
/// parallel workers one per chunk; see the module docs for why this beats
/// threading heap buffers through every engine entry point).
struct BlockBufs {
    /// Phase-1 output: raw counter-stream words, `k` (or `k + 1`) per ball.
    words: [u64; WORD_CAP],
    /// Phase-2 output: resolved sample indices, one per word.
    idx: [u64; WORD_CAP],
    /// Phase-3 output: gathered sample values, one per word.
    vals: [Value; WORD_CAP],
    /// Partial-round compaction: block-local positions of the balls that
    /// participate this round.
    active: [u32; KERNEL_BLOCK],
}

impl BlockBufs {
    #[inline]
    fn new() -> Self {
        Self {
            words: [0; WORD_CAP],
            idx: [0; WORD_CAP],
            vals: [0; WORD_CAP],
            active: [0; KERNEL_BLOCK],
        }
    }
}

/// Advance one synchronous round sequentially: reads `old`, writes `new`.
///
/// # Panics
/// Panics if `old.len() != new.len()` or the protocol requests more than
/// [`MAX_SAMPLES`] samples.
pub fn step_seq<P: Protocol + ?Sized>(
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    update_range(old, new, 0, protocol, seed, round);
}

/// Advance one synchronous round with `threads` workers. Bit-identical to
/// [`step_seq`].
pub fn step_par<P: Protocol + ?Sized>(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    if threads <= 1 || old.len() < 4096 {
        update_range(old, new, 0, protocol, seed, round);
        return;
    }
    stabcon_par::par_chunks_mut(threads, new, KERNEL_BLOCK, |offset, chunk| {
        update_range(old, chunk, offset, protocol, seed, round);
    });
}

/// Phase 1: the stream words of `len` balls, `k` consecutive counters
/// each, through an arbitrary word accessor — [`CounterStream::word`] for
/// the uniform path (exactly what the scalar kernel's sequential RNG
/// would produce absent rejection) or [`CounterStream::word_fast`] for
/// the load-sampled path. `word_at` monomorphizes per call site, so both
/// paths keep their fixed-`k` fast loops from one copy of the blocking
/// logic.
#[inline]
fn fill_stream_words(
    key: CounterKey,
    base: u64,
    len: usize,
    k: usize,
    words: &mut [u64],
    word_at: impl Fn(CounterStream, u64) -> u64,
) {
    match k {
        1 => {
            for (j, w) in words.iter_mut().enumerate() {
                *w = word_at(key.stream(base.wrapping_add(j as u64)), 0);
            }
        }
        2 => {
            for j in 0..len {
                let s = key.stream(base.wrapping_add(j as u64));
                words[2 * j] = word_at(s, 0);
                words[2 * j + 1] = word_at(s, 1);
            }
        }
        _ => {
            for j in 0..len {
                let s = key.stream(base.wrapping_add(j as u64));
                for (c, w) in words[k * j..k * j + k].iter_mut().enumerate() {
                    *w = word_at(s, c as u64);
                }
            }
        }
    }
}

/// Phase 2 (uniform path): resolve `k·len` words to indices in `[0, n)`.
///
/// The fast loop takes every word's Lemire candidate and records whether
/// any word *might* be in the rejection zone (`low < n` is a conservative
/// superset of `low < 2⁶⁴ mod n`). If so, the affected balls are replayed
/// through scalar [`gen_index`] from their stream's counter 0 — including
/// the extra words a rejection consumes — which is bit-identical to the
/// scalar kernel by construction.
#[inline]
fn resolve_uniform(
    key: CounterKey,
    base: u64,
    len: usize,
    k: usize,
    n: u64,
    words: &[u64],
    idx: &mut [u64],
) {
    let mut maybe_reject = false;
    for (w, d) in words.iter().zip(idx.iter_mut()) {
        let (hi, low) = lemire_candidate(*w, n);
        *d = hi;
        maybe_reject |= low < n;
    }
    if maybe_reject {
        for j in 0..len {
            if (0..k).any(|c| lemire_candidate(words[k * j + c], n).1 < n) {
                let mut rng = key.stream(base.wrapping_add(j as u64)).rng();
                for d in idx[k * j..k * j + k].iter_mut() {
                    *d = gen_index(&mut rng, n);
                }
            }
        }
    }
}

/// Phase 4: combine own values with the gathered samples (`k` per ball).
#[inline]
fn apply_block<P: Protocol + ?Sized>(
    protocol: &P,
    k: usize,
    own: &[Value],
    out: &mut [Value],
    vals: &[Value],
) {
    match k {
        1 => {
            for (j, (slot, &o)) in out.iter_mut().zip(own).enumerate() {
                *slot = protocol.combine(o, &[vals[j]]);
            }
        }
        2 => {
            for (j, (slot, &o)) in out.iter_mut().zip(own).enumerate() {
                *slot = protocol.combine(o, &[vals[2 * j], vals[2 * j + 1]]);
            }
        }
        _ => {
            for (j, (slot, &o)) in out.iter_mut().zip(own).enumerate() {
                *slot = protocol.combine(o, &vals[k * j..k * j + k]);
            }
        }
    }
}

/// Compute the new values for balls `offset..offset + chunk.len()` with
/// the batched phase-split kernel (see the module docs).
fn update_range<P: Protocol + ?Sized>(
    old: &[Value],
    chunk: &mut [Value],
    offset: usize,
    protocol: &P,
    seed: u64,
    round: u64,
) {
    let n = old.len() as u64;
    let k = protocol.samples();
    assert!(k <= MAX_SAMPLES, "protocol requests too many samples");
    let key = CounterKey::new(seed);
    let stream_base = round.wrapping_mul(n).wrapping_add(offset as u64);
    let block = WORD_CAP / k.max(1);
    let mut bufs = BlockBufs::new();
    let mut start = 0usize;
    while start < chunk.len() {
        let len = block.min(chunk.len() - start);
        let count = k * len;
        let base = stream_base.wrapping_add(start as u64);
        let t = obs::phase(obs::Phase::Rng);
        fill_stream_words(
            key,
            base,
            len,
            k,
            &mut bufs.words[..count],
            CounterStream::word,
        );
        drop(t);
        let t = obs::phase(obs::Phase::Index);
        resolve_uniform(
            key,
            base,
            len,
            k,
            n,
            &bufs.words[..count],
            &mut bufs.idx[..count],
        );
        drop(t);
        let t = obs::phase(obs::Phase::Gather);
        for (d, v) in bufs.idx[..count].iter().zip(bufs.vals[..count].iter_mut()) {
            *v = old[*d as usize];
        }
        drop(t);
        let t = obs::phase(obs::Phase::Apply);
        apply_block(
            protocol,
            k,
            &old[offset + start..offset + start + len],
            &mut chunk[start..start + len],
            &bufs.vals[..count],
        );
        drop(t);
        start += len;
    }
}

/// Support-size limit for the load-sampled dense round: above this many
/// live values the alias tables stop being cache-resident and the plain
/// per-ball indexing path wins again.
pub const SAMPLED_SUPPORT_MAX: usize = 1024;

/// Population floor for the load-sampled dense round: below this the state
/// array itself is cache-resident, random indexing into it is cheap, and
/// the alias lookup is pure overhead.
pub const SAMPLED_N_MIN: usize = 1 << 18;

/// Reusable state of the load-sampled dense round: the live value table
/// and the [`PackedAlias`] over their loads, rebuilt **in place** each
/// round (via [`PackedAlias::rebuild_from`], bit-identical to a fresh
/// build) so that per-round sampled steps allocate nothing at steady
/// state. One sampler lives in each
/// [`crate::workspace::TrialWorkspace`]; ad-hoc callers can use the
/// [`step_seq_with_loads`] wrappers, which build a throwaway sampler.
#[derive(Debug, Clone, Default)]
pub struct LoadSampler {
    /// Live values, ascending (alias category `i` maps to `values[i]`).
    values: Vec<Value>,
    /// Their loads as weights for the alias build.
    loads: Vec<f64>,
    /// Packed single-word alias table over `loads`.
    alias: PackedAlias,
    /// Vose build worklists, reused across rebuilds.
    scratch: AliasScratch,
    /// Population the sampler was last rebuilt for.
    n: u64,
}

impl LoadSampler {
    /// An empty sampler; unusable until the first [`LoadSampler::rebuild`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild from value-ascending `(value, load)` bins covering a
    /// population of `n` balls. Allocation-free once the buffers have seen
    /// a support this large.
    ///
    /// # Panics
    /// Panics if `bins` is empty or not value-sorted, or loads don't sum
    /// to `n`.
    pub fn rebuild<I>(&mut self, bins: I, n: u64)
    where
        I: IntoIterator<Item = (Value, u64)>,
    {
        self.values.clear();
        self.loads.clear();
        let mut acc = 0u64;
        let mut prev: Option<Value> = None;
        for (v, c) in bins {
            assert!(prev.is_none_or(|p| p < v), "bins must be value-sorted");
            prev = Some(v);
            acc += c;
            self.values.push(v);
            self.loads.push(c as f64);
        }
        assert_eq!(acc, n, "loads must cover the population");
        self.alias.rebuild_from(&self.loads, &mut self.scratch);
        self.n = n;
    }

    /// Number of live values the sampler draws from.
    pub fn support(&self) -> usize {
        self.values.len()
    }
}

/// [`step_seq`] with the live bin loads supplied: peer samples are drawn
/// from the load distribution by a packed single-word alias method (one
/// random word and one L1 read per draw) instead of reading the 4·n-byte
/// state array at a random index.
///
/// **Equal in law** to [`step_seq`] up to the sampler's `2⁻³²` quantization
/// (see [`PackedAlias`]) — a uniformly chosen ball holds value `v` with
/// probability `load_v / n` either way — but the two random DRAM reads per
/// ball become L1 reads once `m` is small, and each draw costs one
/// SplitMix64 word instead of a double-mixed one. Trajectories for a fixed
/// seed differ from [`step_seq`] (different stream family), which is why
/// the runner switches paths for whole rounds only, keeping seq/par
/// bit-identity and determinism intact.
///
/// Builds a throwaway [`LoadSampler`]; per-round callers should park one
/// and use [`step_seq_sampled`].
///
/// # Panics
/// Panics if buffer lengths differ, `bins` is empty or unsorted, or loads
/// don't sum to `old.len()`.
pub fn step_seq_with_loads<P: Protocol + ?Sized>(
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    bins: &[(Value, u64)],
) {
    step_par_with_loads(1, old, new, protocol, seed, round, bins);
}

/// Parallel variant of [`step_seq_with_loads`]; bit-identical to it.
#[allow(clippy::too_many_arguments)]
pub fn step_par_with_loads<P: Protocol + ?Sized>(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    bins: &[(Value, u64)],
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    let mut sampler = LoadSampler::new();
    sampler.rebuild(bins.iter().copied(), old.len() as u64);
    step_par_sampled(threads, old, new, protocol, seed, round, &sampler);
}

/// [`step_seq_with_loads`] through a caller-owned, reused [`LoadSampler`]
/// (bit-identical to the wrapper for a sampler rebuilt from the same
/// bins).
pub fn step_seq_sampled<P: Protocol + ?Sized>(
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    sampler: &LoadSampler,
) {
    step_par_sampled(1, old, new, protocol, seed, round, sampler);
}

/// Parallel variant of [`step_seq_sampled`]; bit-identical to it.
///
/// # Panics
/// Panics if buffer lengths differ or the sampler was rebuilt for a
/// different population size.
#[allow(clippy::too_many_arguments)]
pub fn step_par_sampled<P: Protocol + ?Sized>(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    sampler: &LoadSampler,
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    assert_eq!(
        sampler.n,
        old.len() as u64,
        "sampler was rebuilt for a different population"
    );
    if threads <= 1 || old.len() < 4096 {
        update_range_sampled(old, new, 0, protocol, seed, round, sampler);
        return;
    }
    stabcon_par::par_chunks_mut(threads, new, KERNEL_BLOCK, |offset, chunk| {
        update_range_sampled(old, chunk, offset, protocol, seed, round, sampler);
    });
}

/// The batched phase-split kernel over the load distribution: same block
/// structure as `update_range`, with the resolve phase replaced by one
/// packed-alias lookup per word and the gather reading the (L1-resident)
/// live value table instead of the state array.
#[allow(clippy::too_many_arguments)]
fn update_range_sampled<P: Protocol + ?Sized>(
    old: &[Value],
    chunk: &mut [Value],
    offset: usize,
    protocol: &P,
    seed: u64,
    round: u64,
    sampler: &LoadSampler,
) {
    let n = old.len() as u64;
    let k = protocol.samples();
    assert!(k <= MAX_SAMPLES, "protocol requests too many samples");
    let (values, alias) = (&sampler.values[..], &sampler.alias);
    let key = CounterKey::new(seed);
    let stream_base = round.wrapping_mul(n).wrapping_add(offset as u64);
    let block = WORD_CAP / k.max(1);
    let mut bufs = BlockBufs::new();
    let mut start = 0usize;
    while start < chunk.len() {
        let len = block.min(chunk.len() - start);
        let count = k * len;
        let base = stream_base.wrapping_add(start as u64);
        let t = obs::phase(obs::Phase::Rng);
        fill_stream_words(
            key,
            base,
            len,
            k,
            &mut bufs.words[..count],
            CounterStream::word_fast,
        );
        drop(t);
        let t = obs::phase(obs::Phase::Index);
        for (w, d) in bufs.words[..count].iter().zip(bufs.idx[..count].iter_mut()) {
            *d = alias.sample_word(*w) as u64;
        }
        drop(t);
        let t = obs::phase(obs::Phase::Gather);
        for (d, v) in bufs.idx[..count].iter().zip(bufs.vals[..count].iter_mut()) {
            *v = values[*d as usize];
        }
        drop(t);
        let t = obs::phase(obs::Phase::Apply);
        apply_block(
            protocol,
            k,
            &old[offset + start..offset + start + len],
            &mut chunk[start..start + len],
            &bufs.vals[..count],
        );
        drop(t);
        start += len;
    }
}

/// Advance one *partially synchronous* round: each ball updates
/// independently with probability `update_prob`, otherwise keeps its value
/// (the α-asynchrony ablation — the paper assumes fully synchronized rounds;
/// this knob checks the dynamics survive partial participation).
///
/// The participation coin is the first word of each ball's counter stream,
/// so sequential/parallel determinism is preserved.
///
/// # Panics
/// Panics if `update_prob ∉ [0, 1]` or buffer lengths differ.
pub fn step_partial<P: Protocol + ?Sized>(
    threads: usize,
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    update_prob: f64,
) {
    assert!(
        (0.0..=1.0).contains(&update_prob),
        "update_prob = {update_prob}"
    );
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    if update_prob >= 1.0 {
        step_par(threads, old, new, protocol, seed, round);
        return;
    }
    let body = |offset: usize, chunk: &mut [Value]| {
        update_range_partial(old, chunk, offset, protocol, seed, round, update_prob);
    };
    if threads <= 1 || old.len() < 4096 {
        body(0, new);
    } else {
        stabcon_par::par_chunks_mut(threads, new, KERNEL_BLOCK, body);
    }
}

/// The batched phase-split kernel with a participation coin: coin words
/// (counter 0 of each ball's stream, exactly like the scalar RNG order)
/// are generated for the whole block, participating balls are compacted
/// into a dense worklist, and only those balls pay for sample words
/// (counters `1..=k`) and the resolve/gather/apply phases — at small
/// `update_prob` the dominant RNG phase shrinks with participation
/// instead of hashing `k` unused words per frozen ball.
#[allow(clippy::too_many_arguments)]
fn update_range_partial<P: Protocol + ?Sized>(
    old: &[Value],
    chunk: &mut [Value],
    offset: usize,
    protocol: &P,
    seed: u64,
    round: u64,
    update_prob: f64,
) {
    let n = old.len() as u64;
    let k = protocol.samples();
    assert!(k <= MAX_SAMPLES, "protocol requests too many samples");
    let key = CounterKey::new(seed);
    let stream_base = round.wrapping_mul(n).wrapping_add(offset as u64);
    // Coin words occupy `words[..len]`; the active balls' sample words are
    // compacted behind them at `words[len + k·a..]`.
    let block = (WORD_CAP / (k + 1)).min(KERNEL_BLOCK);
    let mut bufs = BlockBufs::new();
    let mut start = 0usize;
    while start < chunk.len() {
        let len = block.min(chunk.len() - start);
        let base = stream_base.wrapping_add(start as u64);
        // Phase 1a: one coin word per ball.
        let t = obs::phase(obs::Phase::Coin);
        for (j, w) in bufs.words[..len].iter_mut().enumerate() {
            *w = key.stream(base.wrapping_add(j as u64)).word(0);
        }
        // Phase 2a: participation coins; non-participants keep their value,
        // participants are compacted into the active worklist.
        let mut n_active = 0usize;
        for j in 0..len {
            if unit_f64_from_word(bufs.words[j]) >= update_prob {
                chunk[start + j] = old[offset + start + j];
            } else {
                bufs.active[n_active] = j as u32;
                n_active += 1;
            }
        }
        drop(t);
        // Phase 1b: sample words (counters 1..=k, after the coin) for the
        // active balls only, compacted.
        let t = obs::phase(obs::Phase::Rng);
        for a in 0..n_active {
            let j = bufs.active[a] as usize;
            let s = key.stream(base.wrapping_add(j as u64));
            for (c, w) in bufs.words[len + k * a..len + k * a + k]
                .iter_mut()
                .enumerate()
            {
                *w = s.word(1 + c as u64);
            }
        }
        drop(t);
        // Phase 2b: resolve sample indices for the active balls.
        let t = obs::phase(obs::Phase::Index);
        let mut maybe_reject = false;
        for (w, d) in bufs.words[len..len + k * n_active]
            .iter()
            .zip(bufs.idx[..k * n_active].iter_mut())
        {
            let (hi, low) = lemire_candidate(*w, n);
            *d = hi;
            maybe_reject |= low < n;
        }
        if maybe_reject {
            for a in 0..n_active {
                let j = bufs.active[a] as usize;
                if (0..k).any(|c| lemire_candidate(bufs.words[len + k * a + c], n).1 < n) {
                    let mut rng = key.stream(base.wrapping_add(j as u64)).rng();
                    // The participation coin consumed the stream's first
                    // word; replay it before the sample draws.
                    let _ = gen_f64(&mut rng);
                    for d in bufs.idx[k * a..k * a + k].iter_mut() {
                        *d = gen_index(&mut rng, n);
                    }
                }
            }
        }
        drop(t);
        // Phase 3: gather.
        let t = obs::phase(obs::Phase::Gather);
        for (d, v) in bufs.idx[..k * n_active]
            .iter()
            .zip(bufs.vals[..k * n_active].iter_mut())
        {
            *v = old[*d as usize];
        }
        drop(t);
        // Phase 4: apply to the active balls.
        let t = obs::phase(obs::Phase::Apply);
        for a in 0..n_active {
            let j = bufs.active[a] as usize;
            let own = old[offset + start + j];
            chunk[start + j] = protocol.combine(own, &bufs.vals[k * a..k * a + k]);
        }
        drop(t);
        start += len;
    }
}

/// Recompute the post-round value of a single ball (test/debug helper).
pub fn replay_ball<P: Protocol + ?Sized>(
    old: &[Value],
    ball: usize,
    protocol: &P,
    seed: u64,
    round: u64,
) -> Value {
    let n = old.len() as u64;
    let k = protocol.samples();
    let mut rng = CounterKey::new(seed)
        .stream(round.wrapping_mul(n).wrapping_add(ball as u64))
        .rng();
    let mut samples = [0 as Value; MAX_SAMPLES];
    for sample in samples.iter_mut().take(k) {
        *sample = old[gen_index(&mut rng, n) as usize];
    }
    protocol.combine(old[ball], &samples[..k])
}

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------
//
// The pre-batching mega-loops, kept verbatim as the bit-identity oracles
// for `tests/dense_kernel_props.rs` and as the `kernel` sweep baseline in
// `engine_bench`. The batched kernel above must produce exactly these
// bits for every protocol, seed, round, and population size.

/// Scalar reference for [`step_seq`]: one interleaved
/// RNG/sample/gather/apply iteration per ball.
pub fn step_seq_reference<P: Protocol + ?Sized>(
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    let n = old.len() as u64;
    let k = protocol.samples();
    assert!(k <= MAX_SAMPLES, "protocol requests too many samples");
    let key = CounterKey::new(seed);
    let stream_base = round.wrapping_mul(n);
    let mut samples = [0 as Value; MAX_SAMPLES];
    for (j, (slot, &own)) in new.iter_mut().zip(old).enumerate() {
        let mut rng = key.stream(stream_base.wrapping_add(j as u64)).rng();
        for sample in samples.iter_mut().take(k) {
            *sample = old[gen_index(&mut rng, n) as usize];
        }
        *slot = protocol.combine(own, &samples[..k]);
    }
}

/// Scalar reference for [`step_seq_with_loads`]: per-ball alias draws via
/// `word_fast`, with the alias table built fresh (exactly the pre-reuse
/// per-round cost).
pub fn step_seq_with_loads_reference<P: Protocol + ?Sized>(
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    bins: &[(Value, u64)],
) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    let n = old.len() as u64;
    let k = protocol.samples();
    assert!(k <= MAX_SAMPLES, "protocol requests too many samples");
    let values: Vec<Value> = bins.iter().map(|&(v, _)| v).collect();
    let loads: Vec<f64> = bins.iter().map(|&(_, c)| c as f64).collect();
    let alias = PackedAlias::new(&loads);
    let key = CounterKey::new(seed);
    let stream_base = round.wrapping_mul(n);
    let mut samples = [0 as Value; MAX_SAMPLES];
    for (j, (slot, &own)) in new.iter_mut().zip(old).enumerate() {
        let stream = key.stream(stream_base.wrapping_add(j as u64));
        for (c, sample) in samples.iter_mut().take(k).enumerate() {
            *sample = values[alias.sample_word(stream.word_fast(c as u64))];
        }
        *slot = protocol.combine(own, &samples[..k]);
    }
}

/// Scalar reference for [`step_partial`] (sequential).
pub fn step_partial_reference<P: Protocol + ?Sized>(
    old: &[Value],
    new: &mut [Value],
    protocol: &P,
    seed: u64,
    round: u64,
    update_prob: f64,
) {
    assert!(
        (0.0..=1.0).contains(&update_prob),
        "update_prob = {update_prob}"
    );
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    if update_prob >= 1.0 {
        step_seq_reference(old, new, protocol, seed, round);
        return;
    }
    let n = old.len() as u64;
    let k = protocol.samples();
    let key = CounterKey::new(seed);
    let stream_base = round.wrapping_mul(n);
    let mut samples = [0 as Value; MAX_SAMPLES];
    for (j, (slot, &own)) in new.iter_mut().zip(old).enumerate() {
        let mut rng = key.stream(stream_base.wrapping_add(j as u64)).rng();
        if gen_f64(&mut rng) >= update_prob {
            *slot = own;
            continue;
        }
        for sample in samples.iter_mut().take(k) {
            *sample = old[gen_index(&mut rng, n) as usize];
        }
        *slot = protocol.combine(own, &samples[..k]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{KMedianRule, MedianRule, MinRule, VoterRule};

    fn all_distinct(n: usize) -> Vec<Value> {
        (0..n as u32).collect()
    }

    #[test]
    fn seq_equals_par_exactly() {
        let old = all_distinct(10_000);
        let mut seq = vec![0; old.len()];
        step_seq(&old, &mut seq, &MedianRule, 42, 3);
        for threads in [2, 4, 8] {
            let mut par = vec![0; old.len()];
            step_par(threads, &old, &mut par, &MedianRule, 42, 3);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn mono_equals_dyn() {
        // Static and dynamic dispatch must draw identical streams.
        let old = all_distinct(5000);
        for (rule, label) in [
            (&MedianRule as &dyn Protocol, "median"),
            (&MinRule as &dyn Protocol, "min"),
            (&KMedianRule::new(4) as &dyn Protocol, "k-median-4"),
        ] {
            let mut dynamic = vec![0; old.len()];
            step_seq(&old, &mut dynamic, rule, 11, 2);
            let mut mono = vec![0; old.len()];
            match label {
                "median" => step_seq(&old, &mut mono, &MedianRule, 11, 2),
                "min" => step_seq(&old, &mut mono, &MinRule, 11, 2),
                _ => step_seq(&old, &mut mono, &KMedianRule::new(4), 11, 2),
            }
            assert_eq!(mono, dynamic, "rule = {label}");
        }
    }

    #[test]
    fn batched_equals_reference_at_block_boundaries() {
        // The full proptest sweep lives in tests/dense_kernel_props.rs;
        // this pins the exact block-edge populations deterministically.
        for n in [
            KERNEL_BLOCK - 1,
            KERNEL_BLOCK,
            KERNEL_BLOCK + 1,
            2 * KERNEL_BLOCK + 313,
        ] {
            let old: Vec<Value> = (0..n as u32).map(|i| i % 37).collect();
            let mut batched = vec![0; n];
            let mut reference = vec![0; n];
            step_seq(&old, &mut batched, &MedianRule, 99, 5);
            step_seq_reference(&old, &mut reference, &MedianRule, 99, 5);
            assert_eq!(batched, reference, "n = {n}");
        }
    }

    #[test]
    fn rejection_fallback_matches_scalar_gen_index() {
        // For any allocatable state a Lemire candidate essentially never
        // rejects, so force the fallback by resolving against a huge
        // virtual population: n just above 2⁶³ puts ~half of all words in
        // the conservative `low < n` zone and makes real rejections (and
        // multi-word draws) common. The resolved indices must equal a
        // scalar replay of each ball's stream, word for word.
        let n = (1u64 << 63) + 12_345_678_901;
        let key = CounterKey::new(0xFEED);
        let base = 7_000_000u64;
        let (len, k) = (257usize, 2usize);
        let mut bufs = BlockBufs::new();
        fill_stream_words(
            key,
            base,
            len,
            k,
            &mut bufs.words[..k * len],
            CounterStream::word,
        );
        resolve_uniform(
            key,
            base,
            len,
            k,
            n,
            &bufs.words[..k * len],
            &mut bufs.idx[..k * len],
        );
        let mut fallbacks = 0usize;
        for j in 0..len {
            let mut rng = key.stream(base.wrapping_add(j as u64)).rng();
            for c in 0..k {
                assert_eq!(
                    bufs.idx[k * j + c],
                    gen_index(&mut rng, n),
                    "ball {j} draw {c}"
                );
            }
            if (0..k).any(|c| lemire_candidate(bufs.words[k * j + c], n).1 < n) {
                fallbacks += 1;
            }
        }
        assert!(
            fallbacks > len / 4,
            "test must actually exercise the fallback ({fallbacks} balls)"
        );
    }

    #[test]
    fn with_loads_seq_equals_par() {
        let old: Vec<Value> = (0..20_000u32).map(|i| (i % 7) * 3).collect();
        let bins: Vec<(Value, u64)> =
            crate::histogram::Histogram::from_config(&crate::config::Config::new(old.clone()))
                .bins()
                .to_vec();
        let mut seq = vec![0; old.len()];
        step_seq_with_loads(&old, &mut seq, &MedianRule, 5, 2, &bins);
        for threads in [2, 4, 8] {
            let mut par = vec![0; old.len()];
            step_par_with_loads(threads, &old, &mut par, &MedianRule, 5, 2, &bins);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn reused_sampler_equals_throwaway_wrapper() {
        let old: Vec<Value> = (0..8192u32).map(|i| i % 5).collect();
        let bins: Vec<(Value, u64)> =
            crate::histogram::Histogram::from_config(&crate::config::Config::new(old.clone()))
                .bins()
                .to_vec();
        let mut wrapper = vec![0; old.len()];
        step_seq_with_loads(&old, &mut wrapper, &MedianRule, 5, 2, &bins);
        // Dirty the sampler with an unrelated distribution first.
        let mut sampler = LoadSampler::new();
        sampler.rebuild((0..300u32).map(|v| (v, 1)), 300);
        sampler.rebuild(bins.iter().copied(), old.len() as u64);
        assert_eq!(sampler.support(), bins.len());
        let mut reused = vec![0; old.len()];
        step_seq_sampled(&old, &mut reused, &MedianRule, 5, 2, &sampler);
        assert_eq!(wrapper, reused);
    }

    #[test]
    fn with_loads_matches_plain_step_in_law() {
        // Same seed gives different trajectories, but one round from a fixed
        // state must produce statistically identical load vectors. Compare
        // the mean load of bin 0 across many seeds.
        let n = 4096usize;
        let old: Vec<Value> = (0..n as u32)
            .map(|i| if i < 1024 { 0 } else { 1 })
            .collect();
        let bins = vec![(0u32, 1024u64), (1, n as u64 - 1024)];
        let mut plain_sum = 0u64;
        let mut sampled_sum = 0u64;
        let trials = 200;
        for seed in 0..trials {
            let mut new = vec![0; n];
            step_seq(&old, &mut new, &MedianRule, seed, 0);
            plain_sum += new.iter().filter(|&&v| v == 0).count() as u64;
            step_seq_with_loads(&old, &mut new, &MedianRule, seed, 0, &bins);
            sampled_sum += new.iter().filter(|&&v| v == 0).count() as u64;
        }
        let plain_mean = plain_sum as f64 / trials as f64;
        let sampled_mean = sampled_sum as f64 / trials as f64;
        // Both estimate the same expectation; allow 5σ of the trial noise
        // (σ per trial ≲ √n/2, so σ of the mean ≲ 32/√200 · 2).
        assert!(
            (plain_mean - sampled_mean).abs() < 5.0 * 2.0 * 32.0 / (trials as f64).sqrt(),
            "plain {plain_mean} vs sampled {sampled_mean}"
        );
    }

    #[test]
    #[should_panic]
    fn with_loads_rejects_wrong_total() {
        let old = vec![0u32; 100];
        let mut new = vec![0u32; 100];
        step_seq_with_loads(&old, &mut new, &MedianRule, 1, 0, &[(0, 99)]);
    }

    #[test]
    fn replay_matches_step() {
        let old = all_distinct(500);
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MedianRule, 7, 11);
        for ball in [0usize, 1, 250, 499] {
            assert_eq!(replay_ball(&old, ball, &MedianRule, 7, 11), new[ball]);
        }
    }

    #[test]
    fn different_rounds_differ() {
        let old = all_distinct(1000);
        let mut a = vec![0; old.len()];
        let mut b = vec![0; old.len()];
        step_seq(&old, &mut a, &MedianRule, 5, 0);
        step_seq(&old, &mut b, &MedianRule, 5, 1);
        assert_ne!(a, b, "round index must enter the randomness");
    }

    #[test]
    fn different_seeds_differ() {
        let old = all_distinct(1000);
        let mut a = vec![0; old.len()];
        let mut b = vec![0; old.len()];
        step_seq(&old, &mut a, &MedianRule, 5, 0);
        step_seq(&old, &mut b, &MedianRule, 6, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn consensus_is_absorbing_for_median() {
        let old = vec![17 as Value; 2000];
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MedianRule, 1, 0);
        assert_eq!(old, new, "median of identical values must not move");
    }

    #[test]
    fn min_rule_monotone_nonincreasing() {
        let old = all_distinct(2000);
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &MinRule, 3, 0);
        for (o, n) in old.iter().zip(&new) {
            assert!(n <= o, "min rule may never increase a value");
        }
    }

    #[test]
    fn voter_output_subset_of_input() {
        let old: Vec<Value> = (0..997u32).map(|i| i % 13).collect();
        let mut new = vec![0; old.len()];
        step_seq(&old, &mut new, &VoterRule, 9, 2);
        for v in &new {
            assert!(*v < 13);
        }
    }

    #[test]
    fn median_validity_over_many_rounds() {
        // The median rule may only ever hold initial values.
        let mut state: Vec<Value> = (0..512u32).map(|i| (i % 7) * 100).collect();
        let allowed: std::collections::HashSet<Value> = state.iter().copied().collect();
        let mut scratch = vec![0; state.len()];
        for round in 0..50 {
            step_seq(&state, &mut scratch, &MedianRule, 123, round);
            std::mem::swap(&mut state, &mut scratch);
            for v in &state {
                assert!(allowed.contains(v), "median invented value {v}");
            }
        }
    }

    #[test]
    fn partial_update_prob_one_equals_full_step() {
        let old = all_distinct(5000);
        let mut full = vec![0; old.len()];
        let mut partial = vec![0; old.len()];
        step_seq(&old, &mut full, &MedianRule, 8, 4);
        step_partial(1, &old, &mut partial, &MedianRule, 8, 4, 1.0);
        assert_eq!(full, partial);
    }

    #[test]
    fn partial_update_prob_zero_freezes() {
        let old = all_distinct(1000);
        let mut new = vec![0; old.len()];
        step_partial(1, &old, &mut new, &MedianRule, 8, 0, 0.0);
        assert_eq!(old, new);
    }

    #[test]
    fn partial_update_fraction_roughly_alpha() {
        // With all-distinct values, an updating ball almost surely changes
        // value; count changed balls ≈ α·n.
        let n = 20_000usize;
        let old = all_distinct(n);
        let mut new = vec![0; n];
        step_partial(1, &old, &mut new, &MedianRule, 77, 0, 0.3);
        let changed = old.iter().zip(&new).filter(|(a, b)| a != b).count();
        let frac = changed as f64 / n as f64;
        // An updating ball keeps its value iff it is the median of the
        // sampled triple; for the all-distinct configuration that happens
        // with probability 2·E[x(1−x)] = 1/3, so the expected change rate is
        // α·(2/3) = 0.2.
        assert!(
            (frac - 0.2).abs() < 0.02,
            "changed fraction {frac} vs expected 0.2"
        );
    }

    #[test]
    fn partial_update_seq_equals_par() {
        let old = all_distinct(10_000);
        let mut seq = vec![0; old.len()];
        let mut par = vec![0; old.len()];
        step_partial(1, &old, &mut seq, &MedianRule, 9, 2, 0.5);
        step_partial(4, &old, &mut par, &MedianRule, 9, 2, 0.5);
        assert_eq!(seq, par);
    }

    #[test]
    fn partial_update_still_converges() {
        let n = 2048usize;
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        let mut converged = false;
        for round in 0..3000u64 {
            if state.iter().all(|&v| v == state[0]) {
                converged = true;
                break;
            }
            step_partial(1, &state, &mut scratch, &MedianRule, 3, round, 0.25);
            std::mem::swap(&mut state, &mut scratch);
        }
        assert!(
            converged,
            "α = 0.25 asynchrony should only slow convergence"
        );
    }

    #[test]
    fn two_bins_converge_within_bound() {
        // n = 4096, balanced split: O(log n) rounds w.h.p. — give 40× slack.
        let n = 4096usize;
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        let mut converged = None;
        for round in 0..500u64 {
            if state.iter().all(|&v| v == state[0]) {
                converged = Some(round);
                break;
            }
            step_seq(&state, &mut scratch, &MedianRule, 2024, round);
            std::mem::swap(&mut state, &mut scratch);
        }
        let r = converged.expect("median rule failed to converge in 500 rounds");
        assert!(r <= 500);
    }
}

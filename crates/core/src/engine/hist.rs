//! The histogram engine: `O(m²)` per round, independent of `n`.
//!
//! For a ball in bin `b` (bins indexed `0..m` in value order, load CDF `F`),
//! the median-rule destination law is fully determined by `F`:
//!
//! * destination `c < b`: both samples land at or below `c`, the higher one
//!   exactly at `c` → `P = F(c)² − F(c−1)²`;
//! * destination `c = b`: not both samples strictly below, not both strictly
//!   above → `P = 1 − F(b−1)² − (1 − F(b))²`;
//! * destination `c > b`: with `G(c) = 1 − F(c−1)` (mass at or above `c`),
//!   `P = G(c)² − G(c+1)²`.
//!
//! These sum to 1 exactly (telescoping). All `k_b` balls of bin `b` then
//! move via **one multinomial draw**, so a round costs `m` multinomials of
//! dimension `m` — populations of 2^52 balls simulate as fast as 2^10.

use rand::RngCore;
use stabcon_util::dist::multinomial_into;

use crate::histogram::Histogram;

/// The destination distribution for a ball currently in bin index `b`.
///
/// `cdf[i]` is the load CDF at bin `i` (see [`Histogram::cdf`]). Returns a
/// probability vector over bin indices `0..m`.
pub fn destination_law(cdf: &[f64], b: usize) -> Vec<f64> {
    let mut law = vec![0.0; cdf.len()];
    destination_law_into(cdf, b, &mut law);
    law
}

/// In-place variant of [`destination_law`] for the hot loop.
///
/// # Panics
/// Panics if `law.len() != cdf.len()` or `b` is out of range.
pub fn destination_law_into(cdf: &[f64], b: usize, law: &mut [f64]) {
    let m = cdf.len();
    assert_eq!(law.len(), m, "law buffer size mismatch");
    assert!(b < m, "bin index out of range");
    let f = |i: isize| -> f64 {
        if i < 0 {
            0.0
        } else {
            cdf[i as usize]
        }
    };
    // Mass at or above bin c.
    let g = |c: usize| -> f64 { 1.0 - f(c as isize - 1) };

    for (c, slot) in law.iter_mut().enumerate().take(b) {
        *slot = (f(c as isize) * f(c as isize) - f(c as isize - 1) * f(c as isize - 1)).max(0.0);
    }
    let below = f(b as isize - 1);
    let above = 1.0 - f(b as isize);
    law[b] = (1.0 - below * below - above * above).max(0.0);
    for (c, slot) in law.iter_mut().enumerate().skip(b + 1) {
        let gc = g(c);
        let gc1 = if c + 1 < m { g(c + 1) } else { 0.0 };
        *slot = (gc * gc - gc1 * gc1).max(0.0);
    }
    // The telescoping identity makes the law sum to 1 exactly in real
    // arithmetic, but the `.max(0.0)` clamps above discard the negative
    // rounding residue of catastrophic cancellation near F(c) ≈ 1, leaking
    // mass (up to ~1e-15 per entry) into the multinomial draw. Renormalize
    // so the total is 1 within 1e-12 again.
    let total: f64 = law.iter().sum();
    debug_assert!(total > 0.0, "destination law lost all mass");
    if total > 0.0 && total != 1.0 {
        let inv = 1.0 / total;
        for slot in law.iter_mut() {
            *slot *= inv;
        }
    }
}

/// Reusable per-round buffers for [`step_in_place`] (CDF, one destination
/// law, one draw vector, the accumulated new loads). One of these lives in
/// a [`crate::workspace::TrialWorkspace`], so the adaptive engine's
/// aggregated phase allocates nothing per round.
#[derive(Debug, Clone, Default)]
pub struct StepScratch {
    cdf: Vec<f64>,
    law: Vec<f64>,
    draws: Vec<u64>,
    new_loads: Vec<u64>,
}

/// Advance the median rule one round on aggregated loads.
pub fn step<R: RngCore + ?Sized>(hist: &Histogram, rng: &mut R) -> Histogram {
    let mut out = hist.clone();
    step_in_place(&mut out, rng, &mut StepScratch::default());
    out
}

/// [`step`] without the output histogram (or any per-round buffer)
/// allocation: same draws from the same RNG stream, loads updated in place.
/// At consensus (`m == 1`) this is a no-op that consumes no randomness,
/// exactly like [`step`].
pub fn step_in_place<R: RngCore + ?Sized>(hist: &mut Histogram, rng: &mut R, ws: &mut StepScratch) {
    let m = hist.support_size();
    if m == 1 {
        return;
    }
    hist.cdf_into(&mut ws.cdf);
    ws.law.clear();
    ws.law.resize(m, 0.0);
    ws.draws.clear();
    ws.draws.resize(m, 0);
    ws.new_loads.clear();
    ws.new_loads.resize(m, 0);
    for (b, &(_, load)) in hist.bins().iter().enumerate() {
        destination_law_into(&ws.cdf, b, &mut ws.law);
        multinomial_into(rng, load, &ws.law, &mut ws.draws);
        for (acc, &d) in ws.new_loads.iter_mut().zip(&ws.draws) {
            *acc += d;
        }
    }
    hist.set_loads(&ws.new_loads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use stabcon_util::rng::Xoshiro256pp;

    #[test]
    fn law_sums_to_one() {
        let h = Histogram::new(&[(0, 10), (5, 20), (9, 5), (12, 65)]);
        let cdf = h.cdf();
        for b in 0..4 {
            let law = destination_law(&cdf, b);
            let total: f64 = law.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "bin {b}: total {total}");
            for (c, &p) in law.iter().enumerate() {
                assert!((0.0..=1.0).contains(&p), "law[{c}] = {p}");
            }
        }
    }

    #[test]
    fn law_renormalized_under_cancellation() {
        // A long tail of relatively tiny bins drives F(c) → 1 with heavy
        // cancellation in F(c)² − F(c−1)²; post-clamp renormalization must
        // keep every law summing to 1 within 1e-12.
        let mut pairs: Vec<(Value, u64)> = vec![(0, u64::MAX >> 13)];
        pairs.extend((1..400u32).map(|v| (v, 1 + (v as u64 % 3))));
        let h = Histogram::new(&pairs);
        let cdf = h.cdf();
        let m = cdf.len();
        let mut law = vec![0.0; m];
        for b in [0usize, 1, m / 2, m - 2, m - 1] {
            destination_law_into(&cdf, b, &mut law);
            let total: f64 = law.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-12,
                "bin {b}: total deviates by {}",
                (total - 1.0).abs()
            );
        }
    }

    #[test]
    fn law_matches_hand_computation_two_bins() {
        // Bins (0: 1/4 of mass) and (1: 3/4). For a ball in bin 0:
        //   stay: 1 − 0 − (3/4)² = 7/16;  move right: (3/4)² = 9/16.
        let h = Histogram::new(&[(0, 1), (1, 3)]);
        let law0 = destination_law(&h.cdf(), 0);
        assert!((law0[0] - 7.0 / 16.0).abs() < 1e-12);
        assert!((law0[1] - 9.0 / 16.0).abs() < 1e-12);
        // Ball in bin 1: move left needs both ≤ bin0: (1/4)².
        let law1 = destination_law(&h.cdf(), 1);
        assert!((law1[0] - 1.0 / 16.0).abs() < 1e-12);
        assert!((law1[1] - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn law_matches_two_bin_closed_form() {
        // §3 of the paper: a ball in the smaller bin (load fraction q) stays
        // with probability 1 − (1 − q)², a ball in the larger bin moves to
        // the smaller with probability q².
        for &(l, r) in &[(30u64, 70u64), (50, 50), (1, 99)] {
            let h = Histogram::new(&[(0, l), (1, r)]);
            let q = l as f64 / (l + r) as f64;
            let law0 = destination_law(&h.cdf(), 0);
            assert!((law0[1] - (1.0 - q) * (1.0 - q)).abs() < 1e-12);
            let law1 = destination_law(&h.cdf(), 1);
            assert!((law1[0] - q * q).abs() < 1e-12);
        }
    }

    #[test]
    fn step_preserves_population_and_support() {
        let mut rng = Xoshiro256pp::seed(1);
        let mut h = Histogram::new(&[(3, 1000), (7, 2000), (11, 500), (20, 1500)]);
        let n = h.n();
        let values: Vec<Value> = h.bins().iter().map(|&(v, _)| v).collect();
        for _ in 0..20 {
            h = step(&h, &mut rng);
            assert_eq!(h.n(), n, "population must be conserved");
            for &(v, _) in h.bins() {
                assert!(values.contains(&v), "value {v} invented");
            }
        }
    }

    #[test]
    fn step_in_place_is_bit_identical_to_step() {
        // Same RNG stream, same draws, loads updated in place through a
        // dirty scratch — including the no-RNG consensus no-op.
        let mut a_rng = Xoshiro256pp::seed(9);
        let mut b_rng = Xoshiro256pp::seed(9);
        let mut h = Histogram::new(&[(2, 700), (5, 100), (8, 1), (9, 199)]);
        let mut ws = StepScratch::default();
        for _ in 0..64 {
            let fresh = step(&h, &mut a_rng);
            step_in_place(&mut h, &mut b_rng, &mut ws);
            assert_eq!(h, fresh);
            assert_eq!(a_rng.next_u64(), b_rng.next_u64(), "streams diverged");
        }
    }

    #[test]
    fn consensus_is_absorbing() {
        let mut rng = Xoshiro256pp::seed(2);
        let h = Histogram::new(&[(9, 12345)]);
        let next = step(&h, &mut rng);
        assert_eq!(next, h);
    }

    #[test]
    fn two_bins_converge() {
        let mut rng = Xoshiro256pp::seed(3);
        let mut h = Histogram::new(&[(0, 2048), (1, 2048)]);
        let mut rounds = 0u64;
        while h.support_size() > 1 && rounds < 500 {
            h = step(&h, &mut rng);
            rounds += 1;
        }
        assert_eq!(h.support_size(), 1, "no consensus after {rounds} rounds");
        assert!(rounds < 200, "suspiciously slow: {rounds}");
    }

    #[test]
    fn huge_population_converges() {
        // 2^40 balls in three bins — impossible densely, trivial here.
        let mut rng = Xoshiro256pp::seed(4);
        let big = 1u64 << 40;
        let mut h = Histogram::new(&[(1, big), (2, big), (3, big)]);
        let mut rounds = 0u64;
        while h.support_size() > 1 && rounds < 2000 {
            h = step(&h, &mut rng);
            rounds += 1;
        }
        assert_eq!(h.support_size(), 1);
        assert_eq!(h.n(), 3 * big);
    }

    #[test]
    fn median_bin_attracts() {
        // One step from a symmetric 3-bin config must, in expectation, grow
        // the middle bin; check the empirical mean over repeats.
        let mut rng = Xoshiro256pp::seed(5);
        let start = Histogram::new(&[(0, 300), (1, 400), (2, 300)]);
        let mut mid_sum = 0u64;
        let reps = 300;
        for _ in 0..reps {
            let next = step(&start, &mut rng);
            mid_sum += next.disagreement_with(0) + next.disagreement_with(2) - next.n();
            // disagreement_with(0)+disagreement_with(2) = (n-c0)+(n-c2) = n + c1.
        }
        let mean_mid = mid_sum as f64 / reps as f64;
        assert!(
            mean_mid > 420.0,
            "median bin should grow from 400: got {mean_mid}"
        );
    }
}

//! The message-level engine: protocol rounds over the real communication
//! model (`stabcon-net`), including logarithmic inbox caps, drop policies,
//! and anonymous private numbering.
//!
//! Where the dense engine *assumes* each ball learns its two samples, this
//! engine actually routes request/response messages: a sample is lost when
//! the target's inbox overflowed and the drop policy discarded the request.
//! [`OnMissing`] decides how the protocol degrades.

use stabcon_net::{
    log_inbox_cap, run_round, DropPolicy, FeistelPerm, KeepFirst, ProcessId, RandomDrop,
    RoundConfig, RoundMetrics, StarveSet,
};
use stabcon_util::rng::{gen_index, hash3, CounterRng, Xoshiro256pp};

use crate::protocol::{Protocol, MAX_SAMPLES};
use crate::value::Value;

/// What a process does about a sample that never arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnMissing {
    /// Substitute its own value (conservative: a ball with no information
    /// keeps its opinion).
    KeepOwn,
    /// Substitute the first response that did arrive (aggressive; if nothing
    /// arrived, falls back to its own value).
    Adopt,
}

/// Drop-policy selector (mirrors `stabcon-net` policies, plus parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropSpec {
    /// Uniformly random subset survives.
    Random,
    /// First `cap` requests in arrival order survive.
    KeepFirst,
    /// Adversarial: requests from the first `k` processes are dropped first.
    StarveFirstK {
        /// Number of starved processes.
        k: usize,
    },
}

impl DropSpec {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            DropSpec::Random => "random",
            DropSpec::KeepFirst => "keep-first",
            DropSpec::StarveFirstK { .. } => "starve",
        }
    }

    fn build(&self, n: usize) -> Box<dyn DropPolicy + Send> {
        match *self {
            DropSpec::Random => Box::new(RandomDrop),
            DropSpec::KeepFirst => Box::new(KeepFirst),
            DropSpec::StarveFirstK { k } => Box::new(StarveSet::first_k(n, k)),
        }
    }
}

/// Message-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageConfig {
    /// Inbox cap multiplier: cap = `cap_mult · ⌈log₂ n⌉`.
    pub cap_mult: usize,
    /// Drop policy for overloaded inboxes.
    pub drop: DropSpec,
    /// Missing-sample handling.
    pub on_missing: OnMissing,
}

impl Default for MessageConfig {
    fn default() -> Self {
        Self {
            cap_mult: 2,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
        }
    }
}

/// Stream id used to derive per-process anonymity keys (arbitrary tag).
const ANON_STREAM: u64 = 0xA11CE5;

/// A reusable message-level engine for one population size.
pub struct MessageEngine {
    cfg: MessageConfig,
    round_cfg: RoundConfig,
    policy: Box<dyn DropPolicy + Send>,
    net_rng: Xoshiro256pp,
    targets: Vec<ProcessId>,
    responses: Vec<Vec<(ProcessId, Value)>>,
    totals: RoundMetrics,
}

impl MessageEngine {
    /// Build an engine for `n` processes. `seed` keys both the anonymity
    /// permutations and the network-side randomness (drop selection).
    pub fn new(n: usize, cfg: MessageConfig, seed: u64) -> Self {
        Self {
            cfg,
            round_cfg: RoundConfig {
                inbox_cap: log_inbox_cap(n, cfg.cap_mult.max(1)),
                self_bypass: true,
            },
            policy: cfg.drop.build(n),
            net_rng: Xoshiro256pp::seed(hash3(seed, ANON_STREAM, 1)),
            targets: Vec::new(),
            responses: vec![Vec::new(); n],
            totals: RoundMetrics::default(),
        }
    }

    /// The effective inbox cap.
    pub fn inbox_cap(&self) -> usize {
        self.round_cfg.inbox_cap
    }

    /// The population size this engine was built for.
    pub fn n(&self) -> usize {
        self.responses.len()
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> MessageConfig {
        self.cfg
    }

    /// Re-key the engine for a fresh trial with the same `(n, config)`,
    /// keeping the routing buffers: after this the engine behaves exactly
    /// like [`MessageEngine::new`] with `seed` (drop policies carry no
    /// cross-trial state — they are pure functions of `(n, config)` plus
    /// the per-round randomness).
    pub fn reset(&mut self, seed: u64) {
        self.net_rng = Xoshiro256pp::seed(hash3(seed, ANON_STREAM, 1));
        // Undo a `with_inbox_cap` override so reset ≡ new.
        self.round_cfg.inbox_cap = log_inbox_cap(self.n(), self.cfg.cap_mult.max(1));
        self.totals = RoundMetrics::default();
        self.targets.clear();
        for inbox in &mut self.responses {
            inbox.clear();
        }
    }

    /// Override the inbox cap with an absolute value (stress-testing knob:
    /// the canonical `c·⌈log₂ n⌉` cap sits *above* the maximum inbox load
    /// w.h.p., so drops are rare; sub-logarithmic caps make them bite).
    pub fn with_inbox_cap(mut self, cap: usize) -> Self {
        self.round_cfg.inbox_cap = cap.max(1);
        self
    }

    /// Accumulated delivery metrics over all rounds stepped so far.
    pub fn totals(&self) -> &RoundMetrics {
        &self.totals
    }

    /// Advance one round: reads `old`, writes `new`.
    ///
    /// Sampling matches the dense engine's coordinates (`seed`,
    /// `round·n + ball`), but each draw is routed through the ball's private
    /// numbering (anonymity) and then through the network with caps.
    ///
    /// # Panics
    /// Panics if buffer sizes disagree with the engine's `n`.
    pub fn step(
        &mut self,
        old: &[Value],
        new: &mut [Value],
        protocol: &dyn Protocol,
        seed: u64,
        round: u64,
    ) -> RoundMetrics {
        let n = old.len();
        assert_eq!(new.len(), n, "state buffers differ in length");
        assert_eq!(self.responses.len(), n, "engine built for different n");
        let k = protocol.samples();
        assert!(k <= MAX_SAMPLES, "protocol requests too many samples");

        // Phase 1: draw targets through private numberings.
        self.targets.clear();
        self.targets.reserve(n * k);
        for i in 0..n {
            let perm = FeistelPerm::new(n as u64, hash3(seed, ANON_STREAM, i as u64));
            let mut rng = CounterRng::new(seed, round.wrapping_mul(n as u64) + i as u64);
            for _ in 0..k {
                let local = gen_index(&mut rng, n as u64);
                self.targets.push(perm.apply(local) as ProcessId);
            }
        }

        // Phase 2: route through the network.
        let metrics = run_round(
            old,
            &self.targets,
            k,
            &self.round_cfg,
            self.policy.as_mut(),
            &mut self.net_rng,
            &mut self.responses,
        );
        self.totals.absorb(&metrics);

        // Phase 3: combine.
        let mut samples = [0 as Value; MAX_SAMPLES];
        for (i, slot) in new.iter_mut().enumerate() {
            let got = &self.responses[i];
            let own = old[i];
            let fallback = match self.cfg.on_missing {
                OnMissing::KeepOwn => own,
                OnMissing::Adopt => got.first().map(|&(_, v)| v).unwrap_or(own),
            };
            for (j, sample) in samples.iter_mut().take(k).enumerate() {
                *sample = got.get(j).map(|&(_, v)| v).unwrap_or(fallback);
            }
            *slot = protocol.combine(own, &samples[..k]);
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MedianRule;

    fn converge(n: usize, cfg: MessageConfig, seed: u64, max_rounds: u64) -> Option<u64> {
        let mut engine = MessageEngine::new(n, cfg, seed);
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        for round in 0..max_rounds {
            if state.iter().all(|&v| v == state[0]) {
                return Some(round);
            }
            engine.step(&state, &mut scratch, &MedianRule, seed, round);
            std::mem::swap(&mut state, &mut scratch);
        }
        None
    }

    #[test]
    fn converges_under_random_drops() {
        let cfg = MessageConfig::default();
        let r = converge(2048, cfg, 11, 600).expect("no consensus");
        assert!(r < 400, "took {r} rounds");
    }

    #[test]
    fn converges_with_tight_cap() {
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
        };
        assert!(converge(1024, cfg, 12, 800).is_some());
    }

    #[test]
    fn converges_under_adversarial_drops() {
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::StarveFirstK { k: 64 },
            on_missing: OnMissing::KeepOwn,
        };
        assert!(converge(1024, cfg, 13, 800).is_some());
    }

    #[test]
    fn metrics_accumulate() {
        let n = 512;
        let mut engine = MessageEngine::new(n, MessageConfig::default(), 3);
        let state: Vec<Value> = (0..n).map(|i| i as Value).collect();
        let mut scratch = vec![0; n];
        let m1 = engine.step(&state, &mut scratch, &MedianRule, 3, 0);
        assert_eq!(
            m1.requests + m1.self_requests,
            (n * 2) as u64,
            "every ball sends 2 requests"
        );
        let _ = engine.step(&state, &mut scratch, &MedianRule, 3, 1);
        assert!(engine.totals().requests >= m1.requests);
    }

    #[test]
    fn dropped_plus_delivered_is_total() {
        let n = 256;
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
        };
        let mut engine = MessageEngine::new(n, cfg, 4);
        let state: Vec<Value> = vec![5; n];
        let mut scratch = vec![0; n];
        let m = engine.step(&state, &mut scratch, &MedianRule, 4, 0);
        assert_eq!(m.delivered + m.dropped, m.requests);
    }

    #[test]
    fn consensus_absorbing_even_with_drops() {
        let n = 512;
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::KeepFirst,
            on_missing: OnMissing::KeepOwn,
        };
        let mut engine = MessageEngine::new(n, cfg, 5);
        let state: Vec<Value> = vec![9; n];
        let mut scratch = vec![0; n];
        engine.step(&state, &mut scratch, &MedianRule, 5, 0);
        assert_eq!(scratch, state);
    }

    #[test]
    fn adopt_policy_also_converges() {
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing: OnMissing::Adopt,
        };
        assert!(converge(1024, cfg, 14, 800).is_some());
    }
}

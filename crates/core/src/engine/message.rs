//! The message-level engine: protocol rounds over the real communication
//! model (`stabcon-net`), including logarithmic inbox caps, drop policies,
//! and anonymous private numbering.
//!
//! Where the dense engine *assumes* each ball learns its two samples, this
//! engine actually routes request/response messages: a sample is lost when
//! the target's inbox overflowed and the drop policy discarded the request.
//! [`OnMissing`] decides how the protocol degrades.
//!
//! On top of the clean synchronous executor the engine can route every
//! round through a [`NetScenario`] — seeded latency, link drops,
//! partitions, churn, and Byzantine response forging (see
//! `stabcon_net::scenario`). The zero-fault scenario (the default) is
//! bit-identical to the plain executor; [`MessageEngine::step_reference`]
//! keeps the original path alive as a regression oracle.

use stabcon_net::{
    log_inbox_cap, run_round, DropPolicy, FeistelPerm, KeepFirst, NetScenario, ProcessId,
    RandomDrop, RoundConfig, RoundMetrics, ScenarioSpec, StarveSet,
};
use stabcon_util::rng::{gen_index, hash3, CounterRng, Xoshiro256pp};

use crate::protocol::{Protocol, MAX_SAMPLES};
use crate::value::Value;

/// What a process does about a sample that never arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnMissing {
    /// Substitute its own value (conservative: a ball with no information
    /// keeps its opinion).
    KeepOwn,
    /// Substitute the first response that did arrive (aggressive; if nothing
    /// arrived, falls back to its own value).
    Adopt,
}

/// Drop-policy selector (mirrors `stabcon-net` policies, plus parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropSpec {
    /// Uniformly random subset survives.
    Random,
    /// First `cap` requests in arrival order survive.
    KeepFirst,
    /// Adversarial: requests from the first `k` processes are dropped first.
    StarveFirstK {
        /// Number of starved processes.
        k: usize,
    },
}

impl DropSpec {
    /// Table label. Parameterized variants include their parameters so grid
    /// rows stay distinguishable.
    pub fn label(&self) -> String {
        match self {
            DropSpec::Random => "random".into(),
            DropSpec::KeepFirst => "keep-first".into(),
            DropSpec::StarveFirstK { k } => format!("starve({k})"),
        }
    }

    fn build(&self, n: usize) -> Box<dyn DropPolicy + Send> {
        match *self {
            DropSpec::Random => Box::new(RandomDrop),
            DropSpec::KeepFirst => Box::new(KeepFirst),
            DropSpec::StarveFirstK { k } => Box::new(StarveSet::first_k(n, k)),
        }
    }
}

/// Message-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageConfig {
    /// Inbox cap multiplier: cap = `cap_mult · ⌈log₂ n⌉`.
    pub cap_mult: usize,
    /// Drop policy for overloaded inboxes.
    pub drop: DropSpec,
    /// Missing-sample handling.
    pub on_missing: OnMissing,
    /// Network-fault scenario the round traffic is routed through. The
    /// default ([`ScenarioSpec::clean`]) is bit-identical to the plain
    /// synchronous executor.
    pub scenario: ScenarioSpec,
}

impl Default for MessageConfig {
    fn default() -> Self {
        Self {
            cap_mult: 2,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
            scenario: ScenarioSpec::clean(),
        }
    }
}

/// Stream id used to derive per-process anonymity keys (arbitrary tag).
const ANON_STREAM: u64 = 0xA11CE5;

/// Stream id keying the scenario's fault randomness (distinct from
/// [`ANON_STREAM`] so fault draws never alias anonymity or drop-policy
/// randomness).
const SCEN_STREAM: u64 = 0x5CE11A;

/// A reusable message-level engine for one population size.
pub struct MessageEngine {
    cfg: MessageConfig,
    round_cfg: RoundConfig,
    policy: Box<dyn DropPolicy + Send>,
    net_rng: Xoshiro256pp,
    scenario: NetScenario<Value>,
    targets: Vec<ProcessId>,
    responses: Vec<Vec<(ProcessId, Value)>>,
    totals: RoundMetrics,
}

impl MessageEngine {
    /// Build an engine for `n` processes. `seed` keys the anonymity
    /// permutations, the network-side randomness (drop selection), and the
    /// fault scenario.
    pub fn new(n: usize, cfg: MessageConfig, seed: u64) -> Self {
        Self {
            cfg,
            round_cfg: RoundConfig {
                inbox_cap: log_inbox_cap(n, cfg.cap_mult.max(1)),
                self_bypass: true,
            },
            policy: cfg.drop.build(n),
            net_rng: Xoshiro256pp::seed(hash3(seed, ANON_STREAM, 1)),
            scenario: NetScenario::new(n, cfg.scenario, hash3(seed, SCEN_STREAM, 0)),
            targets: Vec::new(),
            responses: vec![Vec::new(); n],
            totals: RoundMetrics::default(),
        }
    }

    /// The effective inbox cap.
    pub fn inbox_cap(&self) -> usize {
        self.round_cfg.inbox_cap
    }

    /// The population size this engine was built for.
    pub fn n(&self) -> usize {
        self.responses.len()
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> MessageConfig {
        self.cfg
    }

    /// The fault scenario the engine routes through.
    pub fn scenario(&self) -> &NetScenario<Value> {
        &self.scenario
    }

    /// Re-key the engine for a fresh trial with the same `(n, config)`,
    /// keeping the routing buffers (including the scenario's delay rings
    /// and inboxes): after this the engine behaves exactly like
    /// [`MessageEngine::new`] with `seed` (drop policies carry no
    /// cross-trial state — they are pure functions of `(n, config)` plus
    /// the per-round randomness). No allocation happens on this path.
    pub fn reset(&mut self, seed: u64) {
        self.net_rng = Xoshiro256pp::seed(hash3(seed, ANON_STREAM, 1));
        self.scenario.reset(hash3(seed, SCEN_STREAM, 0));
        // Undo a `with_inbox_cap` override so reset ≡ new.
        self.round_cfg.inbox_cap = log_inbox_cap(self.n(), self.cfg.cap_mult.max(1));
        self.totals = RoundMetrics::default();
        self.targets.clear();
        for inbox in &mut self.responses {
            inbox.clear();
        }
    }

    /// Override the inbox cap with an absolute value (stress-testing knob:
    /// the canonical `c·⌈log₂ n⌉` cap sits *above* the maximum inbox load
    /// w.h.p., so drops are rare; sub-logarithmic caps make them bite).
    pub fn with_inbox_cap(mut self, cap: usize) -> Self {
        self.round_cfg.inbox_cap = cap.max(1);
        self
    }

    /// Accumulated delivery metrics over all rounds stepped so far.
    pub fn totals(&self) -> &RoundMetrics {
        &self.totals
    }

    /// Draw this round's sample targets through the private numberings.
    /// Coordinates match the dense engine (`seed`, `round·n + ball`); the
    /// layout is identical whether or not a process is crashed, so fault
    /// scenarios never shift the sampling randomness of live processes.
    fn draw_targets(&mut self, n: usize, k: usize, seed: u64, round: u64) {
        self.targets.clear();
        self.targets.reserve(n * k);
        for i in 0..n {
            let perm = FeistelPerm::new(n as u64, hash3(seed, ANON_STREAM, i as u64));
            let mut rng = CounterRng::new(seed, round.wrapping_mul(n as u64) + i as u64);
            for _ in 0..k {
                let local = gen_index(&mut rng, n as u64);
                self.targets.push(perm.apply(local) as ProcessId);
            }
        }
    }

    /// Advance one round: reads `old`, writes `new`.
    ///
    /// Sampling matches the dense engine's coordinates (`seed`,
    /// `round·n + ball`), but each draw is routed through the ball's private
    /// numbering (anonymity) and then through the network — with caps, and
    /// with whatever faults the configured [`ScenarioSpec`] injects. With
    /// the zero-fault scenario this is bit-identical to
    /// [`MessageEngine::step_reference`].
    ///
    /// # Panics
    /// Panics if buffer sizes disagree with the engine's `n`.
    pub fn step(
        &mut self,
        old: &[Value],
        new: &mut [Value],
        protocol: &dyn Protocol,
        seed: u64,
        round: u64,
    ) -> RoundMetrics {
        let n = old.len();
        assert_eq!(new.len(), n, "state buffers differ in length");
        assert_eq!(self.responses.len(), n, "engine built for different n");
        let k = protocol.samples();
        assert!(k <= MAX_SAMPLES, "protocol requests too many samples");

        // Phase 1: draw targets through private numberings.
        self.draw_targets(n, k, seed, round);

        // The adversary's forge value: the smallest value currently held,
        // i.e. the choice that keeps a minority value alive longest against
        // the median rule's drift. Only computed when a Byzantine responder
        // or an adversarial rejoin needs it this round.
        let forge = if self.scenario.wants_forge_value(round) {
            old.iter().min().copied()
        } else {
            None
        };

        // Phase 2: route through the (possibly hostile) network. Timed as
        // one routing phase; the scenario's per-trial fault draws are timed
        // separately (`Phase::Faults`, in `NetScenario::rebuild_fault_sets`).
        let t = stabcon_obs::phase(stabcon_obs::Phase::Route);
        let metrics = self.scenario.route_round(
            round,
            old,
            &self.targets,
            k,
            &self.round_cfg,
            self.policy.as_mut(),
            &mut self.net_rng,
            &mut self.responses,
            forge,
        );
        drop(t);
        self.totals.absorb(&metrics);

        // Phase 3: combine. Crashed processes hold their value (or rejoin
        // at the adversary's choice on the window boundary).
        let mut samples = [0 as Value; MAX_SAMPLES];
        for (i, slot) in new.iter_mut().enumerate() {
            if self.scenario.is_down(i, round) {
                *slot = if self.scenario.adversarial_rejoin(i, round) {
                    forge.unwrap_or(old[i])
                } else {
                    old[i]
                };
                continue;
            }
            let got = &self.responses[i];
            let own = old[i];
            let fallback = match self.cfg.on_missing {
                OnMissing::KeepOwn => own,
                OnMissing::Adopt => got.first().map(|&(_, v)| v).unwrap_or(own),
            };
            for (j, sample) in samples.iter_mut().take(k).enumerate() {
                *sample = got.get(j).map(|&(_, v)| v).unwrap_or(fallback);
            }
            *slot = protocol.combine(own, &samples[..k]);
        }
        metrics
    }

    /// Advance one round through the plain synchronous executor, ignoring
    /// the configured scenario — the pre-scenario engine, kept as a
    /// lossless oracle: regression tests pin `step` with the zero-fault
    /// scenario bit-identical to this path.
    ///
    /// # Panics
    /// Panics if buffer sizes disagree with the engine's `n`.
    pub fn step_reference(
        &mut self,
        old: &[Value],
        new: &mut [Value],
        protocol: &dyn Protocol,
        seed: u64,
        round: u64,
    ) -> RoundMetrics {
        let n = old.len();
        assert_eq!(new.len(), n, "state buffers differ in length");
        assert_eq!(self.responses.len(), n, "engine built for different n");
        let k = protocol.samples();
        assert!(k <= MAX_SAMPLES, "protocol requests too many samples");

        self.draw_targets(n, k, seed, round);

        let metrics = run_round(
            old,
            &self.targets,
            k,
            &self.round_cfg,
            self.policy.as_mut(),
            &mut self.net_rng,
            &mut self.responses,
        );
        self.totals.absorb(&metrics);

        let mut samples = [0 as Value; MAX_SAMPLES];
        for (i, slot) in new.iter_mut().enumerate() {
            let got = &self.responses[i];
            let own = old[i];
            let fallback = match self.cfg.on_missing {
                OnMissing::KeepOwn => own,
                OnMissing::Adopt => got.first().map(|&(_, v)| v).unwrap_or(own),
            };
            for (j, sample) in samples.iter_mut().take(k).enumerate() {
                *sample = got.get(j).map(|&(_, v)| v).unwrap_or(fallback);
            }
            *slot = protocol.combine(own, &samples[..k]);
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MedianRule;
    use stabcon_net::Rejoin;

    fn converge(n: usize, cfg: MessageConfig, seed: u64, max_rounds: u64) -> Option<u64> {
        let mut engine = MessageEngine::new(n, cfg, seed);
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        for round in 0..max_rounds {
            if state.iter().all(|&v| v == state[0]) {
                return Some(round);
            }
            engine.step(&state, &mut scratch, &MedianRule, seed, round);
            std::mem::swap(&mut state, &mut scratch);
        }
        None
    }

    #[test]
    fn converges_under_random_drops() {
        let cfg = MessageConfig::default();
        let r = converge(2048, cfg, 11, 600).expect("no consensus");
        assert!(r < 400, "took {r} rounds");
    }

    #[test]
    fn converges_with_tight_cap() {
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
            ..MessageConfig::default()
        };
        assert!(converge(1024, cfg, 12, 800).is_some());
    }

    #[test]
    fn converges_under_adversarial_drops() {
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::StarveFirstK { k: 64 },
            on_missing: OnMissing::KeepOwn,
            ..MessageConfig::default()
        };
        assert!(converge(1024, cfg, 13, 800).is_some());
    }

    #[test]
    fn metrics_accumulate() {
        let n = 512;
        let mut engine = MessageEngine::new(n, MessageConfig::default(), 3);
        let state: Vec<Value> = (0..n).map(|i| i as Value).collect();
        let mut scratch = vec![0; n];
        let m1 = engine.step(&state, &mut scratch, &MedianRule, 3, 0);
        assert_eq!(
            m1.requests + m1.self_requests,
            (n * 2) as u64,
            "every ball sends 2 requests"
        );
        let _ = engine.step(&state, &mut scratch, &MedianRule, 3, 1);
        assert!(engine.totals().requests >= m1.requests);
    }

    #[test]
    fn dropped_plus_delivered_is_total() {
        let n = 256;
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
            ..MessageConfig::default()
        };
        let mut engine = MessageEngine::new(n, cfg, 4);
        let state: Vec<Value> = vec![5; n];
        let mut scratch = vec![0; n];
        let m = engine.step(&state, &mut scratch, &MedianRule, 4, 0);
        assert_eq!(m.delivered + m.dropped, m.requests);
    }

    #[test]
    fn consensus_absorbing_even_with_drops() {
        let n = 512;
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::KeepFirst,
            on_missing: OnMissing::KeepOwn,
            ..MessageConfig::default()
        };
        let mut engine = MessageEngine::new(n, cfg, 5);
        let state: Vec<Value> = vec![9; n];
        let mut scratch = vec![0; n];
        engine.step(&state, &mut scratch, &MedianRule, 5, 0);
        assert_eq!(scratch, state);
    }

    #[test]
    fn adopt_policy_also_converges() {
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing: OnMissing::Adopt,
            ..MessageConfig::default()
        };
        assert!(converge(1024, cfg, 14, 800).is_some());
    }

    #[test]
    fn starve_label_includes_k() {
        assert_eq!(DropSpec::StarveFirstK { k: 64 }.label(), "starve(64)");
        assert_ne!(
            DropSpec::StarveFirstK { k: 8 }.label(),
            DropSpec::StarveFirstK { k: 9 }.label()
        );
    }

    #[test]
    fn zero_fault_step_matches_reference_bitwise() {
        // The tentpole's regression anchor: the scenario-routed step with
        // every fault knob off reproduces the pre-scenario engine exactly —
        // states, metrics, and totals — over a multi-round run on a tight
        // cap (so the drop policy consumes net_rng on both sides).
        let n = 512;
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
            ..MessageConfig::default()
        };
        let seed = 0xC0FFEE;
        let mut a = MessageEngine::new(n, cfg, seed).with_inbox_cap(2);
        let mut b = MessageEngine::new(n, cfg, seed).with_inbox_cap(2);
        let init: Vec<Value> = (0..n).map(|i| (i % 7) as Value).collect();
        let (mut sa, mut sb) = (init.clone(), init);
        let mut na = vec![0; n];
        let mut nb = vec![0; n];
        for round in 0..30u64 {
            let ma = a.step(&sa, &mut na, &MedianRule, seed, round);
            let mb = b.step_reference(&sb, &mut nb, &MedianRule, seed, round);
            assert_eq!(ma, mb, "round {round} metrics diverged");
            assert_eq!(na, nb, "round {round} states diverged");
            std::mem::swap(&mut sa, &mut na);
            std::mem::swap(&mut sb, &mut nb);
        }
        assert_eq!(a.totals(), b.totals());
    }

    #[test]
    fn converges_under_latency_and_drops() {
        let cfg = MessageConfig {
            scenario: ScenarioSpec::clean()
                .with_latency(0, 2)
                .with_drop_per_mille(100),
            ..MessageConfig::default()
        };
        assert!(converge(1024, cfg, 15, 1200).is_some());
    }

    #[test]
    fn converges_through_partition_heal() {
        let cfg = MessageConfig {
            scenario: ScenarioSpec::clean().with_partition(500, 0, 30),
            ..MessageConfig::default()
        };
        assert!(converge(1024, cfg, 16, 1200).is_some());
    }

    #[test]
    fn adversarial_rejoin_reinjects_minority_value() {
        // Everyone holds 1 except one *crashed* process holding 0: being
        // down, it keeps the minority value alive through the window, so at
        // the rejoin boundary every crashed process must come back holding
        // the adversary's minimum (0), not its pre-crash value (1).
        let n = 64;
        let cfg = MessageConfig {
            scenario: ScenarioSpec::clean().with_churn(8, 0, 3, Rejoin::Adversarial),
            ..MessageConfig::default()
        };
        let seed = 21;
        let mut engine = MessageEngine::new(n, cfg, seed);
        let down: Vec<usize> = (0..n)
            .filter(|&p| engine.scenario().is_down(p, 0))
            .collect();
        assert_eq!(down.len(), 8);
        let mut state: Vec<Value> = vec![1; n];
        state[down[0]] = 0; // the minority value the adversary keeps alive
        let mut scratch = vec![0; n];
        for round in 0..3u64 {
            engine.step(&state, &mut scratch, &MedianRule, seed, round);
            std::mem::swap(&mut state, &mut scratch);
        }
        // Round 2 was the rejoin boundary (until = 3): every crashed
        // process now holds the adversary's minimum.
        for &p in &down {
            assert_eq!(state[p], 0, "process {p} did not rejoin adversarially");
        }
    }

    #[test]
    fn byzantine_minority_still_converges_and_stays_valid() {
        let n = 1024;
        let cfg = MessageConfig {
            scenario: ScenarioSpec::clean().with_byzantine(16),
            ..MessageConfig::default()
        };
        let seed = 22;
        let mut engine = MessageEngine::new(n, cfg, seed);
        let mut state: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        let mut scratch = vec![0; n];
        for round in 0..1200u64 {
            if state.iter().all(|&v| v == state[0]) {
                break;
            }
            engine.step(&state, &mut scratch, &MedianRule, seed, round);
            std::mem::swap(&mut state, &mut scratch);
            // Validity: forged values are minima of currently-held values,
            // so the state stays within the initial value range.
            assert!(state.iter().all(|&v| v <= 1), "validity violated");
        }
        assert!(
            state.iter().all(|&v| v == state[0]),
            "no consensus under Byzantine minority"
        );
        assert!(engine.totals().forged > 0, "no forgery actually happened");
    }

    #[test]
    fn scenario_reset_replays_trial_bit_identically() {
        let n = 256;
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
            scenario: ScenarioSpec::clean()
                .with_latency(0, 2)
                .with_drop_per_mille(150)
                .with_byzantine(4),
        };
        let seed = 23;
        let run = |engine: &mut MessageEngine| {
            let mut state: Vec<Value> = (0..n).map(|i| (i % 3) as Value).collect();
            let mut scratch = vec![0; n];
            for round in 0..40u64 {
                engine.step(&state, &mut scratch, &MedianRule, seed, round);
                std::mem::swap(&mut state, &mut scratch);
            }
            (state, *engine.totals())
        };
        let mut engine = MessageEngine::new(n, cfg, seed);
        let first = run(&mut engine);
        // Dirty engine (delay rings were mid-flight at trial end), then
        // reset: must replay exactly, matching a fresh engine.
        engine.reset(seed);
        assert_eq!(run(&mut engine), first);
        let mut fresh = MessageEngine::new(n, cfg, seed);
        assert_eq!(run(&mut fresh), first);
    }
}

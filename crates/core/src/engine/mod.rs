//! Simulation engines: four interchangeable ways to advance one round.
//!
//! | engine | cost/round | population limit | communication model |
//! |--------|-----------|------------------|---------------------|
//! | [`dense`] | `O(n)` (seq or parallel) | memory (`4n` bytes) | idealized sampling |
//! | [`hist`]  | `O(m²)` | `2^52` balls | idealized sampling |
//! | [`adaptive`] | `O(n)` early, `O(m²)` after handoff | memory (`4n` bytes) | idealized sampling |
//! | [`message`] | `O(n + messages)` | memory | full request/response with logarithmic inbox caps and drop policies |
//!
//! Dense parallel and dense sequential are **bit-identical** for any thread
//! count: per-ball randomness is addressed by counter-RNG coordinates
//! `(seed, round·n + ball)`, not by draw order. The dense step functions are
//! generic over the protocol, so concrete-rule callers get a monomorphized
//! (statically dispatched) hot loop while `&dyn Protocol` callers keep
//! working — both produce the same bits. Internally the dense round runs a
//! **batched phase-split kernel** ([`dense::KERNEL_BLOCK`]-ball blocks, one
//! tight loop each for RNG-word generation, index resolution, value gather,
//! and protocol apply) that is bit-identical to the scalar reference loop
//! it replaced ([`dense::step_seq_reference`], pinned by
//! `tests/dense_kernel_props.rs`); the load-sampled variant reuses a
//! [`dense::LoadSampler`] whose alias table rebuilds in place each round.
//!
//! The **adaptive** engine runs dense while many values are live, then hands
//! off to the exact `O(m²)` multinomial histogram process once the support
//! has shrunk to the configured threshold (default
//! [`adaptive::DEFAULT_HANDOFF_SUPPORT`] = 64 bins). The handoff is
//! statistically exact for the median rule — the destination law depends
//! only on the loads — and turns the long near-consensus tail of a trial
//! from `O(n)`/round into `O(m²)`/round (a `TwoBins` trial at `n = 10⁶`
//! completes ≥5× faster end-to-end). It applies only when nothing forces a
//! per-ball view of the state: a dense-state adversary (`budget > 0`), an
//! `update_fraction < 1` ablation, or a non-median protocol each keep the
//! trial dense for all rounds (exact, just not faster).

pub mod adaptive;
pub mod dense;
pub mod hist;
pub mod message;

pub use message::{DropSpec, MessageConfig, MessageEngine, OnMissing};
// Scenario types ride inside `MessageConfig`; re-export them so downstream
// crates (campaign grids) can name them without depending on `stabcon-net`.
pub use stabcon_net::{ChurnSpec, PartitionSpec, Rejoin, ScenarioSpec};

/// Engine selector for [`crate::runner::SimSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSpec {
    /// Dense sequential engine.
    DenseSeq,
    /// Dense engine with deterministic parallel rounds.
    DensePar {
        /// Worker threads (1 falls back to sequential).
        threads: usize,
    },
    /// Dense (parallel) until the live support shrinks to
    /// `handoff_support`, then the exact `O(m²)` histogram engine.
    ///
    /// Only the median rule hands off (its destination law is load-only);
    /// other protocols, adversarial runs (`budget > 0`), and
    /// `update_fraction < 1` stay dense throughout.
    Adaptive {
        /// Worker threads for the dense phase (1 = sequential).
        threads: usize,
        /// Hand off once the number of distinct values is ≤ this.
        handoff_support: usize,
    },
    /// Full message-level engine on `stabcon-net`.
    Message(MessageConfig),
}

impl EngineSpec {
    /// Adaptive engine with default threads and handoff threshold.
    pub fn adaptive() -> Self {
        EngineSpec::Adaptive {
            threads: stabcon_par::default_threads(),
            handoff_support: adaptive::DEFAULT_HANDOFF_SUPPORT,
        }
    }

    /// Table label.
    pub fn label(&self) -> String {
        match self {
            EngineSpec::DenseSeq => "dense".into(),
            EngineSpec::DensePar { threads } => format!("dense-par({threads})"),
            EngineSpec::Adaptive {
                threads,
                handoff_support,
            } => format!("adaptive({threads},m≤{handoff_support})"),
            EngineSpec::Message(cfg) => {
                // Keep the historical label for clean-network configs; only
                // faulted scenarios grow a suffix.
                if cfg.scenario.is_zero_fault() {
                    format!("message(cap={}x,drop={})", cfg.cap_mult, cfg.drop.label())
                } else {
                    format!(
                        "message(cap={}x,drop={},scen={})",
                        cfg.cap_mult,
                        cfg.drop.label(),
                        cfg.scenario.label()
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let specs = [
            EngineSpec::DenseSeq,
            EngineSpec::DensePar { threads: 4 },
            EngineSpec::adaptive(),
            EngineSpec::Message(MessageConfig::default()),
            // Starve variants must not collapse to one label.
            EngineSpec::Message(MessageConfig {
                drop: DropSpec::StarveFirstK { k: 8 },
                ..MessageConfig::default()
            }),
            EngineSpec::Message(MessageConfig {
                drop: DropSpec::StarveFirstK { k: 64 },
                ..MessageConfig::default()
            }),
            // A faulted scenario must not collapse into the clean label.
            EngineSpec::Message(MessageConfig {
                scenario: ScenarioSpec::clean().with_latency(1, 3),
                ..MessageConfig::default()
            }),
        ];
        let labels: std::collections::HashSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len());
    }

    #[test]
    fn adaptive_default_is_sane() {
        let EngineSpec::Adaptive {
            threads,
            handoff_support,
        } = EngineSpec::adaptive()
        else {
            panic!("adaptive() must build an Adaptive spec");
        };
        assert!(threads >= 1);
        assert!(handoff_support >= 2);
    }
}

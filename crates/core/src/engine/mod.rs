//! Simulation engines: three interchangeable ways to advance one round.
//!
//! | engine | cost/round | population limit | communication model |
//! |--------|-----------|------------------|---------------------|
//! | [`dense`] | `O(n)` (seq or parallel) | memory (`4n` bytes) | idealized sampling |
//! | [`hist`]  | `O(m²)` | `2^52` balls | idealized sampling |
//! | [`message`] | `O(n + messages)` | memory | full request/response with logarithmic inbox caps and drop policies |
//!
//! Dense parallel and dense sequential are **bit-identical** for any thread
//! count: per-ball randomness is addressed by counter-RNG coordinates
//! `(seed, round·n + ball)`, not by draw order.

pub mod dense;
pub mod hist;
pub mod message;

pub use message::{DropSpec, MessageConfig, MessageEngine, OnMissing};

/// Engine selector for [`crate::runner::SimSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSpec {
    /// Dense sequential engine.
    DenseSeq,
    /// Dense engine with deterministic parallel rounds.
    DensePar {
        /// Worker threads (1 falls back to sequential).
        threads: usize,
    },
    /// Full message-level engine on `stabcon-net`.
    Message(MessageConfig),
}

impl EngineSpec {
    /// Table label.
    pub fn label(&self) -> String {
        match self {
            EngineSpec::DenseSeq => "dense".into(),
            EngineSpec::DensePar { threads } => format!("dense-par({threads})"),
            EngineSpec::Message(cfg) => format!(
                "message(cap={}x,drop={})",
                cfg.cap_mult,
                cfg.drop.label()
            ),
        }
    }
}

//! The fineness partial order (paper §4.1, Lemma 17) and its exact coupling.
//!
//! An assignment `(k_i)` is *finer* than `(k̃_i)` if a monotone bin map `f`
//! turns one into the other. Lemma 17's proof rests on one algebraic fact —
//! monotone maps commute with the median:
//! `median(f(a), f(b), f(c)) = f(median(a, b, c))` — so running both
//! configurations with the **same** random choices keeps them related by `f`
//! forever, pointwise in the probability space.
//!
//! Our dense engine addresses randomness by `(seed, round, ball)`, so the
//! coupling is literally "run both with the same seed". [`verify_coupling`]
//! checks the invariant `coarse_t[j] = f(fine_t[j])` round by round.

use crate::engine::dense;
use crate::protocol::MedianRule;
use crate::value::Value;

/// Whether load sequence `fine` (in bin order) is finer than `coarse`:
/// `coarse` must be obtainable by summing consecutive groups of `fine`.
///
/// Both slices list the loads of *non-empty* bins in increasing value order.
pub fn is_finer(fine: &[u64], coarse: &[u64]) -> bool {
    if fine.iter().sum::<u64>() != coarse.iter().sum::<u64>() {
        return false;
    }
    let mut fi = 0usize;
    for &target in coarse {
        let mut acc = 0u64;
        while acc < target {
            let Some(&load) = fine.get(fi) else {
                return false;
            };
            acc += load;
            fi += 1;
        }
        if acc != target {
            return false; // overshoot: group boundaries cannot match
        }
    }
    fi == fine.len()
}

/// Check that `f` is monotone (non-decreasing) on the given support.
pub fn is_monotone_on(support: &[Value], f: &dyn Fn(Value) -> Value) -> bool {
    let mut sorted = support.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).all(|w| f(w[0]) <= f(w[1]))
}

/// Apply a monotone bin map to every ball.
///
/// # Panics
/// Panics if `f` is not monotone on the support of `state` (a non-monotone
/// map breaks the median-commutation property the coupling relies on).
pub fn coarsen(state: &[Value], f: &dyn Fn(Value) -> Value) -> Vec<Value> {
    let support: Vec<Value> = {
        let mut s = state.to_vec();
        s.sort_unstable();
        s.dedup();
        s
    };
    assert!(
        is_monotone_on(&support, f),
        "coarsen: map is not monotone on the support"
    );
    state.iter().map(|&v| f(v)).collect()
}

/// Outcome of a coupled execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Whether `coarse_t = f ∘ fine_t` held at every round.
    pub invariant_held: bool,
    /// Round at which the fine run reached consensus (if it did).
    pub fine_consensus: Option<u64>,
    /// Round at which the coarse run reached consensus (if it did).
    pub coarse_consensus: Option<u64>,
}

/// Run the median rule on `fine0` and on `f(fine0)` with identical
/// randomness for `rounds` rounds (or until both reach consensus), checking
/// the Lemma 17 invariant along the way.
pub fn verify_coupling(
    fine0: &[Value],
    f: &dyn Fn(Value) -> Value,
    rounds: u64,
    seed: u64,
) -> CouplingReport {
    let mut fine = fine0.to_vec();
    let mut coarse = coarsen(fine0, f);
    let n = fine.len();
    let mut fine_scratch = vec![0 as Value; n];
    let mut coarse_scratch = vec![0 as Value; n];
    let mut fine_consensus = None;
    let mut coarse_consensus = None;
    let mut invariant_held = true;
    let mut executed = 0u64;

    for round in 0..rounds {
        if fine_consensus.is_none() && fine.iter().all(|&v| v == fine[0]) {
            fine_consensus = Some(round);
        }
        if coarse_consensus.is_none() && coarse.iter().all(|&v| v == coarse[0]) {
            coarse_consensus = Some(round);
        }
        if fine_consensus.is_some() && coarse_consensus.is_some() {
            break;
        }
        dense::step_seq(&fine, &mut fine_scratch, &MedianRule, seed, round);
        dense::step_seq(&coarse, &mut coarse_scratch, &MedianRule, seed, round);
        std::mem::swap(&mut fine, &mut fine_scratch);
        std::mem::swap(&mut coarse, &mut coarse_scratch);
        executed += 1;
        // Invariant: the coarse run is the image of the fine run.
        if !fine.iter().zip(&coarse).all(|(&a, &b)| f(a) == b) {
            invariant_held = false;
            break;
        }
    }
    if fine_consensus.is_none() && fine.iter().all(|&v| v == fine[0]) {
        fine_consensus = Some(executed);
    }
    if coarse_consensus.is_none() && coarse.iter().all(|&v| v == coarse[0]) {
        coarse_consensus = Some(executed);
    }
    CouplingReport {
        rounds: executed,
        invariant_held,
        fine_consensus,
        coarse_consensus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_one_is_finer_than_everything() {
        // Paper: the all-one assignment is finer than every assignment.
        let fine = vec![1u64; 8];
        assert!(is_finer(&fine, &[3, 5]));
        assert!(is_finer(&fine, &[8]));
        assert!(is_finer(&fine, &[1, 1, 1, 1, 1, 1, 1, 1]));
        assert!(is_finer(&fine, &[2, 2, 2, 2]));
    }

    #[test]
    fn fineness_needs_consecutive_groups() {
        // (2, 3) can form (5) and (2,3) but not (3,2) or (4,1).
        assert!(is_finer(&[2, 3], &[5]));
        assert!(is_finer(&[2, 3], &[2, 3]));
        assert!(!is_finer(&[2, 3], &[3, 2]));
        assert!(!is_finer(&[2, 3], &[4, 1]));
    }

    #[test]
    fn fineness_rejects_different_populations() {
        assert!(!is_finer(&[2, 2], &[5]));
        assert!(!is_finer(&[5], &[2, 2]));
    }

    #[test]
    fn fineness_is_reflexive() {
        assert!(is_finer(&[4, 1, 7], &[4, 1, 7]));
    }

    #[test]
    fn monotonicity_check() {
        let support = vec![1u32, 5, 9];
        assert!(is_monotone_on(&support, &|v| v / 2));
        assert!(is_monotone_on(&support, &|_| 3));
        assert!(!is_monotone_on(&support, &|v| 10 - v));
    }

    #[test]
    #[should_panic]
    fn coarsen_rejects_non_monotone() {
        let state = vec![1u32, 5, 9];
        coarsen(&state, &|v| 10 - v);
    }

    #[test]
    fn coupling_invariant_holds_under_median() {
        // Lemma 17's mechanism, mechanically verified: collapse values
        // {0..7} by halving.
        let fine0: Vec<Value> = (0..512u32).map(|i| i % 8).collect();
        let report = verify_coupling(&fine0, &|v| v / 2, 400, 77);
        assert!(report.invariant_held, "median must commute with monotone f");
        let fc = report.fine_consensus.expect("fine should converge");
        let cc = report.coarse_consensus.expect("coarse should converge");
        // Lemma 17: the finer instance upper-bounds the coarser, pointwise.
        assert!(
            cc <= fc,
            "coarse ({cc}) must not be slower than fine ({fc})"
        );
    }

    #[test]
    fn coupling_with_constant_map() {
        // Mapping everything to one bin: coarse is in consensus from round 0.
        let fine0: Vec<Value> = (0..128u32).collect();
        let report = verify_coupling(&fine0, &|_| 42, 400, 5);
        assert!(report.invariant_held);
        assert_eq!(report.coarse_consensus, Some(0));
    }

    #[test]
    fn coupling_with_identity_map() {
        let fine0: Vec<Value> = (0..128u32).map(|i| i % 4).collect();
        let report = verify_coupling(&fine0, &|v| v, 400, 6);
        assert!(report.invariant_held);
        assert_eq!(report.fine_consensus, report.coarse_consensus);
    }
}

//! Gravity (paper §4.2, Equation 1): the expected number of balls that
//! choose ball `i` as their median in the next step, for the all-distinct
//! ("all-one") configuration with the balls ordered by value.
//!
//! The paper estimates `g(i) = 6·(n−i)·i / n² + O(1/n)`; we provide the
//! closed form, the exact sum it approximates, and an empirical estimator on
//! the dense engine — the three agree, which pins the engine's sampling law
//! to the quantity the analysis actually uses.

use stabcon_util::rng::{derive_seed, Xoshiro256pp};
use stabcon_util::stats::RunningStats;

use crate::engine::dense;
use crate::protocol::MedianRule;
use crate::value::Value;

/// Equation (1): `6·(n−i)·i / n²` for the 1-indexed ball `i` of `n`.
pub fn gravity_formula(n: u64, i: u64) -> f64 {
    assert!(i >= 1 && i <= n, "ball index out of range");
    6.0 * ((n - i) as f64) * (i as f64) / ((n as f64) * (n as f64))
}

/// The exact expected attraction of ball `i` (1-indexed) in the all-distinct
/// configuration, summed from the per-ball destination law:
///
/// * each of the `n − i` balls above `i` picks `i` with prob `(2i−1)/n²`;
/// * each of the `i − 1` balls below picks `i` with prob `(2(n−i)+1)/n²`;
/// * ball `i` stays with prob `1 − ((i−1)² + (n−i)²)/n²`.
pub fn gravity_exact(n: u64, i: u64) -> f64 {
    assert!(i >= 1 && i <= n, "ball index out of range");
    let nf = n as f64;
    let i_f = i as f64;
    let n2 = nf * nf;
    let from_above = (nf - i_f) * (2.0 * i_f - 1.0) / n2;
    let from_below = (i_f - 1.0) * (2.0 * (nf - i_f) + 1.0) / n2;
    let stay = 1.0 - ((i_f - 1.0) * (i_f - 1.0) + (nf - i_f) * (nf - i_f)) / n2;
    from_above + from_below + stay
}

/// Empirically estimate `g(i)` by running one median-rule step from the
/// all-distinct configuration `trials` times and counting balls that end at
/// value `i − 1` (the 1-indexed ball `i` holds 0-indexed value `i − 1`).
pub fn gravity_empirical(n: u64, i: u64, trials: u64, seed: u64) -> RunningStats {
    assert!(i >= 1 && i <= n);
    let n_us = n as usize;
    let old: Vec<Value> = (0..n as u32).collect();
    let target: Value = (i - 1) as u32;
    let mut stats = RunningStats::new();
    let mut new = vec![0 as Value; n_us];
    for t in 0..trials {
        let trial_seed = derive_seed(seed, t);
        // One protocol step; every trial re-randomizes via the seed.
        let _ = Xoshiro256pp::seed(trial_seed); // (reserved for future use)
        dense::step_seq(&old, &mut new, &MedianRule, trial_seed, 0);
        let count = new.iter().filter(|&&v| v == target).count();
        stats.push(count as f64);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_maximized_at_median_ball() {
        let n = 1001u64;
        let mid = gravity_formula(n, n.div_ceil(2));
        for &i in &[1u64, 100, 400, 900, n] {
            assert!(gravity_formula(n, i) <= mid + 1e-12, "i = {i}");
        }
        // Peak value approaches 3/2.
        assert!((mid - 1.5).abs() < 0.01, "mid = {mid}");
    }

    #[test]
    fn exact_close_to_formula() {
        // |exact − formula| = O(1/n), uniformly over i.
        let n = 10_000u64;
        for &i in &[1u64, 10, 100, n / 4, n / 2, 3 * n / 4, n] {
            let e = gravity_exact(n, i);
            let f = gravity_formula(n, i);
            assert!(
                (e - f).abs() < 20.0 / n as f64,
                "i = {i}: exact {e} formula {f}"
            );
        }
    }

    #[test]
    fn exact_sums_to_n() {
        // Total gravity = expected total balls next round = n.
        let n = 500u64;
        let total: f64 = (1..=n).map(|i| gravity_exact(n, i)).sum();
        assert!((total - n as f64).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn endpoints_have_low_gravity() {
        let n = 1000u64;
        // Extreme balls attract almost nothing beyond their own stay-mass.
        assert!(gravity_exact(n, 1) < 1.0);
        assert!(gravity_exact(n, n) < 1.0);
    }

    #[test]
    fn empirical_matches_exact() {
        let n = 512u64;
        let trials = 400;
        for &i in &[1u64, n / 4, n / 2, n] {
            let stats = gravity_empirical(n, i, trials, 99);
            let expect = gravity_exact(n, i);
            let tol = 6.0 * stats.std_err() + 0.02;
            assert!(
                (stats.mean() - expect).abs() < tol,
                "i = {i}: empirical {} ± {} vs exact {expect}",
                stats.mean(),
                stats.std_err()
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        gravity_formula(10, 11);
    }
}

//! Aggregated configurations: bin loads instead of per-ball values.
//!
//! The histogram view makes two things possible:
//!
//! * the **histogram engine**, whose per-round cost is `O(m²)` independent
//!   of `n` — the median rule's destination law depends only on the load
//!   CDF, so all balls of a bin move via one multinomial draw;
//! * cheap observables for huge synthetic populations (up to 2^52 balls).

use crate::config::Config;
use crate::value::Value;

/// A configuration aggregated by value: sorted `(value, load)` pairs with
/// strictly increasing values and strictly positive loads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<(Value, u64)>,
    n: u64,
}

impl Histogram {
    /// Build from `(value, load)` pairs (any order; zero loads dropped,
    /// duplicate values merged).
    ///
    /// # Panics
    /// Panics if the total load is zero or exceeds 2^52.
    pub fn new(pairs: &[(Value, u64)]) -> Self {
        let mut bins: Vec<(Value, u64)> = pairs.iter().copied().filter(|&(_, c)| c > 0).collect();
        bins.sort_unstable_by_key(|&(v, _)| v);
        // Merge duplicates.
        let mut merged: Vec<(Value, u64)> = Vec::with_capacity(bins.len());
        for (v, c) in bins {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        let n: u64 = merged.iter().map(|&(_, c)| c).sum();
        assert!(n > 0, "Histogram: empty");
        assert!(n <= 1 << 52, "Histogram: n exceeds 2^52");
        Self { bins: merged, n }
    }

    /// Aggregate a dense configuration.
    pub fn from_config(config: &Config) -> Self {
        Self::new(&config.counts())
    }

    /// Expand into a dense configuration (requires `n` to fit memory).
    pub fn to_config(&self) -> Config {
        let mut values = Vec::with_capacity(self.n as usize);
        for &(v, c) in &self.bins {
            values.extend(std::iter::repeat_n(v, c as usize));
        }
        Config::new(values)
    }

    /// Total number of balls.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The sorted `(value, load)` pairs.
    #[inline]
    pub fn bins(&self) -> &[(Value, u64)] {
        &self.bins
    }

    /// Number of non-empty bins.
    #[inline]
    pub fn support_size(&self) -> usize {
        self.bins.len()
    }

    /// `Some(v)` iff all balls share value `v`.
    pub fn consensus_value(&self) -> Option<Value> {
        (self.bins.len() == 1).then(|| self.bins[0].0)
    }

    /// Most loaded bin `(value, load)`, ties toward the smaller value.
    pub fn plurality(&self) -> (Value, u64) {
        self.bins
            .iter()
            .copied()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("nonempty histogram")
    }

    /// Balls not holding `v`.
    pub fn disagreement_with(&self, v: Value) -> u64 {
        self.n
            - self
                .bins
                .iter()
                .find(|&&(bv, _)| bv == v)
                .map(|&(_, c)| c)
                .unwrap_or(0)
    }

    /// The median bin `m_t`: value of the ⌈n/2⌉-th smallest ball.
    pub fn median_value(&self) -> Value {
        let target = self.n.div_ceil(2);
        let mut acc = 0u64;
        for &(v, c) in &self.bins {
            acc += c;
            if acc >= target {
                return v;
            }
        }
        unreachable!("loads must cover all balls")
    }

    /// Load prefix-CDF evaluated at each bin: `cdf[i] = Σ_{j ≤ i} load_j / n`.
    pub fn cdf(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.cdf_into(&mut out);
        out
    }

    /// [`Histogram::cdf`] into a reused buffer (the histogram engine's
    /// per-round path).
    pub fn cdf_into(&self, out: &mut Vec<f64>) {
        out.clear();
        let mut acc = 0u64;
        out.extend(self.bins.iter().map(|&(_, c)| {
            acc += c;
            acc as f64 / self.n as f64
        }));
    }

    /// Replace every bin's load in place (bin order unchanged), dropping
    /// bins that went to zero — the allocation-free core of one histogram
    /// engine round.
    ///
    /// # Panics
    /// Panics if `loads.len()` differs from the bin count or the new loads
    /// do not conserve the population.
    pub fn set_loads(&mut self, loads: &[u64]) {
        assert_eq!(loads.len(), self.bins.len(), "set_loads: length mismatch");
        let total: u64 = loads.iter().sum();
        assert_eq!(total, self.n, "set_loads must conserve the population");
        for (slot, &c) in self.bins.iter_mut().zip(loads) {
            slot.1 = c;
        }
        self.bins.retain(|&(_, c)| c > 0);
    }

    /// Refill from already sorted, strictly ascending, positive-load bins,
    /// reusing the allocation — the adaptive engine's handoff path.
    ///
    /// # Panics
    /// Panics if the bins are empty or the total exceeds 2^52 (debug builds
    /// also check ordering and positivity).
    pub fn rebuild_from_sorted(&mut self, bins: impl Iterator<Item = (Value, u64)>) {
        self.bins.clear();
        self.n = 0;
        for (v, c) in bins {
            debug_assert!(c > 0, "rebuild_from_sorted: zero load for {v}");
            debug_assert!(
                self.bins.last().is_none_or(|&(lv, _)| lv < v),
                "rebuild_from_sorted: bins not strictly ascending"
            );
            self.bins.push((v, c));
            self.n += c;
        }
        assert!(self.n > 0, "Histogram: empty");
        assert!(self.n <= 1 << 52, "Histogram: n exceeds 2^52");
    }

    /// Two-bin imbalance Δ (same convention as [`Config::imbalance`]).
    pub fn imbalance(&self) -> f64 {
        let mut loads: Vec<u64> = self.bins.iter().map(|&(_, c)| c).collect();
        loads.sort_unstable_by(|a, b| b.cmp(a));
        let top = loads.first().copied().unwrap_or(0);
        let second = loads.get(1).copied().unwrap_or(0);
        (top as f64 - second as f64) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_merges_drops_zeros() {
        let h = Histogram::new(&[(5, 2), (1, 3), (5, 1), (9, 0)]);
        assert_eq!(h.bins(), &[(1, 3), (5, 3)]);
        assert_eq!(h.n(), 6);
        assert_eq!(h.support_size(), 2);
    }

    #[test]
    fn config_roundtrip() {
        let c = Config::new(vec![2, 7, 2, 2, 9]);
        let h = Histogram::from_config(&c);
        assert_eq!(h.bins(), &[(2, 3), (7, 1), (9, 1)]);
        let c2 = h.to_config();
        // to_config emits values in ascending order.
        assert_eq!(c2.values(), &[2, 2, 2, 7, 9]);
        assert_eq!(Histogram::from_config(&c2), h);
    }

    #[test]
    fn observables_match_dense() {
        let c = Config::new(vec![1, 1, 2, 9, 9, 9]);
        let h = Histogram::from_config(&c);
        assert_eq!(h.median_value(), c.median_value());
        assert_eq!(h.plurality(), c.plurality());
        assert_eq!(h.disagreement_with(9), c.disagreement_with(9));
        assert_eq!(h.imbalance(), c.imbalance());
        assert_eq!(h.consensus_value(), None);
    }

    #[test]
    fn consensus() {
        let h = Histogram::new(&[(4, 100)]);
        assert_eq!(h.consensus_value(), Some(4));
        assert_eq!(h.median_value(), 4);
        assert_eq!(h.disagreement_with(4), 0);
    }

    #[test]
    fn cdf_is_monotone_to_one() {
        let h = Histogram::new(&[(1, 1), (2, 2), (3, 3), (4, 4)]);
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 4);
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((cdf[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn huge_population() {
        let big = 1u64 << 40;
        let h = Histogram::new(&[(0, big), (1, big + 7)]);
        assert_eq!(h.n(), 2 * big + 7);
        assert_eq!(h.median_value(), 1);
        assert_eq!(h.plurality(), (1, big + 7));
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        Histogram::new(&[(1, 0)]);
    }
}

//! Initial condition generators for every workload in the paper.

use std::sync::Arc;

use rand::RngCore;
use stabcon_util::rng::gen_index;

use crate::value::Value;

/// How the `n` balls are initially assigned to bins.
#[derive(Debug, Clone)]
pub enum InitialCondition {
    /// The "all-one" assignment `b₀ᵢ = i` (§2.1): every ball in its own bin —
    /// the finest configuration, worst case for `m = n`.
    AllDistinct,
    /// Two bins, `left` balls holding value 0 and the rest value 1
    /// (the §3 two-bin analysis; `left = n/2` is the worst case).
    TwoBins {
        /// Balls assigned to the left (value-0) bin.
        left: usize,
    },
    /// `m` bins with loads as equal as possible, consecutive blocks
    /// (the worst-case m-bin workload of Theorem 3).
    MBinsEqual {
        /// Number of bins.
        m: u32,
    },
    /// Every ball independently uniform over `m` bins
    /// (the Theorem 4/21 average-case workload).
    UniformRandom {
        /// Number of bins.
        m: u32,
    },
    /// Explicit assignment (shared so `SimSpec` clones stay cheap).
    Custom(Arc<Vec<Value>>),
}

impl InitialCondition {
    /// Produce the ball values for a population of size `n`.
    ///
    /// # Panics
    /// Panics on inconsistent parameters (`left > n`, `m == 0`, custom
    /// length ≠ `n`).
    pub fn materialize<R: RngCore + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Value> {
        let mut out = Vec::new();
        self.materialize_into(n, rng, &mut out);
        out
    }

    /// [`InitialCondition::materialize`] into a reused buffer: same values,
    /// same RNG consumption, no fresh allocation once the buffer has the
    /// capacity.
    ///
    /// # Panics
    /// Panics on inconsistent parameters (`left > n`, `m == 0`, custom
    /// length ≠ `n`).
    pub fn materialize_into<R: RngCore + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<Value>,
    ) {
        assert!(n > 0, "materialize: n = 0");
        out.clear();
        match self {
            InitialCondition::AllDistinct => out.extend(0..n as u32),
            InitialCondition::TwoBins { left } => {
                assert!(*left <= n, "TwoBins: left > n");
                out.resize(*left, 0);
                out.resize(n, 1);
            }
            InitialCondition::MBinsEqual { m } => {
                assert!(*m > 0, "MBinsEqual: m = 0");
                let m = (*m as usize).min(n);
                // Block partition: ball i gets bin ⌊i·m/n⌋ — loads differ by
                // at most one and bins are consecutive.
                out.extend((0..n).map(|i| (i * m / n) as Value));
            }
            InitialCondition::UniformRandom { m } => {
                assert!(*m > 0, "UniformRandom: m = 0");
                out.extend((0..n).map(|_| gen_index(rng, *m as u64) as Value));
            }
            InitialCondition::Custom(values) => {
                assert_eq!(values.len(), n, "Custom: length mismatch");
                out.extend_from_slice(values);
            }
        }
    }

    /// Table label.
    pub fn label(&self) -> String {
        match self {
            InitialCondition::AllDistinct => "all-distinct".into(),
            InitialCondition::TwoBins { left } => format!("two-bins({left})"),
            InitialCondition::MBinsEqual { m } => format!("m-equal({m})"),
            InitialCondition::UniformRandom { m } => format!("uniform({m})"),
            InitialCondition::Custom(_) => "custom".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_util::rng::Xoshiro256pp;

    #[test]
    fn all_distinct() {
        let mut rng = Xoshiro256pp::seed(1);
        let v = InitialCondition::AllDistinct.materialize(5, &mut rng);
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn two_bins_split() {
        let mut rng = Xoshiro256pp::seed(2);
        let v = InitialCondition::TwoBins { left: 3 }.materialize(8, &mut rng);
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 1, 1]);
        let all_right = InitialCondition::TwoBins { left: 0 }.materialize(3, &mut rng);
        assert_eq!(all_right, vec![1, 1, 1]);
    }

    #[test]
    fn m_bins_equal_loads() {
        let mut rng = Xoshiro256pp::seed(3);
        let v = InitialCondition::MBinsEqual { m: 3 }.materialize(10, &mut rng);
        // Loads must differ by at most 1 and bins are 0..3 consecutive.
        let mut counts = [0u32; 3];
        let mut prev = 0;
        for &x in &v {
            assert!(x >= prev, "blocks must be consecutive");
            prev = x;
            counts[x as usize] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "loads {counts:?}");
        assert_eq!(counts.iter().sum::<u32>(), 10);
    }

    #[test]
    fn m_bins_caps_at_n() {
        let mut rng = Xoshiro256pp::seed(4);
        let v = InitialCondition::MBinsEqual { m: 100 }.materialize(4, &mut rng);
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uniform_random_hits_all_bins() {
        let mut rng = Xoshiro256pp::seed(5);
        let v = InitialCondition::UniformRandom { m: 4 }.materialize(10_000, &mut rng);
        let mut counts = [0u32; 4];
        for &x in &v {
            assert!(x < 4);
            counts[x as usize] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!((c as i64 - 2500).abs() < 400, "bin {b}: {c}");
        }
    }

    #[test]
    fn custom_passthrough() {
        let mut rng = Xoshiro256pp::seed(6);
        let vals = Arc::new(vec![9, 9, 3]);
        let v = InitialCondition::Custom(Arc::clone(&vals)).materialize(3, &mut rng);
        assert_eq!(v, vec![9, 9, 3]);
    }

    #[test]
    #[should_panic]
    fn custom_length_mismatch_panics() {
        let mut rng = Xoshiro256pp::seed(7);
        InitialCondition::Custom(Arc::new(vec![1, 2])).materialize(3, &mut rng);
    }

    #[test]
    fn labels() {
        assert_eq!(InitialCondition::AllDistinct.label(), "all-distinct");
        assert_eq!(InitialCondition::TwoBins { left: 5 }.label(), "two-bins(5)");
        assert_eq!(
            InitialCondition::UniformRandom { m: 7 }.label(),
            "uniform(7)"
        );
    }
}

//! # stabcon-core
//!
//! The paper's contribution and every dynamic it is compared against:
//!
//! * [`value`] — values ("bins") and the initial-value-set constraint;
//! * [`config`] / [`histogram`] — dense and aggregated views of a
//!   balls-into-bins configuration, with the observables the analysis uses
//!   (support, plurality, median ball, two-bin imbalance Δ and Ψ);
//! * [`protocol`] — the **median rule** plus the baselines the paper
//!   discusses: minimum/maximum rule, mean rule, 3-majority, voter, and the
//!   k-sample median generalization;
//! * [`adversary`] — the T-bounded adversary framework with budget and
//!   initial-value-set enforcement **by construction**, and the concrete
//!   strategies from the paper (two-bin balancer, hide-and-revive,
//!   median-pusher, random corruption);
//! * [`engine`] — three interchangeable simulation engines: dense
//!   (`O(n)`/round, sequential or deterministic-parallel), histogram
//!   (`O(m²)`/round, independent of `n`), and message-level (full
//!   request/response rounds on `stabcon-net` with logarithmic inbox caps);
//! * [`runner`] — the [`runner::SimSpec`] builder tying everything together,
//!   with consensus / almost-stable-consensus detection ([`stopping`]);
//! * [`workspace`] — [`workspace::TrialWorkspace`]: reusable per-worker
//!   trial buffers, making batched trials allocation-free in steady state;
//! * [`fineness`] — the Lemma 17 partial order and exact coupling;
//! * [`gravity`] — Equation (1): the expected median-attraction of a ball.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod config;
pub mod engine;
pub mod fineness;
pub mod gravity;
pub mod histogram;
pub mod init;
pub mod ndim;
pub mod protocol;
pub mod runner;
pub mod stopping;
pub mod value;
pub mod workspace;

/// One-stop imports.
pub mod prelude {
    pub use crate::adversary::AdversarySpec;
    pub use crate::config::Config;
    pub use crate::engine::EngineSpec;
    pub use crate::histogram::Histogram;
    pub use crate::init::InitialCondition;
    pub use crate::protocol::ProtocolSpec;
    pub use crate::runner::{RunResult, SimSpec};
    pub use crate::value::{median3, Value, ValueSet};
    pub use crate::workspace::TrialWorkspace;
}

//! The d-dimensional median rule — the paper's open problem (§6).
//!
//! "Unfortunately, we were only able to rigorously analyze its performance
//! for the one-dimensional case. It would be very interesting though
//! probably very challenging to prove a time bound of O(log n) also for
//! higher dimensions."
//!
//! We implement the natural candidate: values are points in `ℕ^D` and every
//! ball applies the **coordinate-wise median** of its own point and the two
//! sampled points (the same sampled pair for all coordinates). Two caveats
//! the experiments surface, faithfully to why the problem is hard:
//!
//! * the coordinate-wise median of three points need **not** be one of the
//!   three points — validity holds per coordinate, not per point;
//! * convergence is no longer monotone in any obvious potential, which is
//!   exactly why the proof did not generalize. Empirically it still
//!   converges in `O(log n)`-looking time (see `benches/higher_dims.rs`).

use stabcon_util::rng::{gen_index, CounterRng};

use crate::value::{median3, Value};

/// A point in `D` dimensions.
pub type Point<const D: usize> = [Value; D];

/// Coordinate-wise median of three points.
#[inline]
pub fn median3_nd<const D: usize>(a: &Point<D>, b: &Point<D>, c: &Point<D>) -> Point<D> {
    let mut out = [0 as Value; D];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = median3(a[i], b[i], c[i]);
    }
    out
}

/// Advance one synchronous round of the d-dimensional median rule
/// (sequential; same counter-RNG addressing as the scalar dense engine).
///
/// # Panics
/// Panics if buffer lengths differ.
pub fn step_seq<const D: usize>(old: &[Point<D>], new: &mut [Point<D>], seed: u64, round: u64) {
    assert_eq!(old.len(), new.len(), "state buffers differ in length");
    let n = old.len() as u64;
    for (i, slot) in new.iter_mut().enumerate() {
        let mut rng = CounterRng::new(seed, round.wrapping_mul(n).wrapping_add(i as u64));
        let a = &old[gen_index(&mut rng, n) as usize];
        let b = &old[gen_index(&mut rng, n) as usize];
        *slot = median3_nd(&old[i], a, b);
    }
}

/// Result of a d-dimensional run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdRunResult<const D: usize> {
    /// First round with a single point (if reached).
    pub consensus_round: Option<u64>,
    /// Rounds executed.
    pub rounds_executed: u64,
    /// The final (or consensus) plurality point.
    pub winner: Point<D>,
    /// Distinct points at the end.
    pub final_support: usize,
    /// Whether the winner was one of the initial points (point-validity —
    /// can be `false` in d ≥ 2, unlike the scalar rule).
    pub winner_was_initial: bool,
    /// Whether every coordinate of the winner appeared in the initial
    /// points at that coordinate (coordinate-validity — always true).
    pub winner_coordinate_valid: bool,
}

/// Number of distinct points.
pub fn support_size<const D: usize>(points: &[Point<D>]) -> usize {
    let mut sorted: Vec<Point<D>> = points.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Run the d-dimensional median rule from `init` for up to `max_rounds`.
pub fn run_nd<const D: usize>(init: &[Point<D>], max_rounds: u64, seed: u64) -> NdRunResult<D> {
    assert!(!init.is_empty(), "run_nd: empty population");
    let mut state = init.to_vec();
    let mut scratch = vec![[0 as Value; D]; init.len()];
    let mut consensus_round = None;
    let mut executed = 0u64;
    for round in 0..max_rounds {
        if state.iter().all(|p| p == &state[0]) {
            consensus_round = Some(round);
            break;
        }
        step_seq(&state, &mut scratch, seed, round);
        std::mem::swap(&mut state, &mut scratch);
        executed += 1;
    }
    if consensus_round.is_none() && state.iter().all(|p| p == &state[0]) {
        consensus_round = Some(executed);
    }
    // Plurality point.
    let mut sorted = state.clone();
    sorted.sort_unstable();
    let mut winner = sorted[0];
    let mut best = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let j = sorted[i..].iter().take_while(|p| **p == sorted[i]).count();
        if j > best {
            best = j;
            winner = sorted[i];
        }
        i += j;
    }
    let winner_was_initial = init.contains(&winner);
    let winner_coordinate_valid = (0..D).all(|d| init.iter().any(|p| p[d] == winner[d]));
    NdRunResult {
        consensus_round,
        rounds_executed: executed,
        winner,
        final_support: support_size(&state),
        winner_was_initial,
        winner_coordinate_valid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median3_nd_componentwise() {
        let a = [1u32, 9];
        let b = [5, 2];
        let c = [3, 4];
        assert_eq!(median3_nd(&a, &b, &c), [3, 4]);
    }

    #[test]
    fn median3_nd_can_invent_points() {
        // The coordinate-wise median of three *corner* points is a point
        // none of them: the reason scalar validity does not generalize.
        let a = [0u32, 0];
        let b = [1, 1];
        let c = [0, 1];
        let m = median3_nd(&a, &b, &c);
        assert_eq!(m, [0, 1]); // here it is c...
                               // A genuinely invented point: three "rotated" points whose
                               // coordinate-wise median matches none of them.
        let p = [0u32, 2];
        let q = [1, 0];
        let r = [2, 1];
        let m2 = median3_nd(&p, &q, &r);
        assert_eq!(m2, [1, 1]);
        assert!(m2 != p && m2 != q && m2 != r, "median invented a new point");
    }

    #[test]
    fn consensus_is_absorbing_nd() {
        let state = vec![[7u32, 3, 9]; 500];
        let mut new = vec![[0u32; 3]; 500];
        step_seq(&state, &mut new, 1, 0);
        assert_eq!(state, new);
    }

    #[test]
    fn two_dim_grid_converges() {
        // 2×2 product grid of opinions.
        let n = 1024usize;
        let init: Vec<Point<2>> = (0..n)
            .map(|i| [(i % 2) as u32, ((i / 2) % 2) as u32])
            .collect();
        let r = run_nd(&init, 2000, 42);
        assert!(
            r.consensus_round.is_some(),
            "2-d median rule failed to converge: {r:?}"
        );
        assert!(r.winner_coordinate_valid);
    }

    #[test]
    fn three_dim_converges() {
        let n = 512usize;
        let init: Vec<Point<3>> = (0..n)
            .map(|i| [(i % 3) as u32, ((i / 3) % 3) as u32, ((i / 9) % 3) as u32])
            .collect();
        let r = run_nd(&init, 3000, 7);
        assert!(r.consensus_round.is_some(), "{r:?}");
        assert!(r.winner_coordinate_valid);
        for d in 0..3 {
            assert!(r.winner[d] < 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let init: Vec<Point<2>> = (0..256).map(|i| [i as u32 % 4, i as u32 % 5]).collect();
        let a = run_nd(&init, 1000, 9);
        let b = run_nd(&init, 1000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn support_size_counts_points() {
        let pts: Vec<Point<2>> = vec![[0, 0], [0, 1], [0, 0], [1, 1]];
        assert_eq!(support_size(&pts), 3);
    }
}

//! Update rules: the median rule and every baseline the paper discusses.
//!
//! A [`Protocol`] answers two questions: how many peers does a ball sample
//! per round, and how does it combine its own value with the sampled ones.
//! Samples are uniform over **all** processes including the sampler itself
//! (§1.2: "picks two processes j and k uniformly and independently at
//! random among all processes (including itself)").
//!
//! | rule | samples | combine | paper role |
//! |------|---------|---------|------------|
//! | [`MedianRule`] | 2 | `median(own, a, b)` | the contribution (§1.2) |
//! | [`MinRule`] | 1 | `min(own, a)` | §1.1 counterexample baseline |
//! | [`MaxRule`] | 1 | `max(own, a)` | symmetric baseline |
//! | [`MeanRule`] | 2 | rounded mean | §1.2 comparison ([17]) — violates validity |
//! | [`MajorityRule`] | 2 | adopt if `a == b` | 3-majority dynamics; equals median on 2 values |
//! | [`VoterRule`] | 1 | adopt `a` | single-choice baseline |
//! | [`KMedianRule`] | k | median of own + k samples | "power of k choices" ablation |

use crate::value::{median3, median_small, Value};

/// Maximum samples per round any protocol may request (scratch buffers in
/// the engines are sized to this).
pub const MAX_SAMPLES: usize = 8;

/// An anonymous gossip update rule.
pub trait Protocol: Send + Sync {
    /// Number of uniform peer samples consumed per ball per round.
    fn samples(&self) -> usize;

    /// Combine the ball's own value with the sampled values
    /// (`sampled.len() == self.samples()`).
    fn combine(&self, own: Value, sampled: &[Value]) -> Value;

    /// Short identifier for tables.
    fn name(&self) -> &'static str;

    /// Whether the rule can only ever output values it has seen
    /// (validity-preserving). The mean rule is the one `false` here.
    fn validity_preserving(&self) -> bool {
        true
    }
}

/// The paper's median rule: `v ← median(v, v_j, v_k)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MedianRule;

impl Protocol for MedianRule {
    fn samples(&self) -> usize {
        2
    }
    #[inline]
    fn combine(&self, own: Value, sampled: &[Value]) -> Value {
        median3(own, sampled[0], sampled[1])
    }
    fn name(&self) -> &'static str {
        "median"
    }
}

/// The minimum rule: `v ← min(v, v_j)` (§1.1; the adversary's favourite
/// victim).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinRule;

impl Protocol for MinRule {
    fn samples(&self) -> usize {
        1
    }
    #[inline]
    fn combine(&self, own: Value, sampled: &[Value]) -> Value {
        own.min(sampled[0])
    }
    fn name(&self) -> &'static str {
        "min"
    }
}

/// The maximum rule (mirror image of the minimum rule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxRule;

impl Protocol for MaxRule {
    fn samples(&self) -> usize {
        1
    }
    #[inline]
    fn combine(&self, own: Value, sampled: &[Value]) -> Value {
        own.max(sampled[0])
    }
    fn name(&self) -> &'static str {
        "max"
    }
}

/// The mean rule of Dolev et al. [17] adapted to two samples: the rounded
/// mean of the three values. Converges towards a single number but **does
/// not solve consensus** — the limit need not be one of the initial values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanRule;

impl Protocol for MeanRule {
    fn samples(&self) -> usize {
        2
    }
    #[inline]
    fn combine(&self, own: Value, sampled: &[Value]) -> Value {
        // Round-to-nearest of the exact rational mean.
        let sum = own as u64 + sampled[0] as u64 + sampled[1] as u64;
        ((sum + 1) / 3) as Value
    }
    fn name(&self) -> &'static str {
        "mean"
    }
    fn validity_preserving(&self) -> bool {
        false
    }
}

/// 3-majority: adopt the sampled value if both samples agree, else keep your
/// own. Coincides with the median rule when only two values exist; differs
/// on three or more.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MajorityRule;

impl Protocol for MajorityRule {
    fn samples(&self) -> usize {
        2
    }
    #[inline]
    fn combine(&self, own: Value, sampled: &[Value]) -> Value {
        if sampled[0] == sampled[1] {
            sampled[0]
        } else {
            own
        }
    }
    fn name(&self) -> &'static str {
        "3-majority"
    }
}

/// Voter model: adopt a single uniformly sampled value (the deterministic
/// single-choice baseline; Θ(n) expected convergence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoterRule;

impl Protocol for VoterRule {
    fn samples(&self) -> usize {
        1
    }
    #[inline]
    fn combine(&self, _own: Value, sampled: &[Value]) -> Value {
        sampled[0]
    }
    fn name(&self) -> &'static str {
        "voter"
    }
}

/// k-sample median: median of own value plus `k` samples ("power of k
/// choices" ablation; `k = 2` is the paper's rule).
///
/// Parity caveat: **even `k`** gives an odd multiset and an unbiased median;
/// **odd `k`** gives an even multiset whose lower-middle is biased toward
/// smaller values (`k = 1` degenerates to the minimum rule). Comparisons of
/// the "power of k" should therefore use even `k` only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMedianRule {
    k: usize,
}

impl KMedianRule {
    /// Create the k-sample variant.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ MAX_SAMPLES`.
    pub fn new(k: usize) -> Self {
        assert!((1..=MAX_SAMPLES).contains(&k), "KMedianRule: k = {k}");
        Self { k }
    }
}

impl Protocol for KMedianRule {
    fn samples(&self) -> usize {
        self.k
    }
    #[inline]
    fn combine(&self, own: Value, sampled: &[Value]) -> Value {
        let mut buf = [0 as Value; MAX_SAMPLES + 1];
        buf[0] = own;
        buf[1..=self.k].copy_from_slice(&sampled[..self.k]);
        median_small(&mut buf[..=self.k])
    }
    fn name(&self) -> &'static str {
        "k-median"
    }
}

/// Serializable protocol selector for [`crate::runner::SimSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// The paper's median rule.
    Median,
    /// Minimum rule.
    Min,
    /// Maximum rule.
    Max,
    /// Rounded-mean rule.
    Mean,
    /// 3-majority rule.
    Majority,
    /// Voter model.
    Voter,
    /// Median of own + k samples.
    KMedian(usize),
}

impl ProtocolSpec {
    /// Whether this rule is the median rule *in law*: the 2-sample median,
    /// whose destination distribution depends only on bin loads. These are
    /// the specs the adaptive engine may hand off to the histogram engine.
    pub fn is_median_law(&self) -> bool {
        matches!(self, ProtocolSpec::Median | ProtocolSpec::KMedian(2))
    }

    /// Instantiate the protocol object.
    pub fn build(&self) -> Box<dyn Protocol> {
        match *self {
            ProtocolSpec::Median => Box::new(MedianRule),
            ProtocolSpec::Min => Box::new(MinRule),
            ProtocolSpec::Max => Box::new(MaxRule),
            ProtocolSpec::Mean => Box::new(MeanRule),
            ProtocolSpec::Majority => Box::new(MajorityRule),
            ProtocolSpec::Voter => Box::new(VoterRule),
            ProtocolSpec::KMedian(k) => Box::new(KMedianRule::new(k)),
        }
    }

    /// Table label.
    pub fn label(&self) -> String {
        match *self {
            ProtocolSpec::KMedian(k) => format!("median-k{k}"),
            other => other.build().name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_rule_identities() {
        let p = MedianRule;
        assert_eq!(p.samples(), 2);
        assert_eq!(p.combine(10, &[12, 100]), 12);
        assert_eq!(p.combine(5, &[5, 5]), 5);
        // Median never invents values.
        assert!(p.validity_preserving());
    }

    #[test]
    fn min_max_rules() {
        assert_eq!(MinRule.combine(5, &[3]), 3);
        assert_eq!(MinRule.combine(2, &[3]), 2);
        assert_eq!(MaxRule.combine(5, &[3]), 5);
        assert_eq!(MaxRule.combine(2, &[3]), 3);
    }

    #[test]
    fn mean_rule_rounds_and_invents() {
        let p = MeanRule;
        assert_eq!(p.combine(0, &[0, 3]), 1);
        assert_eq!(p.combine(0, &[0, 2]), 1); // exact 2/3 rounds up to 1
        assert_eq!(p.combine(10, &[10, 10]), 10);
        assert!(!p.validity_preserving());
        // Value 1 from inputs {0, 3}: not an input value.
        assert_eq!(p.combine(0, &[3, 0]), 1);
    }

    #[test]
    fn mean_rule_no_overflow() {
        let p = MeanRule;
        let m = u32::MAX;
        assert_eq!(p.combine(m, &[m, m]), m);
    }

    #[test]
    fn majority_rule() {
        let p = MajorityRule;
        assert_eq!(p.combine(1, &[2, 2]), 2);
        assert_eq!(p.combine(1, &[2, 3]), 1);
        assert_eq!(p.combine(1, &[1, 1]), 1);
    }

    #[test]
    fn majority_equals_median_on_two_values() {
        // With value domain {0, 1}, the two rules agree everywhere.
        for own in [0u32, 1] {
            for a in [0u32, 1] {
                for b in [0u32, 1] {
                    assert_eq!(
                        MajorityRule.combine(own, &[a, b]),
                        MedianRule.combine(own, &[a, b]),
                        "own={own} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn voter_adopts() {
        assert_eq!(VoterRule.combine(9, &[4]), 4);
    }

    #[test]
    fn k_median_matches_median3_at_k2() {
        let p = KMedianRule::new(2);
        for own in 0..4u32 {
            for a in 0..4 {
                for b in 0..4 {
                    assert_eq!(p.combine(own, &[a, b]), MedianRule.combine(own, &[a, b]));
                }
            }
        }
    }

    #[test]
    fn k_median_higher_k() {
        let p = KMedianRule::new(4);
        assert_eq!(p.samples(), 4);
        // own=5, samples 1,2,8,9 → sorted 1,2,5,8,9 → median 5.
        assert_eq!(p.combine(5, &[1, 2, 8, 9]), 5);
        // own=0, samples 7,7,7,1 → sorted 0,1,7,7,7 → median 7.
        assert_eq!(p.combine(0, &[7, 7, 7, 1]), 7);
    }

    #[test]
    #[should_panic]
    fn k_median_rejects_zero() {
        KMedianRule::new(0);
    }

    #[test]
    fn spec_builds_everything() {
        let specs = [
            ProtocolSpec::Median,
            ProtocolSpec::Min,
            ProtocolSpec::Max,
            ProtocolSpec::Mean,
            ProtocolSpec::Majority,
            ProtocolSpec::Voter,
            ProtocolSpec::KMedian(3),
        ];
        for spec in specs {
            let p = spec.build();
            assert!(p.samples() >= 1 && p.samples() <= MAX_SAMPLES);
            assert!(!spec.label().is_empty());
        }
    }
}

//! The simulation runner: wires initial conditions, protocol, adversary,
//! engine, and stopping rules into reproducible trials.
//!
//! Round structure (one iteration, matching the paper's model):
//!
//! 1. the adversary inspects the full state and corrupts up to `T`
//!    processes (values restricted to the initial set);
//! 2. every process samples and updates synchronously (the engine step);
//! 3. the new state is observed for consensus / almost-stability.

use stabcon_net::RoundMetrics;
use stabcon_obs as obs;
use stabcon_util::rng::{derive_seed, Xoshiro256pp};

use crate::adversary::{AdversarySpec, Corruptor, HistAdversarySpec, HistCorruptor};
use crate::engine::adaptive::{observe_histogram, LoadCounts};
use crate::engine::{dense, hist, EngineSpec};
use crate::histogram::Histogram;
use crate::init::InitialCondition;
use crate::protocol::{
    KMedianRule, MajorityRule, MaxRule, MeanRule, MedianRule, MinRule, Protocol, ProtocolSpec,
    VoterRule,
};
use crate::stopping::{StabilityConfig, StabilityTracker};
use crate::value::{Value, ValueSet};
use crate::workspace::TrialWorkspace;

/// Per-round observables recorded when trajectories are enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundObs {
    /// Round index (0 = initial state, before any protocol step).
    pub round: u64,
    /// Number of distinct values present.
    pub support: usize,
    /// Most common value.
    pub plurality_value: Value,
    /// Its multiplicity.
    pub plurality_count: u64,
    /// The median bin `m_t`.
    pub median_value: Value,
    /// Two-bin imbalance Δ (top two loads).
    pub imbalance: f64,
}

/// Everything a trial reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Protocol steps executed.
    pub rounds_executed: u64,
    /// First observation with support size 1 (stable consensus), if seen.
    pub consensus_round: Option<u64>,
    /// Start of the first sustained almost-stable window, if seen.
    pub almost_stable_round: Option<u64>,
    /// The winning value (stable value if stability was reached, else the
    /// final plurality).
    pub winner: Value,
    /// Whether the winner belongs to the initial value set (validity).
    pub winner_valid: bool,
    /// Distinct values at the end.
    pub final_support: usize,
    /// Balls not holding the winner at the end.
    pub final_disagreement: u64,
    /// Largest disagreement with the stable value observed *after* the
    /// almost-stable hit (only populated on full-horizon runs).
    pub max_disagreement_after_stable: Option<u64>,
    /// Per-round observables (only when recording was requested).
    pub trajectory: Option<Vec<RoundObs>>,
    /// Network delivery totals (message engine only).
    pub net_totals: Option<RoundMetrics>,
}

/// A declarative simulation specification (cheap to clone; every trial is
/// fully determined by `(spec, seed)`).
#[derive(Debug, Clone)]
pub struct SimSpec {
    n: usize,
    init: InitialCondition,
    protocol: ProtocolSpec,
    adversary: AdversarySpec,
    budget: u64,
    engine: EngineSpec,
    max_rounds: u64,
    window: u64,
    almost_factor: f64,
    record_trajectory: bool,
    full_horizon: bool,
    update_fraction: f64,
}

impl SimSpec {
    /// Spec with defaults: all-distinct init, median rule, no adversary,
    /// dense sequential engine, `max_rounds = 60·⌈log₂ n⌉ + 240`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "SimSpec: n = 0");
        let lg = (n.max(2) as f64).log2().ceil() as u64;
        Self {
            n,
            init: InitialCondition::AllDistinct,
            protocol: ProtocolSpec::Median,
            adversary: AdversarySpec::None,
            budget: 0,
            engine: EngineSpec::DenseSeq,
            max_rounds: 60 * lg + 240,
            window: 8,
            almost_factor: 4.0,
            record_trajectory: false,
            full_horizon: false,
            update_fraction: 1.0,
        }
    }

    /// Population size.
    pub fn n_processes(&self) -> usize {
        self.n
    }

    /// Set the initial condition.
    pub fn init(mut self, init: InitialCondition) -> Self {
        self.init = init;
        self
    }

    /// Set the protocol.
    pub fn protocol(mut self, protocol: ProtocolSpec) -> Self {
        self.protocol = protocol;
        self
    }

    /// Set the adversary strategy and its budget `T`.
    pub fn adversary(mut self, adversary: AdversarySpec, budget: u64) -> Self {
        self.adversary = adversary;
        self.budget = budget;
        self
    }

    /// Set the engine.
    pub fn engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// The configured engine.
    pub fn engine_spec(&self) -> EngineSpec {
        self.engine
    }

    /// Set the round budget.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Set the stability window (consecutive in-threshold observations).
    pub fn stability_window(mut self, window: u64) -> Self {
        self.window = window.max(1);
        self
    }

    /// Set the almost-stability threshold multiplier: disagreement up to
    /// `⌈factor·T⌉` counts as agreeing "all but O(T)".
    pub fn almost_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0);
        self.almost_factor = factor;
        self
    }

    /// Record per-round observables.
    pub fn record_trajectory(mut self, on: bool) -> Self {
        self.record_trajectory = on;
        self
    }

    /// Keep running to `max_rounds` even after stability is reached (used by
    /// the stability-horizon experiment to measure post-hit disagreement).
    pub fn full_horizon(mut self, on: bool) -> Self {
        self.full_horizon = on;
        self
    }

    /// α-asynchrony ablation: each ball participates in a round only with
    /// probability `fraction` (dense engines only).
    ///
    /// # Panics
    /// Panics if `fraction ∉ (0, 1]`.
    pub fn update_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "update_fraction: {fraction}"
        );
        self.update_fraction = fraction;
        self
    }

    /// The almost-stability disagreement threshold this spec uses.
    pub fn disagreement_threshold(&self) -> u64 {
        if self.budget == 0 {
            0
        } else {
            (self.almost_factor * self.budget as f64).ceil() as u64
        }
    }

    /// Run one trial, fully determined by `(self, seed)`.
    ///
    /// Allocates a fresh [`TrialWorkspace`] — batch callers should hold one
    /// workspace per worker and use [`SimSpec::run_seeded_into`] instead.
    pub fn run_seeded(&self, seed: u64) -> RunResult {
        self.run_seeded_into(seed, &mut TrialWorkspace::new())
    }

    /// Run one trial through a reusable [`TrialWorkspace`], fully
    /// determined by `(self, seed)`: bit-identical to [`SimSpec::run_seeded`]
    /// no matter what the workspace previously ran, but free of per-trial
    /// allocations once the buffers are warm.
    ///
    /// Dispatches the protocol *once* so the engine's hot loop runs
    /// monomorphized (static dispatch, no per-ball virtual calls).
    pub fn run_seeded_into(&self, seed: u64, ws: &mut TrialWorkspace) -> RunResult {
        match self.protocol {
            ProtocolSpec::Median => self.run_with_protocol(&MedianRule, seed, ws),
            ProtocolSpec::Min => self.run_with_protocol(&MinRule, seed, ws),
            ProtocolSpec::Max => self.run_with_protocol(&MaxRule, seed, ws),
            ProtocolSpec::Mean => self.run_with_protocol(&MeanRule, seed, ws),
            ProtocolSpec::Majority => self.run_with_protocol(&MajorityRule, seed, ws),
            ProtocolSpec::Voter => self.run_with_protocol(&VoterRule, seed, ws),
            ProtocolSpec::KMedian(k) => self.run_with_protocol(&KMedianRule::new(k), seed, ws),
        }
    }

    /// The trial loop, generic over the (concrete) protocol type.
    fn run_with_protocol<P: Protocol>(
        &self,
        protocol: &P,
        seed: u64,
        ws: &mut TrialWorkspace,
    ) -> RunResult {
        // Trial-lifecycle timer: wall clock of the whole trial, overlapping
        // the finer engine phases. Inert unless telemetry is enabled.
        let _trial = obs::phase(obs::Phase::Trial);
        let mut init_rng = Xoshiro256pp::seed(derive_seed(seed, 0));
        let mut adv_rng = Xoshiro256pp::seed(derive_seed(seed, 1));
        let engine_seed = derive_seed(seed, 2);
        // Dedicated stream for the post-handoff histogram phase (adaptive
        // engine only); reserved unconditionally so seeds stay stable.
        let mut hist_rng = Xoshiro256pp::seed(derive_seed(seed, 3));

        self.init
            .materialize_into(self.n, &mut init_rng, &mut ws.state);
        // Incrementally maintained bin loads: the one O(n) count here
        // replaces the per-round O(n) rebuild the runner used to do. The
        // maintainer's sorted universe doubles as the initial value set, so
        // the state is walked once, not sorted twice.
        let counts = ws.counts.take();
        let mut counts = LoadCounts::rebuild(counts, &ws.state, protocol.validity_preserving());
        let mut initial_set = ws.initial_set.take().unwrap_or_default();
        counts.rebuild_value_set(&mut initial_set);
        let mut adversary = self.adversary.build();
        let mut message_engine = match self.engine {
            EngineSpec::Message(cfg) => Some(ws.checkout_message_engine(self.n, cfg, engine_seed)),
            _ => None,
        };

        // Post-handoff aggregated state (adaptive engine only). While this
        // is `Some`, `state`/`counts` are frozen at the handoff round.
        let mut hist_state: Option<Histogram> = None;
        let handoff_support = match self.engine {
            EngineSpec::Adaptive {
                handoff_support, ..
            } if self.budget == 0
                && self.update_fraction >= 1.0
                && self.protocol.is_median_law() =>
            {
                Some(handoff_support.max(1))
            }
            _ => None,
        };

        let mut tracker = StabilityTracker::new(StabilityConfig {
            disagreement_threshold: self.disagreement_threshold(),
            window: self.window,
        });
        let recording = self.record_trajectory;
        let mut trajectory = std::mem::take(&mut ws.trajectory);
        trajectory.clear();
        ws.scratch.resize(self.n, 0);
        let mut max_after_stable: Option<u64> = None;

        // Observe the initial state (round 0).
        let obs = counts.observe();
        record(recording, &mut trajectory, 0, &obs);
        // Without an adversary, full consensus is absorbing for every rule
        // (`combine(v, [v, …]) = v`, and the dropped-sample fallbacks of the
        // message engine degrade to `v` too), so once the support hits 1 the
        // remaining stability window is a foregone conclusion — stop paying
        // O(n) rounds to watch it (for a typical campaign cell that is the
        // whole `window` tail of the trial). Exception: a message scenario
        // with latency can hold stale pre-consensus values in flight, and
        // two stale samples suffice to flip a median-rule process back —
        // support 1 is not absorbing while messages may still be queued.
        let absorbing = self.budget == 0
            && match self.engine {
                EngineSpec::Message(cfg) => cfg.scenario.consensus_absorbing(),
                _ => true,
            };
        let mut done = tracker.observe(0, obs.plurality_value, obs.plurality_count, self.n as u64)
            || (absorbing && obs.support == 1);

        // Adaptive handoff at round 0: a trial that *starts* at or below
        // the threshold (two-bin cells, narrow uniform grids) runs entirely
        // aggregated — the handoff is statistically exact conditioned on
        // the loads, and the initial loads qualify like any later round's.
        if let Some(threshold) = handoff_support {
            if counts.support_size() <= threshold {
                let t = obs::phase(obs::Phase::Handoff);
                let mut h = ws.handoff.take();
                counts.snapshot_into(&mut h);
                hist_state = h;
                drop(t);
            }
        }

        let mut rounds_executed = 0u64;
        let mut final_obs = obs;
        for round in 0..self.max_rounds {
            if done && !self.full_horizon {
                break;
            }
            let obs = if let Some(h) = hist_state.as_mut() {
                // Aggregated phase: one O(m²) multinomial round. (Handoff is
                // gated on budget == 0, so there is no adversary step here.)
                hist::step_in_place(h, &mut hist_rng, &mut ws.hist_scratch);
                rounds_executed += 1;
                observe_histogram(h)
            } else {
                // 1. Adversary corrupts at the beginning of the round.
                if self.budget > 0 {
                    let mut corruptor = Corruptor::new(&mut ws.state, &initial_set, self.budget);
                    adversary.corrupt(round, &mut corruptor, &mut adv_rng);
                    for (_, before, after) in corruptor.changes() {
                        counts.record_move(before, after);
                    }
                }
                // 2. Synchronous protocol step. Full dense rounds sample
                // peers through the load distribution once the support is
                // small (same law as indexing the state array, without the
                // two random DRAM reads per ball); the workspace-parked
                // sampler rebuilds its alias table in place each round.
                let use_sampled = self.update_fraction >= 1.0
                    && !matches!(self.engine, EngineSpec::Message(_))
                    && self.n >= dense::SAMPLED_N_MIN
                    && counts.support_size() <= dense::SAMPLED_SUPPORT_MAX;
                if use_sampled {
                    counts.rebuild_sampler(&mut ws.sampler);
                }
                match self.engine {
                    EngineSpec::DenseSeq if self.update_fraction < 1.0 => {
                        dense::step_partial(
                            1,
                            &ws.state,
                            &mut ws.scratch,
                            protocol,
                            engine_seed,
                            round,
                            self.update_fraction,
                        );
                    }
                    EngineSpec::DensePar { threads } | EngineSpec::Adaptive { threads, .. }
                        if self.update_fraction < 1.0 =>
                    {
                        dense::step_partial(
                            threads,
                            &ws.state,
                            &mut ws.scratch,
                            protocol,
                            engine_seed,
                            round,
                            self.update_fraction,
                        );
                    }
                    EngineSpec::DenseSeq => {
                        if use_sampled {
                            dense::step_seq_sampled(
                                &ws.state,
                                &mut ws.scratch,
                                protocol,
                                engine_seed,
                                round,
                                &ws.sampler,
                            );
                        } else {
                            dense::step_seq(
                                &ws.state,
                                &mut ws.scratch,
                                protocol,
                                engine_seed,
                                round,
                            );
                        }
                    }
                    EngineSpec::DensePar { threads } | EngineSpec::Adaptive { threads, .. } => {
                        if use_sampled {
                            dense::step_par_sampled(
                                threads,
                                &ws.state,
                                &mut ws.scratch,
                                protocol,
                                engine_seed,
                                round,
                                &ws.sampler,
                            );
                        } else {
                            dense::step_par(
                                threads,
                                &ws.state,
                                &mut ws.scratch,
                                protocol,
                                engine_seed,
                                round,
                            );
                        }
                    }
                    EngineSpec::Message(_) => {
                        assert!(
                            self.update_fraction >= 1.0,
                            "update_fraction is a dense-engine ablation"
                        );
                        let engine = message_engine.as_mut().expect("message engine built");
                        engine.step(&ws.state, &mut ws.scratch, protocol, engine_seed, round);
                    }
                }
                counts.apply_step(&ws.state, &ws.scratch);
                std::mem::swap(&mut ws.state, &mut ws.scratch);
                rounds_executed += 1;

                // 3. Observe (O(m) walk over live bins).
                let obs = counts.observe();
                // 4. Adaptive handoff once the support is narrow enough.
                if let Some(threshold) = handoff_support {
                    if counts.support_size() <= threshold {
                        let t = obs::phase(obs::Phase::Handoff);
                        let mut h = ws.handoff.take();
                        counts.snapshot_into(&mut h);
                        hist_state = h;
                        drop(t);
                    }
                }
                obs
            };
            record(recording, &mut trajectory, round + 1, &obs);
            done = tracker.observe(
                round + 1,
                obs.plurality_value,
                obs.plurality_count,
                self.n as u64,
            ) || (absorbing && obs.support == 1);
            if let Some((_, v)) = tracker.stable_hit() {
                let agreeing = match &hist_state {
                    Some(h) => h.n() - h.disagreement_with(v),
                    None => counts.count_of(v),
                };
                let disagreement = self.n as u64 - agreeing;
                max_after_stable = Some(max_after_stable.unwrap_or(0).max(disagreement));
            }
            final_obs = obs;
        }

        let winner = tracker
            .stable_hit()
            .map(|(_, v)| v)
            .unwrap_or(final_obs.plurality_value);
        let winner_count = match &hist_state {
            Some(h) => h.n() - h.disagreement_with(winner),
            None => counts.count_of(winner),
        };
        let winner_valid = initial_set.contains(winner);
        let net_totals = message_engine.as_ref().map(|e| *e.totals());

        // Park every reusable buffer for the next trial.
        ws.counts = Some(counts);
        ws.initial_set = Some(initial_set);
        if hist_state.is_some() {
            ws.handoff = hist_state.take();
        }
        if message_engine.is_some() {
            ws.message = message_engine.take();
        }
        let trajectory = if recording {
            Some(trajectory)
        } else {
            ws.trajectory = trajectory;
            None
        };

        RunResult {
            rounds_executed,
            consensus_round: tracker.consensus_hit(),
            almost_stable_round: tracker.stable_hit().map(|(r, _)| r),
            winner,
            winner_valid,
            final_support: final_obs.support,
            final_disagreement: self.n as u64 - winner_count,
            max_disagreement_after_stable: max_after_stable,
            trajectory,
            net_totals,
        }
    }
}

fn record(recording: bool, trajectory: &mut Vec<RoundObs>, round: u64, obs: &RoundObs) {
    if recording {
        let mut obs = *obs;
        obs.round = round;
        trajectory.push(obs);
    }
}

// ---------------------------------------------------------------------------
// Histogram-engine runner (huge populations)
// ---------------------------------------------------------------------------

/// Declarative specification for histogram-engine trials.
#[derive(Debug, Clone)]
pub struct HistSpec {
    initial: Histogram,
    adversary: HistAdversarySpec,
    budget: u64,
    max_rounds: u64,
    window: u64,
    almost_factor: f64,
}

/// Result of a histogram-engine trial.
#[derive(Debug, Clone)]
pub struct HistRunResult {
    /// Protocol steps executed.
    pub rounds_executed: u64,
    /// First observation with a single bin.
    pub consensus_round: Option<u64>,
    /// Start of the first sustained almost-stable window.
    pub almost_stable_round: Option<u64>,
    /// Winning value.
    pub winner: Value,
    /// Bins left at the end.
    pub final_support: usize,
}

impl HistSpec {
    /// Spec with defaults mirroring [`SimSpec::new`].
    pub fn new(initial: Histogram) -> Self {
        let lg = (initial.n().max(2) as f64).log2().ceil() as u64;
        Self {
            initial,
            adversary: HistAdversarySpec::None,
            budget: 0,
            max_rounds: 60 * lg + 240,
            window: 8,
            almost_factor: 4.0,
        }
    }

    /// Set the adversary and budget.
    pub fn adversary(mut self, adversary: HistAdversarySpec, budget: u64) -> Self {
        self.adversary = adversary;
        self.budget = budget;
        self
    }

    /// Set the round budget.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Set the stability window.
    pub fn stability_window(mut self, window: u64) -> Self {
        self.window = window.max(1);
        self
    }

    /// Run one trial (median rule only — the histogram law is the median
    /// rule's).
    pub fn run_seeded(&self, seed: u64) -> HistRunResult {
        let mut rng = Xoshiro256pp::seed(derive_seed(seed, 10));
        let mut adv_rng = Xoshiro256pp::seed(derive_seed(seed, 11));
        let initial_set = ValueSet::from_values(
            &self
                .initial
                .bins()
                .iter()
                .map(|&(v, _)| v)
                .collect::<Vec<_>>(),
        );
        let mut adversary = self.adversary.build();
        let n = self.initial.n();
        let threshold = if self.budget == 0 {
            0
        } else {
            (self.almost_factor * self.budget as f64).ceil() as u64
        };
        let mut tracker = StabilityTracker::new(StabilityConfig {
            disagreement_threshold: threshold,
            window: self.window,
        });

        let mut state = self.initial.clone();
        let (pv, pc) = state.plurality();
        let mut done = tracker.observe(0, pv, pc, n);
        let mut rounds_executed = 0u64;
        for round in 0..self.max_rounds {
            if done {
                break;
            }
            if self.budget > 0 {
                let mut loads = state.bins().to_vec();
                {
                    let mut c = HistCorruptor::new(&mut loads, &initial_set, self.budget);
                    adversary.corrupt(round, &mut c, &mut adv_rng);
                }
                state = Histogram::new(&loads);
            }
            state = hist::step(&state, &mut rng);
            rounds_executed += 1;
            let (pv, pc) = state.plurality();
            done = tracker.observe(round + 1, pv, pc, n);
        }
        let winner = tracker
            .stable_hit()
            .map(|(_, v)| v)
            .unwrap_or(state.plurality().0);
        HistRunResult {
            rounds_executed,
            consensus_round: tracker.consensus_hit(),
            almost_stable_round: tracker.stable_hit().map(|(r, _)| r),
            winner,
            final_support: state.support_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_converge_two_bins() {
        let spec = SimSpec::new(1024).init(InitialCondition::TwoBins { left: 512 });
        let r = spec.run_seeded(1);
        assert!(r.consensus_round.is_some(), "no consensus: {r:?}");
        assert!(r.winner_valid);
        assert!(r.winner <= 1);
        assert_eq!(r.final_support, 1);
        assert_eq!(r.final_disagreement, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = SimSpec::new(512).init(InitialCondition::UniformRandom { m: 8 });
        let a = spec.run_seeded(7);
        let b = spec.run_seeded(7);
        assert_eq!(a.consensus_round, b.consensus_round);
        assert_eq!(a.winner, b.winner);
        let c = spec.run_seeded(8);
        // Different seeds usually give different dynamics; just require it
        // doesn't crash and produces a valid winner.
        assert!(c.winner_valid);
    }

    #[test]
    fn dense_par_matches_dense_seq() {
        let base = SimSpec::new(8192).init(InitialCondition::UniformRandom { m: 5 });
        let seq = base.clone().engine(EngineSpec::DenseSeq).run_seeded(3);
        let par = base
            .engine(EngineSpec::DensePar { threads: 4 })
            .run_seeded(3);
        assert_eq!(seq.consensus_round, par.consensus_round);
        assert_eq!(seq.winner, par.winner);
    }

    #[test]
    fn all_distinct_converges() {
        let spec = SimSpec::new(512); // m = n worst case
        let r = spec.run_seeded(2);
        assert!(r.consensus_round.is_some());
        assert!(r.winner_valid);
        assert!(r.winner < 512);
    }

    #[test]
    fn adversarial_run_reaches_almost_stability() {
        let n = 4096usize;
        let t = (n as f64).sqrt() as u64; // T = √n
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .adversary(AdversarySpec::Random, t);
        let r = spec.run_seeded(5);
        assert!(
            r.almost_stable_round.is_some(),
            "no almost-stable consensus under random √n-adversary: {r:?}"
        );
        assert!(r.winner_valid);
    }

    #[test]
    fn trajectory_recording() {
        let spec = SimSpec::new(256)
            .init(InitialCondition::TwoBins { left: 128 })
            .record_trajectory(true);
        let r = spec.run_seeded(9);
        let traj = r.trajectory.expect("trajectory requested");
        assert_eq!(traj[0].round, 0);
        assert_eq!(traj[0].support, 2);
        assert_eq!(traj.len() as u64, r.rounds_executed + 1);
        // Support never increases without an adversary under the median rule.
        for w in traj.windows(2) {
            assert!(w[1].support <= w[0].support);
        }
    }

    #[test]
    fn message_engine_run_produces_metrics() {
        let spec = SimSpec::new(512)
            .init(InitialCondition::TwoBins { left: 256 })
            .engine(EngineSpec::Message(crate::engine::MessageConfig::default()));
        let r = spec.run_seeded(4);
        let net = r.net_totals.expect("message engine reports metrics");
        assert!(net.requests > 0);
        assert!(r.consensus_round.is_some());
    }

    #[test]
    fn mean_rule_violates_validity() {
        // Values {0, 1000} → the mean rule settles strictly between them.
        let spec = SimSpec::new(1024)
            .init(InitialCondition::Custom(std::sync::Arc::new(
                (0..1024)
                    .map(|i| if i % 2 == 0 { 0 } else { 1000 })
                    .collect(),
            )))
            .protocol(ProtocolSpec::Mean)
            .max_rounds(2000);
        let r = spec.run_seeded(6);
        if r.consensus_round.is_some() {
            assert!(
                !r.winner_valid,
                "mean rule converged to an initial value — astronomically unlikely: {r:?}"
            );
        } else {
            // Even without full consensus the plurality should be interior.
            assert!(r.winner > 0 && r.winner < 1000, "winner {}", r.winner);
        }
    }

    #[test]
    fn full_horizon_tracks_post_stable_disagreement() {
        let n = 1024usize;
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: 100 })
            .adversary(AdversarySpec::Random, 8)
            .max_rounds(200)
            .full_horizon(true);
        let r = spec.run_seeded(11);
        assert_eq!(r.rounds_executed, 200, "full horizon must not stop early");
        if r.almost_stable_round.is_some() {
            let max_dis = r.max_disagreement_after_stable.expect("tracked");
            assert!(
                max_dis <= spec.disagreement_threshold() * 4 + 64,
                "disagreement exploded after stability: {max_dis}"
            );
        }
    }

    #[test]
    fn hist_spec_converges() {
        let h = Histogram::new(&[(0, 1 << 20), (1, 1 << 20)]);
        let r = HistSpec::new(h).run_seeded(1);
        assert!(r.consensus_round.is_some());
        assert_eq!(r.final_support, 1);
    }

    #[test]
    fn hist_spec_with_balancer_at_low_budget_still_converges() {
        let h = Histogram::new(&[(0, 1 << 16), (1, 1 << 16)]);
        // Budget far below √n (= 2^8.5): the balancer cannot hold the tie.
        let r = HistSpec::new(h)
            .adversary(HistAdversarySpec::Balancer, 4)
            .run_seeded(2);
        assert!(
            r.almost_stable_round.is_some(),
            "tiny balancer should not prevent stabilization: {r:?}"
        );
    }
}

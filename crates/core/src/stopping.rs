//! Consensus and almost-stable-consensus detection.
//!
//! The paper's *almost stable consensus*: there is a round `r` and value `v`
//! such that **at every round after r**, all but `O(T)` processes hold `v`.
//! Empirically we detect: a value `v` whose disagreement stays at or below a
//! threshold for `window` consecutive observations. Stable (full) consensus
//! is the threshold-0 special case.

use crate::value::Value;

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityConfig {
    /// Maximum disagreement tolerated ("O(T)"; 0 ⇒ require full consensus).
    pub disagreement_threshold: u64,
    /// Consecutive in-threshold observations required to declare stability.
    pub window: u64,
}

/// Online detector fed one observation per round.
#[derive(Debug, Clone)]
pub struct StabilityTracker {
    cfg: StabilityConfig,
    candidate: Option<Value>,
    window_start: u64,
    in_window: u64,
    stable_hit: Option<(u64, Value)>,
    consensus_hit: Option<u64>,
}

impl StabilityTracker {
    /// Fresh tracker.
    pub fn new(cfg: StabilityConfig) -> Self {
        Self {
            cfg,
            candidate: None,
            window_start: 0,
            in_window: 0,
            stable_hit: None,
            consensus_hit: None,
        }
    }

    /// Feed the state observed at `round`: the plurality value, its count,
    /// and the population size. Returns `true` once stability has been
    /// established (keeps returning `true` afterwards).
    pub fn observe(&mut self, round: u64, plurality: Value, count: u64, n: u64) -> bool {
        let disagreement = n - count;
        if disagreement == 0 && self.consensus_hit.is_none() {
            self.consensus_hit = Some(round);
        }
        if self.stable_hit.is_some() {
            return true;
        }
        if disagreement <= self.cfg.disagreement_threshold {
            if self.candidate == Some(plurality) {
                self.in_window += 1;
            } else {
                self.candidate = Some(plurality);
                self.window_start = round;
                self.in_window = 1;
            }
            if self.in_window >= self.cfg.window {
                self.stable_hit = Some((self.window_start, plurality));
                return true;
            }
        } else {
            self.candidate = None;
            self.in_window = 0;
        }
        false
    }

    /// First round at which the sustained almost-stable window began, with
    /// the winning value.
    pub fn stable_hit(&self) -> Option<(u64, Value)> {
        self.stable_hit
    }

    /// First round with full consensus (support size 1), if seen.
    pub fn consensus_hit(&self) -> Option<u64> {
        self.consensus_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(thresh: u64, window: u64) -> StabilityConfig {
        StabilityConfig {
            disagreement_threshold: thresh,
            window,
        }
    }

    #[test]
    fn consensus_detected_immediately_with_zero_threshold() {
        let mut t = StabilityTracker::new(cfg(0, 1));
        assert!(t.observe(3, 7, 100, 100));
        assert_eq!(t.stable_hit(), Some((3, 7)));
        assert_eq!(t.consensus_hit(), Some(3));
    }

    #[test]
    fn window_must_be_sustained() {
        let mut t = StabilityTracker::new(cfg(2, 3));
        assert!(!t.observe(0, 5, 99, 100)); // in threshold, window 1
        assert!(!t.observe(1, 5, 98, 100)); // window 2
        assert!(t.observe(2, 5, 99, 100)); // window 3 → stable from round 0
        assert_eq!(t.stable_hit(), Some((0, 5)));
    }

    #[test]
    fn window_resets_on_violation() {
        let mut t = StabilityTracker::new(cfg(2, 2));
        assert!(!t.observe(0, 5, 99, 100));
        assert!(!t.observe(1, 5, 90, 100)); // disagreement 10 > 2: reset
        assert!(!t.observe(2, 5, 99, 100));
        assert!(t.observe(3, 5, 100, 100));
        assert_eq!(t.stable_hit(), Some((2, 5)));
    }

    #[test]
    fn window_resets_on_candidate_change() {
        let mut t = StabilityTracker::new(cfg(5, 2));
        assert!(!t.observe(0, 5, 97, 100));
        assert!(!t.observe(1, 9, 98, 100)); // different plurality: restart
        assert!(t.observe(2, 9, 98, 100));
        assert_eq!(t.stable_hit(), Some((1, 9)));
    }

    #[test]
    fn consensus_recorded_even_with_large_threshold() {
        let mut t = StabilityTracker::new(cfg(50, 100));
        t.observe(0, 1, 100, 100);
        assert_eq!(t.consensus_hit(), Some(0));
        assert_eq!(t.stable_hit(), None, "window not yet complete");
    }

    #[test]
    fn stays_true_after_hit() {
        let mut t = StabilityTracker::new(cfg(0, 1));
        assert!(t.observe(0, 2, 10, 10));
        // Later violations do not un-declare the recorded hit.
        assert!(t.observe(1, 2, 3, 10));
        assert_eq!(t.stable_hit(), Some((0, 2)));
    }
}

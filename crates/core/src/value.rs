//! Values ("bins") and the initial-value-set constraint.
//!
//! The paper identifies values with natural numbers that fit in `O(log n)`
//! bits; `u32` covers every simulation size we run. The *initial value set*
//! `{v₁, …, v_n}` matters because (a) validity requires the final consensus
//! value to come from it and (b) the T-bounded adversary may only write
//! values from it.

/// A process value / bin identifier.
pub type Value = u32;

/// Median of three values (the median rule's combine step).
///
/// Branch-free formulation: `max(min(a,b), min(max(a,b), c))`.
#[inline(always)]
pub fn median3(a: Value, b: Value, c: Value) -> Value {
    let lo = a.min(b);
    let hi = a.max(b);
    lo.max(hi.min(c))
}

/// Median of a small odd-length scratch buffer (k-sample median ablation).
///
/// For even lengths this returns the **lower** middle element, which keeps
/// the rule well-defined and validity-preserving.
///
/// # Panics
/// Panics if `vals` is empty.
pub fn median_small(vals: &mut [Value]) -> Value {
    assert!(!vals.is_empty(), "median of empty slice");
    vals.sort_unstable();
    vals[(vals.len() - 1) / 2]
}

/// The set of initial values, supporting membership tests and "nearest
/// allowed value" queries for adversaries.
///
/// The `Default` value is an **empty placeholder** kept only so buffers can
/// be reused across trials (see [`crate::workspace::TrialWorkspace`]); it
/// must be filled via [`ValueSet::rebuild_sorted_unique`] before queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueSet {
    sorted: Vec<Value>,
}

impl ValueSet {
    /// Build from any collection of values (dedupes and sorts).
    pub fn from_values(values: &[Value]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(!sorted.is_empty(), "ValueSet: empty");
        Self { sorted }
    }

    /// Refill from already strictly ascending values, reusing the
    /// allocation — the per-trial path used by workspace reuse.
    ///
    /// # Panics
    /// Panics if `values` is empty (debug builds also check ordering).
    pub fn rebuild_sorted_unique(&mut self, values: impl Iterator<Item = Value>) {
        self.sorted.clear();
        self.sorted.extend(values);
        debug_assert!(
            self.sorted.windows(2).all(|w| w[0] < w[1]),
            "rebuild_sorted_unique: values not strictly ascending"
        );
        assert!(!self.sorted.is_empty(), "ValueSet: empty");
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: Value) -> bool {
        self.sorted.binary_search(&v).is_ok()
    }

    /// Smallest value.
    pub fn min(&self) -> Value {
        self.sorted[0]
    }

    /// Largest value.
    pub fn max(&self) -> Value {
        *self.sorted.last().expect("nonempty")
    }

    /// All values, ascending.
    pub fn values(&self) -> &[Value] {
        &self.sorted
    }

    /// The i-th smallest value.
    pub fn nth(&self, i: usize) -> Value {
        self.sorted[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median3_all_orders() {
        let perms = [
            (1, 2, 3),
            (1, 3, 2),
            (2, 1, 3),
            (2, 3, 1),
            (3, 1, 2),
            (3, 2, 1),
        ];
        for (a, b, c) in perms {
            assert_eq!(median3(a, b, c), 2, "median3({a},{b},{c})");
        }
    }

    #[test]
    fn median3_with_ties() {
        assert_eq!(median3(5, 5, 9), 5);
        assert_eq!(median3(9, 5, 5), 5);
        assert_eq!(median3(5, 9, 5), 5);
        assert_eq!(median3(7, 7, 7), 7);
        assert_eq!(median3(0, u32::MAX, 7), 7);
    }

    #[test]
    fn median3_paper_example() {
        // "if vi = 10, vj = 12 and vk = 100, then the new value of vi is 12"
        assert_eq!(median3(10, 12, 100), 12);
    }

    #[test]
    fn median_small_odd_and_even() {
        assert_eq!(median_small(&mut [3]), 3);
        assert_eq!(median_small(&mut [3, 1, 2]), 2);
        assert_eq!(median_small(&mut [4, 1, 3, 2]), 2); // lower middle
        assert_eq!(median_small(&mut [5, 1, 4, 2, 3]), 3);
    }

    #[test]
    fn median_small_matches_median3() {
        for a in 0..6u32 {
            for b in 0..6 {
                for c in 0..6 {
                    assert_eq!(median_small(&mut [a, b, c]), median3(a, b, c));
                }
            }
        }
    }

    #[test]
    fn value_set_basics() {
        let s = ValueSet::from_values(&[5, 1, 5, 9, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), &[1, 5, 9]);
        assert!(s.contains(5));
        assert!(!s.contains(2));
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 9);
        assert_eq!(s.nth(1), 5);
    }

    #[test]
    #[should_panic]
    fn empty_value_set_panics() {
        ValueSet::from_values(&[]);
    }
}

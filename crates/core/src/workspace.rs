//! Reusable per-worker trial buffers.
//!
//! A campaign runs millions of short trials, and before this module every
//! one of them re-allocated its whole world: the state vector, the scratch
//! vector, the load-count universe (`values`/`table`/`counts`), the initial
//! value set, the trajectory, the adaptive handoff histogram, and — for the
//! message engine — the routing buffers. A [`TrialWorkspace`] owns all of
//! those once per worker; [`crate::runner::SimSpec::run_seeded_into`]
//! rebuilds them in place each trial, so the steady-state allocation count
//! per dense trial is O(1) (pinned by `tests/alloc_regression.rs`).
//!
//! Reuse is **observationally invisible**: a trial through a dirty, reused
//! workspace produces a bit-identical [`RunResult`] to a fresh one
//! (`tests/workspace_props.rs` pins this across engines × protocols).

use crate::engine::adaptive::LoadCounts;
use crate::engine::dense::LoadSampler;
use crate::engine::hist;
use crate::engine::{MessageConfig, MessageEngine};
use crate::histogram::Histogram;
use crate::runner::{RoundObs, RunResult};
use crate::value::{Value, ValueSet};

/// Every buffer one trial needs, owned across trials by a worker.
///
/// All fields are rebuilt from scratch at the start of each trial — a
/// workspace carries **capacity**, never state, between trials.
#[derive(Default)]
pub struct TrialWorkspace {
    /// Current ball values.
    pub(crate) state: Vec<Value>,
    /// Engine output buffer, swapped with `state` each round.
    pub(crate) scratch: Vec<Value>,
    /// Per-round observables (only filled when recording was requested).
    pub(crate) trajectory: Vec<RoundObs>,
    /// Load-sampled dense round state: live value table + packed alias,
    /// rebuilt in place each sampled round (no per-round allocation).
    pub(crate) sampler: LoadSampler,
    /// Incremental load maintainer (parked between trials).
    pub(crate) counts: Option<LoadCounts>,
    /// Initial value set (parked between trials).
    pub(crate) initial_set: Option<ValueSet>,
    /// Aggregated-phase histogram for the adaptive engine's handoff.
    pub(crate) handoff: Option<Histogram>,
    /// Histogram-engine per-round buffers (CDF, law, draws, new loads).
    pub(crate) hist_scratch: hist::StepScratch,
    /// Cached message engine, keyed by the `(n, config)` it was built for.
    pub(crate) message: Option<MessageEngine>,
}

impl TrialWorkspace {
    /// An empty workspace; the first trial sizes every buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a message engine for `(n, cfg)` re-keyed to `seed`,
    /// reusing the cached one when its shape matches.
    pub(crate) fn checkout_message_engine(
        &mut self,
        n: usize,
        cfg: MessageConfig,
        seed: u64,
    ) -> MessageEngine {
        match self.message.take() {
            Some(mut engine) if engine.n() == n && engine.config() == cfg => {
                engine.reset(seed);
                engine
            }
            _ => MessageEngine::new(n, cfg, seed),
        }
    }

    /// Return a finished [`RunResult`]'s owned buffers to the workspace so
    /// the next trial reuses them. Call after the result has been reduced
    /// (e.g. to campaign metrics); dropping the result instead is always
    /// correct, just slower.
    pub fn recycle(&mut self, result: RunResult) {
        if let Some(mut trajectory) = result.trajectory {
            if trajectory.capacity() > self.trajectory.capacity() {
                trajectory.clear();
                self.trajectory = trajectory;
            }
        }
    }
}

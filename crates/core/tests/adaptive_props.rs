//! Properties of the monomorphized dense hot path and the adaptive engine.
//!
//! Three contracts from the perf refactor:
//!
//! 1. monomorphized (static-dispatch) and `dyn Protocol` dense rounds are
//!    **bit-identical** — the generic step must not change a single draw;
//! 2. sequential and parallel dense rounds stay bit-identical for any
//!    thread count, on both the plain and the load-sampled path;
//! 3. the adaptive engine is statistically exact: its consensus-round
//!    distribution agrees with pure dense (KS-style check over ≥200 seeded
//!    trials).

use proptest::prelude::*;
use stabcon_core::engine::{dense, EngineSpec};
use stabcon_core::histogram::Histogram;
use stabcon_core::init::InitialCondition;
use stabcon_core::protocol::{KMedianRule, MedianRule, Protocol, VoterRule};
use stabcon_core::runner::SimSpec;
use stabcon_core::value::Value;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- (a) monomorphized ≡ dyn --------------------------------------------

    #[test]
    fn mono_equals_dyn_median(values in prop::collection::vec(0u32..32, 64..2000),
                              seed in any::<u64>(), round in 0u64..4) {
        let mut mono = vec![0 as Value; values.len()];
        dense::step_seq(&values, &mut mono, &MedianRule, seed, round);
        let mut dynamic = vec![0 as Value; values.len()];
        let protocol: &dyn Protocol = &MedianRule;
        dense::step_seq(&values, &mut dynamic, protocol, seed, round);
        prop_assert_eq!(&mono, &dynamic);
    }

    #[test]
    fn mono_equals_dyn_all_sample_counts(values in prop::collection::vec(0u32..9, 64..500),
                                         k in 1usize..6, seed in any::<u64>()) {
        let rule = KMedianRule::new(k);
        let mut mono = vec![0 as Value; values.len()];
        dense::step_seq(&values, &mut mono, &rule, seed, 0);
        let mut dynamic = vec![0 as Value; values.len()];
        let protocol: &dyn Protocol = &rule;
        dense::step_seq(&values, &mut dynamic, protocol, seed, 0);
        prop_assert_eq!(&mono, &dynamic);
    }

    // --- (b) seq ≡ par across thread counts ---------------------------------

    #[test]
    fn seq_equals_par_all_threads(values in prop::collection::vec(0u32..64, 4096..8192),
                                  seed in any::<u64>(), round in 0u64..4) {
        let mut seq = vec![0 as Value; values.len()];
        dense::step_seq(&values, &mut seq, &MedianRule, seed, round);
        for threads in [2usize, 3, 4, 8] {
            let mut par = vec![0 as Value; values.len()];
            dense::step_par(threads, &values, &mut par, &MedianRule, seed, round);
            prop_assert_eq!(&seq, &par, "threads = {}", threads);
        }
    }

    #[test]
    fn seq_equals_par_sampled_path(values in prop::collection::vec(0u32..16, 4096..8192),
                                   seed in any::<u64>()) {
        let bins = Histogram::new(
            &values.iter().map(|&v| (v, 1u64)).collect::<Vec<_>>(),
        );
        // Aggregate duplicate values into loads.
        let bins: Vec<(Value, u64)> = bins.bins().to_vec();
        let mut seq = vec![0 as Value; values.len()];
        dense::step_seq_with_loads(&values, &mut seq, &MedianRule, seed, 1, &bins);
        for threads in [2usize, 4, 8] {
            let mut par = vec![0 as Value; values.len()];
            dense::step_par_with_loads(threads, &values, &mut par, &MedianRule, seed, 1, &bins);
            prop_assert_eq!(&seq, &par, "threads = {}", threads);
        }
    }

    #[test]
    fn seq_equals_par_voter(values in prop::collection::vec(0u32..8, 4096..6000),
                            seed in any::<u64>()) {
        let mut seq = vec![0 as Value; values.len()];
        dense::step_seq(&values, &mut seq, &VoterRule, seed, 0);
        let mut par = vec![0 as Value; values.len()];
        dense::step_par(4, &values, &mut par, &VoterRule, seed, 0);
        prop_assert_eq!(&seq, &par);
    }
}

/// Runner-level seq/par bit-identity with the load-sampled path active
/// (population at the sampling floor, two bins → sampled from round one).
#[test]
fn runner_seq_equals_par_with_sampling_active() {
    let n = dense::SAMPLED_N_MIN;
    let base = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .max_rounds(4000);
    let seq = base.clone().engine(EngineSpec::DenseSeq).run_seeded(5);
    let par = base
        .clone()
        .engine(EngineSpec::DensePar { threads: 4 })
        .run_seeded(5);
    assert_eq!(seq.consensus_round, par.consensus_round);
    assert_eq!(seq.winner, par.winner);
    assert_eq!(seq.final_disagreement, par.final_disagreement);
    assert!(seq.consensus_round.is_some(), "{seq:?}");
}

/// Two-sample Kolmogorov–Smirnov statistic over integer samples.
fn ks_statistic(a: &[u64], b: &[u64]) -> f64 {
    let mut xs: Vec<u64> = a.iter().chain(b).copied().collect();
    xs.sort_unstable();
    xs.dedup();
    let mut worst = 0.0f64;
    for &x in &xs {
        let fa = a.iter().filter(|&&v| v <= x).count() as f64 / a.len() as f64;
        let fb = b.iter().filter(|&&v| v <= x).count() as f64 / b.len() as f64;
        worst = worst.max((fa - fb).abs());
    }
    worst
}

/// (c) Adaptive vs pure dense: consensus-round distributions agree.
///
/// 256 seeded trials per engine on a TwoBins start. The trajectories
/// diverge sample-wise at the handoff (different RNG stream), so the
/// comparison is distributional: the two-sample KS statistic must stay
/// below the α ≈ 0.001 critical value `1.95·√(2/256) ≈ 0.172` (slack to
/// 0.18).
#[test]
fn adaptive_consensus_round_distribution_matches_dense() {
    let n = 2048usize;
    let trials = 256u64;
    let base = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .max_rounds(2000);
    let dense_spec = base.clone().engine(EngineSpec::DenseSeq);
    let adaptive_spec = base.clone().engine(EngineSpec::Adaptive {
        threads: 1,
        handoff_support: 64,
    });
    let mut dense_rounds = Vec::with_capacity(trials as usize);
    let mut adaptive_rounds = Vec::with_capacity(trials as usize);
    for seed in 0..trials {
        let d = dense_spec.run_seeded(seed);
        let a = adaptive_spec.run_seeded(seed);
        dense_rounds.push(d.consensus_round.expect("dense trial must converge"));
        adaptive_rounds.push(a.consensus_round.expect("adaptive trial must converge"));
        assert!(a.winner_valid);
        assert_eq!(a.final_support, 1);
        assert_eq!(a.final_disagreement, 0);
    }
    let ks = ks_statistic(&dense_rounds, &adaptive_rounds);
    assert!(
        ks < 0.18,
        "KS distance {ks} between dense and adaptive consensus rounds"
    );
}

/// The adaptive engine with a handoff threshold of 1 never hands off before
/// consensus (support must *reach* 1 first) — it must still converge and
/// agree with plain dense on every observable that is sample-exact.
#[test]
fn adaptive_with_tiny_threshold_behaves_like_dense() {
    let n = 1024usize;
    let base = SimSpec::new(n)
        .init(InitialCondition::UniformRandom { m: 8 })
        .max_rounds(4000);
    let dense = base.clone().engine(EngineSpec::DenseSeq).run_seeded(3);
    let adaptive = base
        .clone()
        .engine(EngineSpec::Adaptive {
            threads: 1,
            handoff_support: 1,
        })
        .run_seeded(3);
    assert_eq!(dense.consensus_round, adaptive.consensus_round);
    assert_eq!(dense.winner, adaptive.winner);
}

/// Non-median protocols must not hand off (the histogram law is the median
/// rule's); the adaptive engine still runs them correctly, just densely.
#[test]
fn adaptive_voter_stays_dense_and_converges() {
    let n = 1024usize;
    let base = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .protocol(stabcon_core::protocol::ProtocolSpec::Voter)
        .max_rounds(60_000);
    let dense = base.clone().engine(EngineSpec::DenseSeq).run_seeded(11);
    let adaptive = base
        .clone()
        .engine(EngineSpec::Adaptive {
            threads: 1,
            handoff_support: 64,
        })
        .run_seeded(11);
    // No handoff possible → trajectories are bit-identical, not just equal
    // in law.
    assert_eq!(dense.consensus_round, adaptive.consensus_round);
    assert_eq!(dense.winner, adaptive.winner);
}

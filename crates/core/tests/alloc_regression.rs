//! Allocation regression gate: once a [`TrialWorkspace`]'s buffers are
//! warm, running more trials of a dense cell must allocate O(1) — i.e.
//! (almost) nothing — per trial. A counting `#[global_allocator]` in this
//! dedicated test binary pins that down, so a future change that quietly
//! reintroduces per-trial (or worse, per-round) mallocs fails here instead
//! of silently eating the campaign-throughput win.
//!
//! The threshold is deliberately a small constant, not zero: the contract
//! is O(1) per trial, independent of `n`, `max_rounds`, and trial count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stabcon_core::engine::EngineSpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_core::workspace::TrialWorkspace;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is the only
// addition and is atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_per_trial(sim: &SimSpec, warmup: u64, measured: u64) -> f64 {
    let mut ws = TrialWorkspace::new();
    for seed in 0..warmup {
        let r = sim.run_seeded_into(seed, &mut ws);
        ws.recycle(r);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for seed in warmup..warmup + measured {
        let r = sim.run_seeded_into(seed, &mut ws);
        ws.recycle(r);
    }
    (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / measured as f64
}

#[test]
fn dense_cell_steady_state_is_allocation_free() {
    let sim = SimSpec::new(4096).init(InitialCondition::UniformRandom { m: 8 });
    let per_trial = allocations_per_trial(&sim, 4, 24);
    assert!(
        per_trial <= 2.0,
        "dense trial steady state allocates {per_trial} times per trial (expected ≈ 0)"
    );
}

#[test]
fn adaptive_cell_steady_state_is_o1() {
    // The adaptive engine additionally exercises the handoff snapshot and
    // the histogram engine's in-place rounds.
    let sim = SimSpec::new(4096)
        .init(InitialCondition::UniformRandom { m: 8 })
        .engine(EngineSpec::Adaptive {
            threads: 1,
            handoff_support: 64,
        });
    let per_trial = allocations_per_trial(&sim, 4, 24);
    assert!(
        per_trial <= 4.0,
        "adaptive trial steady state allocates {per_trial} times per trial"
    );
}

#[test]
fn load_sampled_dense_cell_steady_state_is_o1() {
    // n = 2¹⁸ with a narrow support: every full-participation round takes
    // the load-sampled dense path (n ≥ SAMPLED_N_MIN, support ≤
    // SAMPLED_SUPPORT_MAX), which used to build a fresh `PackedAlias` —
    // five vectors — per *round*. The workspace-parked `LoadSampler` now
    // rebuilds value table, alias, and Vose worklists in place, so whole
    // trials through the sampled path must stay O(1) allocations.
    let n = stabcon_core::engine::dense::SAMPLED_N_MIN;
    let sim = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .max_rounds(400);
    let per_trial = allocations_per_trial(&sim, 2, 4);
    assert!(
        per_trial <= 2.0,
        "load-sampled trial steady state allocates {per_trial} times per trial (expected ≈ 0)"
    );
}

#[test]
fn message_cell_steady_state_is_o1() {
    // The message engine routes real request/response traffic — targets
    // buffer, response buffers, and (with a faulted scenario) the delay
    // rings and fault bitmaps must all be workspace-parked: `reset`
    // re-keys without allocating, and `route_round` pre-reserves per-process
    // headroom so balls-in-bins load maxima never grow a warm buffer.
    // `DropSpec::Random` keeps the drop policy alloc-free (`StarveSet`
    // sorts, which allocates by design).
    use stabcon_core::engine::{MessageConfig, ScenarioSpec};
    let n = 1024;
    let cfg = MessageConfig {
        scenario: ScenarioSpec::clean()
            .with_latency(0, 2)
            .with_drop_per_mille(100)
            .with_byzantine(4),
        ..MessageConfig::default()
    };
    let sim = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .engine(EngineSpec::Message(cfg));
    let per_trial = allocations_per_trial(&sim, 4, 16);
    assert!(
        per_trial <= 2.0,
        "message trial steady state allocates {per_trial} times per trial (expected ≈ 0)"
    );
}

#[test]
fn telemetry_enabled_trial_is_still_allocation_free() {
    // The stabcon-obs layer must be observation-only in the allocator
    // sense too: with the global flag armed, a steady-state trial — phase
    // guards firing inside the kernel, per-trial histogram records, counter
    // adds, a TLS drain, and a full registry snapshot per trial — stays
    // ≈0 allocations. The registry and snapshot allocate once up front;
    // everything per-trial lands in const-init thread-locals and
    // fixed-slot atomics.
    use stabcon_obs as obs;
    let registry = obs::MetricRegistry::new(1);
    let mut snap = obs::Snapshot::new(1);
    let handle = registry.handle(0);
    let sim = SimSpec::new(4096).init(InitialCondition::UniformRandom { m: 8 });
    obs::set_enabled(true);
    let mut ws = TrialWorkspace::new();
    let mut run_one = |seed: u64| {
        let clock = obs::stopwatch();
        let r = sim.run_seeded_into(seed, &mut ws);
        if let Some(nanos) = clock.elapsed_nanos() {
            obs::hist_record(obs::Hist::TrialNanos, nanos);
        }
        handle.add(obs::Counter::Trials, 1);
        handle.add(obs::Counter::Rounds, r.rounds_executed);
        ws.recycle(r);
        handle.drain_local();
    };
    for seed in 0..4 {
        run_one(seed);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for seed in 4..28 {
        run_one(seed);
        registry.snapshot_into(&mut snap);
    }
    let per_trial = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / 24.0;
    obs::set_enabled(false);
    assert!(
        per_trial <= 2.0,
        "telemetry-enabled trial steady state allocates {per_trial} times per trial (expected ≈ 0)"
    );
    assert_eq!(snap.total().counter(obs::Counter::Trials), 28);
    assert!(snap.total().hist_count(obs::Hist::TrialNanos) >= 24);
}

#[test]
fn all_distinct_worst_case_universe_is_o1() {
    // m = n: the ranked universe, probe table, and value set are all n-sized
    // and must still be reused, not reallocated.
    let sim = SimSpec::new(2048).init(InitialCondition::AllDistinct);
    let per_trial = allocations_per_trial(&sim, 4, 16);
    assert!(
        per_trial <= 2.0,
        "all-distinct steady state allocates {per_trial} times per trial"
    );
}

//! Batched-kernel bit-identity: the phase-split dense kernel behind
//! [`stabcon_core::engine::dense::step_seq`] (and the load-sampled /
//! partial-participation variants) must produce **exactly** the bits of
//! the scalar reference loops it replaced, for every protocol sample
//! count, execution mode (seq/par), and population size — block
//! boundaries included.
//!
//! This is the contract that lets the engine batch-generate RNG words,
//! resolve indices, gather, and apply in separate vector-friendly loops
//! without changing a single trajectory anywhere in the repository.

use proptest::prelude::*;
use stabcon_core::engine::dense::{self, LoadSampler, KERNEL_BLOCK};
use stabcon_core::protocol::{KMedianRule, MedianRule, MinRule, Protocol};
use stabcon_core::value::Value;

/// k ∈ {1, 2, 5}: the fixed-size fast paths and the general-k loop.
fn protocol(ix: usize) -> Box<dyn Protocol> {
    match ix {
        0 => Box::new(MinRule),
        1 => Box::new(MedianRule),
        _ => Box::new(KMedianRule::new(5)),
    }
}

/// Populations that straddle the kernel's block boundaries for every
/// sample count: exact multiples, off-by-one on both sides, sub-block,
/// and a generic non-multiple.
fn boundary_n(ix: usize, jitter: usize) -> usize {
    match ix {
        0 => KERNEL_BLOCK - 1,
        1 => KERNEL_BLOCK,
        2 => KERNEL_BLOCK + 1,
        3 => 2 * KERNEL_BLOCK,
        4 => 257, // below one block even at k = 2
        _ => KERNEL_BLOCK + 1 + (jitter % (2 * KERNEL_BLOCK)),
    }
}

fn state(n: usize, support: u32) -> Vec<Value> {
    (0..n as u32).map(|i| (i * 7) % support).collect()
}

fn bins_of(state: &[Value]) -> Vec<(Value, u64)> {
    let mut counts = std::collections::BTreeMap::new();
    for &v in state {
        *counts.entry(v).or_insert(0u64) += 1;
    }
    counts.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn uniform_batched_equals_scalar_reference(
        protocol_ix in 0usize..3,
        n_ix in 0usize..6,
        jitter in 0usize..(2 * KERNEL_BLOCK),
        support in 2u32..300,
        seed in any::<u64>(),
        round in 0u64..1000,
    ) {
        let p = protocol(protocol_ix);
        let n = boundary_n(n_ix, jitter);
        let old = state(n, support);
        let mut batched = vec![0; n];
        let mut reference = vec![0; n];
        dense::step_seq(&old, &mut batched, p.as_ref(), seed, round);
        dense::step_seq_reference(&old, &mut reference, p.as_ref(), seed, round);
        prop_assert_eq!(batched, reference, "k = {}, n = {}", p.samples(), n);
    }

    #[test]
    fn uniform_par_equals_scalar_reference(
        protocol_ix in 0usize..3,
        threads in 2usize..9,
        jitter in 0usize..(4 * KERNEL_BLOCK),
        seed in any::<u64>(),
        round in 0u64..1000,
    ) {
        let p = protocol(protocol_ix);
        // Above the 4096 sequential-fallback floor so chunking (and with
        // it nonzero block offsets) actually happens.
        let n = 4096 + jitter;
        let old = state(n, 37);
        let mut batched = vec![0; n];
        let mut reference = vec![0; n];
        dense::step_par(threads, &old, &mut batched, p.as_ref(), seed, round);
        dense::step_seq_reference(&old, &mut reference, p.as_ref(), seed, round);
        prop_assert_eq!(batched, reference, "k = {}, threads = {}", p.samples(), threads);
    }

    #[test]
    fn sampled_batched_equals_scalar_reference(
        protocol_ix in 0usize..3,
        n_ix in 0usize..6,
        jitter in 0usize..(2 * KERNEL_BLOCK),
        support in 2u32..300,
        seed in any::<u64>(),
        round in 0u64..1000,
    ) {
        let p = protocol(protocol_ix);
        let n = boundary_n(n_ix, jitter);
        let old = state(n, support);
        let bins = bins_of(&old);
        let mut batched = vec![0; n];
        let mut reference = vec![0; n];
        dense::step_seq_with_loads(&old, &mut batched, p.as_ref(), seed, round, &bins);
        dense::step_seq_with_loads_reference(
            &old, &mut reference, p.as_ref(), seed, round, &bins,
        );
        prop_assert_eq!(batched, reference, "k = {}, n = {}", p.samples(), n);
    }

    #[test]
    fn sampled_par_equals_seq(
        protocol_ix in 0usize..3,
        threads in 2usize..9,
        jitter in 0usize..(4 * KERNEL_BLOCK),
        seed in any::<u64>(),
    ) {
        let p = protocol(protocol_ix);
        let n = 4096 + jitter;
        let old = state(n, 19);
        let bins = bins_of(&old);
        let mut par = vec![0; n];
        let mut reference = vec![0; n];
        dense::step_par_with_loads(threads, &old, &mut par, p.as_ref(), seed, 3, &bins);
        dense::step_seq_with_loads_reference(&old, &mut reference, p.as_ref(), seed, 3, &bins);
        prop_assert_eq!(par, reference, "k = {}, threads = {}", p.samples(), threads);
    }

    #[test]
    fn partial_batched_equals_scalar_reference(
        protocol_ix in 0usize..3,
        n_ix in 0usize..6,
        jitter in 0usize..(2 * KERNEL_BLOCK),
        update_prob in 0.0f64..=1.0,
        seed in any::<u64>(),
        round in 0u64..1000,
    ) {
        let p = protocol(protocol_ix);
        let n = boundary_n(n_ix, jitter);
        let old = state(n, 23);
        let mut batched = vec![0; n];
        let mut reference = vec![0; n];
        dense::step_partial(1, &old, &mut batched, p.as_ref(), seed, round, update_prob);
        dense::step_partial_reference(&old, &mut reference, p.as_ref(), seed, round, update_prob);
        prop_assert_eq!(batched, reference, "k = {}, α = {}", p.samples(), update_prob);
    }

    #[test]
    fn partial_par_equals_scalar_reference(
        threads in 2usize..9,
        jitter in 0usize..(4 * KERNEL_BLOCK),
        update_prob in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let n = 4096 + jitter;
        let old = state(n, 23);
        let mut par = vec![0; n];
        let mut reference = vec![0; n];
        dense::step_partial(threads, &old, &mut par, &MedianRule, seed, 2, update_prob);
        dense::step_partial_reference(&old, &mut reference, &MedianRule, seed, 2, update_prob);
        prop_assert_eq!(par, reference, "threads = {}", threads);
    }

    #[test]
    fn dirty_reused_sampler_equals_fresh_build(
        protocol_ix in 0usize..3,
        support_a in 2u32..200,
        support_b in 2u32..200,
        seed in any::<u64>(),
    ) {
        // A sampler dirtied by a rebuild of a *different* shape must, after
        // rebuilding for the target bins, draw exactly like a sampler (and
        // the per-round throwaway wrapper) built fresh for those bins.
        let p = protocol(protocol_ix);
        let n = KERNEL_BLOCK + 513;
        let old = state(n, support_b);
        let bins = bins_of(&old);

        let mut reused = LoadSampler::new();
        let other = state(2 * n, support_a);
        reused.rebuild(bins_of(&other), 2 * n as u64);
        reused.rebuild(bins.iter().copied(), n as u64);

        let mut fresh = LoadSampler::new();
        fresh.rebuild(bins.iter().copied(), n as u64);

        let mut via_reused = vec![0; n];
        let mut via_fresh = vec![0; n];
        let mut via_wrapper = vec![0; n];
        dense::step_seq_sampled(&old, &mut via_reused, p.as_ref(), seed, 1, &reused);
        dense::step_seq_sampled(&old, &mut via_fresh, p.as_ref(), seed, 1, &fresh);
        dense::step_seq_with_loads(&old, &mut via_wrapper, p.as_ref(), seed, 1, &bins);
        prop_assert_eq!(&via_reused, &via_fresh);
        prop_assert_eq!(&via_reused, &via_wrapper);
    }
}

//! Property-based tests for the dynamics core.

use proptest::prelude::*;
use stabcon_core::adversary::{AdversarySpec, Corruptor, HistCorruptor};
use stabcon_core::engine::{dense, hist};
use stabcon_core::histogram::Histogram;
use stabcon_core::init::InitialCondition;
use stabcon_core::ndim::{median3_nd, run_nd};
use stabcon_core::protocol::{KMedianRule, MedianRule};
use stabcon_core::value::{median3, ValueSet};
use stabcon_util::rng::Xoshiro256pp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- configuration/histogram agreement ----------------------------------

    #[test]
    fn histogram_and_config_observables_agree(values in prop::collection::vec(0u32..20, 1..200)) {
        let config = stabcon_core::config::Config::new(values);
        let h = Histogram::from_config(&config);
        prop_assert_eq!(h.n() as usize, config.n());
        prop_assert_eq!(h.support_size(), config.support_size());
        prop_assert_eq!(h.plurality(), config.plurality());
        prop_assert_eq!(h.median_value(), config.median_value());
        prop_assert_eq!(h.consensus_value(), config.consensus_value());
        prop_assert_eq!(h.imbalance(), config.imbalance());
        for v in 0..20u32 {
            prop_assert_eq!(h.disagreement_with(v), config.disagreement_with(v));
        }
    }

    // --- engines -------------------------------------------------------------

    #[test]
    fn k_median_engine_never_invents(values in prop::collection::vec(0u32..9, 4..100),
                                     k in 1usize..6, seed in any::<u64>()) {
        let rule = KMedianRule::new(k);
        let mut new = vec![0u32; values.len()];
        dense::step_seq(&values, &mut new, &rule, seed, 0);
        for v in &new {
            prop_assert!(values.contains(v));
        }
    }

    #[test]
    fn hist_step_keeps_values_sorted_unique(loads in prop::collection::vec(1u64..500, 1..10),
                                            seed in any::<u64>()) {
        let pairs: Vec<(u32, u64)> = loads.iter().enumerate().map(|(v, &c)| (v as u32 * 3, c)).collect();
        let h = Histogram::new(&pairs);
        let mut rng = Xoshiro256pp::seed(seed);
        let next = hist::step(&h, &mut rng);
        let bins = next.bins();
        for w in bins.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "values must stay sorted/unique");
        }
        for &(_, c) in bins {
            prop_assert!(c > 0, "zero bins must be dropped");
        }
    }

    #[test]
    fn partial_step_changes_subset_of_full(values in prop::collection::vec(0u32..6, 16..128),
                                           seed in any::<u64>()) {
        // α = 0: identity.
        let mut frozen = vec![0u32; values.len()];
        dense::step_partial(1, &values, &mut frozen, &MedianRule, seed, 0, 1e-12);
        let identical = frozen.iter().zip(&values).filter(|(a, b)| a == b).count();
        prop_assert!(identical >= values.len() - 1, "α≈0 must freeze almost surely");
    }

    // --- adversary enforcement -----------------------------------------------

    #[test]
    fn every_adversary_respects_budget_and_set(
        values in prop::collection::vec(0u32..8, 8..120),
        budget in 0u64..16,
        seed in any::<u64>(),
        which in 0usize..5,
    ) {
        let specs = [
            AdversarySpec::Random,
            AdversarySpec::Balancer,
            AdversarySpec::Reviver { revive_at: 2 },
            AdversarySpec::MedianPusher,
            AdversarySpec::Stubborn,
        ];
        let set = ValueSet::from_values(&values);
        let mut adv = specs[which].build();
        let mut rng = Xoshiro256pp::seed(seed);
        let mut state = values.clone();
        for round in 0..4u64 {
            let before = state.clone();
            {
                let mut c = Corruptor::new(&mut state, &set, budget);
                adv.corrupt(round, &mut c, &mut rng);
            }
            let changed = state.iter().zip(&before).filter(|(a, b)| a != b).count() as u64;
            prop_assert!(changed <= budget,
                "{:?} changed {} > budget {}", specs[which], changed, budget);
            for v in &state {
                prop_assert!(set.contains(*v), "{:?} wrote {}", specs[which], v);
            }
        }
    }

    #[test]
    fn hist_corruptor_conserves_population(loads in prop::collection::vec(1u64..100, 2..8),
                                           budget in 0u64..50,
                                           from in 0usize..8, to in 0usize..8) {
        let pairs: Vec<(u32, u64)> = loads.iter().enumerate().map(|(v, &c)| (v as u32, c)).collect();
        let set = ValueSet::from_values(&pairs.iter().map(|&(v, _)| v).collect::<Vec<_>>());
        let total: u64 = loads.iter().sum();
        let mut working = pairs.clone();
        let moved = {
            let mut c = HistCorruptor::new(&mut working, &set, budget);
            c.move_balls(from as u32, to as u32, 30)
        };
        prop_assert!(moved <= budget);
        let after: u64 = working.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(after, total, "population changed");
    }

    // --- d-dimensional extension ---------------------------------------------

    #[test]
    fn nd_median_is_componentwise(a in prop::collection::vec(0u32..100, 3),
                                  b in prop::collection::vec(0u32..100, 3),
                                  c in prop::collection::vec(0u32..100, 3)) {
        let pa = [a[0], a[1], a[2]];
        let pb = [b[0], b[1], b[2]];
        let pc = [c[0], c[1], c[2]];
        let m = median3_nd(&pa, &pb, &pc);
        for d in 0..3 {
            prop_assert_eq!(m[d], median3(pa[d], pb[d], pc[d]));
        }
    }

    #[test]
    fn nd_coordinate_validity_always_holds(seed in any::<u64>(), side in 2u32..4) {
        let n = 128usize;
        let init: Vec<[u32; 2]> = (0..n)
            .map(|i| [(i as u32) % side, (i as u32 / side) % side])
            .collect();
        let r = run_nd(&init, 400, seed);
        prop_assert!(r.winner_coordinate_valid);
        for d in 0..2 {
            prop_assert!(r.winner[d] < side);
        }
    }

    // --- runner invariants -----------------------------------------------------

    #[test]
    fn trajectory_support_monotone_without_adversary(seed in any::<u64>(), m in 2u32..8) {
        use stabcon_core::runner::SimSpec;
        let spec = SimSpec::new(256)
            .init(InitialCondition::UniformRandom { m })
            .record_trajectory(true);
        let r = spec.run_seeded(seed);
        let traj = r.trajectory.expect("requested");
        for w in traj.windows(2) {
            prop_assert!(w[1].support <= w[0].support,
                "support grew without adversary: {:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn protocol_combine_total_for_all_sample_counts(own in any::<u32>(),
                                                    samples in prop::collection::vec(any::<u32>(), 8)) {
        // Every protocol must accept exactly its declared arity without
        // panicking, for arbitrary u32 values (no overflow).
        use stabcon_core::protocol::ProtocolSpec;
        for spec in [ProtocolSpec::Median, ProtocolSpec::Min, ProtocolSpec::Max,
                     ProtocolSpec::Mean, ProtocolSpec::Majority, ProtocolSpec::Voter,
                     ProtocolSpec::KMedian(1), ProtocolSpec::KMedian(8)] {
            let p = spec.build();
            let _ = p.combine(own, &samples[..p.samples()]);
        }
    }
}

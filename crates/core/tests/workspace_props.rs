//! Workspace-reuse bit-identity: a trial run through a **dirty, reused**
//! [`TrialWorkspace`] must produce a [`RunResult`] bit-identical to a fresh
//! allocation, across engines × protocols × trajectory recording — no
//! matter what shape (population size, maintainer kind, engine) the
//! workspace ran before.
//!
//! This is the contract that lets the campaign scheduler hold one
//! workspace per persistent worker and stream arbitrary cells through it.

use proptest::prelude::*;
use stabcon_core::adversary::AdversarySpec;
use stabcon_core::engine::{EngineSpec, MessageConfig, Rejoin, ScenarioSpec};
use stabcon_core::init::InitialCondition;
use stabcon_core::protocol::ProtocolSpec;
use stabcon_core::runner::SimSpec;
use stabcon_core::workspace::TrialWorkspace;

/// Every network fault axis at once: the cached message engine must carry
/// delay rings, fault bitmaps, and in-flight state across checkouts.
fn hostile_scenario() -> ScenarioSpec {
    ScenarioSpec::clean()
        .with_latency(1, 2)
        .with_drop_per_mille(50)
        .with_partition(400, 2, 20)
        .with_churn(8, 3, 18, Rejoin::Adversarial)
        .with_byzantine(4)
}

fn engine(ix: usize) -> EngineSpec {
    match ix {
        0 => EngineSpec::DenseSeq,
        1 => EngineSpec::DensePar { threads: 2 },
        2 => EngineSpec::Adaptive {
            threads: 2,
            handoff_support: 8,
        },
        3 => EngineSpec::Message(MessageConfig::default()),
        _ => EngineSpec::Message(MessageConfig {
            scenario: hostile_scenario(),
            ..MessageConfig::default()
        }),
    }
}

fn protocol(ix: usize) -> ProtocolSpec {
    match ix {
        0 => ProtocolSpec::Median,
        1 => ProtocolSpec::Min,
        2 => ProtocolSpec::Mean, // value-inventing → tree maintainer
        _ => ProtocolSpec::KMedian(5),
    }
}

fn spec(engine_ix: usize, protocol_ix: usize, n: usize, record: bool) -> SimSpec {
    SimSpec::new(n)
        .init(InitialCondition::UniformRandom { m: 6 })
        .protocol(protocol(protocol_ix))
        .engine(engine(engine_ix))
        .max_rounds(200)
        .record_trajectory(record)
}

/// A differently shaped trial that leaves every buffer dirty: different
/// population, two-bin universe, an adversary (touches the corruption
/// path), trajectory on, and — on a different engine — a cached message
/// engine or handoff histogram of the wrong size.
fn dirty(ws: &mut TrialWorkspace, salt: u64) {
    let engines = [
        EngineSpec::Adaptive {
            threads: 1,
            handoff_support: 4,
        },
        EngineSpec::Message(MessageConfig::default()),
        // Leave a *faulted* cached engine behind: live delay rings and
        // fault bitmaps from a different scenario must not leak into the
        // next checkout.
        EngineSpec::Message(MessageConfig {
            scenario: hostile_scenario(),
            ..MessageConfig::default()
        }),
        EngineSpec::DenseSeq,
    ];
    for (i, &e) in engines.iter().enumerate() {
        let sim = SimSpec::new(96 + 32 * i)
            .init(InitialCondition::TwoBins { left: 48 })
            .engine(e)
            .max_rounds(40)
            .record_trajectory(true);
        let r = sim.run_seeded_into(salt ^ i as u64, ws);
        ws.recycle(r);
    }
    // Dirty the tree maintainer too (mean rule → IncrementalHistogram).
    let sim = SimSpec::new(64)
        .init(InitialCondition::AllDistinct)
        .protocol(ProtocolSpec::Mean)
        .max_rounds(20);
    let r = sim.run_seeded_into(salt, ws);
    ws.recycle(r);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dirty_workspace_is_bit_identical_to_fresh(
        engine_ix in 0usize..5,
        protocol_ix in 0usize..4,
        n in 64usize..512,
        record in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let sim = spec(engine_ix, protocol_ix, n, record);
        let fresh = sim.run_seeded(seed);

        let mut ws = TrialWorkspace::new();
        dirty(&mut ws, seed.wrapping_add(1));
        let reused = sim.run_seeded_into(seed, &mut ws);
        prop_assert_eq!(&reused, &fresh, "engine {} protocol {}", engine_ix, protocol_ix);

        // Back-to-back reuse of the *same* shape must also be stable.
        let again = sim.run_seeded_into(seed, &mut ws);
        prop_assert_eq!(&again, &fresh);
    }

    #[test]
    fn adversarial_trials_reuse_cleanly(
        n in 128usize..512,
        seed in any::<u64>(),
    ) {
        let t = (n as f64).sqrt() as u64;
        let sim = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .adversary(AdversarySpec::Random, t)
            .max_rounds(150)
            .full_horizon(true)
            .record_trajectory(true);
        let fresh = sim.run_seeded(seed);
        let mut ws = TrialWorkspace::new();
        dirty(&mut ws, seed ^ 0xD1);
        let reused = sim.run_seeded_into(seed, &mut ws);
        prop_assert_eq!(&reused, &fresh);
    }
}

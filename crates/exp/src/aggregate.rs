//! Streaming per-cell aggregation.
//!
//! A campaign cell may run millions of trials; materializing a
//! `Vec<RunResult>` per cell (the pre-campaign pattern) costs memory
//! proportional to the trial count and loses everything on interruption.
//! Instead each trial is reduced to a tiny [`TrialMetrics`] the moment it
//! finishes, and folded — **in trial order** — into a [`CellAggregate`]
//! built on exact [`SparseCounts`] sketches. Because the sketches are
//! lossless for integer samples and the fold order is the global trial
//! order, the aggregate is bit-identical to the materialized computation
//! for any thread count and any chunking.
//!
//! Extra metrics beyond the universal hitting-time/winner set come from a
//! [`TrialObserver`] (see [`crate::observer`]): per-trial values are reduced
//! worker-side into [`TrialExtras`] channels and folded here — integer
//! channels into [`SparseCounts`], float channels into trial-order
//! [`FloatMoments`].

use stabcon_core::runner::RunResult;
use stabcon_core::value::Value;
use stabcon_net::RoundMetrics;
use stabcon_obs::{Counter, Gauge, WorkerHandle};
use stabcon_util::stats::SparseCounts;

use crate::metrics::{ConvergenceStats, HitMetric};
use crate::observer::{FloatMoments, TrialChannel, TrialExtras, TrialObserver};

/// Everything the aggregator keeps from one trial.
///
/// Network-fault detail is deliberately *not* stored here: a message-engine
/// trial's cumulative [`RoundMetrics`] — `requests`, `delivered`, `dropped`,
/// and the fault-injection fields `link_dropped`, `partition_dropped`,
/// `forged`, and `in_flight` (peak) — rides through two side channels
/// instead. [`TrialObserver::NetTotals`] folds a subset into observer
/// channels for the report, and [`fold_net_totals`] is the single place the
/// full set maps into the telemetry registry's `net_*` counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialMetrics {
    /// First full-consensus round, if reached.
    pub consensus: Option<u64>,
    /// Almost-stable round with consensus fallback (the
    /// [`HitMetric::AlmostStable`] value).
    pub almost: Option<u64>,
    /// The winning value.
    pub winner: Value,
    /// Whether the winner was an initial value.
    pub winner_valid: bool,
    /// Protocol rounds executed.
    pub rounds_executed: u64,
    /// The observer's extra channels (empty for [`TrialObserver::None`]).
    pub extras: TrialExtras,
}

impl TrialMetrics {
    /// Reduce one run result, capturing the observer's extra channels.
    ///
    /// Never panics: a trajectory-needing observer on a run that did not
    /// record a trajectory emits no-sample sentinels (which the sketches
    /// skip) instead of the panic this path used to raise.
    pub fn capture(r: &RunResult, observer: TrialObserver) -> Self {
        Self {
            consensus: r.consensus_round,
            almost: r.almost_stable_round.or(r.consensus_round),
            winner: r.winner,
            winner_valid: r.winner_valid,
            rounds_executed: r.rounds_executed,
            extras: observer.capture(r),
        }
    }
}

/// Fold one message-engine trial's cumulative network totals into the
/// telemetry registry.
///
/// This is the **single** mapping from [`RoundMetrics`] to the registry's
/// `net_*` slots — every fault-injection field PR'd into the network layer
/// (`link_dropped`, `partition_dropped`, `forged`, `in_flight`) lands here,
/// so a new `RoundMetrics` field only needs one edit (plus its counter) to
/// reach the telemetry sink. `in_flight` is a per-round peak, so it folds
/// into a max-gauge rather than a counter.
pub fn fold_net_totals(handle: &WorkerHandle<'_>, totals: &RoundMetrics) {
    handle.add(Counter::NetRequests, totals.requests);
    handle.add(Counter::NetDelivered, totals.delivered);
    handle.add(Counter::NetDropped, totals.dropped);
    handle.add(Counter::NetLinkDropped, totals.link_dropped);
    handle.add(Counter::NetPartitionDropped, totals.partition_dropped);
    handle.add(Counter::NetForged, totals.forged);
    handle.gauge_max(Gauge::NetInFlightPeak, totals.in_flight);
}

/// One extra-metric channel's cell-level aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelAggregate {
    /// Exact distribution sketch of an integer channel.
    Int(SparseCounts),
    /// Trial-order moments of a float channel.
    Float(FloatMoments),
}

impl ChannelAggregate {
    fn for_trial_channel(ch: &TrialChannel) -> Self {
        match ch {
            TrialChannel::Int(_) => ChannelAggregate::Int(SparseCounts::new()),
            TrialChannel::Float(_) => ChannelAggregate::Float(FloatMoments::new()),
        }
    }

    fn fold(&mut self, ch: &TrialChannel) {
        match (self, ch) {
            (ChannelAggregate::Int(counts), TrialChannel::Int(v)) => {
                if let Some(v) = v {
                    counts.push(*v);
                }
            }
            (ChannelAggregate::Float(moments), TrialChannel::Float(m)) => {
                moments.merge(m);
            }
            _ => panic!("observer channel kind changed mid-cell"),
        }
    }

    /// Samples folded into this channel.
    pub fn count(&self) -> u64 {
        match self {
            ChannelAggregate::Int(c) => c.count(),
            ChannelAggregate::Float(m) => m.count,
        }
    }

    /// Channel mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        match self {
            ChannelAggregate::Int(c) => c.mean(),
            ChannelAggregate::Float(m) => m.mean(),
        }
    }

    /// Channel maximum (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        match self {
            ChannelAggregate::Int(c) => c.max().map(|v| v as f64),
            ChannelAggregate::Float(m) => (!m.is_empty()).then_some(m.max),
        }
    }

    /// Channel minimum (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        match self {
            ChannelAggregate::Int(c) => c.min().map(|v| v as f64),
            ChannelAggregate::Float(m) => (!m.is_empty()).then_some(m.min),
        }
    }

    /// The integer sketch, if this is an integer channel.
    pub fn as_counts(&self) -> Option<&SparseCounts> {
        match self {
            ChannelAggregate::Int(c) => Some(c),
            ChannelAggregate::Float(_) => None,
        }
    }

    /// The float moments, if this is a float channel.
    pub fn as_moments(&self) -> Option<&FloatMoments> {
        match self {
            ChannelAggregate::Float(m) => Some(m),
            ChannelAggregate::Int(_) => None,
        }
    }
}

/// One chunk's worker-side partial aggregate: everything that merges
/// exactly (counters, [`SparseCounts`] sketches, integer channels) is
/// folded on the worker; float channels — whose f64 sums are sensitive to
/// association — are carried as per-trial rows and folded by
/// [`CellAggregate::merge`] in global trial order. The partial a chunk
/// ships back to the scheduler is therefore compact (no
/// `Vec<TrialMetrics>`) without giving up bit-reproducibility across
/// thread counts and chunk sizes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkAggregate {
    ints: CellAggregate,
    /// Per-trial extras in trial order; empty unless constructed with
    /// `collect_floats` (i.e. the observer declares a float channel).
    float_rows: Vec<TrialExtras>,
    collect_floats: bool,
}

impl ChunkAggregate {
    /// Empty partial. Pass `collect_floats = true` iff the cell's observer
    /// declares a float channel (see
    /// [`crate::observer::TrialObserver::has_float_channels`]).
    pub fn new(collect_floats: bool) -> Self {
        Self::with_capacity(collect_floats, 0)
    }

    /// [`ChunkAggregate::new`] with the float-row buffer sized for
    /// `trials` up front, so a float-observing worker batches its whole
    /// chunk into one allocation instead of growing the row vector trial
    /// by trial. Rows still fold in trial order at the scheduler, so float
    /// aggregates stay bit-identical.
    pub fn with_capacity(collect_floats: bool, trials: usize) -> Self {
        Self {
            ints: CellAggregate::new(),
            float_rows: Vec::with_capacity(if collect_floats { trials } else { 0 }),
            collect_floats,
        }
    }

    /// Fold one trial in (call in trial order within the chunk).
    pub fn push(&mut self, m: &TrialMetrics) {
        self.ints.push_impl(m, self.collect_floats);
        if self.collect_floats {
            self.float_rows.push(m.extras);
        }
    }

    /// Trials folded into this partial.
    pub fn trials(&self) -> u64 {
        self.ints.trials
    }
}

/// Streaming aggregate of one campaign cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellAggregate {
    trials: u64,
    valid: u64,
    rounds_total: u64,
    consensus: SparseCounts,
    almost: SparseCounts,
    winners: SparseCounts,
    /// Observer channels, sized lazily from the first trial (every trial
    /// of a cell shares one observer, so the layout is constant).
    extras: Vec<ChannelAggregate>,
}

impl CellAggregate {
    /// Empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one trial in. **Call in global trial order** — the scheduler
    /// guarantees this; it is what makes aggregates reproducible across
    /// thread counts.
    pub fn push(&mut self, m: &TrialMetrics) {
        self.push_impl(m, false);
    }

    /// [`CellAggregate::push`] with float channels optionally left unfolded
    /// (the [`ChunkAggregate`] path keeps those per-trial instead).
    fn push_impl(&mut self, m: &TrialMetrics, skip_floats: bool) {
        self.trials += 1;
        self.valid += m.winner_valid as u64;
        self.rounds_total += m.rounds_executed;
        if let Some(r) = m.consensus {
            self.consensus.push(r);
        }
        if let Some(r) = m.almost {
            self.almost.push(r);
        }
        self.winners.push(m.winner as u64);
        if self.extras.is_empty() && !m.extras.is_empty() {
            self.extras = m
                .extras
                .channels()
                .iter()
                .map(ChannelAggregate::for_trial_channel)
                .collect();
        }
        assert_eq!(
            self.extras.len(),
            m.extras.len(),
            "observer channel count changed mid-cell"
        );
        for (agg, ch) in self.extras.iter_mut().zip(m.extras.channels()) {
            if skip_floats && matches!(ch, TrialChannel::Float(_)) {
                continue;
            }
            agg.fold(ch);
        }
    }

    /// Fold a chunk's partial in. Merging partials **in chunk order** is
    /// bit-identical to pushing the same trials sequentially: the counters
    /// and [`SparseCounts`] sketches merge exactly (integer addition is
    /// associative), and float channels never live in the partial's folded
    /// half — the chunk carries them per trial and this method folds them
    /// here, in global trial order, because f64 addition is not
    /// associative.
    pub fn merge(&mut self, part: &ChunkAggregate) {
        let o = &part.ints;
        if o.trials == 0 {
            return;
        }
        self.trials += o.trials;
        self.valid += o.valid;
        self.rounds_total += o.rounds_total;
        self.consensus.merge(&o.consensus);
        self.almost.merge(&o.almost);
        self.winners.merge(&o.winners);
        if self.extras.is_empty() && !o.extras.is_empty() {
            self.extras = o
                .extras
                .iter()
                .map(|ch| match ch {
                    ChannelAggregate::Int(_) => ChannelAggregate::Int(SparseCounts::new()),
                    ChannelAggregate::Float(_) => ChannelAggregate::Float(FloatMoments::new()),
                })
                .collect();
        }
        assert_eq!(
            self.extras.len(),
            o.extras.len(),
            "observer channel count changed mid-cell"
        );
        for (mine, theirs) in self.extras.iter_mut().zip(&o.extras) {
            match (mine, theirs) {
                (ChannelAggregate::Int(a), ChannelAggregate::Int(b)) => a.merge(b),
                // Non-empty only when the partial was folded without
                // float-row collection; merge order is then the caller's
                // responsibility.
                (ChannelAggregate::Float(a), ChannelAggregate::Float(b)) => a.merge(b),
                _ => panic!("observer channel kind changed mid-cell"),
            }
        }
        for row in &part.float_rows {
            for (agg, ch) in self.extras.iter_mut().zip(row.channels()) {
                if let (ChannelAggregate::Float(moments), TrialChannel::Float(m)) = (agg, ch) {
                    moments.merge(m);
                }
            }
        }
    }

    /// Trials folded so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Trials whose winner was an initial value.
    pub fn valid(&self) -> u64 {
        self.valid
    }

    /// Fraction of trials with a valid winner (0 when empty).
    pub fn validity_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.valid as f64 / self.trials as f64
        }
    }

    /// Total protocol rounds executed across trials.
    pub fn rounds_total(&self) -> u64 {
        self.rounds_total
    }

    /// Hitting-time sketch for the chosen metric.
    pub fn hits(&self, metric: HitMetric) -> &SparseCounts {
        match metric {
            HitMetric::Consensus => &self.consensus,
            HitMetric::AlmostStable => &self.almost,
        }
    }

    /// Winner-value sketch.
    pub fn winners(&self) -> &SparseCounts {
        &self.winners
    }

    /// Observer channel aggregates, in the observer's declaration order
    /// (empty when no observer was attached or no trial was folded).
    pub fn extras(&self) -> &[ChannelAggregate] {
        &self.extras
    }

    /// Integer sketch of observer channel `i` (`None` if out of range or a
    /// float channel).
    pub fn int_extra(&self, i: usize) -> Option<&SparseCounts> {
        self.extras.get(i).and_then(ChannelAggregate::as_counts)
    }

    /// Float moments of observer channel `i` (`None` if out of range or an
    /// integer channel).
    pub fn float_extra(&self, i: usize) -> Option<&FloatMoments> {
        self.extras.get(i).and_then(ChannelAggregate::as_moments)
    }

    /// The classic convergence summary under the chosen metric —
    /// bit-identical to `ConvergenceStats::from_results` on the
    /// materialized batch.
    pub fn convergence(&self, metric: HitMetric) -> ConvergenceStats {
        let counts = self.hits(metric);
        ConvergenceStats {
            trials: self.trials,
            hits: counts.count(),
            timeouts: self.trials - counts.count(),
            rounds: counts.quantiles(),
            validity_rate: self.validity_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_core::init::InitialCondition;
    use stabcon_core::runner::SimSpec;
    use stabcon_util::rng::derive_seed;

    fn run_batch(n: usize, trials: u64, seed: u64) -> Vec<RunResult> {
        let spec = SimSpec::new(n).init(InitialCondition::UniformRandom { m: 5 });
        (0..trials)
            .map(|i| spec.run_seeded(derive_seed(seed, i)))
            .collect()
    }

    #[test]
    fn streaming_equals_materialized() {
        let results = run_batch(512, 24, 0xA66);
        let mut agg = CellAggregate::new();
        for r in &results {
            agg.push(&TrialMetrics::capture(r, TrialObserver::None));
        }
        for metric in [HitMetric::Consensus, HitMetric::AlmostStable] {
            let streamed = agg.convergence(metric);
            let materialized = ConvergenceStats::from_results(&results, metric);
            assert_eq!(streamed.trials, materialized.trials);
            assert_eq!(streamed.hits, materialized.hits);
            assert_eq!(streamed.rounds, materialized.rounds, "{metric:?}");
            assert!(streamed.validity_rate == materialized.validity_rate);
        }
        assert_eq!(agg.winners().count(), 24);
        assert!(agg.extras().is_empty());
    }

    #[test]
    fn last_unsettled_extraction() {
        let spec = SimSpec::new(128)
            .init(InitialCondition::TwoBins { left: 64 })
            .record_trajectory(true);
        let r = spec.run_seeded(3);
        let m = TrialMetrics::capture(&r, TrialObserver::LastUnsettledRound);
        let [TrialChannel::Int(Some(last))] = m.extras.channels() else {
            panic!("one integer sample expected: {:?}", m.extras);
        };
        // The run reached consensus, so the last unsettled round is the one
        // just before the consensus hit.
        assert_eq!(last + 1, r.consensus_round.expect("converged"));
    }

    #[test]
    fn last_unsettled_without_trajectory_is_a_skipped_sentinel() {
        // This used to panic ("trajectory recording required"); now the
        // trial simply contributes no sample to the sketch.
        let r = SimSpec::new(64)
            .init(InitialCondition::TwoBins { left: 32 })
            .run_seeded(1);
        let m = TrialMetrics::capture(&r, TrialObserver::LastUnsettledRound);
        assert_eq!(m.extras.channels(), &[TrialChannel::Int(None)]);
        let mut agg = CellAggregate::new();
        agg.push(&m);
        assert_eq!(agg.trials(), 1);
        let sketch = agg.int_extra(0).expect("channel allocated");
        assert!(sketch.is_empty(), "sentinel must not be folded");
    }

    #[test]
    fn last_unsettled_on_never_unsettled_run_is_round_zero() {
        // A single-bin start never has support > 1: the metric degrades to
        // round 0 rather than panicking or skewing the sketch.
        let r = SimSpec::new(64)
            .init(InitialCondition::TwoBins { left: 0 })
            .record_trajectory(true)
            .run_seeded(2);
        let m = TrialMetrics::capture(&r, TrialObserver::LastUnsettledRound);
        assert_eq!(m.extras.channels(), &[TrialChannel::Int(Some(0))]);
    }

    #[test]
    fn observer_channels_fold_into_the_aggregate() {
        let n = 2048usize;
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 - 64 })
            .max_rounds(1)
            .record_trajectory(true);
        let mut agg = CellAggregate::new();
        for i in 0..6 {
            let r = spec.run_seeded(derive_seed(9, i));
            agg.push(&TrialMetrics::capture(&r, TrialObserver::DriftGrowth));
        }
        let ratio = agg.float_extra(0).expect("ratio channel");
        let growth = agg.float_extra(1).expect("growth channel");
        assert_eq!(ratio.count, 6, "one sample per one-round trial");
        assert_eq!(growth.count, 6);
        assert!(ratio.mean() > 0.0);
        assert!((0.0..=1.0).contains(&growth.mean()));
    }
}

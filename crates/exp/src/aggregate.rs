//! Streaming per-cell aggregation.
//!
//! A campaign cell may run millions of trials; materializing a
//! `Vec<RunResult>` per cell (the pre-campaign pattern) costs memory
//! proportional to the trial count and loses everything on interruption.
//! Instead each trial is reduced to a tiny [`TrialMetrics`] the moment it
//! finishes, and folded — **in trial order** — into a [`CellAggregate`]
//! built on exact [`SparseCounts`] sketches. Because the sketches are
//! lossless for integer samples and the fold order is the global trial
//! order, the aggregate is bit-identical to the materialized computation
//! for any thread count and any chunking.

use stabcon_core::runner::RunResult;
use stabcon_core::value::Value;
use stabcon_util::stats::SparseCounts;

use crate::metrics::{ConvergenceStats, HitMetric};

/// An optional extra per-trial scalar, extracted worker-side (it may need
/// the trajectory, which is dropped with the `RunResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtraMetric {
    /// No extra metric.
    #[default]
    None,
    /// The last round in which more than one value was present (requires
    /// trajectory recording; the minimum-rule counterexample's metric).
    LastUnsettledRound,
}

/// Everything the aggregator keeps from one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialMetrics {
    /// First full-consensus round, if reached.
    pub consensus: Option<u64>,
    /// Almost-stable round with consensus fallback (the
    /// [`HitMetric::AlmostStable`] value).
    pub almost: Option<u64>,
    /// The winning value.
    pub winner: Value,
    /// Whether the winner was an initial value.
    pub winner_valid: bool,
    /// Protocol rounds executed.
    pub rounds_executed: u64,
    /// The extra scalar, when an [`ExtraMetric`] was requested.
    pub extra: Option<u64>,
}

impl TrialMetrics {
    /// Reduce one run result, computing the extra metric if requested.
    ///
    /// # Panics
    /// Panics if `extra` is [`ExtraMetric::LastUnsettledRound`] and the run
    /// did not record a trajectory.
    pub fn capture(r: &RunResult, extra: ExtraMetric) -> Self {
        let extra = match extra {
            ExtraMetric::None => None,
            ExtraMetric::LastUnsettledRound => Some(
                r.trajectory
                    .as_ref()
                    .expect("trajectory recording required")
                    .iter()
                    .filter(|obs| obs.support > 1)
                    .map(|obs| obs.round)
                    .max()
                    .unwrap_or(0),
            ),
        };
        Self {
            consensus: r.consensus_round,
            almost: r.almost_stable_round.or(r.consensus_round),
            winner: r.winner,
            winner_valid: r.winner_valid,
            rounds_executed: r.rounds_executed,
            extra,
        }
    }
}

/// Streaming aggregate of one campaign cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellAggregate {
    trials: u64,
    valid: u64,
    rounds_total: u64,
    consensus: SparseCounts,
    almost: SparseCounts,
    winners: SparseCounts,
    extra: SparseCounts,
}

impl CellAggregate {
    /// Empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one trial in. **Call in global trial order** — the scheduler
    /// guarantees this; it is what makes aggregates reproducible across
    /// thread counts.
    pub fn push(&mut self, m: &TrialMetrics) {
        self.trials += 1;
        self.valid += m.winner_valid as u64;
        self.rounds_total += m.rounds_executed;
        if let Some(r) = m.consensus {
            self.consensus.push(r);
        }
        if let Some(r) = m.almost {
            self.almost.push(r);
        }
        self.winners.push(m.winner as u64);
        if let Some(x) = m.extra {
            self.extra.push(x);
        }
    }

    /// Trials folded so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Trials whose winner was an initial value.
    pub fn valid(&self) -> u64 {
        self.valid
    }

    /// Fraction of trials with a valid winner (0 when empty).
    pub fn validity_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.valid as f64 / self.trials as f64
        }
    }

    /// Total protocol rounds executed across trials.
    pub fn rounds_total(&self) -> u64 {
        self.rounds_total
    }

    /// Hitting-time sketch for the chosen metric.
    pub fn hits(&self, metric: HitMetric) -> &SparseCounts {
        match metric {
            HitMetric::Consensus => &self.consensus,
            HitMetric::AlmostStable => &self.almost,
        }
    }

    /// Winner-value sketch.
    pub fn winners(&self) -> &SparseCounts {
        &self.winners
    }

    /// Extra-metric sketch (empty unless an [`ExtraMetric`] was captured).
    pub fn extra(&self) -> &SparseCounts {
        &self.extra
    }

    /// The classic convergence summary under the chosen metric —
    /// bit-identical to `ConvergenceStats::from_results` on the
    /// materialized batch.
    pub fn convergence(&self, metric: HitMetric) -> ConvergenceStats {
        let counts = self.hits(metric);
        ConvergenceStats {
            trials: self.trials,
            hits: counts.count(),
            timeouts: self.trials - counts.count(),
            rounds: counts.quantiles(),
            validity_rate: self.validity_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_core::init::InitialCondition;
    use stabcon_core::runner::SimSpec;
    use stabcon_util::rng::derive_seed;

    fn run_batch(n: usize, trials: u64, seed: u64) -> Vec<RunResult> {
        let spec = SimSpec::new(n).init(InitialCondition::UniformRandom { m: 5 });
        (0..trials)
            .map(|i| spec.run_seeded(derive_seed(seed, i)))
            .collect()
    }

    #[test]
    fn streaming_equals_materialized() {
        let results = run_batch(512, 24, 0xA66);
        let mut agg = CellAggregate::new();
        for r in &results {
            agg.push(&TrialMetrics::capture(r, ExtraMetric::None));
        }
        for metric in [HitMetric::Consensus, HitMetric::AlmostStable] {
            let streamed = agg.convergence(metric);
            let materialized = ConvergenceStats::from_results(&results, metric);
            assert_eq!(streamed.trials, materialized.trials);
            assert_eq!(streamed.hits, materialized.hits);
            assert_eq!(streamed.rounds, materialized.rounds, "{metric:?}");
            assert!(streamed.validity_rate == materialized.validity_rate);
        }
        assert_eq!(agg.winners().count(), 24);
    }

    #[test]
    fn last_unsettled_extraction() {
        let spec = SimSpec::new(128)
            .init(InitialCondition::TwoBins { left: 64 })
            .record_trajectory(true);
        let r = spec.run_seeded(3);
        let m = TrialMetrics::capture(&r, ExtraMetric::LastUnsettledRound);
        let last = m.extra.expect("extra captured");
        // The run reached consensus, so the last unsettled round is the one
        // just before the consensus hit.
        assert_eq!(last + 1, r.consensus_round.expect("converged"));
    }

    #[test]
    #[should_panic]
    fn last_unsettled_requires_trajectory() {
        let r = SimSpec::new(64)
            .init(InitialCondition::TwoBins { left: 32 })
            .run_seeded(1);
        TrialMetrics::capture(&r, ExtraMetric::LastUnsettledRound);
    }
}

//! The `stabcon` CLI: run, resume, and report experiment campaigns.
//!
//! ```text
//! stabcon campaign run    --preset figure1-small --out store.jsonl
//! stabcon campaign resume --preset figure1-small --out store.jsonl
//! stabcon campaign report --out store.jsonl [--format text|md|csv] [--timings]
//! stabcon telemetry check --out telemetry.jsonl
//! ```
//!
//! `run`/`resume` accept grid overrides (`--trials`, `--seed`, `--ns`,
//! `--name`) and execution knobs (`--threads`, `--chunk`, `--max-cells`,
//! `--progress`, `--telemetry PATH`). The store never records execution
//! knobs — telemetry is observation-only — so a campaign interrupted and
//! resumed at a different thread count (with or without telemetry) still
//! reproduces the uninterrupted store byte-for-byte. `resume` re-derives
//! the grid from the same spec flags and refuses a store whose header
//! fingerprint disagrees.
//!
//! `--progress` prints live lines (trials done, trials/s, worker spread,
//! chunk-cursor lag, ETA) to stderr; `--telemetry PATH` streams the same
//! snapshots plus per-cell phase profiles as JSONL (see
//! `stabcon_exp::telemetry` for the schema); either flag also prints the
//! final per-cell phase-profile table. `telemetry check` validates a sink
//! file against the schema (CI runs it on the smoke campaign's sink).

use std::path::PathBuf;
use std::process::ExitCode;

use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::presets::{preset, PRESET_NAMES};
use stabcon_exp::{report, store, telemetry};

struct Args {
    preset: String,
    out: PathBuf,
    format: String,
    threads: Option<usize>,
    chunk: Option<u64>,
    max_cells: Option<u64>,
    trials: Option<u64>,
    seed: Option<u64>,
    ns: Option<Vec<usize>>,
    name: Option<String>,
    progress: bool,
    telemetry: Option<PathBuf>,
    timings: bool,
}

fn usage() -> String {
    format!(
        "usage:\n  \
         stabcon campaign run    --out PATH [--preset NAME] [spec/exec flags]\n  \
         stabcon campaign resume --out PATH [--preset NAME] [spec/exec flags]\n  \
         stabcon campaign report --out PATH [--format text|md|csv] [--timings]\n  \
         stabcon telemetry check --out PATH\n\n\
         spec flags:  --preset NAME (one of {names})  --trials N  --seed N\n  \
                      --ns N,N,...  --name NAME\n\
         exec flags:  --threads N  --chunk N  --max-cells N\n\
         observability: --progress (live lines on stderr)\n  \
                      --telemetry PATH (JSONL snapshots + per-cell profiles)\n\
         report flags: --timings (join the store's timings sidecar)\n",
        names = PRESET_NAMES.join("|")
    )
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        preset: "smoke".into(),
        out: PathBuf::new(),
        format: "text".into(),
        threads: None,
        chunk: None,
        max_cells: None,
        trials: None,
        seed: None,
        ns: None,
        name: None,
        progress: false,
        telemetry: None,
        timings: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag}: missing value"))
        };
        match flag.as_str() {
            "--preset" => args.preset = value()?,
            "--out" => args.out = PathBuf::from(value()?),
            "--format" => args.format = value()?,
            "--threads" => args.threads = Some(parse_num(flag, &value()?)? as usize),
            "--chunk" => args.chunk = Some(parse_num(flag, &value()?)?),
            "--max-cells" => args.max_cells = Some(parse_num(flag, &value()?)?),
            "--trials" => args.trials = Some(parse_num(flag, &value()?)?),
            "--seed" => args.seed = Some(parse_num(flag, &value()?)?),
            "--name" => args.name = Some(value()?),
            "--progress" => args.progress = true,
            "--telemetry" => args.telemetry = Some(PathBuf::from(value()?)),
            "--timings" => args.timings = true,
            "--ns" => {
                let list = value()?
                    .split(',')
                    .map(|s| parse_num("--ns", s).map(|n| n as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                args.ns = Some(list);
            }
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
    }
    if args.out.as_os_str().is_empty() {
        return Err(format!("--out is required\n\n{}", usage()));
    }
    Ok(args)
}

fn parse_num(flag: &str, s: &str) -> Result<u64, String> {
    let (digits, radix) = match s.strip_prefix("0x") {
        Some(hex) => (hex, 16),
        None => (s, 10),
    };
    u64::from_str_radix(digits, radix).map_err(|e| format!("{flag}: bad number '{s}': {e}"))
}

fn build_spec(args: &Args) -> Result<CampaignSpec, String> {
    let mut spec = preset(&args.preset).ok_or_else(|| {
        format!(
            "unknown preset '{}' (expected one of {})",
            args.preset,
            PRESET_NAMES.join(", ")
        )
    })?;
    if let Some(t) = args.trials {
        spec.trials = t;
    }
    if let Some(s) = args.seed {
        spec.seed = s;
    }
    if let Some(ns) = &args.ns {
        spec.ns = ns.clone();
    }
    if let Some(name) = &args.name {
        spec.name = name.clone();
    }
    Ok(spec)
}

fn execute(args: &Args, resume: bool) -> Result<(), String> {
    let spec = build_spec(args)?;
    let mut cfg = RunConfig {
        resume,
        progress: args.progress,
        telemetry: args.telemetry.clone(),
        ..RunConfig::default()
    };
    if let Some(t) = args.threads {
        cfg.threads = t;
    }
    if let Some(c) = args.chunk {
        cfg.chunk = Some(c);
    }
    cfg.max_cells = args.max_cells;

    let start = std::time::Instant::now();
    let outcome = run_campaign(&spec, &args.out, &cfg)?;
    eprintln!(
        "campaign '{}': {} cells ({} run, {} skipped), {} trials in {:.2}s → {}{}",
        spec.name,
        outcome.cells_total,
        outcome.cells_run,
        outcome.cells_skipped,
        outcome.trials_run,
        start.elapsed().as_secs_f64(),
        outcome.store_path.display(),
        if outcome.complete() {
            ""
        } else {
            " (incomplete — `stabcon campaign resume` continues it)"
        }
    );
    if !outcome.profiles.is_empty() {
        eprint!("{}", telemetry::profile_table(&outcome.profiles).to_text());
    }
    Ok(())
}

fn report(args: &Args) -> Result<(), String> {
    let loaded = store::load(&args.out)?;
    let timings = args.timings.then(|| telemetry::load_timings(&args.out));
    let table = report::report_table_with_timings(&loaded, timings.as_ref());
    match args.format.as_str() {
        "text" => print!("{}", table.to_text()),
        "md" | "markdown" => print!("{}", table.to_markdown()),
        "csv" => print!("{}", table.to_csv()),
        other => return Err(format!("unknown format '{other}' (text|md|csv)")),
    }
    Ok(())
}

fn telemetry_check(args: &Args) -> Result<(), String> {
    let check = telemetry::check_telemetry(&args.out)?;
    println!(
        "{}: valid {} — {} snapshot(s), {} cell profile(s)",
        args.out.display(),
        telemetry::TELEMETRY_SCHEMA,
        check.snapshots,
        check.cell_profiles
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (noun, verb) = (
        argv.first().map(String::as_str),
        argv.get(1).map(String::as_str),
    );
    let result = match (noun, verb) {
        (Some("campaign"), Some(verb @ ("run" | "resume" | "report"))) => {
            match parse_args(&argv[2..]) {
                Ok(args) => match verb {
                    "run" => execute(&args, false),
                    "resume" => execute(&args, true),
                    _ => report(&args),
                },
                Err(e) => Err(e),
            }
        }
        (Some("telemetry"), Some("check")) => match parse_args(&argv[2..]) {
            Ok(args) => telemetry_check(&args),
            Err(e) => Err(e),
        },
        (Some("--help") | Some("-h") | None, _) => {
            print!("{}", usage());
            Ok(())
        }
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stabcon: {e}");
            ExitCode::from(2)
        }
    }
}

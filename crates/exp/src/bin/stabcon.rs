//! The `stabcon` CLI: run, resume, shard, merge, serve, and report
//! experiment campaigns.
//!
//! ```text
//! stabcon campaign run    --preset figure1-small --out store.jsonl
//! stabcon campaign resume --preset figure1-small --out store.jsonl
//! stabcon campaign merge  --preset figure1-small --out merged.jsonl --from a.jsonl --from b.jsonl
//! stabcon campaign report --out store.jsonl [--format text|md|csv] [--timings]
//! stabcon serve           --preset figure1-small --out store.jsonl --listen 0.0.0.0:7677
//! stabcon serve --queue   --out q.jsonl --listen 0.0.0.0:7677 --resume
//! stabcon work            --preset figure1-small --connect host:7677
//! stabcon work --any      --connect host:7677
//! stabcon submit          --preset figure1-small --connect host:7677 --client lab
//! stabcon status          --connect host:7677 [--campaign 2]
//! stabcon cancel          --connect host:7677 --campaign 2
//! stabcon chaos           --listen 127.0.0.1:7678 --connect 127.0.0.1:7677 --seed 42
//! stabcon telemetry check --out telemetry.jsonl
//! ```
//!
//! `run`/`resume` accept grid overrides (`--trials`, `--seed`, `--ns`,
//! `--name`) and execution knobs (`--threads`, `--chunk`, `--max-cells`,
//! `--progress`, `--telemetry PATH`). The store never records execution
//! knobs — telemetry is observation-only — so a campaign interrupted and
//! resumed at a different thread count (with or without telemetry) still
//! reproduces the uninterrupted store byte-for-byte. `resume` re-derives
//! the grid from the same spec flags and refuses a store whose header
//! fingerprint disagrees.
//!
//! ## Multi-host campaigns
//!
//! `--shard i/k` (or an explicit cell list `0-3,7`) makes `run`/`resume`
//! execute only that slice of the grid into `<out>.shard-<label>.jsonl`;
//! `campaign merge` fingerprint-checks the shard stores, verifies their
//! cells are disjoint and cover the grid, and stitches them into a store
//! byte-identical to the single-host run. `serve`/`work` are the online
//! version: the daemon leases cells to connecting workers and re-claims
//! leases whose worker died (deterministic seeds make re-runs exact). See
//! `stabcon_exp::fabric`.
//!
//! `--progress` prints live lines (trials done, trials/s, worker spread,
//! chunk-cursor lag, ETA) to stderr; `--telemetry PATH` streams the same
//! snapshots plus per-cell phase profiles as JSONL (see
//! `stabcon_exp::telemetry` for the schema); either flag also prints the
//! final per-cell phase-profile table. `telemetry check` validates a sink
//! file against the schema (CI runs it on the smoke campaign's sink).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::fabric::{
    cancel_job, job_store_path, jobs_journal_path, merge_stores, query_status, run_worker,
    run_worker_any, shard_store_path, submit_campaign, ChaosProxy, ChaosSpec, QueueServeConfig,
    QueueServer, ServeConfig, Server, ShardSelection, SpecDescriptor, WorkerConfig,
};
use stabcon_exp::presets::{preset, PRESET_NAMES};
use stabcon_exp::store::Durability;
use stabcon_exp::{report, store, telemetry};
use stabcon_util::table::Table;

struct Args {
    preset: String,
    out: PathBuf,
    format: String,
    threads: Option<usize>,
    chunk: Option<u64>,
    max_cells: Option<u64>,
    trials: Option<u64>,
    seed: Option<u64>,
    ns: Option<Vec<usize>>,
    /// The raw `--ns` string, shipped verbatim in a submission descriptor
    /// so the daemon parses exactly what the client typed.
    ns_raw: Option<String>,
    name: Option<String>,
    progress: bool,
    telemetry: Option<PathBuf>,
    timings: bool,
    shard: Option<ShardSelection>,
    from: Vec<PathBuf>,
    listen: Option<String>,
    connect: Option<String>,
    lease_secs: Option<u64>,
    worker_name: Option<String>,
    resume: bool,
    durability: Durability,
    retries: Option<u32>,
    backoff_ms: Option<u64>,
    nasty: bool,
    queue: bool,
    any: bool,
    client: Option<String>,
    campaign: Option<u64>,
    job: Option<u64>,
    max_active: Option<usize>,
    quota: Option<usize>,
    exit_when_idle: bool,
}

fn usage() -> String {
    format!(
        "usage:\n  \
         stabcon campaign run    --out PATH [--preset NAME] [--shard I/K] [spec/exec flags]\n  \
         stabcon campaign resume --out PATH [--preset NAME] [--shard I/K] [spec/exec flags]\n  \
         stabcon campaign merge  --out PATH --from PATH [--from PATH ...] [spec flags]\n  \
         stabcon campaign report --out PATH [--format text|md|csv] [--timings]\n  \
         stabcon serve           --out PATH --listen HOST:PORT [--lease-secs N] [--resume] [spec flags]\n  \
         stabcon serve --queue   --out PREFIX --listen HOST:PORT [--max-active N] [--quota N]\n  \
                                 [--resume] [--exit-when-idle] (multi-campaign daemon; SIGTERM drains)\n  \
         stabcon work            --connect HOST:PORT [--worker-name NAME] [spec/exec flags]\n  \
         stabcon work --any      --connect HOST:PORT (work every campaign the daemon queues)\n  \
         stabcon submit          --connect HOST:PORT [--client NAME] [spec flags]\n  \
         stabcon status          --connect HOST:PORT [--campaign ID]\n  \
         stabcon cancel          --connect HOST:PORT --campaign ID\n  \
         stabcon chaos           --listen HOST:PORT --connect HOST:PORT [--seed N] [--nasty]\n  \
         stabcon telemetry check --out PATH (telemetry sink or timings sidecar; auto-detected)\n\n\
         spec flags:  --preset NAME (one of {names})  --trials N  --seed N\n  \
                      --ns N,N,...  --name NAME\n\
         exec flags:  --threads N  --chunk N  --max-cells N\n\
         fabric flags: --shard I/K or --shard 0-3,7 (run a slice into <out>.shard-*.jsonl)\n  \
                      --from PATH (merge input, repeatable)  --listen/--connect HOST:PORT\n  \
                      --lease-secs N (serve lease; default 60)  --worker-name NAME\n  \
                      --retries N (worker reconnect budget; default 5)\n  \
                      --backoff-ms N (worker reconnect base backoff; default 200)\n\
         durability:  --durability none|cell|batch (fsync policy for run/resume/serve;\n  \
                      default none — bytes are identical under every policy)\n\
         observability: --progress (live lines on stderr)\n  \
                      --telemetry PATH (JSONL snapshots + per-cell profiles)\n\
         report flags: --timings (join the store's timings sidecar)\n  \
                      --job N (report the daemon's per-job store <out>.job-N.jsonl)\n\
         queue flags: --client NAME (submission identity; quota is per client)\n  \
                      --campaign ID (status/cancel target)  --max-active N  --quota N\n  \
                      --exit-when-idle (daemon exits once every job is terminal)\n\
         chaos flags: --seed N (fault-draw seed)  --nasty (hostile fault mix)\n",
        names = PRESET_NAMES.join("|")
    )
}

fn parse_args(argv: &[String], needs_out: bool) -> Result<Args, String> {
    let mut args = Args {
        preset: "smoke".into(),
        out: PathBuf::new(),
        format: "text".into(),
        threads: None,
        chunk: None,
        max_cells: None,
        trials: None,
        seed: None,
        ns: None,
        ns_raw: None,
        name: None,
        progress: false,
        telemetry: None,
        timings: false,
        shard: None,
        from: Vec::new(),
        listen: None,
        connect: None,
        lease_secs: None,
        worker_name: None,
        resume: false,
        durability: Durability::None,
        retries: None,
        backoff_ms: None,
        nasty: false,
        queue: false,
        any: false,
        client: None,
        campaign: None,
        job: None,
        max_active: None,
        quota: None,
        exit_when_idle: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag}: missing value"))
        };
        match flag.as_str() {
            "--preset" => args.preset = value()?,
            "--out" => args.out = PathBuf::from(value()?),
            "--format" => args.format = value()?,
            "--threads" => args.threads = Some(parse_num(flag, &value()?)? as usize),
            "--chunk" => args.chunk = Some(parse_num(flag, &value()?)?),
            "--max-cells" => args.max_cells = Some(parse_num(flag, &value()?)?),
            "--trials" => args.trials = Some(parse_num(flag, &value()?)?),
            "--seed" => args.seed = Some(parse_num(flag, &value()?)?),
            "--name" => args.name = Some(value()?),
            "--progress" => args.progress = true,
            "--telemetry" => args.telemetry = Some(PathBuf::from(value()?)),
            "--timings" => args.timings = true,
            "--shard" => args.shard = Some(ShardSelection::parse(&value()?)?),
            "--from" => args.from.push(PathBuf::from(value()?)),
            "--listen" => args.listen = Some(value()?),
            "--connect" => args.connect = Some(value()?),
            "--lease-secs" => args.lease_secs = Some(parse_num(flag, &value()?)?),
            "--worker-name" => args.worker_name = Some(value()?),
            "--resume" => args.resume = true,
            "--durability" => args.durability = Durability::parse(&value()?)?,
            "--retries" => args.retries = Some(parse_num(flag, &value()?)? as u32),
            "--backoff-ms" => args.backoff_ms = Some(parse_num(flag, &value()?)?),
            "--nasty" => args.nasty = true,
            "--queue" => args.queue = true,
            "--any" => args.any = true,
            "--client" => args.client = Some(value()?),
            "--campaign" => args.campaign = Some(parse_num(flag, &value()?)?),
            "--job" => args.job = Some(parse_num(flag, &value()?)?),
            "--max-active" => args.max_active = Some(parse_num(flag, &value()?)?.max(1) as usize),
            "--quota" => args.quota = Some(parse_num(flag, &value()?)?.max(1) as usize),
            "--exit-when-idle" => args.exit_when_idle = true,
            "--ns" => {
                let raw = value()?;
                let list = raw
                    .split(',')
                    .map(|s| parse_num("--ns", s).map(|n| n as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                args.ns = Some(list);
                args.ns_raw = Some(raw);
            }
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
    }
    if needs_out && args.out.as_os_str().is_empty() {
        return Err(format!("--out is required\n\n{}", usage()));
    }
    Ok(args)
}

fn parse_num(flag: &str, s: &str) -> Result<u64, String> {
    let (digits, radix) = match s.strip_prefix("0x") {
        Some(hex) => (hex, 16),
        None => (s, 10),
    };
    u64::from_str_radix(digits, radix).map_err(|e| format!("{flag}: bad number '{s}': {e}"))
}

fn build_spec(args: &Args) -> Result<CampaignSpec, String> {
    let mut spec = preset(&args.preset).ok_or_else(|| {
        format!(
            "unknown preset '{}' (expected one of {})",
            args.preset,
            PRESET_NAMES.join(", ")
        )
    })?;
    if let Some(t) = args.trials {
        spec.trials = t;
    }
    if let Some(s) = args.seed {
        spec.seed = s;
    }
    if let Some(ns) = &args.ns {
        spec.ns = ns.clone();
    }
    if let Some(name) = &args.name {
        spec.name = name.clone();
    }
    Ok(spec)
}

fn execute(args: &Args, resume: bool) -> Result<(), String> {
    let spec = build_spec(args)?;
    let mut cfg = RunConfig {
        resume,
        shard: args.shard.clone(),
        progress: args.progress,
        telemetry: args.telemetry.clone(),
        durability: args.durability,
        ..RunConfig::default()
    };
    if let Some(t) = args.threads {
        cfg.threads = t;
    }
    if let Some(c) = args.chunk {
        cfg.chunk = Some(c);
    }
    cfg.max_cells = args.max_cells;

    // A shard writes to its own derived store path so k hosts pointed at
    // the same --out never collide; `campaign merge` stitches them back.
    let out = match &args.shard {
        Some(shard) => {
            let p = shard_store_path(&args.out, shard);
            eprintln!("shard {}: store {}", shard.label(), p.display());
            p
        }
        None => args.out.clone(),
    };

    let start = std::time::Instant::now();
    let outcome = run_campaign(&spec, &out, &cfg)?;
    eprintln!(
        "campaign '{}': {} cells ({} run, {} skipped), {} trials in {:.2}s → {}{}",
        spec.name,
        outcome.cells_total,
        outcome.cells_run,
        outcome.cells_skipped,
        outcome.trials_run,
        start.elapsed().as_secs_f64(),
        outcome.store_path.display(),
        if outcome.complete() {
            ""
        } else {
            " (incomplete — `stabcon campaign resume` continues it)"
        }
    );
    if !outcome.profiles.is_empty() {
        eprint!("{}", telemetry::profile_table(&outcome.profiles).to_text());
    }
    Ok(())
}

fn merge(args: &Args) -> Result<(), String> {
    let spec = build_spec(args)?;
    let start = std::time::Instant::now();
    let outcome = merge_stores(&args.from, &args.out, Some(&spec.header()))?;
    eprintln!(
        "merged {} shard store(s) → {} ({} cells, {} bytes{}) in {:.2}s",
        outcome.shards,
        args.out.display(),
        outcome.cells,
        outcome.bytes,
        if outcome.timings_merged {
            ", timings sidecar merged"
        } else {
            ""
        },
        start.elapsed().as_secs_f64(),
    );
    Ok(())
}

/// The campaign as a wire descriptor: preset + the exact override strings
/// the user typed, so daemon and client build the same spec from the same
/// inputs.
fn descriptor_from(args: &Args) -> SpecDescriptor {
    SpecDescriptor {
        preset: args.preset.clone(),
        name: args.name.clone(),
        trials: args.trials,
        seed: args.seed,
        ns: args.ns_raw.clone(),
    }
}

/// SIGTERM → queue-daemon halt: stop dealing leases, refuse submissions,
/// let in-flight cells come home, park the queue in the journal, exit. The
/// handler body is a single atomic store; a bridge thread forwards the
/// static flag into the daemon's shutdown handle.
#[cfg(unix)]
fn install_sigterm_halt(flag: Arc<AtomicBool>) {
    static HALT: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigterm(_sig: i32) {
        HALT.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
    std::thread::spawn(move || loop {
        if HALT.load(Ordering::SeqCst) {
            flag.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
}

#[cfg(not(unix))]
fn install_sigterm_halt(_flag: Arc<AtomicBool>) {}

fn serve_queue(args: &Args) -> Result<(), String> {
    let listen = args.listen.as_deref().unwrap_or("127.0.0.1:7677");
    let server = QueueServer::bind(listen, &args.out)?;
    eprintln!(
        "serve: queue on {} → stores {}.job-*.jsonl, journal {}",
        server.local_addr()?,
        args.out.display(),
        jobs_journal_path(&args.out).display()
    );
    let halt = Arc::new(AtomicBool::new(false));
    install_sigterm_halt(Arc::clone(&halt));
    let outcome = server.run(&QueueServeConfig {
        lease: Duration::from_secs(args.lease_secs.unwrap_or(60).max(1)),
        progress: args.progress,
        resume: args.resume,
        durability: args.durability,
        max_active: args.max_active.unwrap_or(4),
        quota: args.quota.unwrap_or(4),
        exit_when_idle: args.exit_when_idle,
        shutdown: Some(halt),
    })?;
    eprintln!(
        "serve: queue {} — {} job(s): {} done, {} cancelled, {} failed, {} queued + {} running \
         parked for --resume; {} connection(s) → journal {}",
        if outcome.halted { "halted" } else { "idle" },
        outcome.jobs,
        outcome.done,
        outcome.cancelled,
        outcome.failed,
        outcome.queued,
        outcome.running,
        outcome.workers_seen,
        outcome.journal_path.display(),
    );
    Ok(())
}

fn serve(args: &Args) -> Result<(), String> {
    if args.queue {
        return serve_queue(args);
    }
    let spec = build_spec(args)?;
    let listen = args.listen.as_deref().unwrap_or("127.0.0.1:7677");
    let server = Server::bind(listen, &spec, &args.out)?;
    eprintln!(
        "serve: campaign '{}' on {} → {}",
        spec.name,
        server.local_addr()?,
        args.out.display()
    );
    let outcome = server.run(&ServeConfig {
        lease: Duration::from_secs(args.lease_secs.unwrap_or(60).max(1)),
        progress: args.progress,
        telemetry: args.telemetry.clone(),
        resume: args.resume,
        durability: args.durability,
    })?;
    eprintln!(
        "serve: campaign '{}' complete — {} cells ({} ingested, {} skipped) from {} worker(s), \
         {} lease(s) reclaimed, {} renewed, {} duplicate result(s) deduped → {}",
        spec.name,
        outcome.cells_total,
        outcome.cells_ingested,
        outcome.cells_skipped,
        outcome.workers_seen,
        outcome.leases_reclaimed,
        outcome.leases_renewed,
        outcome.results_deduped,
        outcome.store_path.display(),
    );
    if outcome.telemetry_dropped > 0 {
        eprintln!(
            "serve: dropped {} invalid telemetry line(s) from workers",
            outcome.telemetry_dropped
        );
    }
    Ok(())
}

/// Run the deterministic chaos proxy until killed: every connection to
/// `--listen` is forwarded to `--connect` through the seeded fault
/// injector (delays, duplicated frames, torn writes, mid-frame cuts).
fn chaos(args: &Args) -> Result<(), String> {
    let listen = args
        .listen
        .as_deref()
        .ok_or_else(|| format!("--listen HOST:PORT is required\n\n{}", usage()))?;
    let upstream = args
        .connect
        .as_deref()
        .ok_or_else(|| format!("--connect HOST:PORT is required\n\n{}", usage()))?;
    let seed = args.seed.unwrap_or(42);
    let spec = if args.nasty {
        ChaosSpec::nasty(seed)
    } else {
        ChaosSpec::mild(seed)
    };
    let proxy = ChaosProxy::bind(listen, upstream, spec)?;
    eprintln!(
        "chaos: {} → {} (seed {seed}, {} mix)",
        proxy.local_addr()?,
        upstream,
        if args.nasty { "nasty" } else { "mild" }
    );
    proxy.run().map(|conns| {
        eprintln!("chaos: proxied {conns} connection(s)");
    })
}

/// SIGTERM → graceful worker drain: finish the in-flight cell, ship its
/// result, say goodbye. The handler body is a single atomic store
/// (async-signal-safe). Registered only for `stabcon work` — every other
/// subcommand keeps the default terminate-now behavior.
#[cfg(unix)]
fn install_sigterm_drain() {
    extern "C" fn on_sigterm(_sig: i32) {
        stabcon_exp::fabric::request_drain();
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_drain() {}

fn work(args: &Args) -> Result<(), String> {
    let addr = args
        .connect
        .as_deref()
        .ok_or_else(|| format!("--connect HOST:PORT is required\n\n{}", usage()))?;
    install_sigterm_drain();
    let mut cfg = WorkerConfig::default();
    if let Some(t) = args.threads {
        cfg.threads = t;
    }
    cfg.chunk = args.chunk;
    if let Some(name) = &args.worker_name {
        cfg.name = name.clone();
    }
    if let Some(r) = args.retries {
        cfg.retries = r;
    }
    if let Some(b) = args.backoff_ms {
        cfg.backoff_ms = b;
    }
    let start = std::time::Instant::now();
    let outcome = if args.any {
        // Any-campaign mode: no local spec — each lease ships its job's
        // descriptor, which the worker builds and fingerprint-verifies.
        run_worker_any(addr, &cfg)?
    } else {
        let spec = build_spec(args)?;
        run_worker(addr, &spec, &cfg)?
    };
    eprintln!(
        "work '{}': {} cell(s), {} trial(s) in {:.2}s{}{}",
        cfg.name,
        outcome.cells_run,
        outcome.trials_run,
        start.elapsed().as_secs_f64(),
        if outcome.reconnects > 0 {
            format!(" ({} reconnect(s))", outcome.reconnects)
        } else {
            String::new()
        },
        if outcome.drained_early {
            " — drained on request"
        } else {
            ""
        },
    );
    Ok(())
}

fn submit(args: &Args) -> Result<(), String> {
    let addr = args
        .connect
        .as_deref()
        .ok_or_else(|| format!("--connect HOST:PORT is required\n\n{}", usage()))?;
    let client = args.client.as_deref().unwrap_or("cli");
    let desc = descriptor_from(args);
    let outcome = submit_campaign(addr, client, &desc)?;
    eprintln!(
        "submit: job {} accepted ({} cells) — daemon store {} \
         (watch it with `stabcon status --connect {addr} --campaign {}`)",
        outcome.job, outcome.cells, outcome.store, outcome.job,
    );
    Ok(())
}

fn status(args: &Args) -> Result<(), String> {
    let addr = args
        .connect
        .as_deref()
        .ok_or_else(|| format!("--connect HOST:PORT is required\n\n{}", usage()))?;
    let client = args.client.as_deref().unwrap_or("cli");
    let status = query_status(addr, client, args.campaign)?;
    let mut table = Table::new(
        format!("queue @ {addr}"),
        &[
            "job", "name", "state", "client", "cells", "written", "trials", "trials/s", "elapsed",
        ],
    );
    for j in &status.jobs {
        table.push_row(vec![
            j.job.to_string(),
            j.name.clone(),
            j.state.clone(),
            j.client.clone(),
            j.cells.to_string(),
            j.written.to_string(),
            j.trials.to_string(),
            format!("{:.0}", j.trials_per_sec()),
            format!("{:.1}s", j.elapsed_secs),
        ]);
    }
    table.push_note(format!(
        "{} — {} queued, {} running, {} done, {} cancelled, {} failed",
        if status.accepting {
            "accepting submissions"
        } else {
            "draining (submissions refused)"
        },
        status.queued,
        status.running,
        status.done,
        status.cancelled,
        status.failed,
    ));
    print!("{}", table.to_text());
    Ok(())
}

fn cancel(args: &Args) -> Result<(), String> {
    let addr = args
        .connect
        .as_deref()
        .ok_or_else(|| format!("--connect HOST:PORT is required\n\n{}", usage()))?;
    let job = args
        .campaign
        .ok_or_else(|| format!("--campaign ID is required\n\n{}", usage()))?;
    let client = args.client.as_deref().unwrap_or("cli");
    let state = cancel_job(addr, client, job)?;
    eprintln!("cancel: job {job} is now {state} (its partial store stays on the daemon)");
    Ok(())
}

fn report(args: &Args) -> Result<(), String> {
    // `--job N` points at a queue daemon's per-job store by id, so a live
    // (parked-prefix) store can be reported without spelling out the
    // derived path; coverage is spelled out for any partial store.
    let out = match args.job {
        Some(job) => job_store_path(&args.out, job),
        None => args.out.clone(),
    };
    let loaded = store::load(&out)?;
    let timings = args.timings.then(|| telemetry::load_timings(&out));
    let table = report::report_table_with_timings(&loaded, timings.as_ref());
    match args.format.as_str() {
        "text" => print!("{}", table.to_text()),
        "md" | "markdown" => print!("{}", table.to_markdown()),
        "csv" => print!("{}", table.to_csv()),
        other => return Err(format!("unknown format '{other}' (text|md|csv)")),
    }
    Ok(())
}

fn telemetry_check(args: &Args) -> Result<(), String> {
    // Auto-detect which schema the file claims and validate against it:
    // a telemetry sink (`stabcon-telemetry/1`) or a per-cell timings
    // sidecar (`stabcon-timings/1`).
    match telemetry::peek_schema(&args.out)?.as_str() {
        telemetry::TIMINGS_SCHEMA => {
            let check = telemetry::check_timings(&args.out)?;
            println!(
                "{}: valid {} — {} line(s), {} cell(s), {} superseded duplicate(s) (last wins)",
                args.out.display(),
                telemetry::TIMINGS_SCHEMA,
                check.lines,
                check.cells,
                check.duplicates
            );
        }
        _ => {
            let check = telemetry::check_telemetry(&args.out)?;
            println!(
                "{}: valid {} — {} snapshot(s), {} cell profile(s)",
                args.out.display(),
                telemetry::TELEMETRY_SCHEMA,
                check.snapshots,
                check.cell_profiles
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (noun, verb) = (
        argv.first().map(String::as_str),
        argv.get(1).map(String::as_str),
    );
    let result = match (noun, verb) {
        (Some("campaign"), Some(verb @ ("run" | "resume" | "merge" | "report"))) => {
            match parse_args(&argv[2..], true) {
                Ok(args) => match verb {
                    "run" => execute(&args, false),
                    "resume" => execute(&args, true),
                    "merge" => merge(&args),
                    _ => report(&args),
                },
                Err(e) => Err(e),
            }
        }
        (Some("serve"), _) => match parse_args(&argv[1..], true) {
            Ok(args) => serve(&args),
            Err(e) => Err(e),
        },
        (Some("work"), _) => match parse_args(&argv[1..], false) {
            Ok(args) => work(&args),
            Err(e) => Err(e),
        },
        (Some("submit"), _) => match parse_args(&argv[1..], false) {
            Ok(args) => submit(&args),
            Err(e) => Err(e),
        },
        (Some("status"), _) => match parse_args(&argv[1..], false) {
            Ok(args) => status(&args),
            Err(e) => Err(e),
        },
        (Some("cancel"), _) => match parse_args(&argv[1..], false) {
            Ok(args) => cancel(&args),
            Err(e) => Err(e),
        },
        (Some("chaos"), _) => match parse_args(&argv[1..], false) {
            Ok(args) => chaos(&args),
            Err(e) => Err(e),
        },
        (Some("telemetry"), Some("check")) => match parse_args(&argv[2..], true) {
            Ok(args) => telemetry_check(&args),
            Err(e) => Err(e),
        },
        (Some("--help") | Some("-h") | None, _) => {
            print!("{}", usage());
            Ok(())
        }
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stabcon: {e}");
            ExitCode::from(2)
        }
    }
}

//! The `stabcon` CLI: run, resume, and report experiment campaigns.
//!
//! ```text
//! stabcon campaign run    --preset figure1-small --out store.jsonl
//! stabcon campaign resume --preset figure1-small --out store.jsonl
//! stabcon campaign report --out store.jsonl [--format text|md|csv]
//! ```
//!
//! `run`/`resume` accept grid overrides (`--trials`, `--seed`, `--ns`,
//! `--name`) and execution knobs (`--threads`, `--chunk`, `--max-cells`).
//! The store never records execution knobs, so a campaign interrupted and
//! resumed at a different thread count still reproduces the uninterrupted
//! store byte-for-byte. `resume` re-derives the grid from the same spec
//! flags and refuses a store whose header fingerprint disagrees.

use std::path::PathBuf;
use std::process::ExitCode;

use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::presets::{preset, PRESET_NAMES};
use stabcon_exp::{report, store};

struct Args {
    preset: String,
    out: PathBuf,
    format: String,
    threads: Option<usize>,
    chunk: Option<u64>,
    max_cells: Option<u64>,
    trials: Option<u64>,
    seed: Option<u64>,
    ns: Option<Vec<usize>>,
    name: Option<String>,
}

fn usage() -> String {
    format!(
        "usage:\n  \
         stabcon campaign run    --out PATH [--preset NAME] [spec/exec flags]\n  \
         stabcon campaign resume --out PATH [--preset NAME] [spec/exec flags]\n  \
         stabcon campaign report --out PATH [--format text|md|csv]\n\n\
         spec flags:  --preset NAME (one of {names})  --trials N  --seed N\n  \
                      --ns N,N,...  --name NAME\n\
         exec flags:  --threads N  --chunk N  --max-cells N\n",
        names = PRESET_NAMES.join("|")
    )
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        preset: "smoke".into(),
        out: PathBuf::new(),
        format: "text".into(),
        threads: None,
        chunk: None,
        max_cells: None,
        trials: None,
        seed: None,
        ns: None,
        name: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag}: missing value"))
        };
        match flag.as_str() {
            "--preset" => args.preset = value()?,
            "--out" => args.out = PathBuf::from(value()?),
            "--format" => args.format = value()?,
            "--threads" => args.threads = Some(parse_num(flag, &value()?)? as usize),
            "--chunk" => args.chunk = Some(parse_num(flag, &value()?)?),
            "--max-cells" => args.max_cells = Some(parse_num(flag, &value()?)?),
            "--trials" => args.trials = Some(parse_num(flag, &value()?)?),
            "--seed" => args.seed = Some(parse_num(flag, &value()?)?),
            "--name" => args.name = Some(value()?),
            "--ns" => {
                let list = value()?
                    .split(',')
                    .map(|s| parse_num("--ns", s).map(|n| n as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                args.ns = Some(list);
            }
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
    }
    if args.out.as_os_str().is_empty() {
        return Err(format!("--out is required\n\n{}", usage()));
    }
    Ok(args)
}

fn parse_num(flag: &str, s: &str) -> Result<u64, String> {
    let (digits, radix) = match s.strip_prefix("0x") {
        Some(hex) => (hex, 16),
        None => (s, 10),
    };
    u64::from_str_radix(digits, radix).map_err(|e| format!("{flag}: bad number '{s}': {e}"))
}

fn build_spec(args: &Args) -> Result<CampaignSpec, String> {
    let mut spec = preset(&args.preset).ok_or_else(|| {
        format!(
            "unknown preset '{}' (expected one of {})",
            args.preset,
            PRESET_NAMES.join(", ")
        )
    })?;
    if let Some(t) = args.trials {
        spec.trials = t;
    }
    if let Some(s) = args.seed {
        spec.seed = s;
    }
    if let Some(ns) = &args.ns {
        spec.ns = ns.clone();
    }
    if let Some(name) = &args.name {
        spec.name = name.clone();
    }
    Ok(spec)
}

fn execute(args: &Args, resume: bool) -> Result<(), String> {
    let spec = build_spec(args)?;
    let mut cfg = RunConfig {
        resume,
        ..RunConfig::default()
    };
    if let Some(t) = args.threads {
        cfg.threads = t;
    }
    if let Some(c) = args.chunk {
        cfg.chunk = Some(c);
    }
    cfg.max_cells = args.max_cells;

    let start = std::time::Instant::now();
    let outcome = run_campaign(&spec, &args.out, &cfg)?;
    eprintln!(
        "campaign '{}': {} cells ({} run, {} skipped), {} trials in {:.2}s → {}{}",
        spec.name,
        outcome.cells_total,
        outcome.cells_run,
        outcome.cells_skipped,
        outcome.trials_run,
        start.elapsed().as_secs_f64(),
        outcome.store_path.display(),
        if outcome.complete() {
            ""
        } else {
            " (incomplete — `stabcon campaign resume` continues it)"
        }
    );
    Ok(())
}

fn report(args: &Args) -> Result<(), String> {
    let loaded = store::load(&args.out)?;
    let table = report::report_table(&loaded);
    match args.format.as_str() {
        "text" => print!("{}", table.to_text()),
        "md" | "markdown" => print!("{}", table.to_markdown()),
        "csv" => print!("{}", table.to_csv()),
        other => return Err(format!("unknown format '{other}' (text|md|csv)")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (noun, verb) = (
        argv.first().map(String::as_str),
        argv.get(1).map(String::as_str),
    );
    let result = match (noun, verb) {
        (Some("campaign"), Some(verb @ ("run" | "resume" | "report"))) => {
            match parse_args(&argv[2..]) {
                Ok(args) => match verb {
                    "run" => execute(&args, false),
                    "resume" => execute(&args, true),
                    _ => report(&args),
                },
                Err(e) => Err(e),
            }
        }
        (Some("--help") | Some("-h") | None, _) => {
            print!("{}", usage());
            Ok(())
        }
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stabcon: {e}");
            ExitCode::from(2)
        }
    }
}

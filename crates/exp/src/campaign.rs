//! Declarative campaigns: a cartesian grid over simulation axes, executed
//! cell by cell with sharded trials and checkpointed to a JSONL store.
//!
//! A [`CampaignSpec`] expands to a deterministic list of [`CellSpec`]s
//! (fixed axis order, cell seeds derived from the master seed by cell id).
//! [`run_campaign`] executes the cells in order, appending each completed
//! cell to the store; with [`RunConfig::resume`] it skips cells already in
//! the store and reproduces the remainder bit-identically — at any thread
//! count, because per-cell aggregation is thread- and chunk-invariant (see
//! [`crate::cell::run_cell`]).

use std::path::{Path, PathBuf};
use std::time::Instant;

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::engine::{EngineSpec, ScenarioSpec};
use stabcon_core::init::InitialCondition;
use stabcon_core::protocol::ProtocolSpec;
use stabcon_core::runner::SimSpec;
use stabcon_par::ThreadPool;
use stabcon_util::rng::derive_seed;

use crate::cell::{chunk_for, run_cell_monitored, CellSpec};
use crate::fabric::ShardSelection;
use crate::metrics::HitMetric;
use crate::observer::TrialObserver;
use crate::store;
use crate::telemetry::{self, CampaignTelemetry, CellProfile};

/// The canonical "√n-bounded" budget used across the harness: `⌊√n/4⌋`.
///
/// Calibration note: the paper's threshold is Θ̃(√n). Our *exact* balancing
/// adversary (which zeroes the two-bin gap every round) already stalls the
/// median rule at `T = √n` for laptop-scale `n`; at `T = √n/2` runs escape
/// but with heavy-tailed escape times; at `T = √n/4` convergence is cleanly
/// `O(log n)` — i.e. the measured crossover constant for the strongest
/// balancer lies between 0.25 and 1. E5 (`threshold_table`) sweeps the
/// exponent explicitly to locate the collapse.
pub fn sqrt_budget(n: usize) -> u64 {
    (((n as f64).sqrt() / 4.0).floor() as u64).max(1)
}

/// An initial condition expressed independently of `n`, so one grid axis
/// covers every population size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitSpec {
    /// Every ball in its own bin (`m = n` worst case).
    AllDistinct,
    /// Two bins split `⌊n/2⌋` / `⌈n/2⌉` (the worst-case two-bin instance).
    TwoBinsHalf,
    /// `m` bins with (near-)equal loads.
    MBinsEqual(u32),
    /// Every ball uniform over `m` bins.
    UniformRandom(u32),
}

impl InitSpec {
    /// Resolve to a concrete [`InitialCondition`] for population `n`.
    pub fn materialize(&self, n: usize) -> InitialCondition {
        match *self {
            InitSpec::AllDistinct => InitialCondition::AllDistinct,
            InitSpec::TwoBinsHalf => InitialCondition::TwoBins { left: n / 2 },
            InitSpec::MBinsEqual(m) => InitialCondition::MBinsEqual { m },
            InitSpec::UniformRandom(m) => InitialCondition::UniformRandom { m },
        }
    }

    /// Axis label.
    pub fn label(&self) -> String {
        match *self {
            InitSpec::AllDistinct => "all-distinct".into(),
            InitSpec::TwoBinsHalf => "two-bins-half".into(),
            InitSpec::MBinsEqual(m) => format!("m-equal({m})"),
            InitSpec::UniformRandom(m) => format!("uniform({m})"),
        }
    }
}

/// An adversary budget expressed independently of `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetSpec {
    /// No corruption (forces the no-adversary path).
    Zero,
    /// A fixed budget `T`.
    Fixed(u64),
    /// The harness's canonical `⌊√n/4⌋` (see [`sqrt_budget`]).
    SqrtOver4,
}

impl BudgetSpec {
    /// Resolve to a concrete budget for population `n`.
    pub fn resolve(&self, n: usize) -> u64 {
        match *self {
            BudgetSpec::Zero => 0,
            BudgetSpec::Fixed(t) => t,
            BudgetSpec::SqrtOver4 => sqrt_budget(n),
        }
    }
}

/// A declarative campaign: the cartesian product of every axis.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (recorded in the store header).
    pub name: String,
    /// Master seed; cell `c` uses `derive_seed(seed, c)`.
    pub seed: u64,
    /// Trials per cell.
    pub trials: u64,
    /// Population-size axis.
    pub ns: Vec<usize>,
    /// Initial-condition axis.
    pub inits: Vec<InitSpec>,
    /// Protocol axis.
    pub protocols: Vec<ProtocolSpec>,
    /// Engine axis.
    pub engines: Vec<EngineSpec>,
    /// Network-scenario axis. For message engines each entry **replaces**
    /// the scenario embedded in the `MessageConfig` (configure faults here,
    /// not in the engine axis). Faulted scenarios apply only to message
    /// engines (they describe message traffic); a non-message engine
    /// expands only against the zero-fault entries of this axis, so
    /// idealized cells are never duplicated per fault configuration.
    pub scenarios: Vec<ScenarioSpec>,
    /// Adversary axis (strategy + budget; budget 0 disables corruption).
    pub adversaries: Vec<(AdversarySpec, BudgetSpec)>,
    /// Round-budget override (default: the [`SimSpec::new`] heuristic).
    pub max_rounds: Option<u64>,
    /// Stability-window override.
    pub window: Option<u64>,
    /// Almost-stability factor override.
    pub almost_factor: Option<f64>,
    /// Extra-metric observer attached to every cell (observers with
    /// population-dependent parameters suit single-`n` grids).
    pub observer: TrialObserver,
}

impl Default for CampaignSpec {
    /// A compact smoke grid: two populations × {two-bins, all-distinct},
    /// median rule, dense engine, no adversary.
    fn default() -> Self {
        Self {
            name: "smoke".into(),
            seed: 0x5C0E,
            trials: 8,
            ns: vec![128, 256],
            inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
            protocols: vec![ProtocolSpec::Median],
            engines: vec![EngineSpec::DenseSeq],
            scenarios: vec![ScenarioSpec::clean()],
            adversaries: vec![(AdversarySpec::None, BudgetSpec::Zero)],
            max_rounds: None,
            window: None,
            almost_factor: None,
            observer: TrialObserver::None,
        }
    }
}

impl CampaignSpec {
    /// Expand the grid into cells, in the fixed axis order
    /// `n → init → protocol → engine → scenario → adversary`.
    ///
    /// A faulted scenario combines only with message engines (overriding
    /// the scenario embedded in their `MessageConfig`); non-message engines
    /// skip it, so the idealized cells appear once. Cell ids — and with
    /// them the cell seeds — number the *emitted* cells consecutively.
    ///
    /// Adversarial cells report [`HitMetric::AlmostStable`], others
    /// [`HitMetric::Consensus`].
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        let mut id = 0u64;
        for &n in &self.ns {
            for init in &self.inits {
                for &protocol in &self.protocols {
                    for &engine in &self.engines {
                        for &scenario in &self.scenarios {
                            let cell_engine = match engine {
                                EngineSpec::Message(mut cfg) => {
                                    cfg.scenario = scenario;
                                    EngineSpec::Message(cfg)
                                }
                                other if scenario.is_zero_fault() => other,
                                // Faults describe message traffic; idealized
                                // engines have none to inject them into.
                                _ => continue,
                            };
                            for &(adversary, budget) in &self.adversaries {
                                let t = budget.resolve(n);
                                let mut sim = SimSpec::new(n)
                                    .init(init.materialize(n))
                                    .protocol(protocol)
                                    .engine(cell_engine);
                                if t > 0 {
                                    sim = sim.adversary(adversary, t);
                                }
                                if let Some(mr) = self.max_rounds {
                                    sim = sim.max_rounds(mr);
                                }
                                if let Some(w) = self.window {
                                    sim = sim.stability_window(w);
                                }
                                if let Some(f) = self.almost_factor {
                                    sim = sim.almost_factor(f);
                                }
                                if self.observer.needs_trajectory() {
                                    sim = sim.record_trajectory(true);
                                }
                                let metric = if t > 0 {
                                    HitMetric::AlmostStable
                                } else {
                                    HitMetric::Consensus
                                };
                                cells.push(CellSpec {
                                    id,
                                    sim,
                                    trials: self.trials,
                                    seed: derive_seed(self.seed, id),
                                    metric,
                                    observer: self.observer,
                                    labels: vec![
                                        ("n".into(), n.to_string()),
                                        ("init".into(), init.label()),
                                        ("protocol".into(), protocol.label()),
                                        // The engine column stays the axis
                                        // value; the scenario has its own.
                                        ("engine".into(), engine.label()),
                                        ("scenario".into(), scenario.label()),
                                        ("adversary".into(), adversary.label().into()),
                                        ("T".into(), t.to_string()),
                                    ],
                                });
                                id += 1;
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// A 64-bit FNV-1a fingerprint of the expanded grid. Stored in the
    /// header so `resume` refuses a store produced by a different spec.
    ///
    /// Hashes only semantically meaningful, stable inputs — cell ids,
    /// seeds, trial counts, metric and axis labels, and the explicit
    /// stopping overrides — never derived `Debug` output, so refactors
    /// that don't change campaign semantics keep old stores resumable.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_cells(&self.expand())
    }

    fn fingerprint_cells(&self, cells: &[CellSpec]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.seed.to_le_bytes());
        eat(&self.trials.to_le_bytes());
        eat(&self.max_rounds.unwrap_or(0).to_le_bytes());
        eat(&self.window.unwrap_or(0).to_le_bytes());
        eat(&self.almost_factor.unwrap_or(-1.0).to_le_bytes());
        for cell in cells {
            eat(&cell.id.to_le_bytes());
            eat(&cell.seed.to_le_bytes());
            eat(&cell.trials.to_le_bytes());
            eat(cell.metric.label().as_bytes());
            eat(cell.observer.label().as_bytes());
            for (k, v) in &cell.labels {
                eat(k.as_bytes());
                eat(v.as_bytes());
            }
        }
        h
    }

    /// The store header for this spec.
    pub fn header(&self) -> store::StoreHeader {
        self.header_with(&self.expand())
    }

    fn header_with(&self, cells: &[CellSpec]) -> store::StoreHeader {
        store::StoreHeader {
            name: self.name.clone(),
            seed: self.seed,
            trials: self.trials,
            cells: cells.len() as u64,
            fingerprint: self.fingerprint_cells(cells),
        }
    }
}

/// Execution knobs. None of them change the bytes of any record: a shard
/// restricts *which* cells land in the store, never what a cell line says,
/// so merged shard stores reproduce the single-host store byte-for-byte.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads for the shared pool.
    pub threads: usize,
    /// Trials per scheduler chunk; `None` auto-tunes per cell via
    /// [`chunk_for`].
    pub chunk: Option<u64>,
    /// Stop after this many *newly run* cells (checkpoint test hook / CI
    /// smoke interruption).
    pub max_cells: Option<u64>,
    /// Continue an existing store instead of refusing to overwrite it.
    pub resume: bool,
    /// Run only this slice of the expanded cell list (multi-host sharding;
    /// see [`crate::fabric`]). The store header still describes the full
    /// grid, so `stabcon campaign merge` can fingerprint-check the shards.
    pub shard: Option<ShardSelection>,
    /// Print live progress lines to stderr (arms the telemetry registry).
    pub progress: bool,
    /// Write periodic telemetry snapshots and per-cell profiles to this
    /// JSONL sink (arms the telemetry registry). See [`crate::telemetry`].
    pub telemetry: Option<PathBuf>,
    /// When appended cells are forced to stable storage (fsync policy) —
    /// never changes the bytes written, only the crash window. See
    /// [`store::Durability`].
    pub durability: store::Durability,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            threads: stabcon_par::default_threads(),
            chunk: None,
            max_cells: None,
            resume: false,
            shard: None,
            progress: false,
            telemetry: None,
            durability: store::Durability::None,
        }
    }
}

/// What a campaign invocation did.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Cells in the grid.
    pub cells_total: u64,
    /// Cells executed by this invocation.
    pub cells_run: u64,
    /// Cells skipped because the store already had them.
    pub cells_skipped: u64,
    /// Trials executed by this invocation.
    pub trials_run: u64,
    /// The store path.
    pub store_path: PathBuf,
    /// Per-cell phase profiles for cells run with telemetry armed
    /// (empty otherwise). The CLI renders these as the final table.
    pub profiles: Vec<CellProfile>,
}

impl CampaignOutcome {
    /// Whether every grid cell is now in the store.
    pub fn complete(&self) -> bool {
        self.cells_run + self.cells_skipped == self.cells_total
    }
}

/// Run (or resume) a campaign against the JSONL store at `path`.
///
/// Fresh runs refuse an existing store; `resume` validates the stored
/// header against this spec's fingerprint, truncates any torn tail, skips
/// completed cells, and appends the remainder — producing a store
/// byte-identical to an uninterrupted run regardless of `threads`/`chunk`.
///
/// With [`RunConfig::shard`] only the selected slice of the cell list runs
/// (a per-shard store for `stabcon campaign merge` to stitch back
/// together); [`CampaignOutcome::cells_total`] then counts the shard's
/// cells, so [`CampaignOutcome::complete`] means *the shard* is complete.
pub fn run_campaign(
    spec: &CampaignSpec,
    path: &Path,
    cfg: &RunConfig,
) -> Result<CampaignOutcome, String> {
    let cells = spec.expand();
    let header = spec.header_with(&cells);
    let selected: Vec<&CellSpec> = match &cfg.shard {
        Some(shard) => {
            shard.validate(cells.len() as u64)?;
            cells
                .iter()
                .filter(|c| shard.contains(c.id, cells.len() as u64))
                .collect()
        }
        None => cells.iter().collect(),
    };

    let (mut file, done) = store::open_for_append(path, &header, cfg.resume, cfg.durability)?;

    let pool = ThreadPool::new(cfg.threads);
    let mut outcome = CampaignOutcome {
        cells_total: selected.len() as u64,
        cells_run: 0,
        cells_skipped: 0,
        trials_run: 0,
        store_path: path.to_path_buf(),
        profiles: Vec::new(),
    };
    // Wall-clock timings never enter the fingerprinted store; they go to
    // the sidecar (always) and the telemetry sink (when requested).
    let mut timings = telemetry::open_timings(path, cfg.resume)?;
    let mut tel = if cfg.progress || cfg.telemetry.is_some() {
        let planned: u64 = {
            let todo = selected.iter().filter(|c| !done.contains(&c.id));
            match cfg.max_cells {
                Some(k) => todo.take(k as usize).map(|c| c.trials).sum(),
                None => todo.map(|c| c.trials).sum(),
            }
        };
        Some(CampaignTelemetry::create(
            &spec.name,
            pool.threads().max(1),
            cells.len() as u64,
            planned,
            cfg.progress,
            cfg.telemetry.as_deref(),
        )?)
    } else {
        None
    };
    for &cell in &selected {
        if done.contains(&cell.id) {
            outcome.cells_skipped += 1;
            continue;
        }
        if cfg.max_cells.is_some_and(|k| outcome.cells_run >= k) {
            break;
        }
        let chunk = cfg
            .chunk
            .unwrap_or_else(|| chunk_for(cell.trials, cfg.threads));
        if let Some(t) = tel.as_mut() {
            t.begin_cell(cell);
        }
        let started = Instant::now();
        let agg = run_cell_monitored(&pool, cell, chunk, tel.as_mut());
        let elapsed_secs = started.elapsed().as_secs_f64();
        file.append(&store::cell_line(cell, &agg))
            .map_err(|e| format!("append cell {}: {e}", cell.id))?;
        telemetry::append_timing(&mut timings, cell.id, agg.trials(), elapsed_secs)?;
        if let Some(t) = tel.as_mut() {
            t.end_cell(cell, agg.trials(), elapsed_secs);
        }
        outcome.cells_run += 1;
        outcome.trials_run += agg.trials();
    }
    if let Some(t) = tel {
        outcome.profiles = t.finish();
    }
    file.finish()
        .map_err(|e| format!("sync store on finish: {e}"))?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("stabcon-campaign-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn tiny() -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            trials: 4,
            ns: vec![64, 96],
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn grid_expansion_shape_and_seeds() {
        let spec = tiny();
        let cells = spec.expand();
        assert_eq!(cells.len(), 2 * 2); // ns × inits
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i as u64);
            assert_eq!(c.seed, derive_seed(spec.seed, i as u64));
            assert_eq!(c.metric, HitMetric::Consensus);
            assert_eq!(c.labels.len(), 7);
        }
        // Adversarial axis flips the metric and sets the budget.
        let adv = CampaignSpec {
            adversaries: vec![(AdversarySpec::Random, BudgetSpec::SqrtOver4)],
            ..tiny()
        };
        for c in adv.expand() {
            assert_eq!(c.metric, HitMetric::AlmostStable);
        }
    }

    #[test]
    fn scenario_axis_applies_to_message_engines_only() {
        use stabcon_core::engine::MessageConfig;
        let hostile = ScenarioSpec::clean().with_latency(1, 3);
        let spec = CampaignSpec {
            ns: vec![64],
            inits: vec![InitSpec::TwoBinsHalf],
            engines: vec![
                EngineSpec::DenseSeq,
                EngineSpec::Message(MessageConfig::default()),
            ],
            scenarios: vec![ScenarioSpec::clean(), hostile],
            ..CampaignSpec::default()
        };
        let cells = spec.expand();
        // Dense × clean, message × clean, message × hostile: the dense
        // engine skips the faulted scenario.
        assert_eq!(cells.len(), 3);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i as u64, "emitted cells are numbered densely");
        }
        let scen_label = |c: &CellSpec| {
            c.labels
                .iter()
                .find(|(k, _)| k == "scenario")
                .expect("scenario label")
                .1
                .clone()
        };
        assert_eq!(scen_label(&cells[0]), "none");
        assert_eq!(scen_label(&cells[1]), "none");
        assert_eq!(scen_label(&cells[2]), hostile.label());
        // The hostile cell's engine actually carries the scenario…
        let EngineSpec::Message(cfg) = cells[2].sim.engine_spec() else {
            panic!("expected a message cell");
        };
        assert_eq!(cfg.scenario, hostile);
        // …while its engine *label* stays the clean axis value.
        let eng_label = cells[2]
            .labels
            .iter()
            .find(|(k, _)| k == "engine")
            .expect("engine label");
        assert!(!eng_label.1.contains("scen="), "{}", eng_label.1);
        // The scenario axis is fingerprint-covered (it changes cell labels).
        let clean_only = CampaignSpec {
            scenarios: vec![ScenarioSpec::clean()],
            ..spec.clone()
        };
        assert_ne!(spec.fingerprint(), clean_only.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_the_grid() {
        let a = tiny();
        assert_eq!(a.fingerprint(), tiny().fingerprint());
        let b = CampaignSpec {
            trials: 5,
            ..tiny()
        };
        let c = CampaignSpec {
            ns: vec![64],
            ..tiny()
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // The observer changes the store's record layout, so it must be
        // part of the grid fingerprint.
        let d = CampaignSpec {
            observer: TrialObserver::LastUnsettledRound,
            ..tiny()
        };
        assert_ne!(a.fingerprint(), d.fingerprint());
        for cell in d.expand() {
            assert_eq!(cell.observer, TrialObserver::LastUnsettledRound);
        }
    }

    #[test]
    fn fresh_run_refuses_existing_store() {
        let path = tmp("refuse.jsonl");
        std::fs::write(&path, "junk\n").expect("write");
        let err = run_campaign(&tiny(), &path, &RunConfig::default()).unwrap_err();
        assert!(err.contains("store exists"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_then_resume_is_idempotent() {
        let path = tmp("idem.jsonl");
        std::fs::remove_file(&path).ok();
        let cfg = RunConfig {
            threads: 2,
            ..RunConfig::default()
        };
        let first = run_campaign(&tiny(), &path, &cfg).expect("run");
        assert!(first.complete());
        assert_eq!(first.cells_run, 4);
        let bytes = std::fs::read(&path).expect("read");

        let again = run_campaign(
            &tiny(),
            &path,
            &RunConfig {
                resume: true,
                ..cfg
            },
        )
        .expect("resume");
        assert_eq!(again.cells_run, 0);
        assert_eq!(again.cells_skipped, 4);
        assert_eq!(std::fs::read(&path).expect("read"), bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_spec() {
        let path = tmp("mismatch.jsonl");
        std::fs::remove_file(&path).ok();
        run_campaign(&tiny(), &path, &RunConfig::default()).expect("run");
        let other = CampaignSpec {
            seed: 999,
            ..tiny()
        };
        let err = run_campaign(
            &other,
            &path,
            &RunConfig {
                resume: true,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("different campaign spec"), "{err}");
        assert!(err.contains("seed"), "must name the differing field: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_works_with_seeds_above_f64_precision() {
        // Seeds are u64; the store round-trip must not squeeze them
        // through f64 (2⁵³ + 1 is the first integer that would be lost).
        let path = tmp("bigseed.jsonl");
        std::fs::remove_file(&path).ok();
        let spec = CampaignSpec {
            seed: (1 << 53) + 1,
            ..tiny()
        };
        run_campaign(&spec, &path, &RunConfig::default()).expect("run");
        let resumed = run_campaign(
            &spec,
            &path,
            &RunConfig {
                resume: true,
                ..RunConfig::default()
            },
        )
        .expect("resume with large seed");
        assert_eq!(resumed.cells_skipped, 4);
        std::fs::remove_file(&path).ok();
    }
}

//! One campaign cell: a simulation spec, a trial budget, and a seed —
//! executed as sharded chunks on the shared [`ThreadPool`].
//!
//! Determinism contract: trial `i` of a cell always runs with seed
//! `derive_seed(cell.seed, i)`, and the aggregator folds trial metrics in
//! global trial order (out-of-order chunks are parked until their turn).
//! The resulting [`CellAggregate`] is therefore a pure function of
//! `(CellSpec)` — independent of thread count, chunk size, and scheduling.

use std::sync::mpsc;
use std::sync::Arc;

use stabcon_core::runner::SimSpec;
use stabcon_par::ThreadPool;
use stabcon_util::rng::derive_seed;

use crate::aggregate::{CellAggregate, TrialMetrics};
use crate::metrics::{ConvergenceStats, HitMetric};
use crate::observer::TrialObserver;

/// Default trials per scheduler chunk: small enough to load-balance a
/// skewed cell across workers, large enough to amortize dispatch.
pub const DEFAULT_CHUNK: u64 = 32;

/// A fully specified unit of campaign work.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position in the campaign grid (0 for ad-hoc cells).
    pub id: u64,
    /// The simulation to run.
    pub sim: SimSpec,
    /// Independent trials.
    pub trials: u64,
    /// Cell master seed; trial `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Hitting-time metric this cell reports.
    pub metric: HitMetric,
    /// Extra-metric observer (see [`crate::observer`]).
    pub observer: TrialObserver,
    /// Axis labels for the result store, in column order.
    pub labels: Vec<(String, String)>,
}

impl CellSpec {
    /// An ad-hoc cell with the consensus metric and no labels.
    pub fn new(sim: SimSpec, trials: u64, seed: u64) -> Self {
        Self {
            id: 0,
            sim,
            trials,
            seed,
            metric: HitMetric::Consensus,
            observer: TrialObserver::None,
            labels: Vec::new(),
        }
    }

    /// Set the reported metric.
    pub fn metric(mut self, metric: HitMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Attach a [`TrialObserver`]. A trajectory-needing observer turns on
    /// trajectory recording for the cell's sim — without it every trial
    /// would emit only no-sample sentinels.
    pub fn observer(mut self, observer: TrialObserver) -> Self {
        self.observer = observer;
        if observer.needs_trajectory() {
            self.sim = self.sim.record_trajectory(true);
        }
        self
    }

    /// Append an axis label.
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }
}

/// Run every trial of `cell`, sharded into `chunk`-sized batches on `pool`,
/// and fold the results into a streaming [`CellAggregate`].
///
/// Workers send finished chunks through a channel; the caller folds them in
/// chunk order, so at most the out-of-order window of chunk outputs is ever
/// resident — never the full trial set.
///
/// # Panics
/// Panics if a worker died before delivering its chunk (a trial panicked).
pub fn run_cell(pool: &ThreadPool, cell: &CellSpec, chunk: u64) -> CellAggregate {
    let chunk = chunk.max(1);
    let n_chunks = cell.trials.div_ceil(chunk);
    let sim = Arc::new(cell.sim.clone());
    let (tx, rx) = mpsc::channel::<(u64, Vec<TrialMetrics>)>();
    for ci in 0..n_chunks {
        let tx = tx.clone();
        let sim = Arc::clone(&sim);
        let (lo, hi) = (ci * chunk, ((ci + 1) * chunk).min(cell.trials));
        let (seed, observer) = (cell.seed, cell.observer);
        pool.execute(move || {
            let out: Vec<TrialMetrics> = (lo..hi)
                .map(|i| TrialMetrics::capture(&sim.run_seeded(derive_seed(seed, i)), observer))
                .collect();
            // The receiver only disappears if the caller panicked; nothing
            // useful to do with the result then.
            let _ = tx.send((ci, out));
        });
    }
    drop(tx);

    let mut agg = CellAggregate::new();
    let mut parked: std::collections::BTreeMap<u64, Vec<TrialMetrics>> =
        std::collections::BTreeMap::new();
    let mut next = 0u64;
    for (ci, out) in rx {
        parked.insert(ci, out);
        while let Some(out) = parked.remove(&next) {
            for m in &out {
                agg.push(m);
            }
            next += 1;
        }
    }
    assert_eq!(
        next, n_chunks,
        "cell {}: worker died before delivering all chunks",
        cell.id
    );
    agg
}

/// Convenience for table drivers: run `trials` trials of `sim` with trial
/// seeds `derive_seed(seed, i)` and report [`ConvergenceStats`] under
/// `metric`. Numerically identical to the materialized
/// `run_trials` + `ConvergenceStats::from_results` pattern it replaces.
pub fn sweep_stats(
    pool: &ThreadPool,
    sim: &SimSpec,
    trials: u64,
    seed: u64,
    metric: HitMetric,
) -> ConvergenceStats {
    let cell = CellSpec::new(sim.clone(), trials, seed).metric(metric);
    run_cell(pool, &cell, DEFAULT_CHUNK).convergence(metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_core::init::InitialCondition;

    fn base_cell() -> CellSpec {
        CellSpec::new(
            SimSpec::new(256).init(InitialCondition::UniformRandom { m: 6 }),
            25,
            0xCE11,
        )
    }

    #[test]
    fn thread_and_chunk_invariance() {
        let cell = base_cell();
        let reference = {
            let pool = ThreadPool::new(1);
            run_cell(&pool, &cell, 4)
        };
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            for chunk in [1, 3, 7, 25, 1000] {
                let agg = run_cell(&pool, &cell, chunk);
                assert_eq!(
                    agg, reference,
                    "aggregate differs at threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn matches_materialized_run() {
        let cell = base_cell();
        let results: Vec<_> = (0..cell.trials)
            .map(|i| cell.sim.run_seeded(derive_seed(cell.seed, i)))
            .collect();
        let materialized = ConvergenceStats::from_results(&results, HitMetric::Consensus);
        let pool = ThreadPool::new(4);
        let streamed = sweep_stats(
            &pool,
            &cell.sim,
            cell.trials,
            cell.seed,
            HitMetric::Consensus,
        );
        assert_eq!(streamed.rounds, materialized.rounds);
        assert_eq!(streamed.hits, materialized.hits);
    }

    #[test]
    fn zero_trials_is_empty() {
        let pool = ThreadPool::new(2);
        let mut cell = base_cell();
        cell.trials = 0;
        let agg = run_cell(&pool, &cell, 8);
        assert_eq!(agg.trials(), 0);
    }
}

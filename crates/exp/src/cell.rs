//! One campaign cell: a simulation spec, a trial budget, and a seed —
//! executed by persistent workers on the shared [`ThreadPool`].
//!
//! Execution model: [`run_cell`] submits **one long-lived job per pool
//! thread** (not one per chunk). Each worker owns a
//! [`TrialWorkspace`] it reuses across every trial it runs, pulls chunk
//! indices from a shared atomic counter, folds each chunk worker-side into
//! a compact [`ChunkAggregate`] partial, and ships the partial (not a
//! `Vec<TrialMetrics>`) back over a channel. The scheduler merges partials
//! in chunk order.
//!
//! Determinism contract: trial `i` of a cell always runs with seed
//! `derive_seed(cell.seed, i)`, trials within a chunk fold in order, and
//! [`CellAggregate::merge`] of chunk-ordered partials is bit-identical to a
//! sequential fold (float observer channels ride along per trial — see
//! [`crate::aggregate::ChunkAggregate`]). The resulting [`CellAggregate`]
//! is therefore a pure function of `(CellSpec)` — independent of thread
//! count, chunk size, and scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use stabcon_core::runner::SimSpec;
use stabcon_core::workspace::TrialWorkspace;
use stabcon_obs::{self as obs, Counter, Hist};
use stabcon_par::ThreadPool;
use stabcon_util::rng::derive_seed;

use crate::aggregate::{fold_net_totals, CellAggregate, ChunkAggregate, TrialMetrics};
use crate::metrics::{ConvergenceStats, HitMetric};
use crate::observer::TrialObserver;
use crate::telemetry::CampaignTelemetry;

/// Smallest auto-tuned chunk: tiny cells must not shatter into one-trial
/// chunks (per-chunk cost is one atomic fetch plus one channel send, but
/// the ordered-merge window grows with chunk count).
const MIN_CHUNK: u64 = 4;

/// Largest auto-tuned chunk: bounds how much work a single straggler chunk
/// can hold hostage at the end of a cell.
const MAX_CHUNK: u64 = 256;

/// Trials per scheduler chunk for a cell of `trials` trials on `threads`
/// workers: aims for at least four chunks per worker (so an unlucky slow
/// chunk load-balances away), clamped to `[4, 256]`.
pub fn chunk_for(trials: u64, threads: usize) -> u64 {
    let workers = threads.max(1) as u64;
    (trials / (4 * workers)).clamp(MIN_CHUNK, MAX_CHUNK)
}

/// The shared chunk cursor, padded to a cache line of its own.
///
/// Every worker hits this counter once per chunk with a `fetch_add`; on
/// multi-socket or ≥ 8-core hosts an unpadded `AtomicU64` false-shares its
/// line with whatever the allocator placed next to it (here: the `Arc`
/// control block's own counts plus neighbouring allocations), so each
/// unrelated write invalidates the cursor line in every worker's cache.
/// 128 bytes covers the two-line prefetch granularity of recent x86 parts.
#[repr(align(128))]
struct ChunkCursor(AtomicU64);

/// A fully specified unit of campaign work.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position in the campaign grid (0 for ad-hoc cells).
    pub id: u64,
    /// The simulation to run.
    pub sim: SimSpec,
    /// Independent trials.
    pub trials: u64,
    /// Cell master seed; trial `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Hitting-time metric this cell reports.
    pub metric: HitMetric,
    /// Extra-metric observer (see [`crate::observer`]).
    pub observer: TrialObserver,
    /// Axis labels for the result store, in column order.
    pub labels: Vec<(String, String)>,
}

impl CellSpec {
    /// An ad-hoc cell with the consensus metric and no labels.
    pub fn new(sim: SimSpec, trials: u64, seed: u64) -> Self {
        Self {
            id: 0,
            sim,
            trials,
            seed,
            metric: HitMetric::Consensus,
            observer: TrialObserver::None,
            labels: Vec::new(),
        }
    }

    /// Set the reported metric.
    pub fn metric(mut self, metric: HitMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Attach a [`TrialObserver`]. A trajectory-needing observer turns on
    /// trajectory recording for the cell's sim — without it every trial
    /// would emit only no-sample sentinels.
    pub fn observer(mut self, observer: TrialObserver) -> Self {
        self.observer = observer;
        if observer.needs_trajectory() {
            self.sim = self.sim.record_trajectory(true);
        }
        self
    }

    /// Append an axis label.
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }
}

/// Run every trial of `cell` on `pool` through persistent workers and fold
/// the results into a streaming [`CellAggregate`].
///
/// One job per pool thread pulls `chunk`-sized trial ranges off a shared
/// counter, reusing its own [`TrialWorkspace`] across all of them, and
/// ships each chunk's compact [`ChunkAggregate`] partial back; the caller
/// merges partials in chunk order, so at most the out-of-order window of
/// partials is ever resident — never the full trial set.
///
/// # Panics
/// Panics if a worker died before delivering its chunks (a trial panicked).
pub fn run_cell(pool: &ThreadPool, cell: &CellSpec, chunk: u64) -> CellAggregate {
    run_cell_monitored(pool, cell, chunk, None)
}

/// [`run_cell`] with optional campaign telemetry attached.
///
/// With `Some(telemetry)` each worker records trial/chunk counters,
/// duration histograms, and the trial's network totals into its
/// [`stabcon_obs`] registry slot, and the in-order merger reports progress
/// after every merge. Telemetry is observation-only: it never touches
/// trial seeds, fold order, or the aggregate, so the result — and any
/// store built from it — is byte-identical with telemetry on or off
/// (pinned by `tests/telemetry_props.rs`).
pub fn run_cell_monitored(
    pool: &ThreadPool,
    cell: &CellSpec,
    chunk: u64,
    mut telemetry: Option<&mut CampaignTelemetry>,
) -> CellAggregate {
    let chunk = chunk.max(1);
    let n_chunks = cell.trials.div_ceil(chunk);
    if n_chunks == 0 {
        return CellAggregate::new();
    }
    let workers = pool.threads().max(1).min(n_chunks as usize);
    let registry = telemetry.as_ref().map(|t| t.registry());
    let sim = Arc::new(cell.sim.clone());
    let next_chunk = Arc::new(ChunkCursor(AtomicU64::new(0)));
    let collect_floats = cell.observer.has_float_channels();
    let (tx, rx) = mpsc::channel::<(u64, ChunkAggregate)>();
    for w in 0..workers {
        let tx = tx.clone();
        let sim = Arc::clone(&sim);
        let next_chunk = Arc::clone(&next_chunk);
        let registry = registry.clone();
        let (seed, observer, trials) = (cell.seed, cell.observer, cell.trials);
        pool.execute(move || {
            let handle = registry.as_deref().map(|r| r.handle(w));
            let mut ws = TrialWorkspace::new();
            loop {
                let ci = next_chunk.0.fetch_add(1, Ordering::Relaxed);
                if ci >= n_chunks {
                    // Phase nanos from the trial-side timers still sit in
                    // this thread's local accumulator; publish them.
                    if let Some(h) = &handle {
                        h.drain_local();
                    }
                    return;
                }
                let chunk_clock = obs::stopwatch();
                let (lo, hi) = (ci * chunk, ((ci + 1) * chunk).min(trials));
                let mut part = ChunkAggregate::with_capacity(collect_floats, (hi - lo) as usize);
                for i in lo..hi {
                    let trial_clock = obs::stopwatch();
                    let result = sim.run_seeded_into(derive_seed(seed, i), &mut ws);
                    if let Some(h) = &handle {
                        if let Some(nanos) = trial_clock.elapsed_nanos() {
                            obs::hist_record(Hist::TrialNanos, nanos);
                        }
                        h.add(Counter::Trials, 1);
                        h.add(Counter::Rounds, result.rounds_executed);
                        if let Some(totals) = &result.net_totals {
                            fold_net_totals(h, totals);
                        }
                    }
                    part.push(&TrialMetrics::capture(&result, observer));
                    ws.recycle(result);
                }
                if let Some(h) = &handle {
                    if let Some(nanos) = chunk_clock.elapsed_nanos() {
                        obs::hist_record(Hist::ChunkNanos, nanos);
                    }
                    h.add(Counter::Chunks, 1);
                    h.drain_local();
                }
                // The receiver only disappears if the caller panicked;
                // nothing useful to do with further chunks then.
                if tx.send((ci, part)).is_err() {
                    return;
                }
            }
        });
    }
    drop(tx);

    let mut agg = CellAggregate::new();
    let mut parked: std::collections::BTreeMap<u64, ChunkAggregate> =
        std::collections::BTreeMap::new();
    let mut next = 0u64;
    for (ci, part) in rx {
        parked.insert(ci, part);
        while let Some(part) = parked.remove(&next) {
            agg.merge(&part);
            next += 1;
        }
        if let Some(t) = telemetry.as_deref_mut() {
            let issued = next_chunk.0.load(Ordering::Relaxed).min(n_chunks);
            t.on_chunk_merged(agg.trials(), issued, next);
        }
    }
    assert_eq!(
        next, n_chunks,
        "cell {}: worker died before delivering all chunks",
        cell.id
    );
    agg
}

/// Convenience for table drivers: run `trials` trials of `sim` with trial
/// seeds `derive_seed(seed, i)` and report [`ConvergenceStats`] under
/// `metric`. Numerically identical to the materialized
/// `run_trials` + `ConvergenceStats::from_results` pattern it replaces.
pub fn sweep_stats(
    pool: &ThreadPool,
    sim: &SimSpec,
    trials: u64,
    seed: u64,
    metric: HitMetric,
) -> ConvergenceStats {
    let cell = CellSpec::new(sim.clone(), trials, seed).metric(metric);
    run_cell(pool, &cell, chunk_for(trials, pool.threads())).convergence(metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_core::init::InitialCondition;

    fn base_cell() -> CellSpec {
        CellSpec::new(
            SimSpec::new(256).init(InitialCondition::UniformRandom { m: 6 }),
            25,
            0xCE11,
        )
    }

    #[test]
    fn thread_and_chunk_invariance() {
        let cell = base_cell();
        let reference = {
            let pool = ThreadPool::new(1);
            run_cell(&pool, &cell, 4)
        };
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            for chunk in [1, 3, 7, 25, 1000] {
                let agg = run_cell(&pool, &cell, chunk);
                assert_eq!(
                    agg, reference,
                    "aggregate differs at threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn matches_materialized_run() {
        let cell = base_cell();
        let results: Vec<_> = (0..cell.trials)
            .map(|i| cell.sim.run_seeded(derive_seed(cell.seed, i)))
            .collect();
        let materialized = ConvergenceStats::from_results(&results, HitMetric::Consensus);
        let pool = ThreadPool::new(4);
        let streamed = sweep_stats(
            &pool,
            &cell.sim,
            cell.trials,
            cell.seed,
            HitMetric::Consensus,
        );
        assert_eq!(streamed.rounds, materialized.rounds);
        assert_eq!(streamed.hits, materialized.hits);
    }

    #[test]
    fn chunk_for_targets_four_chunks_per_worker() {
        assert_eq!(chunk_for(1000, 1), 250, "trials/4 for one worker");
        assert_eq!(chunk_for(1000, 8), 31, "trials/32 for eight workers");
        assert_eq!(chunk_for(10_000_000, 8), 256, "capped above");
        assert_eq!(chunk_for(3, 8), 4, "tiny cells don't shatter");
        assert_eq!(chunk_for(0, 4), 4, "degenerate cell still valid");
        // Every worker gets ≥ 4 chunks once the cell is large enough.
        for threads in [1usize, 2, 8, 16] {
            let trials = 100_000u64;
            let chunks = trials.div_ceil(chunk_for(trials, threads));
            assert!(
                chunks >= 4 * threads as u64,
                "threads={threads}: only {chunks} chunks"
            );
        }
    }

    #[test]
    fn zero_trials_is_empty() {
        let pool = ThreadPool::new(2);
        let mut cell = base_cell();
        cell.trials = 0;
        let agg = run_cell(&pool, &cell, 8);
        assert_eq!(agg.trials(), 0);
    }
}

//! A deterministic chaos proxy for the fabric: an in-process TCP proxy
//! that injects WAN-grade faults — delayed flushes, duplicated frames,
//! torn writes, and mid-frame disconnects — between `stabcon work` and
//! `stabcon serve`.
//!
//! Faults are drawn the same way `NetScenario` draws simulated network
//! faults: a counter-based [`hash3`] keyed on `(seed, stream, frame)`,
//! where `stream` identifies one direction of one proxied connection and
//! `frame` is the newline-delimited frame index on it. [`fault_for`] is a
//! pure function — no RNG state, no wall clock — so a fault pattern is
//! reproducible from its seed, and property tests can enumerate draws
//! without opening a socket.
//!
//! The point of the proxy is the *contract* it lets the integration tests
//! pin: the final store of a campaign run through any chaos seed is
//! **byte-identical** to a clean single-host run. Every fault the proxy
//! injects maps to a recovery path that preserves that guarantee:
//!
//! | fault | what the fabric does |
//! |---|---|
//! | delayed flush | lease heartbeats keep slow links from expiring leases |
//! | duplicated frame | server dedupes Results; worker resyncs via reconnect |
//! | torn write | frames reassemble (TCP); partial lines never decode |
//! | mid-frame cut | both sides drop the session; worker reconnects with backoff, resubmits idempotently |

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stabcon_util::rng::hash3;

/// Fault mix and seed for one proxy instance. Rates are permille (out of
/// 1000) per frame, drawn independently per `(stream, frame)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed for the counter-based fault draws.
    pub seed: u64,
    /// ‰ of frames whose write is delayed by up to [`ChaosSpec::delay_ms_max`].
    pub delay_permille: u16,
    /// ‰ of frames written twice back-to-back.
    pub dup_permille: u16,
    /// ‰ of frames written in two flushes split mid-frame.
    pub tear_permille: u16,
    /// ‰ of frames after whose *partial* write both sides of the
    /// connection are torn down (mid-frame disconnect).
    pub cut_permille: u16,
    /// Upper bound (exclusive is +1) for injected delays, in ms.
    pub delay_ms_max: u64,
}

impl ChaosSpec {
    /// A mild WAN: occasional delays and duplicates, rare tears and cuts.
    /// The integration-test default — enough chaos to exercise every
    /// recovery path across a few hundred frames without stalling a test
    /// run on endless reconnects.
    pub fn mild(seed: u64) -> Self {
        Self {
            seed,
            delay_permille: 60,
            dup_permille: 40,
            tear_permille: 40,
            cut_permille: 12,
            delay_ms_max: 30,
        }
    }

    /// A hostile WAN: frequent everything. For manual soak runs.
    pub fn nasty(seed: u64) -> Self {
        Self {
            seed,
            delay_permille: 150,
            dup_permille: 100,
            tear_permille: 100,
            cut_permille: 50,
            delay_ms_max: 120,
        }
    }
}

/// The fate of one proxied frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward untouched.
    Pass,
    /// Sleep this many ms, then forward.
    Delay(u64),
    /// Forward the frame twice.
    Duplicate,
    /// Forward in two flushes, split at this byte offset (clamped to the
    /// frame interior at apply time).
    Tear(usize),
    /// Write only this many bytes of the frame (clamped to the frame
    /// interior), then tear the connection down in both directions.
    Cut(usize),
}

/// The pure fault draw: what happens to frame number `frame` on stream
/// `stream` under `spec`. Two independent [`hash3`] words — one picks the
/// fate against the cumulative permille thresholds, one sizes the
/// magnitude (delay ms / split offset) — so changing a rate never reshuffles
/// the magnitudes of surviving faults.
pub fn fault_for(spec: &ChaosSpec, stream: u64, frame: u64) -> Fault {
    let fate = hash3(spec.seed, stream, frame) % 1000;
    let magnitude = hash3(spec.seed ^ 0x00c0_ffee, stream, frame);
    let cut = spec.cut_permille as u64;
    let tear = cut + spec.tear_permille as u64;
    let dup = tear + spec.dup_permille as u64;
    let delay = dup + spec.delay_permille as u64;
    if fate < cut {
        Fault::Cut(1 + (magnitude % 64) as usize)
    } else if fate < tear {
        Fault::Tear(1 + (magnitude % 64) as usize)
    } else if fate < dup {
        Fault::Duplicate
    } else if fate < delay {
        Fault::Delay(1 + magnitude % spec.delay_ms_max.max(1))
    } else {
        Fault::Pass
    }
}

/// One direction of one proxied connection: read newline-delimited frames
/// from `src`, apply each frame's drawn fault, forward to `dst`.
fn pump(src: TcpStream, mut dst: TcpStream, spec: ChaosSpec, stream_id: u64) {
    let src_shutdown = src.try_clone().ok();
    let mut reader = BufReader::new(src);
    let mut frame: u64 = 0;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let forward = |dst: &mut TcpStream, bytes: &[u8]| -> bool {
            dst.write_all(bytes).and_then(|()| dst.flush()).is_ok()
        };
        let ok = match fault_for(&spec, stream_id, frame) {
            Fault::Pass => forward(&mut dst, &buf),
            Fault::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                forward(&mut dst, &buf)
            }
            Fault::Duplicate => forward(&mut dst, &buf) && forward(&mut dst, &buf),
            Fault::Tear(at) => {
                let at = at.min(buf.len().saturating_sub(1)).max(1);
                let first = forward(&mut dst, &buf[..at]);
                // A beat between the halves so the peer really observes a
                // partial read, not one coalesced segment.
                std::thread::sleep(Duration::from_millis(1));
                first && forward(&mut dst, &buf[at..])
            }
            Fault::Cut(at) => {
                let at = at.min(buf.len().saturating_sub(1)).max(1);
                let _ = forward(&mut dst, &buf[..at]);
                false // fall through to the shutdown below
            }
        };
        if !ok {
            break;
        }
        frame += 1;
    }
    // Mid-frame cut or dead peer: kill both directions so neither side
    // waits on a half-open connection.
    let _ = dst.shutdown(Shutdown::Both);
    if let Some(s) = src_shutdown {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// An in-process chaos TCP proxy. [`ChaosProxy::bind`] it between workers
/// and a serve daemon, [`ChaosProxy::run`] it on a thread, and flip the
/// [`ChaosProxy::stop_handle`] when the campaign is done.
pub struct ChaosProxy {
    listener: TcpListener,
    upstream: String,
    spec: ChaosSpec,
    stop: Arc<AtomicBool>,
}

impl ChaosProxy {
    /// Listen on `listen` (`host:port`, port 0 picks a free one) and
    /// forward every connection to `upstream` through the fault injector.
    pub fn bind(listen: &str, upstream: &str, spec: ChaosSpec) -> Result<Self, String> {
        let listener =
            TcpListener::bind(listen).map_err(|e| format!("chaos: bind {listen}: {e}"))?;
        Ok(Self {
            listener,
            upstream: upstream.to_string(),
            spec,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves a `:0` port).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("chaos: local_addr: {e}"))
    }

    /// Flag that makes [`ChaosProxy::run`] return. Existing connections
    /// keep pumping until their endpoints hang up.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accept-and-proxy until the stop flag flips. Returns the number of
    /// connections proxied. Each connection gets two pump threads — client
    /// to upstream on stream id `2n`, upstream to client on `2n + 1` — so
    /// the two directions draw independent fault streams.
    pub fn run(self) -> Result<u64, String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("chaos: set_nonblocking: {e}"))?;
        let mut conns: u64 = 0;
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((client, _)) => {
                    conns += 1;
                    let Ok(up) = TcpStream::connect(&self.upstream) else {
                        // Upstream down (e.g. server restarting): refuse by
                        // hangup; the worker's backoff handles the rest.
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let (Ok(client_r), Ok(up_r)) = (client.try_clone(), up.try_clone()) else {
                        continue;
                    };
                    let spec = self.spec;
                    let n = conns;
                    std::thread::spawn(move || pump(client_r, up, spec, 2 * n));
                    std::thread::spawn(move || pump(up_r, client, spec, 2 * n + 1));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(format!("chaos: accept: {e}")),
            }
        }
        Ok(conns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_draws_are_pure_and_seed_sensitive() {
        let spec = ChaosSpec::mild(42);
        for stream in 0..4u64 {
            for frame in 0..64u64 {
                assert_eq!(
                    fault_for(&spec, stream, frame),
                    fault_for(&spec, stream, frame),
                    "same (seed, stream, frame) must draw the same fault"
                );
            }
        }
        // A different seed reshuffles the pattern.
        let a: Vec<Fault> = (0..256)
            .map(|f| fault_for(&ChaosSpec::mild(1), 0, f))
            .collect();
        let b: Vec<Fault> = (0..256)
            .map(|f| fault_for(&ChaosSpec::mild(2), 0, f))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_rates_track_the_spec_permilles() {
        let spec = ChaosSpec::nasty(7);
        let n = 20_000u64;
        let mut counts = [0u64; 5];
        for frame in 0..n {
            let idx = match fault_for(&spec, 0, frame) {
                Fault::Pass => 0,
                Fault::Delay(ms) => {
                    assert!((1..=spec.delay_ms_max).contains(&ms));
                    1
                }
                Fault::Duplicate => 2,
                Fault::Tear(_) => 3,
                Fault::Cut(_) => 4,
            };
            counts[idx] += 1;
        }
        let expect = |permille: u16| (n * permille as u64) / 1000;
        for (idx, permille) in [
            (1, spec.delay_permille),
            (2, spec.dup_permille),
            (3, spec.tear_permille),
            (4, spec.cut_permille),
        ] {
            let e = expect(permille);
            assert!(
                counts[idx] > e / 2 && counts[idx] < e * 2,
                "fault class {idx}: {} draws vs ~{e} expected",
                counts[idx]
            );
        }
    }

    #[test]
    fn zeroed_spec_always_passes() {
        let spec = ChaosSpec {
            seed: 9,
            delay_permille: 0,
            dup_permille: 0,
            tear_permille: 0,
            cut_permille: 0,
            delay_ms_max: 1,
        };
        assert!((0..1000).all(|f| fault_for(&spec, 3, f) == Fault::Pass));
    }
}

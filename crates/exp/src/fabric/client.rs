//! One-shot control-plane clients for a queue-mode `stabcon serve` daemon:
//! submit a campaign, query the live status plane, cancel a job. Each call
//! dials, speaks `stabcon-fabric/2`, and hangs up — no retry loop, because
//! a control action either happened or it didn't, and the caller (the CLI)
//! should report which.
//!
//! The determinism contract rides along on submission: the client builds
//! the campaign from the same [`SpecDescriptor`] it ships and sends its
//! grid fingerprint; the daemon rebuilds and compares before admitting, so
//! a version skew between client and daemon binaries is caught at submit
//! time — not after a store full of mismatched bytes.

use std::io::{BufRead, BufReader, Lines, Write as _};
use std::net::TcpStream;

use super::protocol::{Msg, SpecDescriptor, FABRIC_SCHEMA_V2};

/// One `/2` control connection, from handshake to drop.
struct Control {
    stream: TcpStream,
    lines: Lines<BufReader<TcpStream>>,
}

impl Control {
    fn connect(addr: &str, client: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = stream
            .try_clone()
            .map_err(|e| format!("clone connection: {e}"))?;
        let mut control = Self {
            stream,
            lines: BufReader::new(reader).lines(),
        };
        control.send(&Msg::Hello {
            schema: FABRIC_SCHEMA_V2.into(),
            worker: client.into(),
            fingerprint: String::new(),
        })?;
        match control.recv()? {
            Msg::Welcome { .. } => Ok(control),
            Msg::Reject { reason } => Err(format!("{addr}: rejected: {reason}")),
            other => Err(format!("{addr}: unexpected handshake reply {other:?}")),
        }
    }

    fn send(&mut self, msg: &Msg) -> Result<(), String> {
        self.stream
            .write_all(msg.encode().as_bytes())
            .and_then(|_| self.stream.write_all(b"\n"))
            .and_then(|_| self.stream.flush())
            .map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<Msg, String> {
        let line = self
            .lines
            .next()
            .ok_or("server closed the connection")?
            .map_err(|e| format!("read: {e}"))?;
        Msg::decode(&line)
    }
}

/// What the daemon admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Queue-assigned job id (stable across daemon restarts — quote it to
    /// `stabcon status --campaign` / `stabcon cancel`).
    pub job: u64,
    /// Cells in the expanded grid.
    pub cells: u64,
    /// Daemon-side store path for the job.
    pub store: String,
}

/// One job's row in the status plane.
#[derive(Debug, Clone, PartialEq)]
pub struct JobInfo {
    /// Queue-assigned job id.
    pub job: u64,
    /// Campaign name.
    pub name: String,
    /// Lifecycle state label (`queued` … `failed`).
    pub state: String,
    /// Submitting client.
    pub client: String,
    /// Total cells in the grid.
    pub cells: u64,
    /// Cells in the daemon's store (written prefix + parked).
    pub written: u64,
    /// Trials ingested so far.
    pub trials: u64,
    /// Seconds running (frozen at the terminal transition).
    pub elapsed_secs: f64,
}

impl JobInfo {
    /// Ingested trials per second of runtime (0 before the job starts).
    pub fn trials_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.trials as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// The daemon's queue summary plus the requested job rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueStatus {
    /// Whether new submissions are admitted (false while draining).
    pub accepting: bool,
    /// Jobs waiting for an activation slot.
    pub queued: u64,
    /// Jobs running or draining.
    pub running: u64,
    /// Jobs fully written.
    pub done: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Per-job rows (all jobs, or the one requested).
    pub jobs: Vec<JobInfo>,
}

/// Submit `desc` to the daemon at `addr` as `client`. Builds the campaign
/// locally first — a descriptor that doesn't build never goes on the wire —
/// and sends the local grid fingerprint for the daemon to verify.
pub fn submit_campaign(
    addr: &str,
    client: &str,
    desc: &SpecDescriptor,
) -> Result<SubmitOutcome, String> {
    let spec = desc.build()?;
    let fingerprint = format!("{:016x}", spec.fingerprint());
    let mut control = Control::connect(addr, client)?;
    control.send(&Msg::Submit {
        client: client.into(),
        spec: desc.clone(),
        fingerprint,
    })?;
    let outcome = match control.recv()? {
        Msg::Accepted { job, cells, store } => Ok(SubmitOutcome { job, cells, store }),
        Msg::Rejected { code, reason } => Err(format!("submission rejected ({code}): {reason}")),
        other => Err(format!("unexpected reply {other:?}")),
    };
    let _ = control.send(&Msg::Goodbye);
    outcome
}

/// Query the daemon's status plane: the queue summary plus every job's row
/// (or just `job`'s, when set).
pub fn query_status(addr: &str, client: &str, job: Option<u64>) -> Result<QueueStatus, String> {
    let mut control = Control::connect(addr, client)?;
    control.send(&Msg::Status { job })?;
    let mut status = match control.recv()? {
        Msg::StatusReport {
            accepting,
            queued,
            running,
            done,
            cancelled,
            failed,
            jobs,
        } => {
            let mut status = QueueStatus {
                accepting,
                queued,
                running,
                done,
                cancelled,
                failed,
                jobs: Vec::with_capacity(jobs as usize),
            };
            for _ in 0..jobs {
                match control.recv()? {
                    Msg::JobStatus {
                        job,
                        name,
                        state,
                        client,
                        cells,
                        written,
                        trials,
                        elapsed_secs,
                    } => status.jobs.push(JobInfo {
                        job,
                        name,
                        state,
                        client,
                        cells,
                        written,
                        trials,
                        elapsed_secs,
                    }),
                    other => return Err(format!("unexpected status row {other:?}")),
                }
            }
            Ok(status)
        }
        Msg::Rejected { code, reason } => Err(format!("status rejected ({code}): {reason}")),
        other => Err(format!("unexpected reply {other:?}")),
    }?;
    let _ = control.send(&Msg::Goodbye);
    status.jobs.sort_by_key(|j| j.job);
    Ok(status)
}

/// Cancel `job` on the daemon at `addr`. Returns the resulting lifecycle
/// state label (always `cancelled` today).
pub fn cancel_job(addr: &str, client: &str, job: u64) -> Result<String, String> {
    let mut control = Control::connect(addr, client)?;
    control.send(&Msg::Cancel { job })?;
    let outcome = match control.recv()? {
        Msg::Cancelled { job: j, state } if j == job => Ok(state),
        Msg::Rejected { code, reason } => Err(format!("cancel rejected ({code}): {reason}")),
        other => Err(format!("unexpected reply {other:?}")),
    };
    let _ = control.send(&Msg::Goodbye);
    outcome
}

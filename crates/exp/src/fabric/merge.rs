//! Fingerprint-checked merge of per-shard stores into the canonical
//! single-host store, byte-for-byte.
//!
//! The merge never re-serializes a record: it validates each shard with
//! [`crate::store::load`], then moves the shard's **raw cell lines** into
//! the output, re-sorted into canonical cell-index order under the shared
//! header line. Because every cell line is a pure function of its
//! [`crate::cell::CellSpec`] (and the header is a pure function of the
//! spec), the merged file is byte-identical to the store one host would
//! have written — `cmp` against a single-host run is the CI check.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use stabcon_util::jsonl::{get, parse_flat, JsonScalar};

use crate::store::{self, StoreHeader};
use crate::telemetry::{timings_path, TIMINGS_SCHEMA};

/// What a merge produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Cells in the merged store (equals the grid size).
    pub cells: u64,
    /// Input shard stores consumed.
    pub shards: usize,
    /// Bytes written to the merged store.
    pub bytes: u64,
    /// Whether a merged timings sidecar was written (at least one shard
    /// brought one).
    pub timings_merged: bool,
}

/// One shard store's validated contents: its header plus raw cell lines
/// keyed by cell id.
struct ShardContents {
    path: PathBuf,
    header: StoreHeader,
    lines: Vec<(u64, String)>,
}

/// Compress sorted ids into a compact `0-3, 7, 12-23` listing (capped).
pub(crate) fn format_id_ranges(ids: &[u64], max_ranges: usize) -> String {
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for &id in ids {
        match ranges.last_mut() {
            Some((_, hi)) if *hi + 1 == id => *hi = id,
            _ => ranges.push((id, id)),
        }
    }
    let mut parts: Vec<String> = ranges
        .iter()
        .take(max_ranges)
        .map(|&(lo, hi)| {
            if lo == hi {
                lo.to_string()
            } else {
                format!("{lo}-{hi}")
            }
        })
        .collect();
    if ranges.len() > max_ranges {
        parts.push("…".into());
    }
    parts.join(", ")
}

fn load_shard(path: &Path) -> Result<ShardContents, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let loaded = store::load(path)?;
    let header = loaded
        .header
        .clone()
        .ok_or_else(|| format!("{}: no campaign header — not a shard store", path.display()))?;
    if loaded.valid_len != bytes.len() as u64 {
        return Err(format!(
            "{}: torn or trailing bytes after the valid prefix ({} of {} bytes) — \
             the shard was interrupted; `stabcon campaign resume --shard …` it first",
            path.display(),
            loaded.valid_len,
            bytes.len()
        ));
    }
    // The valid prefix is line-aligned: line 0 is the header, line i+1 is
    // cells[i]. Keep the raw text so the merge is byte-preserving.
    let text = std::str::from_utf8(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    lines.next(); // header
    let raw: Vec<&str> = lines.collect();
    debug_assert_eq!(raw.len(), loaded.cells.len());
    let mut out = Vec::with_capacity(raw.len());
    for (obj, raw) in loaded.cells.iter().zip(raw) {
        let id = get(obj, "cell")
            .and_then(JsonScalar::as_u64)
            .ok_or_else(|| format!("{}: cell record without an id", path.display()))?;
        out.push((id, raw.to_string()));
    }
    Ok(ShardContents {
        path: path.to_path_buf(),
        header,
        lines: out,
    })
}

/// Merge shard stores into the canonical store at `out`.
///
/// Validates that every shard carries the **same header** (same campaign,
/// seed, trials, grid fingerprint) — and, when `expect` is given (the
/// header re-derived from the spec flags), that they match *it* — then
/// checks the shards' cell ids are disjoint and together cover the grid
/// completely, and writes header + cells in canonical cell-index order.
/// Timings sidecars (`<shard>.timings.jsonl`) are merged last-wins in input
/// order into `<out>.timings.jsonl` when any shard has one.
///
/// Refuses to overwrite an existing `out`.
pub fn merge_stores(
    inputs: &[PathBuf],
    out: &Path,
    expect: Option<&StoreHeader>,
) -> Result<MergeOutcome, String> {
    if inputs.is_empty() {
        return Err("merge: no shard stores given (pass --from PATH per shard)".into());
    }
    if out.exists() {
        return Err(format!(
            "{}: merge output exists — refusing to overwrite",
            out.display()
        ));
    }
    let shards: Vec<ShardContents> = inputs
        .iter()
        .map(|p| load_shard(p))
        .collect::<Result<_, _>>()?;

    // Every shard must describe the same grid…
    let header = &shards[0].header;
    for s in &shards[1..] {
        if s.header != *header {
            return Err(format!(
                "{}: shard header disagrees with {} ({} — cannot merge stores \
                 from different campaigns)",
                s.path.display(),
                shards[0].path.display(),
                store::describe_mismatch(&s.header, header)
            ));
        }
    }
    // …and, when the caller re-derived the spec, match it exactly.
    if let Some(expect) = expect {
        if header != expect {
            return Err(format!(
                "shard stores were produced by a different campaign spec ({} — \
                 stored vs requested)",
                store::describe_mismatch(header, expect)
            ));
        }
    }

    // Disjointness: each cell id from exactly one shard.
    let mut by_id: BTreeMap<u64, (usize, &str)> = BTreeMap::new();
    for (si, s) in shards.iter().enumerate() {
        for (id, line) in &s.lines {
            if let Some((prev, _)) = by_id.insert(*id, (si, line)) {
                return Err(format!(
                    "cell {id} appears in both {} and {} — shards overlap \
                     (each cell may be run by exactly one shard)",
                    shards[prev].path.display(),
                    s.path.display()
                ));
            }
        }
    }
    // Completeness: exactly the grid 0..cells.
    let stray: Vec<u64> = by_id
        .keys()
        .copied()
        .filter(|&id| id >= header.cells)
        .collect();
    if !stray.is_empty() {
        return Err(format!(
            "cells beyond the {}-cell grid: {}",
            header.cells,
            format_id_ranges(&stray, 8)
        ));
    }
    let missing: Vec<u64> = (0..header.cells)
        .filter(|id| !by_id.contains_key(id))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "incomplete coverage: cells {}/{} — missing {} (run or resume the \
             missing shard, or check the shard arithmetic)",
            by_id.len(),
            header.cells,
            format_id_ranges(&missing, 8)
        ));
    }

    // Canonical emission: header, then cells in id order, raw bytes.
    let mut buf = String::new();
    buf.push_str(&header.to_line());
    buf.push('\n');
    for (_, line) in by_id.values() {
        buf.push_str(line);
        buf.push('\n');
    }
    std::fs::write(out, &buf).map_err(|e| format!("{}: {e}", out.display()))?;

    // Timings sidecars: advisory wall-clock data, merged last-wins in input
    // order (a re-run cell keeps its latest timing), sorted by cell id.
    let mut timing_lines: BTreeMap<u64, String> = BTreeMap::new();
    let mut any_timings = false;
    for s in &shards {
        let Ok(text) = std::fs::read_to_string(timings_path(&s.path)) else {
            continue;
        };
        any_timings = true;
        for line in text.lines() {
            let Ok(obj) = parse_flat(line) else { continue };
            if let Some(id) = get(&obj, "cell").and_then(JsonScalar::as_u64) {
                timing_lines.insert(id, line.to_string());
            }
        }
    }
    if any_timings {
        let sidecar = timings_path(out);
        let mut f =
            std::fs::File::create(&sidecar).map_err(|e| format!("{}: {e}", sidecar.display()))?;
        writeln!(f, "{{\"schema\": \"{TIMINGS_SCHEMA}\"}}")
            .and_then(|()| {
                timing_lines
                    .values()
                    .try_for_each(|line| writeln!(f, "{line}"))
            })
            .map_err(|e| format!("{}: {e}", sidecar.display()))?;
    }

    Ok(MergeOutcome {
        cells: header.cells,
        shards: shards.len(),
        bytes: buf.len() as u64,
        timings_merged: any_timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_ranges_compress_and_cap() {
        assert_eq!(format_id_ranges(&[], 8), "");
        assert_eq!(format_id_ranges(&[3], 8), "3");
        assert_eq!(format_id_ranges(&[0, 1, 2, 7, 12, 13], 8), "0-2, 7, 12-13");
        assert_eq!(format_id_ranges(&[0, 2, 4, 6], 2), "0, 2, …");
    }

    #[test]
    fn merge_requires_inputs_and_fresh_output() {
        let err = merge_stores(&[], Path::new("/tmp/x.jsonl"), None).unwrap_err();
        assert!(err.contains("no shard stores"), "{err}");
    }
}

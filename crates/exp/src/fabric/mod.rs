//! The multi-host campaign fabric: shard a campaign's cell list across
//! hosts, merge the per-shard stores back into the canonical single-host
//! store byte-for-byte, or skip the batch choreography entirely and run a
//! lease-based `stabcon serve` daemon that hands cells to connecting
//! workers.
//!
//! Everything rests on two properties the store already has:
//!
//! * **cell records are order-independent and pure** — a cell line is a
//!   deterministic function of its [`crate::cell::CellSpec`] alone (trial
//!   seeds derive from the cell seed), so any host produces the identical
//!   bytes for any cell; and
//! * **the header fingerprints the whole grid** — two stores with equal
//!   headers were expanded from the same spec, so their cell sets are
//!   comparable by id.
//!
//! Sharding the cell list therefore shards the whole results table:
//! [`ShardSelection`] picks a disjoint slice per host,
//! [`merge::merge_stores`] validates fingerprints + disjoint/complete
//! coverage and re-sorts cells into canonical cell-index order, and the
//! result is byte-identical to the store one host would have written.
//!
//! The [`serve`] daemon is the online version of the same contract: it
//! leases cell ids to workers over the line-oriented [`protocol`], re-leases
//! cells whose worker died (deterministic seeds make a re-run exact), and
//! appends results to the store in canonical order, so a completed serve
//! store is *also* byte-identical to the single-host run.

//! The fabric is WAN-hardened end to end: workers reconnect with capped
//! jittered backoff and resubmit completed results idempotently, lease
//! heartbeats ([`Msg::Renew`]) keep slow-but-alive cells from being
//! re-leased, the serve store honors an explicit fsync policy and repairs
//! torn tails atomically on resume, and the [`chaos`] proxy injects
//! deterministic WAN faults between the two so the byte-identity contract
//! is pinned under fire, not just in fair weather.
//!
//! On top of the single-campaign lease loop sits the submission plane
//! (`stabcon-fabric/2`): the daemon holds a durable multi-campaign
//! [`queue::JobQueue`] — submissions over the wire with per-client
//! admission quotas, FIFO activation, round-robin leasing across running
//! campaigns, a live status endpoint, and a crash-replayable
//! `stabcon-jobs/1` journal — while `/1` workers keep speaking the
//! original pinned protocol unchanged.

pub mod chaos;
pub mod client;
pub mod merge;
pub mod protocol;
pub mod queue;
pub mod serve;
pub mod shard;
pub mod worker;

pub use chaos::{fault_for, ChaosProxy, ChaosSpec, Fault};
pub use client::{cancel_job, query_status, submit_campaign, JobInfo, QueueStatus, SubmitOutcome};
pub use merge::{merge_stores, MergeOutcome};
pub use protocol::{Msg, SpecDescriptor, FABRIC_SCHEMA, FABRIC_SCHEMA_V2};
pub use queue::{
    job_store_path, jobs_journal_path, open_journal, JobQueue, JobState, JournalEvent,
    QueueConfig, Rejection, JOBS_SCHEMA,
};
pub use serve::{
    Ingest, Parked, QueueOutcome, QueueServeConfig, QueueServer, ServeConfig, ServeOutcome,
    ServeState, Server,
};
pub use shard::{shard_store_path, ShardSelection};
pub use worker::{request_drain, run_worker, run_worker_any, WorkerConfig, WorkerOutcome};

//! The line-oriented fabric protocol (`stabcon-fabric/1`) between
//! `stabcon serve` and `stabcon work`.
//!
//! One flat JSON object per line, encoded with the workspace's own
//! [`stabcon_util::jsonl`] builders — the same escaping the result store
//! uses, so any store/telemetry line survives the wire verbatim (pinned by
//! `tests/fabric_protocol_props.rs`). Every message carries a `kind` field;
//! unknown kinds and malformed lines are decode errors, never silently
//! dropped, because a desynced fabric must fail loudly.
//!
//! The conversation:
//!
//! ```text
//! worker                          server
//!   Hello{schema,worker,fp}  →
//!                            ←  Welcome{campaign,cells}   (fp matches)
//!                            ←  Reject{reason}            (otherwise)
//!   Claim                    →
//!                            ←  Lease{cell,lease_ms}      (a cell is free)
//!                            ←  Wait{retry_ms}            (all leased out)
//!                            ←  Drained                   (all cells done)
//!   Renew{cell}              →     (heartbeat while the cell runs — the
//!                                   server extends the lease deadline, so
//!                                   slow-but-alive ≠ dead; fire-and-forget)
//!   Telemetry{line}          →     (progress stream, zero or more)
//!   Result{cell,line,…}      →
//!   Claim                    →      …and so on until Drained.
//!   Goodbye                  →     (graceful drain: no more claims coming)
//! ```

use stabcon_util::jsonl::{get, parse_flat, JsonObj, JsonScalar};

/// Version tag a worker sends in its [`Msg::Hello`]; the server rejects any
/// other value before looking at the fingerprint.
pub const FABRIC_SCHEMA: &str = "stabcon-fabric/1";

/// One fabric protocol message (one line on the wire).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → server greeting: protocol version, a display name for
    /// progress output, and the worker's locally-computed grid fingerprint
    /// (hex, as in the store header) — the handshake that guarantees both
    /// sides expanded the *same* campaign spec.
    Hello {
        /// Protocol version tag ([`FABRIC_SCHEMA`]).
        schema: String,
        /// Worker display name (host-chosen, for progress lines only).
        worker: String,
        /// Grid fingerprint as 16 lowercase hex digits.
        fingerprint: String,
    },
    /// Server → worker: handshake accepted.
    Welcome {
        /// Campaign name (display only; the fingerprint is the contract).
        campaign: String,
        /// Total cells in the grid.
        cells: u64,
    },
    /// Server → worker: handshake refused (schema or fingerprint mismatch);
    /// the server closes the connection after sending this.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Worker → server: ready for a cell.
    Claim,
    /// Server → worker: run this cell; the lease expires (and the cell is
    /// re-claimable by another worker) after `lease_ms`.
    Lease {
        /// Cell id to run.
        cell: u64,
        /// Lease duration in milliseconds.
        lease_ms: u64,
    },
    /// Server → worker: nothing free right now (all remaining cells are
    /// leased out) — claim again after `retry_ms`.
    Wait {
        /// Suggested retry delay in milliseconds.
        retry_ms: u64,
    },
    /// Server → worker: every cell is done; disconnect.
    Drained,
    /// Worker → server: lease heartbeat — still alive and working on
    /// `cell`; the server pushes the lease deadline out by one lease
    /// duration (if this connection still holds the lease; a renewal for a
    /// reclaimed or foreign lease is ignored). Fire-and-forget: the server
    /// never replies, so renewals can interleave with the request/reply
    /// conversation without desyncing it.
    Renew {
        /// The leased cell being heartbeat.
        cell: u64,
    },
    /// Worker → server: graceful drain (e.g. SIGTERM) — the worker shipped
    /// everything it completed and will not claim again. Distinguishes an
    /// intentional departure from a crash in the server's accounting; the
    /// connection closes after this.
    Goodbye,
    /// Worker → server: one `stabcon-telemetry/1` line (snapshot or
    /// cell_profile), shipped verbatim as the live progress stream.
    Telemetry {
        /// The raw telemetry JSONL line.
        line: String,
    },
    /// Worker → server: one completed cell. `line` is the exact store cell
    /// line (byte-preserved into the server's store); the timing fields are
    /// advisory, for the server's timings sidecar.
    Result {
        /// Cell id (must match the id inside `line`).
        cell: u64,
        /// The raw store cell line.
        line: String,
        /// Wall-clock seconds the cell took on the worker.
        elapsed_secs: f64,
        /// Trials the cell ran.
        trials: u64,
    },
}

impl Msg {
    /// Encode as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Msg::Hello {
                schema,
                worker,
                fingerprint,
            } => JsonObj::new()
                .str_field("kind", "hello")
                .str_field("schema", schema)
                .str_field("worker", worker)
                .str_field("fingerprint", fingerprint)
                .finish(),
            Msg::Welcome { campaign, cells } => JsonObj::new()
                .str_field("kind", "welcome")
                .str_field("campaign", campaign)
                .u64_field("cells", *cells)
                .finish(),
            Msg::Reject { reason } => JsonObj::new()
                .str_field("kind", "reject")
                .str_field("reason", reason)
                .finish(),
            Msg::Claim => JsonObj::new().str_field("kind", "claim").finish(),
            Msg::Lease { cell, lease_ms } => JsonObj::new()
                .str_field("kind", "lease")
                .u64_field("cell", *cell)
                .u64_field("lease_ms", *lease_ms)
                .finish(),
            Msg::Wait { retry_ms } => JsonObj::new()
                .str_field("kind", "wait")
                .u64_field("retry_ms", *retry_ms)
                .finish(),
            Msg::Drained => JsonObj::new().str_field("kind", "drained").finish(),
            Msg::Renew { cell } => JsonObj::new()
                .str_field("kind", "renew")
                .u64_field("cell", *cell)
                .finish(),
            Msg::Goodbye => JsonObj::new().str_field("kind", "goodbye").finish(),
            Msg::Telemetry { line } => JsonObj::new()
                .str_field("kind", "telemetry")
                .str_field("line", line)
                .finish(),
            Msg::Result {
                cell,
                line,
                elapsed_secs,
                trials,
            } => JsonObj::new()
                .str_field("kind", "result")
                .u64_field("cell", *cell)
                .str_field("line", line)
                .f64_field("elapsed_secs", *elapsed_secs)
                .u64_field("trials", *trials)
                .finish(),
        }
    }

    /// Decode one wire line.
    pub fn decode(line: &str) -> Result<Msg, String> {
        let obj = parse_flat(line).map_err(|e| format!("fabric: bad message: {e}"))?;
        let kind = get(&obj, "kind")
            .and_then(JsonScalar::as_str)
            .ok_or("fabric: message without 'kind' field")?;
        let str_f = |key: &str| -> Result<String, String> {
            get(&obj, key)
                .and_then(JsonScalar::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("fabric: {kind} message missing string field '{key}'"))
        };
        let u64_f = |key: &str| -> Result<u64, String> {
            get(&obj, key)
                .and_then(JsonScalar::as_u64)
                .ok_or_else(|| format!("fabric: {kind} message missing integer field '{key}'"))
        };
        match kind {
            "hello" => Ok(Msg::Hello {
                schema: str_f("schema")?,
                worker: str_f("worker")?,
                fingerprint: str_f("fingerprint")?,
            }),
            "welcome" => Ok(Msg::Welcome {
                campaign: str_f("campaign")?,
                cells: u64_f("cells")?,
            }),
            "reject" => Ok(Msg::Reject {
                reason: str_f("reason")?,
            }),
            "claim" => Ok(Msg::Claim),
            "lease" => Ok(Msg::Lease {
                cell: u64_f("cell")?,
                lease_ms: u64_f("lease_ms")?,
            }),
            "wait" => Ok(Msg::Wait {
                retry_ms: u64_f("retry_ms")?,
            }),
            "drained" => Ok(Msg::Drained),
            "renew" => Ok(Msg::Renew {
                cell: u64_f("cell")?,
            }),
            "goodbye" => Ok(Msg::Goodbye),
            "telemetry" => Ok(Msg::Telemetry {
                line: str_f("line")?,
            }),
            "result" => Ok(Msg::Result {
                cell: u64_f("cell")?,
                line: str_f("line")?,
                elapsed_secs: get(&obj, "elapsed_secs")
                    .and_then(JsonScalar::as_f64)
                    .ok_or("fabric: result message missing numeric field 'elapsed_secs'")?,
                trials: u64_f("trials")?,
            }),
            other => Err(format!("fabric: unknown message kind '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        let msgs = [
            Msg::Hello {
                schema: FABRIC_SCHEMA.into(),
                worker: "host-1".into(),
                fingerprint: "00c0ffee00c0ffee".into(),
            },
            Msg::Welcome {
                campaign: "smoke".into(),
                cells: 4,
            },
            Msg::Reject {
                reason: "grid fingerprint mismatch".into(),
            },
            Msg::Claim,
            Msg::Lease {
                cell: 3,
                lease_ms: 30_000,
            },
            Msg::Wait { retry_ms: 250 },
            Msg::Drained,
            Msg::Renew { cell: 3 },
            Msg::Goodbye,
            Msg::Telemetry {
                line: "{\"record\": \"snapshot\", \"cell\": 0}".into(),
            },
            Msg::Result {
                cell: 3,
                line: "{\"cell\": 3, \"mean\": 1.5}".into(),
                elapsed_secs: 0.125,
                trials: 64,
            },
        ];
        for msg in msgs {
            let wire = msg.encode();
            assert!(!wire.contains('\n'), "one line per message: {wire}");
            assert_eq!(Msg::decode(&wire).expect("decode"), msg, "wire: {wire}");
        }
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Msg::decode("{\"kind\": \"warp\"}")
            .unwrap_err()
            .contains("unknown"));
        assert!(Msg::decode("{\"cell\": 3}").unwrap_err().contains("kind"));
        assert!(Msg::decode("not json").is_err());
        // Missing required field.
        assert!(Msg::decode("{\"kind\": \"lease\", \"cell\": 1}")
            .unwrap_err()
            .contains("lease_ms"));
    }
}

//! The line-oriented fabric protocol (`stabcon-fabric/1` and `/2`)
//! between `stabcon serve`, `stabcon work`, and the submission clients
//! (`stabcon submit` / `status` / `cancel`).
//!
//! One flat JSON object per line, encoded with the workspace's own
//! [`stabcon_util::jsonl`] builders — the same escaping the result store
//! uses, so any store/telemetry line survives the wire verbatim (pinned by
//! `tests/fabric_protocol_props.rs`). Every message carries a `kind` field;
//! unknown kinds and malformed lines are decode errors, never silently
//! dropped, because a desynced fabric must fail loudly.
//!
//! The conversation:
//!
//! ```text
//! worker                          server
//!   Hello{schema,worker,fp}  →
//!                            ←  Welcome{campaign,cells}   (fp matches)
//!                            ←  Reject{reason}            (otherwise)
//!   Claim                    →
//!                            ←  Lease{cell,lease_ms}      (a cell is free)
//!                            ←  Wait{retry_ms}            (all leased out)
//!                            ←  Drained                   (all cells done)
//!   Renew{cell}              →     (heartbeat while the cell runs — the
//!                                   server extends the lease deadline, so
//!                                   slow-but-alive ≠ dead; fire-and-forget)
//!   Telemetry{line}          →     (progress stream, zero or more)
//!   Result{cell,line,…}      →
//!   Claim                    →      …and so on until Drained.
//!   Goodbye                  →     (graceful drain: no more claims coming)
//! ```
//!
//! ## Version negotiation (`stabcon-fabric/2`)
//!
//! The `schema` field of the [`Msg::Hello`] is the negotiation. A `/1`
//! hello pins the connection to one campaign by fingerprint and speaks
//! exactly the conversation above — old workers keep working against a
//! queue daemon unmodified. A `/2` hello (fingerprint left empty) opens an
//! *unpinned* session against the daemon's job queue; the same connection
//! can then submit campaigns, poll status, cancel jobs, or claim cells
//! across every running campaign:
//!
//! ```text
//! client                          server
//!   Hello{schema=/2,…,fp=""} →
//!                            ←  Welcome{campaign,cells}   (campaign is the
//!                                 queue label; cells counts live jobs)
//!   Submit{descriptor,fp}    →
//!                            ←  Accepted{job,cells,store}
//!                            ←  Rejected{code,reason}     (bad-spec,
//!                                 over-quota, draining, bad-fingerprint)
//!   Status{job?}             →
//!                            ←  StatusReport{…,jobs} + jobs × JobStatus
//!   Cancel{job}              →
//!                            ←  Cancelled{job,state} | Rejected{…}
//!   Claim                    →
//!                            ←  Lease2{job,cell,descriptor,fp} | Wait |
//!                                 Drained  (queue idle / daemon draining)
//!   Renew2{job,cell}         →
//!   Result2{job,cell,line,…} →
//! ```
//!
//! A `/2` lease ships the campaign's *spec descriptor* (preset name plus
//! the CLI-shaped overrides) so the worker expands the grid locally and
//! verifies the per-campaign fingerprint before running a single trial —
//! the `/1` handshake contract, moved from connection scope to job scope.

use stabcon_util::jsonl::{get, parse_flat, JsonObj, JsonScalar};

/// Version tag a worker sends in its [`Msg::Hello`]; the server rejects any
/// other value before looking at the fingerprint.
pub const FABRIC_SCHEMA: &str = "stabcon-fabric/1";

/// Version tag for an unpinned (queue-aware) session: submission clients
/// and any-campaign workers. The fingerprint in the hello is empty; each
/// job carries its own fingerprint instead.
pub const FABRIC_SCHEMA_V2: &str = "stabcon-fabric/2";

/// The CLI-shaped campaign descriptor shipped inside [`Msg::Submit`] and
/// [`Msg::Lease2`]: a preset name plus the same overrides `stabcon
/// campaign run` accepts on the command line. Shipping the *description*
/// rather than the expanded grid keeps the determinism contract: both
/// sides build and expand the spec themselves and compare fingerprints.
///
/// Optional fields are encoded by omission; `ns` is the CLI's
/// comma-separated list (e.g. `"64,96"`), kept as a string at the wire
/// layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecDescriptor {
    /// Preset name (see `stabcon_exp::presets::PRESET_NAMES`).
    pub preset: String,
    /// Campaign name override (also the submission's display name).
    pub name: Option<String>,
    /// Trials-per-cell override.
    pub trials: Option<u64>,
    /// Master seed override.
    pub seed: Option<u64>,
    /// Population-size list override, comma-separated.
    pub ns: Option<String>,
}

impl SpecDescriptor {
    /// Append the descriptor's fields to a JSON object under construction
    /// (shared with the jobs journal, which records submissions in the
    /// same shape).
    pub(crate) fn encode_into(&self, mut obj: JsonObj) -> JsonObj {
        obj = obj.str_field("preset", &self.preset);
        if let Some(name) = &self.name {
            obj = obj.str_field("name", name);
        }
        if let Some(trials) = self.trials {
            obj = obj.u64_field("trials", trials);
        }
        if let Some(seed) = self.seed {
            obj = obj.u64_field("seed", seed);
        }
        if let Some(ns) = &self.ns {
            obj = obj.str_field("ns", ns);
        }
        obj
    }

    /// Read the descriptor's fields back out of a parsed flat object.
    pub(crate) fn decode_from(
        obj: &stabcon_util::jsonl::FlatObject,
        kind: &str,
    ) -> Result<Self, String> {
        let preset = get(obj, "preset")
            .and_then(JsonScalar::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("fabric: {kind} message missing string field 'preset'"))?;
        let opt_str = |key: &str| -> Result<Option<String>, String> {
            match get(obj, key) {
                None => Ok(None),
                Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
                    format!("fabric: {kind} message field '{key}' must be a string")
                }),
            }
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match get(obj, key) {
                None => Ok(None),
                Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                    format!("fabric: {kind} message field '{key}' must be an integer")
                }),
            }
        };
        Ok(SpecDescriptor {
            preset,
            name: opt_str("name")?,
            trials: opt_u64("trials")?,
            seed: opt_u64("seed")?,
            ns: opt_str("ns")?,
        })
    }
}

/// One fabric protocol message (one line on the wire).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → server greeting: protocol version, a display name for
    /// progress output, and the worker's locally-computed grid fingerprint
    /// (hex, as in the store header) — the handshake that guarantees both
    /// sides expanded the *same* campaign spec.
    Hello {
        /// Protocol version tag ([`FABRIC_SCHEMA`]).
        schema: String,
        /// Worker display name (host-chosen, for progress lines only).
        worker: String,
        /// Grid fingerprint as 16 lowercase hex digits.
        fingerprint: String,
    },
    /// Server → worker: handshake accepted.
    Welcome {
        /// Campaign name (display only; the fingerprint is the contract).
        campaign: String,
        /// Total cells in the grid.
        cells: u64,
    },
    /// Server → worker: handshake refused (schema or fingerprint mismatch);
    /// the server closes the connection after sending this.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Worker → server: ready for a cell.
    Claim,
    /// Server → worker: run this cell; the lease expires (and the cell is
    /// re-claimable by another worker) after `lease_ms`.
    Lease {
        /// Cell id to run.
        cell: u64,
        /// Lease duration in milliseconds.
        lease_ms: u64,
    },
    /// Server → worker: nothing free right now (all remaining cells are
    /// leased out) — claim again after `retry_ms`.
    Wait {
        /// Suggested retry delay in milliseconds.
        retry_ms: u64,
    },
    /// Server → worker: every cell is done; disconnect.
    Drained,
    /// Worker → server: lease heartbeat — still alive and working on
    /// `cell`; the server pushes the lease deadline out by one lease
    /// duration (if this connection still holds the lease; a renewal for a
    /// reclaimed or foreign lease is ignored). Fire-and-forget: the server
    /// never replies, so renewals can interleave with the request/reply
    /// conversation without desyncing it.
    Renew {
        /// The leased cell being heartbeat.
        cell: u64,
    },
    /// Worker → server: graceful drain (e.g. SIGTERM) — the worker shipped
    /// everything it completed and will not claim again. Distinguishes an
    /// intentional departure from a crash in the server's accounting; the
    /// connection closes after this.
    Goodbye,
    /// Worker → server: one `stabcon-telemetry/1` line (snapshot or
    /// cell_profile), shipped verbatim as the live progress stream.
    Telemetry {
        /// The raw telemetry JSONL line.
        line: String,
    },
    /// Worker → server: one completed cell. `line` is the exact store cell
    /// line (byte-preserved into the server's store); the timing fields are
    /// advisory, for the server's timings sidecar.
    Result {
        /// Cell id (must match the id inside `line`).
        cell: u64,
        /// The raw store cell line.
        line: String,
        /// Wall-clock seconds the cell took on the worker.
        elapsed_secs: f64,
        /// Trials the cell ran.
        trials: u64,
    },
    /// Client → server (`/2`): submit a campaign. The client builds the
    /// spec locally and sends its fingerprint; the server re-builds from
    /// the same descriptor and refuses on mismatch — the submission-side
    /// version of the worker handshake.
    Submit {
        /// Submitting client's name (admission quota is per client).
        client: String,
        /// The campaign, as preset + overrides.
        spec: SpecDescriptor,
        /// Client-side grid fingerprint as 16 lowercase hex digits.
        fingerprint: String,
    },
    /// Server → client (`/2`): submission admitted and journaled.
    Accepted {
        /// Queue-assigned job id (stable across daemon restarts).
        job: u64,
        /// Total cells in the expanded grid.
        cells: u64,
        /// Daemon-side per-job store path (informational).
        store: String,
    },
    /// Server → client (`/2`): submission (or cancel) refused. The
    /// connection stays open — a rejection never poisons the queue.
    Rejected {
        /// Machine-readable refusal code: `bad-spec`, `over-quota`,
        /// `draining`, `bad-fingerprint`, `unknown-job`, or `terminal-job`.
        code: String,
        /// Human-readable detail.
        reason: String,
    },
    /// Client → server (`/2`): report queue state — for every job, or for
    /// one job if `job` is set.
    Status {
        /// Restrict the report to this job id (encoded by omission).
        job: Option<u64>,
    },
    /// Server → client (`/2`): queue summary. Exactly `jobs` ×
    /// [`Msg::JobStatus`] frames follow on the same connection.
    StatusReport {
        /// Whether new submissions are currently admitted (false once the
        /// daemon is draining toward shutdown).
        accepting: bool,
        /// Jobs waiting for a free activation slot.
        queued: u64,
        /// Jobs currently running or draining.
        running: u64,
        /// Jobs fully written to their stores.
        done: u64,
        /// Jobs cancelled before completion.
        cancelled: u64,
        /// Jobs that failed (store I/O on activation).
        failed: u64,
        /// Number of `JobStatus` frames that follow.
        jobs: u64,
    },
    /// Server → client (`/2`): one job's status line, following a
    /// [`Msg::StatusReport`].
    JobStatus {
        /// Queue-assigned job id.
        job: u64,
        /// Campaign name.
        name: String,
        /// Lifecycle state: `queued`, `running`, `draining`, `done`,
        /// `cancelled`, or `failed`.
        state: String,
        /// Submitting client.
        client: String,
        /// Total cells in the grid.
        cells: u64,
        /// Cells flushed to the store (contiguous prefix) plus parked.
        written: u64,
        /// Trials ingested so far (basis for the trials/s rate).
        trials: u64,
        /// Wall-clock seconds since the job started running (0 if queued).
        elapsed_secs: f64,
    },
    /// Client → server (`/2`): cancel a job in any non-terminal state.
    Cancel {
        /// Job id to cancel.
        job: u64,
    },
    /// Server → client (`/2`): cancel acknowledged; `state` is the job's
    /// resulting lifecycle state (always `cancelled`).
    Cancelled {
        /// The cancelled job id.
        job: u64,
        /// Resulting lifecycle state.
        state: String,
    },
    /// Server → worker (`/2`): run this cell of this job. Carries the
    /// job's spec descriptor and fingerprint so an any-campaign worker can
    /// expand the grid locally and verify it before running — the `/1`
    /// handshake, per job instead of per connection.
    Lease2 {
        /// Job id the cell belongs to.
        job: u64,
        /// Cell id to run.
        cell: u64,
        /// Lease duration in milliseconds.
        lease_ms: u64,
        /// The job's campaign descriptor.
        spec: SpecDescriptor,
        /// The job's grid fingerprint as 16 lowercase hex digits.
        fingerprint: String,
    },
    /// Worker → server (`/2`): one completed cell of one job. Semantics of
    /// [`Msg::Result`], plus the job tag (cell ids alone are ambiguous
    /// across campaigns).
    Result2 {
        /// Job id the cell belongs to.
        job: u64,
        /// Cell id (must match the id inside `line`).
        cell: u64,
        /// The raw store cell line.
        line: String,
        /// Wall-clock seconds the cell took on the worker.
        elapsed_secs: f64,
        /// Trials the cell ran.
        trials: u64,
    },
    /// Worker → server (`/2`): lease heartbeat for one job's cell.
    /// Fire-and-forget, like [`Msg::Renew`].
    Renew2 {
        /// Job id the cell belongs to.
        job: u64,
        /// The leased cell being heartbeat.
        cell: u64,
    },
}

impl Msg {
    /// Encode as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Msg::Hello {
                schema,
                worker,
                fingerprint,
            } => JsonObj::new()
                .str_field("kind", "hello")
                .str_field("schema", schema)
                .str_field("worker", worker)
                .str_field("fingerprint", fingerprint)
                .finish(),
            Msg::Welcome { campaign, cells } => JsonObj::new()
                .str_field("kind", "welcome")
                .str_field("campaign", campaign)
                .u64_field("cells", *cells)
                .finish(),
            Msg::Reject { reason } => JsonObj::new()
                .str_field("kind", "reject")
                .str_field("reason", reason)
                .finish(),
            Msg::Claim => JsonObj::new().str_field("kind", "claim").finish(),
            Msg::Lease { cell, lease_ms } => JsonObj::new()
                .str_field("kind", "lease")
                .u64_field("cell", *cell)
                .u64_field("lease_ms", *lease_ms)
                .finish(),
            Msg::Wait { retry_ms } => JsonObj::new()
                .str_field("kind", "wait")
                .u64_field("retry_ms", *retry_ms)
                .finish(),
            Msg::Drained => JsonObj::new().str_field("kind", "drained").finish(),
            Msg::Renew { cell } => JsonObj::new()
                .str_field("kind", "renew")
                .u64_field("cell", *cell)
                .finish(),
            Msg::Goodbye => JsonObj::new().str_field("kind", "goodbye").finish(),
            Msg::Telemetry { line } => JsonObj::new()
                .str_field("kind", "telemetry")
                .str_field("line", line)
                .finish(),
            Msg::Result {
                cell,
                line,
                elapsed_secs,
                trials,
            } => JsonObj::new()
                .str_field("kind", "result")
                .u64_field("cell", *cell)
                .str_field("line", line)
                .f64_field("elapsed_secs", *elapsed_secs)
                .u64_field("trials", *trials)
                .finish(),
            Msg::Submit {
                client,
                spec,
                fingerprint,
            } => spec
                .encode_into(
                    JsonObj::new()
                        .str_field("kind", "submit")
                        .str_field("client", client),
                )
                .str_field("fingerprint", fingerprint)
                .finish(),
            Msg::Accepted { job, cells, store } => JsonObj::new()
                .str_field("kind", "accepted")
                .u64_field("job", *job)
                .u64_field("cells", *cells)
                .str_field("store", store)
                .finish(),
            Msg::Rejected { code, reason } => JsonObj::new()
                .str_field("kind", "rejected")
                .str_field("code", code)
                .str_field("reason", reason)
                .finish(),
            Msg::Status { job } => {
                let obj = JsonObj::new().str_field("kind", "status");
                match job {
                    Some(id) => obj.u64_field("job", *id).finish(),
                    None => obj.finish(),
                }
            }
            Msg::StatusReport {
                accepting,
                queued,
                running,
                done,
                cancelled,
                failed,
                jobs,
            } => JsonObj::new()
                .str_field("kind", "status_report")
                .bool_field("accepting", *accepting)
                .u64_field("queued", *queued)
                .u64_field("running", *running)
                .u64_field("done", *done)
                .u64_field("cancelled", *cancelled)
                .u64_field("failed", *failed)
                .u64_field("jobs", *jobs)
                .finish(),
            Msg::JobStatus {
                job,
                name,
                state,
                client,
                cells,
                written,
                trials,
                elapsed_secs,
            } => JsonObj::new()
                .str_field("kind", "job_status")
                .u64_field("job", *job)
                .str_field("name", name)
                .str_field("state", state)
                .str_field("client", client)
                .u64_field("cells", *cells)
                .u64_field("written", *written)
                .u64_field("trials", *trials)
                .f64_field("elapsed_secs", *elapsed_secs)
                .finish(),
            Msg::Cancel { job } => JsonObj::new()
                .str_field("kind", "cancel")
                .u64_field("job", *job)
                .finish(),
            Msg::Cancelled { job, state } => JsonObj::new()
                .str_field("kind", "cancelled")
                .u64_field("job", *job)
                .str_field("state", state)
                .finish(),
            Msg::Lease2 {
                job,
                cell,
                lease_ms,
                spec,
                fingerprint,
            } => spec
                .encode_into(
                    JsonObj::new()
                        .str_field("kind", "lease2")
                        .u64_field("job", *job)
                        .u64_field("cell", *cell)
                        .u64_field("lease_ms", *lease_ms),
                )
                .str_field("fingerprint", fingerprint)
                .finish(),
            Msg::Result2 {
                job,
                cell,
                line,
                elapsed_secs,
                trials,
            } => JsonObj::new()
                .str_field("kind", "result2")
                .u64_field("job", *job)
                .u64_field("cell", *cell)
                .str_field("line", line)
                .f64_field("elapsed_secs", *elapsed_secs)
                .u64_field("trials", *trials)
                .finish(),
            Msg::Renew2 { job, cell } => JsonObj::new()
                .str_field("kind", "renew2")
                .u64_field("job", *job)
                .u64_field("cell", *cell)
                .finish(),
        }
    }

    /// Decode one wire line.
    pub fn decode(line: &str) -> Result<Msg, String> {
        let obj = parse_flat(line).map_err(|e| format!("fabric: bad message: {e}"))?;
        let kind = get(&obj, "kind")
            .and_then(JsonScalar::as_str)
            .ok_or("fabric: message without 'kind' field")?;
        let str_f = |key: &str| -> Result<String, String> {
            get(&obj, key)
                .and_then(JsonScalar::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("fabric: {kind} message missing string field '{key}'"))
        };
        let u64_f = |key: &str| -> Result<u64, String> {
            get(&obj, key)
                .and_then(JsonScalar::as_u64)
                .ok_or_else(|| format!("fabric: {kind} message missing integer field '{key}'"))
        };
        let f64_f = |key: &str| -> Result<f64, String> {
            get(&obj, key)
                .and_then(JsonScalar::as_f64)
                .ok_or_else(|| format!("fabric: {kind} message missing numeric field '{key}'"))
        };
        match kind {
            "hello" => Ok(Msg::Hello {
                schema: str_f("schema")?,
                worker: str_f("worker")?,
                fingerprint: str_f("fingerprint")?,
            }),
            "welcome" => Ok(Msg::Welcome {
                campaign: str_f("campaign")?,
                cells: u64_f("cells")?,
            }),
            "reject" => Ok(Msg::Reject {
                reason: str_f("reason")?,
            }),
            "claim" => Ok(Msg::Claim),
            "lease" => Ok(Msg::Lease {
                cell: u64_f("cell")?,
                lease_ms: u64_f("lease_ms")?,
            }),
            "wait" => Ok(Msg::Wait {
                retry_ms: u64_f("retry_ms")?,
            }),
            "drained" => Ok(Msg::Drained),
            "renew" => Ok(Msg::Renew {
                cell: u64_f("cell")?,
            }),
            "goodbye" => Ok(Msg::Goodbye),
            "telemetry" => Ok(Msg::Telemetry {
                line: str_f("line")?,
            }),
            "result" => Ok(Msg::Result {
                cell: u64_f("cell")?,
                line: str_f("line")?,
                elapsed_secs: f64_f("elapsed_secs")?,
                trials: u64_f("trials")?,
            }),
            "submit" => Ok(Msg::Submit {
                client: str_f("client")?,
                spec: SpecDescriptor::decode_from(&obj, kind)?,
                fingerprint: str_f("fingerprint")?,
            }),
            "accepted" => Ok(Msg::Accepted {
                job: u64_f("job")?,
                cells: u64_f("cells")?,
                store: str_f("store")?,
            }),
            "rejected" => Ok(Msg::Rejected {
                code: str_f("code")?,
                reason: str_f("reason")?,
            }),
            "status" => Ok(Msg::Status {
                job: match get(&obj, "job") {
                    None => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or("fabric: status message field 'job' must be an integer")?,
                    ),
                },
            }),
            "status_report" => Ok(Msg::StatusReport {
                accepting: match get(&obj, "accepting") {
                    Some(JsonScalar::Bool(b)) => *b,
                    _ => {
                        return Err(
                            "fabric: status_report message missing boolean field 'accepting'"
                                .into(),
                        )
                    }
                },
                queued: u64_f("queued")?,
                running: u64_f("running")?,
                done: u64_f("done")?,
                cancelled: u64_f("cancelled")?,
                failed: u64_f("failed")?,
                jobs: u64_f("jobs")?,
            }),
            "job_status" => Ok(Msg::JobStatus {
                job: u64_f("job")?,
                name: str_f("name")?,
                state: str_f("state")?,
                client: str_f("client")?,
                cells: u64_f("cells")?,
                written: u64_f("written")?,
                trials: u64_f("trials")?,
                elapsed_secs: f64_f("elapsed_secs")?,
            }),
            "cancel" => Ok(Msg::Cancel { job: u64_f("job")? }),
            "cancelled" => Ok(Msg::Cancelled {
                job: u64_f("job")?,
                state: str_f("state")?,
            }),
            "lease2" => Ok(Msg::Lease2 {
                job: u64_f("job")?,
                cell: u64_f("cell")?,
                lease_ms: u64_f("lease_ms")?,
                spec: SpecDescriptor::decode_from(&obj, kind)?,
                fingerprint: str_f("fingerprint")?,
            }),
            "result2" => Ok(Msg::Result2 {
                job: u64_f("job")?,
                cell: u64_f("cell")?,
                line: str_f("line")?,
                elapsed_secs: f64_f("elapsed_secs")?,
                trials: u64_f("trials")?,
            }),
            "renew2" => Ok(Msg::Renew2 {
                job: u64_f("job")?,
                cell: u64_f("cell")?,
            }),
            other => Err(format!("fabric: unknown message kind '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        let msgs = [
            Msg::Hello {
                schema: FABRIC_SCHEMA.into(),
                worker: "host-1".into(),
                fingerprint: "00c0ffee00c0ffee".into(),
            },
            Msg::Welcome {
                campaign: "smoke".into(),
                cells: 4,
            },
            Msg::Reject {
                reason: "grid fingerprint mismatch".into(),
            },
            Msg::Claim,
            Msg::Lease {
                cell: 3,
                lease_ms: 30_000,
            },
            Msg::Wait { retry_ms: 250 },
            Msg::Drained,
            Msg::Renew { cell: 3 },
            Msg::Goodbye,
            Msg::Telemetry {
                line: "{\"record\": \"snapshot\", \"cell\": 0}".into(),
            },
            Msg::Result {
                cell: 3,
                line: "{\"cell\": 3, \"mean\": 1.5}".into(),
                elapsed_secs: 0.125,
                trials: 64,
            },
            Msg::Submit {
                client: "lab-7".into(),
                spec: SpecDescriptor {
                    preset: "smoke".into(),
                    name: Some("overnight".into()),
                    trials: Some(64),
                    seed: Some(0xFEED),
                    ns: Some("64,96".into()),
                },
                fingerprint: "00c0ffee00c0ffee".into(),
            },
            Msg::Submit {
                client: "lab-7".into(),
                spec: SpecDescriptor {
                    preset: "hostile-net".into(),
                    ..SpecDescriptor::default()
                },
                fingerprint: "0123456789abcdef".into(),
            },
            Msg::Accepted {
                job: 2,
                cells: 12,
                store: "queue.jsonl.job-2.jsonl".into(),
            },
            Msg::Rejected {
                code: "over-quota".into(),
                reason: "client lab-7 already holds 4 live jobs".into(),
            },
            Msg::Status { job: None },
            Msg::Status { job: Some(2) },
            Msg::StatusReport {
                accepting: true,
                queued: 1,
                running: 2,
                done: 3,
                cancelled: 0,
                failed: 0,
                jobs: 6,
            },
            Msg::JobStatus {
                job: 2,
                name: "overnight".into(),
                state: "running".into(),
                client: "lab-7".into(),
                cells: 12,
                written: 5,
                trials: 320,
                elapsed_secs: 4.5,
            },
            Msg::Cancel { job: 2 },
            Msg::Cancelled {
                job: 2,
                state: "cancelled".into(),
            },
            Msg::Lease2 {
                job: 2,
                cell: 7,
                lease_ms: 30_000,
                spec: SpecDescriptor {
                    preset: "smoke".into(),
                    trials: Some(64),
                    ..SpecDescriptor::default()
                },
                fingerprint: "00c0ffee00c0ffee".into(),
            },
            Msg::Result2 {
                job: 2,
                cell: 7,
                line: "{\"cell\": 7, \"mean\": 1.5}".into(),
                elapsed_secs: 0.125,
                trials: 64,
            },
            Msg::Renew2 { job: 2, cell: 7 },
        ];
        for msg in msgs {
            let wire = msg.encode();
            assert!(!wire.contains('\n'), "one line per message: {wire}");
            assert_eq!(Msg::decode(&wire).expect("decode"), msg, "wire: {wire}");
        }
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Msg::decode("{\"kind\": \"warp\"}")
            .unwrap_err()
            .contains("unknown"));
        assert!(Msg::decode("{\"cell\": 3}").unwrap_err().contains("kind"));
        assert!(Msg::decode("not json").is_err());
        // Missing required field.
        assert!(Msg::decode("{\"kind\": \"lease\", \"cell\": 1}")
            .unwrap_err()
            .contains("lease_ms"));
        // /2: missing descriptor preset.
        assert!(
            Msg::decode("{\"kind\": \"submit\", \"client\": \"c\", \"fingerprint\": \"00\"}")
                .unwrap_err()
                .contains("preset")
        );
        // /2: a present-but-mistyped optional override is an error, not None.
        assert!(Msg::decode(
            "{\"kind\": \"submit\", \"client\": \"c\", \"preset\": \"smoke\", \
             \"trials\": \"lots\", \"fingerprint\": \"00\"}"
        )
        .unwrap_err()
        .contains("trials"));
        // /2: status_report requires a real boolean.
        assert!(Msg::decode("{\"kind\": \"status_report\", \"accepting\": 1}")
            .unwrap_err()
            .contains("accepting"));
    }

    #[test]
    fn status_job_is_encoded_by_omission() {
        assert!(!Msg::Status { job: None }.encode().contains("job"));
        let wire = Msg::Status { job: Some(7) }.encode();
        assert!(wire.contains("\"job\": 7"), "wire: {wire}");
    }
}

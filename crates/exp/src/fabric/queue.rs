//! The daemon's multi-campaign job queue: a pure state machine over
//! submitted campaigns plus the durable journal that makes it crash-safe.
//!
//! [`JobQueue`] is the queue-level analogue of [`ServeState`]: no sockets,
//! no files. Each submitted campaign is a [`Job`] walking the lifecycle
//!
//! ```text
//! Queued → Running ⇄ Draining → Done
//!    │        │          │
//!    └────────┴──────────┴────→ Cancelled        (client asked)
//!    └────────────────────────→ Failed           (store I/O on activation)
//! ```
//!
//! Admission is FIFO with a per-client quota on live (non-terminal) jobs;
//! activation is FIFO up to `max_active` concurrently running campaigns;
//! cell leases are dealt round-robin across running jobs so shared workers
//! interleave campaigns instead of head-of-line blocking on the oldest
//! one. Per-cell bookkeeping inside a running job *is* a [`ServeState`] —
//! the lease/park/flush discipline (and its invariants) carry over
//! unchanged, one instance per campaign.
//!
//! `Running ⇄ Draining` is observational: a job drains once every cell is
//! handed out (nothing pending, results still in flight), and an expired
//! lease moves it back. Cancellation from any non-terminal state drops the
//! job's leases; results for a cancelled job are ignored idempotently, and
//! its partial store stays on disk.
//!
//! ## The journal (`stabcon-jobs/1`)
//!
//! Every admission and every lifecycle transition is one appended JSONL
//! line in `<out>.jobs.jsonl`, fsynced per the store's [`Durability`]
//! policy. The journal is append-only and replayed on `--resume`: folding
//! the events reconstructs every job's descriptor and last state, jobs
//! that were running are re-activated against their (torn-tail-repaired)
//! per-campaign stores, and the daemon converges to the same bytes the
//! uncrashed daemon would have written. Torn journal tails are truncated
//! on open, exactly like the result store ([`crate::store::recover`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use stabcon_util::jsonl::{get, parse_flat, JsonObj, JsonScalar};

use crate::campaign::CampaignSpec;
use crate::presets::{preset, PRESET_NAMES};
use crate::store::{append_line, Durability, StoreWriter};

use super::protocol::{Msg, SpecDescriptor};
use super::serve::{Ingest, Parked, ServeState};

/// Jobs-journal schema identifier (line 0 of `<out>.jobs.jsonl`).
pub const JOBS_SCHEMA: &str = "stabcon-jobs/1";

impl SpecDescriptor {
    /// Build the concrete [`CampaignSpec`] this descriptor names: the
    /// preset, with the CLI-shaped overrides applied on top. Both sides of
    /// the wire run this — the fingerprint comparison catches any drift.
    pub fn build(&self) -> Result<CampaignSpec, String> {
        let mut spec = preset(&self.preset).ok_or_else(|| {
            format!(
                "unknown preset '{}' (expected one of {})",
                self.preset,
                PRESET_NAMES.join(", ")
            )
        })?;
        if let Some(t) = self.trials {
            spec.trials = t;
        }
        if let Some(s) = self.seed {
            spec.seed = s;
        }
        if let Some(ns) = &self.ns {
            spec.ns = parse_ns(ns)?;
        }
        if let Some(name) = &self.name {
            spec.name = name.clone();
        }
        Ok(spec)
    }
}

/// Parse the CLI's comma-separated population list (`"64,96"`, hex with
/// `0x` allowed) — the wire keeps it as a string so every side parses it
/// through this one function.
pub fn parse_ns(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|tok| {
            let tok = tok.trim();
            let (digits, radix) = match tok.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (tok, 10),
            };
            usize::from_str_radix(digits, radix).map_err(|e| format!("ns: bad number '{tok}': {e}"))
        })
        .collect()
}

/// Per-job store path: `<out>.job-<id>.jsonl`, next to the journal (the
/// same derived-path discipline as [`super::shard::shard_store_path`]).
pub fn job_store_path(out: &Path, job: u64) -> PathBuf {
    let mut name = out.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".job-{job}.jsonl"));
    out.with_file_name(name)
}

/// Journal path for a queue rooted at `out`: `<out>.jobs.jsonl`.
pub fn jobs_journal_path(out: &Path) -> PathBuf {
    let mut name = out.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".jobs.jsonl");
    out.with_file_name(name)
}

/// One campaign's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and journaled; waiting for an activation slot.
    Queued,
    /// Activated: store open, cells being leased out.
    Running,
    /// Every cell handed out; results still in flight. An expired lease
    /// moves the job back to [`JobState::Running`].
    Draining,
    /// Every cell flushed to the job's store.
    Done,
    /// Cancelled by a client before completion (partial store kept).
    Cancelled,
    /// Activation failed (store I/O) or the descriptor no longer builds
    /// (preset table drift across a daemon upgrade).
    Failed,
}

impl JobState {
    /// Wire/journal label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Draining => "draining",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Parse a journal/wire label.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "draining" => Ok(JobState::Draining),
            "done" => Ok(JobState::Done),
            "cancelled" => Ok(JobState::Cancelled),
            "failed" => Ok(JobState::Failed),
            other => Err(format!("jobs: unknown state '{other}'")),
        }
    }

    /// Terminal states never transition again.
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }

    /// States that occupy an activation slot.
    pub fn active(&self) -> bool {
        matches!(self, JobState::Running | JobState::Draining)
    }
}

/// One submitted campaign in the queue.
#[derive(Debug)]
pub struct Job {
    /// Queue-assigned id, stable across daemon restarts (journaled).
    pub id: u64,
    /// Submitting client (admission quota is per client).
    pub client: String,
    /// The campaign as submitted: preset + overrides.
    pub descriptor: SpecDescriptor,
    /// Grid fingerprint (verified against the submitter's at admission).
    pub fingerprint: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Total cells in the expanded grid.
    pub cells_total: u64,
    /// The built spec (`None` only for a replayed job whose descriptor no
    /// longer builds — such jobs are [`JobState::Failed`]).
    pub spec: Option<CampaignSpec>,
    /// Per-cell lease/park/flush state while active (and kept after, for
    /// the final written count).
    pub cells: Option<ServeState>,
    /// Trials ingested so far (the numerator of the status trials/s).
    pub trials_ingested: u64,
    /// Monotonic activation time (the denominator of trials/s).
    pub started: Option<Instant>,
    /// Wall-clock seconds frozen at the terminal transition.
    pub elapsed_final: f64,
    /// Whether activation must re-open an existing store (journal replay
    /// of a job that was already running when the daemon died).
    pub resume_store: bool,
}

impl Job {
    /// Cells already in the job's store (written prefix + parked results).
    pub fn written(&self) -> u64 {
        self.cells
            .as_ref()
            .map(|c| c.written_len() + c.parked_len())
            .unwrap_or(0)
    }

    /// Wall-clock seconds the job has been running (frozen at terminal).
    pub fn elapsed_secs(&self, now: Instant) -> f64 {
        if self.state.terminal() {
            self.elapsed_final
        } else {
            self.started
                .map(|t| now.duration_since(t).as_secs_f64())
                .unwrap_or(0.0)
        }
    }
}

/// A structured refusal: the wire's [`Msg::Rejected`] payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Machine-readable code (`bad-spec`, `over-quota`, `draining`,
    /// `bad-fingerprint`, `unknown-job`, `terminal-job`).
    pub code: &'static str,
    /// Human-readable detail.
    pub reason: String,
}

impl Rejection {
    fn new(code: &'static str, reason: String) -> Self {
        Self { code, reason }
    }

    /// The wire frame for this refusal.
    pub fn to_msg(&self) -> Msg {
        Msg::Rejected {
            code: self.code.into(),
            reason: self.reason.clone(),
        }
    }
}

/// Admission and scheduling knobs.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Campaigns running concurrently (rest wait in FIFO order).
    pub max_active: usize,
    /// Live (non-terminal) jobs one client may hold.
    pub quota: usize,
    /// Cell lease duration handed to each job's [`ServeState`].
    pub lease: Duration,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            max_active: 4,
            quota: 4,
            lease: Duration::from_secs(60),
        }
    }
}

/// Queue summary counts (the wire's [`Msg::StatusReport`] payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounts {
    /// Jobs waiting for an activation slot.
    pub queued: u64,
    /// Jobs running or draining.
    pub running: u64,
    /// Jobs fully written.
    pub done: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs failed.
    pub failed: u64,
}

/// The pure multi-campaign queue state machine. The daemon translates wire
/// frames into these transitions under a lock; property tests drive
/// hostile interleavings against [`JobQueue::check_invariants`] directly.
#[derive(Debug)]
pub struct JobQueue {
    jobs: BTreeMap<u64, Job>,
    /// Queued job ids in admission order.
    fifo: Vec<u64>,
    next_id: u64,
    cfg: QueueConfig,
    /// Whether new submissions are admitted (false once draining toward
    /// shutdown).
    accepting: bool,
    /// SIGTERM drain: no new leases are dealt; in-flight cells come home
    /// (or expire), everything else stays parked for the next `--resume`.
    halted: bool,
    /// Last job id that dealt a lease (round-robin pointer).
    rr_last: u64,
    /// Result frames for unknown/terminal jobs, ignored idempotently.
    pub results_ignored: u64,
}

impl JobQueue {
    /// An empty, accepting queue.
    pub fn new(cfg: QueueConfig) -> Self {
        Self {
            jobs: BTreeMap::new(),
            fifo: Vec::new(),
            next_id: 1,
            cfg,
            accepting: true,
            halted: false,
            rr_last: 0,
            results_ignored: 0,
        }
    }

    /// Whether submissions are currently admitted.
    pub fn accepting(&self) -> bool {
        self.accepting && !self.halted
    }

    /// Open or close admission (the refusal while closed is `draining`).
    pub fn set_accepting(&mut self, accepting: bool) {
        self.accepting = accepting;
    }

    /// Whether the queue is halting toward shutdown.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// SIGTERM drain: refuse submissions and stop dealing leases. Results
    /// for cells already in flight are still ingested and flushed; queued
    /// work stays parked in the journal for the next `--resume`.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// The configured lease duration.
    pub fn lease(&self) -> Duration {
        self.cfg.lease
    }

    /// Look up one job.
    pub fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Queue summary counts.
    pub fn counts(&self) -> QueueCounts {
        let mut c = QueueCounts::default();
        for job in self.jobs.values() {
            match job.state {
                JobState::Queued => c.queued += 1,
                JobState::Running | JobState::Draining => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Cancelled => c.cancelled += 1,
                JobState::Failed => c.failed += 1,
            }
        }
        c
    }

    /// Nothing queued and nothing active.
    pub fn idle(&self) -> bool {
        self.jobs.values().all(|j| j.state.terminal())
    }

    fn active_count(&self) -> usize {
        self.jobs.values().filter(|j| j.state.active()).count()
    }

    fn live_count(&self, client: &str) -> usize {
        self.jobs
            .values()
            .filter(|j| j.client == client && !j.state.terminal())
            .count()
    }

    /// Admit one submission: build and expand the descriptor, verify the
    /// client's fingerprint, enforce the per-client quota, and enqueue.
    /// Returns the new job's id and cell count; the caller journals the
    /// admission before acknowledging it.
    pub fn submit(
        &mut self,
        client: &str,
        descriptor: &SpecDescriptor,
        fingerprint_hex: &str,
    ) -> Result<(u64, u64), Rejection> {
        if !self.accepting() {
            return Err(Rejection::new(
                "draining",
                "daemon is draining toward shutdown — not accepting submissions".into(),
            ));
        }
        if self.live_count(client) >= self.cfg.quota {
            return Err(Rejection::new(
                "over-quota",
                format!(
                    "client '{client}' already holds {} live jobs (quota {})",
                    self.live_count(client),
                    self.cfg.quota
                ),
            ));
        }
        let spec = descriptor
            .build()
            .map_err(|e| Rejection::new("bad-spec", e))?;
        let cells = spec.expand().len() as u64;
        if cells == 0 {
            return Err(Rejection::new(
                "bad-spec",
                "campaign expands to zero cells".into(),
            ));
        }
        let fingerprint = spec.fingerprint();
        let theirs = u64::from_str_radix(fingerprint_hex, 16).map_err(|e| {
            Rejection::new("bad-fingerprint", format!("unparsable fingerprint: {e}"))
        })?;
        if theirs != fingerprint {
            return Err(Rejection::new(
                "bad-fingerprint",
                format!(
                    "grid fingerprint {fingerprint_hex} != {fingerprint:016x} — client and \
                     daemon built different campaigns from the same descriptor"
                ),
            ));
        }
        let id = self.next_id;
        self.insert_job(id, client, descriptor.clone(), fingerprint, cells, Some(spec));
        Ok((id, cells))
    }

    /// Insert a job in [`JobState::Queued`] with a fixed id (shared by
    /// admission and journal replay). Advances `next_id` past `id`.
    fn insert_job(
        &mut self,
        id: u64,
        client: &str,
        descriptor: SpecDescriptor,
        fingerprint: u64,
        cells_total: u64,
        spec: Option<CampaignSpec>,
    ) {
        self.next_id = self.next_id.max(id + 1);
        self.jobs.insert(
            id,
            Job {
                id,
                client: client.into(),
                descriptor,
                fingerprint,
                state: JobState::Queued,
                cells_total,
                spec,
                cells: None,
                trials_ingested: 0,
                started: None,
                elapsed_final: 0.0,
                resume_store: false,
            },
        );
        self.fifo.push(id);
    }

    /// The next job an activation slot should go to, if any: FIFO head
    /// while fewer than `max_active` jobs are active. The caller opens the
    /// job's store and then calls [`JobQueue::start`] (or
    /// [`JobQueue::fail`] if the open failed).
    pub fn next_activation(&self) -> Option<u64> {
        if self.halted || self.active_count() >= self.cfg.max_active {
            return None;
        }
        self.fifo.first().copied()
    }

    /// Activate a queued job: `done` is the set of cells already in its
    /// (re-opened) store. Flips to Running (or straight to Done when the
    /// store was already complete).
    pub fn start(&mut self, id: u64, done: BTreeSet<u64>, now: Instant) -> Result<(), String> {
        let lease = self.cfg.lease;
        let job = self
            .jobs
            .get_mut(&id)
            .ok_or_else(|| format!("start: unknown job {id}"))?;
        if job.state != JobState::Queued {
            return Err(format!("start: job {id} is {}", job.state.label()));
        }
        job.cells = Some(ServeState::new(job.cells_total, done, lease));
        job.state = JobState::Running;
        job.started = Some(now);
        self.fifo.retain(|&q| q != id);
        self.refresh_state(id, now);
        Ok(())
    }

    /// Mark a queued job failed (its store could not be opened).
    pub fn fail(&mut self, id: u64, now: Instant) {
        if let Some(job) = self.jobs.get_mut(&id) {
            if !job.state.terminal() {
                job.elapsed_final = job.elapsed_secs(now);
                job.state = JobState::Failed;
                self.fifo.retain(|&q| q != id);
            }
        }
    }

    /// Cancel a job in any non-terminal state. Leased cells are dropped
    /// (late results will be ignored), the partial store stays on disk.
    pub fn cancel(&mut self, id: u64, now: Instant) -> Result<JobState, Rejection> {
        let job = self
            .jobs
            .get_mut(&id)
            .ok_or_else(|| Rejection::new("unknown-job", format!("no job {id} in the queue")))?;
        if job.state.terminal() {
            return Err(Rejection::new(
                "terminal-job",
                format!("job {id} is already {}", job.state.label()),
            ));
        }
        job.elapsed_final = job.elapsed_secs(now);
        job.state = JobState::Cancelled;
        self.fifo.retain(|&q| q != id);
        Ok(JobState::Cancelled)
    }

    /// Recompute one active job's Running/Draining/Done split after a
    /// transition touched its cells. Returns the new state if it changed
    /// (the daemon journals and logs exactly those).
    pub fn refresh_state(&mut self, id: u64, now: Instant) -> Option<JobState> {
        let job = self.jobs.get_mut(&id)?;
        if !job.state.active() {
            return None;
        }
        let cells = job.cells.as_ref()?;
        let next = if cells.drained() {
            JobState::Done
        } else if cells.pending_len() == 0 {
            JobState::Draining
        } else {
            JobState::Running
        };
        if next == job.state {
            return None;
        }
        if next == JobState::Done {
            job.elapsed_final = job.elapsed_secs(now);
        }
        job.state = next;
        Some(next)
    }

    /// Find a non-terminal job by grid fingerprint — how a `/1` worker's
    /// connection-scoped handshake pins to a job in the queue.
    pub fn job_by_fingerprint(&self, fingerprint: u64) -> Option<u64> {
        // Prefer an active match so a re-submitted identical campaign
        // doesn't steal a running one's workers.
        self.jobs
            .values()
            .filter(|j| !j.state.terminal() && j.fingerprint == fingerprint)
            .max_by_key(|j| (j.state.active(), std::cmp::Reverse(j.id)))
            .map(|j| j.id)
    }

    /// Deal a lease to an unpinned (`/2`) worker: round-robin across
    /// active jobs, starting after the last job that dealt one. Returns
    /// [`Msg::Lease2`] when a cell is free, [`Msg::Wait`] while work may
    /// still appear, [`Msg::Drained`] once the queue is idle and closed.
    pub fn claim(&mut self, conn: u64, now: Instant) -> Msg {
        if self.halted {
            return Msg::Drained;
        }
        let active: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| j.state.active())
            .map(|j| j.id)
            .collect();
        // Rotate so the job after `rr_last` gets first refusal.
        let start = active.partition_point(|&id| id <= self.rr_last);
        let order = active[start..].iter().chain(active[..start].iter());
        for &id in order {
            let job = self.jobs.get_mut(&id).expect("active id");
            let cells = job.cells.as_mut().expect("active job has cells");
            if let Msg::Lease { cell, lease_ms } = cells.claim(conn, now) {
                self.rr_last = id;
                self.refresh_state(id, now);
                let job = self.jobs.get(&id).expect("active id");
                return Msg::Lease2 {
                    job: id,
                    cell,
                    lease_ms,
                    spec: job.descriptor.clone(),
                    fingerprint: format!("{:016x}", job.fingerprint),
                };
            }
            self.refresh_state(id, now);
        }
        if self.idle() && !self.accepting {
            Msg::Drained
        } else {
            Msg::Wait {
                retry_ms: (self.cfg.lease.as_millis() as u64 / 4).clamp(50, 1000),
            }
        }
    }

    /// Deal a lease to a `/1` worker pinned to `job` by its handshake.
    /// Speaks pure `/1` shapes: [`Msg::Lease`] / [`Msg::Wait`] /
    /// [`Msg::Drained`] (terminal job → drained, queued → wait).
    pub fn claim_pinned(&mut self, conn: u64, id: u64, now: Instant) -> Msg {
        if self.halted {
            return Msg::Drained;
        }
        match self.jobs.get_mut(&id) {
            Some(job) if job.state.active() => {
                let msg = job.cells.as_mut().expect("active job has cells").claim(conn, now);
                self.refresh_state(id, now);
                msg
            }
            Some(job) if job.state == JobState::Queued => Msg::Wait {
                retry_ms: (self.cfg.lease.as_millis() as u64 / 4).clamp(50, 1000),
            },
            // Done, cancelled, failed, or gone: nothing left here.
            _ => Msg::Drained,
        }
    }

    /// Heartbeat one job's cell lease.
    pub fn renew(&mut self, conn: u64, id: u64, cell: u64, now: Instant) {
        if let Some(job) = self.jobs.get_mut(&id) {
            if let Some(cells) = job.cells.as_mut() {
                if job.state.active() {
                    cells.renew(conn, cell, now);
                }
            }
        }
    }

    /// Ingest one result frame for one job. Results for unknown or
    /// non-active jobs are ignored idempotently (a cancelled job's workers
    /// limp home late; that is not an error).
    pub fn ingest(&mut self, id: u64, cell: u64, parked: Parked, id_ok: bool, now: Instant) -> Ingest {
        let trials = parked.trials;
        match self.jobs.get_mut(&id) {
            Some(job) if job.state.active() => {
                let outcome = job
                    .cells
                    .as_mut()
                    .expect("active job has cells")
                    .ingest(cell, parked, id_ok);
                if outcome == Ingest::Parked {
                    job.trials_ingested += trials;
                }
                self.refresh_state(id, now);
                outcome
            }
            _ => {
                self.results_ignored += 1;
                Ingest::Duplicate
            }
        }
    }

    /// Pop the next flushable result of one job (contiguous-prefix
    /// order); the final pop flips the job to [`JobState::Done`].
    pub fn pop_flushable(&mut self, id: u64, now: Instant) -> Option<(u64, Parked)> {
        let popped = self.jobs.get_mut(&id)?.cells.as_mut()?.pop_flushable();
        self.refresh_state(id, now);
        popped
    }

    /// Return every lease `conn` holds, in every active job (disconnect).
    pub fn release_conn(&mut self, conn: u64, now: Instant) {
        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        for id in ids {
            if let Some(job) = self.jobs.get_mut(&id) {
                if job.state.active() {
                    job.cells
                        .as_mut()
                        .expect("active job has cells")
                        .release_conn(conn);
                    self.refresh_state(id, now);
                }
            }
        }
    }

    /// Expire overdue leases in every active job; returns the reclaimed
    /// `(job, cell)` pairs so the daemon can log each expiry.
    pub fn sweep_expired(&mut self, now: Instant) -> Vec<(u64, u64)> {
        let mut reclaimed = Vec::new();
        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        for id in ids {
            if let Some(job) = self.jobs.get_mut(&id) {
                if job.state.active() {
                    let cells = job.cells.as_mut().expect("active job has cells");
                    for cell in cells.sweep_expired(now) {
                        reclaimed.push((id, cell));
                    }
                    self.refresh_state(id, now);
                }
            }
        }
        reclaimed
    }

    /// Every in-flight lease has resolved (come home or expired) — the
    /// SIGTERM drain is complete once this holds while halted.
    pub fn leases_settled(&self) -> bool {
        self.jobs
            .values()
            .filter(|j| j.state.active())
            .all(|j| j.cells.as_ref().is_none_or(|c| c.leased_len() == 0))
    }

    /// Rebuild the queue from journal events (crash recovery). Jobs whose
    /// last journaled state was queued/running/draining go back into the
    /// FIFO (in admission order, ahead of nothing — the queue is empty);
    /// previously-running jobs are flagged to re-open their stores with
    /// resume. Terminal jobs are kept as records for the status plane.
    pub fn replay(&mut self, events: &[JournalEvent]) -> Result<(), String> {
        if !self.jobs.is_empty() {
            return Err("replay into a non-empty queue".into());
        }
        for event in events {
            match event {
                JournalEvent::Submit {
                    job,
                    client,
                    spec,
                    fingerprint,
                    cells,
                } => {
                    if self.jobs.contains_key(job) {
                        return Err(format!("journal: duplicate submit for job {job}"));
                    }
                    // A descriptor that no longer builds (preset drift
                    // across an upgrade) becomes a Failed record, loudly
                    // visible in status — never a silently dropped job.
                    let built = spec.build().ok();
                    self.insert_job(*job, client, spec.clone(), *fingerprint, *cells, built);
                }
                JournalEvent::State { job, state } => {
                    let j = self
                        .jobs
                        .get_mut(job)
                        .ok_or_else(|| format!("journal: state event for unknown job {job}"))?;
                    match state {
                        // Fold to the last journaled lifecycle point. A
                        // running/draining job has no live ServeState here;
                        // it re-queues flagged for store resume.
                        JobState::Running | JobState::Draining => {
                            j.state = JobState::Queued;
                            j.resume_store = true;
                        }
                        JobState::Queued => j.state = JobState::Queued,
                        terminal => {
                            j.state = *terminal;
                            self.fifo.retain(|&q| q != *job);
                        }
                    }
                }
            }
        }
        // Jobs that replayed to Failed-on-build surface as Failed now.
        let broken: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| j.spec.is_none() && !j.state.terminal())
            .map(|j| j.id)
            .collect();
        for id in broken {
            self.fail(id, Instant::now());
        }
        Ok(())
    }

    /// Structural invariants, for property tests:
    /// - the FIFO holds exactly the queued jobs, each once;
    /// - at most `max_active` jobs are active;
    /// - every active job has cell state satisfying
    ///   [`ServeState::check_invariants`], with Running ⇔ cells pending
    ///   and Draining ⇔ none pending, and is never silently complete;
    /// - done jobs are fully written; queued jobs have no cell state yet.
    pub fn check_invariants(&self) -> Result<(), String> {
        let queued: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .map(|j| j.id)
            .collect();
        let mut fifo_sorted = self.fifo.clone();
        fifo_sorted.sort_unstable();
        let mut fifo_dedup = fifo_sorted.clone();
        fifo_dedup.dedup();
        if fifo_dedup.len() != self.fifo.len() {
            return Err("fifo holds a duplicate id".into());
        }
        if fifo_sorted != queued {
            return Err(format!(
                "fifo {:?} disagrees with queued jobs {queued:?}",
                self.fifo
            ));
        }
        if self.active_count() > self.cfg.max_active {
            return Err(format!(
                "{} active jobs exceeds max_active {}",
                self.active_count(),
                self.cfg.max_active
            ));
        }
        for job in self.jobs.values() {
            match job.state {
                JobState::Queued => {
                    if job.cells.is_some() {
                        return Err(format!("queued job {} has cell state", job.id));
                    }
                }
                JobState::Running | JobState::Draining => {
                    let cells = job
                        .cells
                        .as_ref()
                        .ok_or_else(|| format!("active job {} without cell state", job.id))?;
                    cells
                        .check_invariants()
                        .map_err(|e| format!("job {}: {e}", job.id))?;
                    if cells.drained() {
                        return Err(format!("job {} complete but not marked done", job.id));
                    }
                    let draining = cells.pending_len() == 0;
                    if draining != (job.state == JobState::Draining) {
                        return Err(format!(
                            "job {} is {} with {} pending cells",
                            job.id,
                            job.state.label(),
                            cells.pending_len()
                        ));
                    }
                }
                JobState::Done => {
                    // `None` cells = a terminal record restored by journal
                    // replay; a live completion always has drained cells.
                    if let Some(cells) = job.cells.as_ref() {
                        if !cells.drained() {
                            return Err(format!("done job {} is not fully written", job.id));
                        }
                    }
                }
                JobState::Cancelled | JobState::Failed => {}
            }
        }
        Ok(())
    }
}

/// One journaled queue event.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A submission was admitted.
    Submit {
        /// Queue-assigned job id.
        job: u64,
        /// Submitting client.
        client: String,
        /// The campaign descriptor as submitted.
        spec: SpecDescriptor,
        /// Verified grid fingerprint.
        fingerprint: u64,
        /// Cells in the expanded grid (recorded so replay can report
        /// terminal jobs without re-expanding them).
        cells: u64,
    },
    /// A job changed lifecycle state.
    State {
        /// The job.
        job: u64,
        /// Its new state.
        state: JobState,
    },
}

impl JournalEvent {
    /// Render as one journal line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            JournalEvent::Submit {
                job,
                client,
                spec,
                fingerprint,
                cells,
            } => spec
                .encode_into(
                    JsonObj::new()
                        .str_field("kind", "submit")
                        .u64_field("job", *job)
                        .str_field("client", client),
                )
                .str_field("fingerprint", &format!("{fingerprint:016x}"))
                .u64_field("cells", *cells)
                .finish(),
            JournalEvent::State { job, state } => JsonObj::new()
                .str_field("kind", "state")
                .u64_field("job", *job)
                .str_field("state", state.label())
                .finish(),
        }
    }

    /// Parse one journal line.
    pub fn decode(line: &str) -> Result<Self, String> {
        let obj = parse_flat(line).map_err(|e| format!("jobs: bad journal line: {e}"))?;
        let kind = get(&obj, "kind")
            .and_then(JsonScalar::as_str)
            .ok_or("jobs: journal line without 'kind'")?;
        let u64_f = |key: &str| -> Result<u64, String> {
            get(&obj, key)
                .and_then(JsonScalar::as_u64)
                .ok_or_else(|| format!("jobs: {kind} event missing integer field '{key}'"))
        };
        let str_f = |key: &str| -> Result<&str, String> {
            get(&obj, key)
                .and_then(JsonScalar::as_str)
                .ok_or_else(|| format!("jobs: {kind} event missing string field '{key}'"))
        };
        match kind {
            "submit" => Ok(JournalEvent::Submit {
                job: u64_f("job")?,
                client: str_f("client")?.to_string(),
                spec: SpecDescriptor::decode_from(&obj, kind)?,
                fingerprint: u64::from_str_radix(str_f("fingerprint")?, 16)
                    .map_err(|e| format!("jobs: bad fingerprint: {e}"))?,
                cells: u64_f("cells")?,
            }),
            "state" => Ok(JournalEvent::State {
                job: u64_f("job")?,
                state: JobState::parse(str_f("state")?)?,
            }),
            other => Err(format!("jobs: unknown journal event kind '{other}'")),
        }
    }
}

/// The journal header line.
fn journal_header() -> String {
    JsonObj::new()
        .str_field("kind", "jobs")
        .str_field("schema", JOBS_SCHEMA)
        .finish()
}

/// Read a journal, stopping at the first torn or unparsable line — the
/// same byte-level discipline as [`crate::store::load`].
///
/// Returns the parsed events and the byte length of the valid prefix.
pub fn load_journal(path: &Path) -> Result<(Vec<JournalEvent>, u64), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut events = Vec::new();
    let mut valid_len = 0u64;
    let mut saw_header = false;
    for raw in bytes.split_inclusive(|&b| b == b'\n') {
        if raw.last() != Some(&b'\n') {
            break; // torn tail from an interrupted append
        }
        let Ok(line) = std::str::from_utf8(raw) else {
            break; // torn multi-byte character
        };
        let trimmed = line.trim_end();
        if !saw_header {
            let Ok(obj) = parse_flat(trimmed) else { break };
            let kind = get(&obj, "kind").and_then(JsonScalar::as_str);
            let schema = get(&obj, "schema").and_then(JsonScalar::as_str);
            if kind != Some("jobs") {
                break;
            }
            match schema {
                Some(JOBS_SCHEMA) => {}
                Some(other) => return Err(format!("unsupported jobs-journal schema '{other}'")),
                None => break,
            }
            saw_header = true;
        } else {
            let Ok(event) = JournalEvent::decode(trimmed) else {
                break; // corrupt tail
            };
            events.push(event);
        }
        valid_len += line.len() as u64;
    }
    Ok((events, valid_len))
}

/// Open (or create) the jobs journal for appending.
///
/// Fresh opens refuse an existing journal; with `resume` any torn tail is
/// truncated away and synced before the append handle opens (the
/// [`crate::store::recover`] discipline), and the surviving events are
/// returned for [`JobQueue::replay`].
pub fn open_journal(
    path: &Path,
    resume: bool,
    durability: Durability,
) -> Result<(StoreWriter, Vec<JournalEvent>), String> {
    let mut events = Vec::new();
    let file = if path.exists() {
        if !resume {
            return Err(format!(
                "{}: jobs journal exists — use --resume (or a fresh path)",
                path.display()
            ));
        }
        let (loaded, valid_len) = load_journal(path)?;
        if valid_len == 0 {
            // Nothing valid survived: restart the journal.
            let mut f =
                std::fs::File::create(path).map_err(|e| format!("create journal: {e}"))?;
            append_line(&mut f, &journal_header()).map_err(|e| format!("write header: {e}"))?;
            f
        } else {
            events = loaded;
            let actual = std::fs::metadata(path)
                .map_err(|e| format!("journal metadata: {e}"))?
                .len();
            if actual != valid_len {
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| format!("open journal for repair: {e}"))?;
                f.set_len(valid_len)
                    .map_err(|e| format!("truncate torn journal tail: {e}"))?;
                f.sync_all().map_err(|e| format!("sync repair: {e}"))?;
            }
            OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(|e| format!("open journal: {e}"))?
        }
    } else {
        let mut f = std::fs::File::create(path).map_err(|e| format!("create journal: {e}"))?;
        append_line(&mut f, &journal_header()).map_err(|e| format!("write header: {e}"))?;
        f
    };
    let mut writer = StoreWriter::new(file, durability);
    if durability != Durability::None {
        writer.sync().map_err(|e| format!("sync journal: {e}"))?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok((writer, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(preset: &str, name: &str) -> SpecDescriptor {
        SpecDescriptor {
            preset: preset.into(),
            name: Some(name.into()),
            trials: Some(2),
            seed: Some(0xBEEF),
            ns: Some("64".into()),
        }
    }

    fn fp_of(d: &SpecDescriptor) -> String {
        format!("{:016x}", d.build().expect("build").fingerprint())
    }

    fn queue(max_active: usize, quota: usize) -> JobQueue {
        JobQueue::new(QueueConfig {
            max_active,
            quota,
            lease: Duration::from_millis(500),
        })
    }

    fn parked(cell: u64) -> Parked {
        Parked {
            line: format!("{{\"kind\": \"cell\", \"cell\": {cell}}}"),
            trials: 2,
            elapsed_secs: 0.1,
        }
    }

    #[test]
    fn descriptor_builds_preset_with_overrides() {
        let d = desc("smoke", "it");
        let spec = d.build().expect("build");
        assert_eq!(spec.name, "it");
        assert_eq!(spec.trials, 2);
        assert_eq!(spec.seed, 0xBEEF);
        assert_eq!(spec.ns, vec![64]);
        assert!(desc("warp", "x").build().unwrap_err().contains("preset"));
        assert!(SpecDescriptor {
            ns: Some("64,oops".into()),
            ..desc("smoke", "x")
        }
        .build()
        .unwrap_err()
        .contains("oops"));
    }

    #[test]
    fn ns_parses_cli_shapes() {
        assert_eq!(parse_ns("64,96"), Ok(vec![64, 96]));
        assert_eq!(parse_ns(" 64 , 0x60 "), Ok(vec![64, 96]));
        assert!(parse_ns("").is_err());
    }

    #[test]
    fn admission_enforces_quota_and_fingerprint() {
        let mut q = queue(2, 2);
        let d = desc("smoke", "a");
        let (id, cells) = q.submit("lab", &d, &fp_of(&d)).expect("admit");
        assert_eq!(id, 1);
        assert!(cells > 0);
        // Wrong fingerprint: structured refusal, queue unpoisoned.
        let err = q.submit("lab", &d, "0000000000000bad").unwrap_err();
        assert_eq!(err.code, "bad-fingerprint");
        // Bad preset: bad-spec.
        let err = q
            .submit("lab", &desc("warp", "x"), "0000000000000000")
            .unwrap_err();
        assert_eq!(err.code, "bad-spec");
        // Quota counts live jobs per client.
        let d2 = desc("smoke", "b");
        q.submit("lab", &d2, &fp_of(&d2)).expect("second");
        let d3 = desc("smoke", "c");
        let err = q.submit("lab", &d3, &fp_of(&d3)).unwrap_err();
        assert_eq!(err.code, "over-quota");
        // A different client still gets in.
        q.submit("other", &d3, &fp_of(&d3)).expect("other client");
        // Draining queue refuses everything.
        q.set_accepting(false);
        let err = q.submit("fresh", &d3, &fp_of(&d3)).unwrap_err();
        assert_eq!(err.code, "draining");
        q.check_invariants().expect("invariants");
    }

    #[test]
    fn fifo_activation_up_to_max_active() {
        let mut q = queue(1, 8);
        let now = Instant::now();
        for name in ["a", "b"] {
            let d = desc("smoke", name);
            q.submit("lab", &d, &fp_of(&d)).expect("admit");
        }
        assert_eq!(q.next_activation(), Some(1));
        q.start(1, BTreeSet::new(), now).expect("start");
        // Slot taken: job 2 waits.
        assert_eq!(q.next_activation(), None);
        assert_eq!(q.job(2).unwrap().state, JobState::Queued);
        // Finish job 1 by ingesting every cell.
        let total = q.job(1).unwrap().cells_total;
        for _ in 0..total {
            let Msg::Lease2 { job, cell: c, .. } = q.claim(7, now) else {
                panic!("expected lease")
            };
            assert_eq!(job, 1);
            assert_eq!(q.ingest(job, c, parked(c), true, now), Ingest::Parked);
            while q.pop_flushable(job, now).is_some() {}
        }
        assert_eq!(q.job(1).unwrap().state, JobState::Done);
        assert_eq!(q.next_activation(), Some(2));
        q.check_invariants().expect("invariants");
    }

    #[test]
    fn leases_interleave_across_running_jobs() {
        let mut q = queue(2, 8);
        let now = Instant::now();
        for name in ["a", "b"] {
            let d = desc("smoke", name);
            q.submit("lab", &d, &fp_of(&d)).expect("admit");
        }
        q.start(1, BTreeSet::new(), now).expect("start 1");
        q.start(2, BTreeSet::new(), now).expect("start 2");
        // Round-robin: consecutive claims alternate jobs.
        let Msg::Lease2 { job: j1, .. } = q.claim(7, now) else {
            panic!("lease")
        };
        let Msg::Lease2 { job: j2, .. } = q.claim(7, now) else {
            panic!("lease")
        };
        assert_ne!(j1, j2, "shared worker interleaves campaigns");
        q.check_invariants().expect("invariants");
    }

    #[test]
    fn cancel_drops_leases_and_ignores_late_results() {
        let mut q = queue(2, 8);
        let now = Instant::now();
        let d = desc("smoke", "a");
        q.submit("lab", &d, &fp_of(&d)).expect("admit");
        q.start(1, BTreeSet::new(), now).expect("start");
        let Msg::Lease2 { job, cell, .. } = q.claim(7, now) else {
            panic!("lease")
        };
        assert_eq!(q.cancel(1, now), Ok(JobState::Cancelled));
        // The in-flight worker ships its result anyway: ignored, counted.
        assert_eq!(
            q.ingest(job, cell, parked(cell), true, now),
            Ingest::Duplicate
        );
        assert_eq!(q.results_ignored, 1);
        // Cancel again: terminal-job.
        assert_eq!(q.cancel(1, now).unwrap_err().code, "terminal-job");
        // Unknown job: unknown-job.
        assert_eq!(q.cancel(99, now).unwrap_err().code, "unknown-job");
        q.check_invariants().expect("invariants");
    }

    #[test]
    fn draining_tracks_pending_and_reverses_on_expiry() {
        let mut q = queue(1, 8);
        let now = Instant::now();
        let d = desc("smoke", "a");
        q.submit("lab", &d, &fp_of(&d)).expect("admit");
        q.start(1, BTreeSet::new(), now).expect("start");
        let total = q.job(1).unwrap().cells_total;
        // Lease every cell out: the job drains.
        for _ in 0..total {
            let Msg::Lease2 { .. } = q.claim(7, now) else {
                panic!("lease")
            };
        }
        assert_eq!(q.job(1).unwrap().state, JobState::Draining);
        q.check_invariants().expect("invariants while draining");
        // The silent worker's leases expire: back to Running.
        q.sweep_expired(now + Duration::from_secs(2));
        assert_eq!(q.job(1).unwrap().state, JobState::Running);
        q.check_invariants().expect("invariants");
    }

    #[test]
    fn journal_events_round_trip() {
        let events = [
            JournalEvent::Submit {
                job: 3,
                client: "lab \"7\"".into(),
                spec: desc("smoke", "nasty \n name"),
                fingerprint: 0xC0FFEE,
                cells: 12,
            },
            JournalEvent::Submit {
                job: 4,
                client: "minimal".into(),
                spec: SpecDescriptor {
                    preset: "smoke".into(),
                    ..SpecDescriptor::default()
                },
                fingerprint: 1,
                cells: 1,
            },
            JournalEvent::State {
                job: 3,
                state: JobState::Running,
            },
            JournalEvent::State {
                job: 3,
                state: JobState::Cancelled,
            },
        ];
        for event in &events {
            let line = event.to_line();
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(&JournalEvent::decode(&line).expect("decode"), event);
        }
        assert!(JournalEvent::decode("{\"kind\": \"warp\"}").is_err());
        assert!(JournalEvent::decode("not json").is_err());
    }

    #[test]
    fn journal_replay_reconstructs_the_queue() {
        let d_a = desc("smoke", "a");
        let d_b = desc("smoke", "b");
        let d_c = desc("smoke", "c");
        let fp = |d: &SpecDescriptor| d.build().unwrap().fingerprint();
        let events = vec![
            JournalEvent::Submit {
                job: 1,
                client: "lab".into(),
                spec: d_a.clone(),
                fingerprint: fp(&d_a),
                cells: 2,
            },
            JournalEvent::Submit {
                job: 2,
                client: "lab".into(),
                spec: d_b.clone(),
                fingerprint: fp(&d_b),
                cells: 2,
            },
            JournalEvent::Submit {
                job: 3,
                client: "lab".into(),
                spec: d_c.clone(),
                fingerprint: fp(&d_c),
                cells: 2,
            },
            // Job 1 ran and finished; job 2 was mid-run at the crash.
            JournalEvent::State {
                job: 1,
                state: JobState::Running,
            },
            JournalEvent::State {
                job: 1,
                state: JobState::Done,
            },
            JournalEvent::State {
                job: 2,
                state: JobState::Running,
            },
        ];
        let mut q = queue(2, 8);
        q.replay(&events).expect("replay");
        assert_eq!(q.job(1).unwrap().state, JobState::Done);
        assert_eq!(q.job(2).unwrap().state, JobState::Queued);
        assert!(
            q.job(2).unwrap().resume_store,
            "mid-run job re-opens its store"
        );
        assert_eq!(q.job(3).unwrap().state, JobState::Queued);
        assert!(!q.job(3).unwrap().resume_store);
        // Admission order survives: job 2 reactivates before job 3.
        assert_eq!(q.next_activation(), Some(2));
        // Fresh submissions pick up past the highest journaled id.
        let (id, _) = q
            .submit("lab", &d_a, &format!("{:016x}", fp(&d_a)))
            .expect("admit");
        assert_eq!(id, 4);
        q.check_invariants().expect("invariants");
    }

    #[test]
    fn journal_open_repairs_torn_tails_and_refuses_fresh_overwrite() {
        let dir = std::env::temp_dir().join("stabcon-jobs-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("{}-journal.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();

        let event = JournalEvent::State {
            job: 1,
            state: JobState::Running,
        };
        {
            let (mut w, events) =
                open_journal(&path, false, Durability::Cell).expect("fresh open");
            assert!(events.is_empty());
            w.append(&event.to_line()).expect("append");
            w.finish().expect("finish");
        }
        // A second fresh open must refuse.
        assert!(open_journal(&path, false, Durability::None)
            .unwrap_err()
            .contains("resume"));
        // Tear the tail mid-record; resume repairs and replays the prefix.
        let clean = std::fs::read(&path).expect("read");
        let mut torn = clean.clone();
        torn.extend_from_slice(b"{\"kind\": \"sta");
        std::fs::write(&path, &torn).expect("tear");
        let (mut w, events) = open_journal(&path, true, Durability::Cell).expect("resume");
        assert_eq!(events, vec![event.clone()]);
        assert_eq!(
            std::fs::read(&path).expect("read"),
            clean,
            "torn tail truncated on open"
        );
        // Appending after repair lands on a clean boundary.
        w.append(&event.to_line()).expect("append");
        w.finish().expect("finish");
        let (events, _) = load_journal(&path).expect("load");
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn job_and_journal_paths_derive_from_out() {
        let out = PathBuf::from("/tmp/q/campaigns.jsonl");
        assert_eq!(
            job_store_path(&out, 7),
            PathBuf::from("/tmp/q/campaigns.jsonl.job-7.jsonl")
        );
        assert_eq!(
            jobs_journal_path(&out),
            PathBuf::from("/tmp/q/campaigns.jsonl.jobs.jsonl")
        );
    }
}

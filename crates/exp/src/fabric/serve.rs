//! First-cut `stabcon serve` daemon: lease cells to connecting workers,
//! re-claim leases whose worker died, and assemble the canonical store.
//!
//! The server is the online counterpart of the batch shard/merge flow. It
//! expands the campaign once, validates every worker's grid fingerprint in
//! the [`super::protocol`] handshake, then hands out cell *ids* under
//! expiring leases. Because every cell line is a pure function of its spec,
//! a dead host costs nothing but wall clock: its leased cells return to the
//! pending set (on disconnect immediately, on a hang when the lease
//! expires) and the re-run by another worker produces the identical bytes.
//! Duplicate results — the original worker limping back after its lease was
//! re-claimed — are simply ignored; first ingest wins and is exact.
//!
//! Results are parked in a [`BTreeMap`] and flushed to the store as a
//! contiguous prefix in cell-index order (the same discipline as the
//! in-order chunk merger inside `run_cell`), so a completed serve store is
//! byte-identical to the single-host `stabcon campaign run` store.
//!
//! Worker telemetry frames ([`Msg::Telemetry`]) are ingested as the live
//! progress stream: record lines go to the server's own telemetry sink
//! (shipped worker sink *headers* are dropped), so `stabcon campaign
//! report`/`stabcon telemetry check` work on the partially-assembled
//! campaign while workers are still running.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stabcon_util::jsonl::{get, parse_flat, JsonObj, JsonScalar};

use crate::campaign::CampaignSpec;
use crate::store::{self, StoreHeader};
use crate::telemetry::{self, TELEMETRY_SCHEMA};

use super::protocol::{Msg, FABRIC_SCHEMA};

/// Serve knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How long a worker may sit on a leased cell before the server hands
    /// the cell to someone else.
    pub lease: Duration,
    /// Print a progress line per ingested cell to stderr.
    pub progress: bool,
    /// Telemetry sink: worker-shipped snapshot/cell_profile records land
    /// here under a server-written `stabcon-telemetry/1` header.
    pub telemetry: Option<PathBuf>,
    /// Continue an existing store (skip its cells) instead of refusing it.
    pub resume: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            lease: Duration::from_secs(60),
            progress: false,
            telemetry: None,
            resume: false,
        }
    }
}

/// What a serve run assembled.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Cells in the grid.
    pub cells_total: u64,
    /// Cells ingested from workers by this invocation.
    pub cells_ingested: u64,
    /// Cells already in the store at start (resume).
    pub cells_skipped: u64,
    /// Workers whose handshake succeeded.
    pub workers_seen: u64,
    /// Leases returned to the pending set (worker died or hung past the
    /// lease deadline).
    pub leases_reclaimed: u64,
    /// The assembled store path.
    pub store_path: PathBuf,
}

/// One ingested-but-not-yet-flushed result.
struct Parked {
    line: String,
    trials: u64,
    elapsed_secs: f64,
}

/// Everything the accept loop and the per-connection handlers share.
struct Shared {
    /// Cells nobody is working on.
    pending: BTreeSet<u64>,
    /// Leased cells: id → (connection, deadline).
    leases: BTreeMap<u64, (u64, Instant)>,
    /// Ingested results waiting for their turn in canonical order.
    parked: BTreeMap<u64, Parked>,
    /// Cells already in the store file.
    written: BTreeSet<u64>,
    /// Smallest id that might still need writing (flush cursor).
    cursor: u64,
    file: File,
    timings: File,
    sink: Option<File>,
    total: u64,
    lease: Duration,
    progress: bool,
    workers_seen: u64,
    leases_reclaimed: u64,
    cells_ingested: u64,
}

impl Shared {
    fn drained(&self) -> bool {
        self.written.len() as u64 == self.total
    }

    /// Flush parked results that extend the store's contiguous prefix.
    fn flush(&mut self) -> Result<(), String> {
        loop {
            while self.written.contains(&self.cursor) {
                self.cursor += 1;
            }
            let Some(r) = self.parked.remove(&self.cursor) else {
                return Ok(());
            };
            store::append_line(&mut self.file, &r.line)
                .map_err(|e| format!("append cell {}: {e}", self.cursor))?;
            telemetry::append_timing(&mut self.timings, self.cursor, r.trials, r.elapsed_secs)?;
            self.written.insert(self.cursor);
        }
    }

    /// Return every lease owned by `conn` to the pending set.
    fn release_conn(&mut self, conn: u64) {
        let cells: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, &(owner, _))| owner == conn)
            .map(|(&c, _)| c)
            .collect();
        for c in cells {
            self.leases.remove(&c);
            self.pending.insert(c);
            self.leases_reclaimed += 1;
        }
    }

    /// Return every lease whose deadline has passed to the pending set.
    fn sweep_expired(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, &(_, deadline))| now >= deadline)
            .map(|(&c, _)| c)
            .collect();
        for c in expired {
            self.leases.remove(&c);
            self.pending.insert(c);
            self.leases_reclaimed += 1;
        }
    }
}

/// A bound (but not yet running) serve daemon.
pub struct Server {
    listener: TcpListener,
    header: StoreHeader,
    campaign: String,
    store_path: PathBuf,
}

fn send(stream: &mut TcpStream, msg: &Msg) -> std::io::Result<()> {
    stream.write_all(msg.encode().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

impl Server {
    /// Bind the daemon: expand `spec` (the fingerprint every worker must
    /// match) and listen on `addr` (`host:port`; port 0 picks a free one —
    /// read it back with [`Server::local_addr`]).
    pub fn bind(addr: &str, spec: &CampaignSpec, store: &Path) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("serve: bind {addr}: {e}"))?;
        Ok(Self {
            listener,
            header: spec.header(),
            campaign: spec.name.clone(),
            store_path: store.to_path_buf(),
        })
    }

    /// The bound address (resolves a `:0` port).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("serve: local_addr: {e}"))
    }

    /// Run until every cell of the grid is in the store, then return.
    ///
    /// Accepts connections forever while running; each worker gets a
    /// handler thread. A worker that disconnects mid-lease has its cells
    /// re-claimed immediately; one that hangs loses them when the lease
    /// expires.
    pub fn run(self, cfg: &ServeConfig) -> Result<ServeOutcome, String> {
        let (file, done) = store::open_for_append(&self.store_path, &self.header, cfg.resume)?;
        let timings = telemetry::open_timings(&self.store_path, cfg.resume)?;
        let total = self.header.cells;
        let cells_skipped = done.len() as u64;
        let sink = match &cfg.telemetry {
            Some(p) => {
                let mut f = File::create(p)
                    .map_err(|e| format!("{}: create telemetry sink: {e}", p.display()))?;
                let header = JsonObj::new()
                    .str_field("schema", TELEMETRY_SCHEMA)
                    .str_field("campaign", &self.campaign)
                    .u64_field("threads", 0)
                    .u64_field("cells", total)
                    .u64_field(
                        "trials_planned",
                        (total - cells_skipped) * self.header.trials,
                    )
                    .finish();
                writeln!(f, "{header}")
                    .map_err(|e| format!("{}: write telemetry header: {e}", p.display()))?;
                Some(f)
            }
            None => None,
        };

        let mut cursor = 0u64;
        while done.contains(&cursor) {
            cursor += 1;
        }
        let shared = Arc::new(Mutex::new(Shared {
            pending: (0..total).filter(|id| !done.contains(id)).collect(),
            leases: BTreeMap::new(),
            parked: BTreeMap::new(),
            written: done,
            cursor,
            file,
            timings,
            sink,
            total,
            lease: cfg.lease,
            progress: cfg.progress,
            workers_seen: 0,
            leases_reclaimed: 0,
            cells_ingested: 0,
        }));

        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("serve: set_nonblocking: {e}"))?;
        let fingerprint = format!("{:016x}", self.header.fingerprint);
        let mut conn_id = 0u64;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conn_id += 1;
                    let conn = conn_id;
                    let shared = Arc::clone(&shared);
                    let fingerprint = fingerprint.clone();
                    let campaign = self.campaign.clone();
                    std::thread::spawn(move || {
                        handle_worker(stream, conn, &shared, &fingerprint, &campaign);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("serve: accept: {e}")),
            }
            {
                let mut s = shared.lock().map_err(|_| "serve: state poisoned")?;
                s.sweep_expired(Instant::now());
                if s.drained() {
                    if let Some(sink) = s.sink.as_mut() {
                        let _ = sink.flush();
                    }
                    return Ok(ServeOutcome {
                        cells_total: total,
                        cells_ingested: s.cells_ingested,
                        cells_skipped,
                        workers_seen: s.workers_seen,
                        leases_reclaimed: s.leases_reclaimed,
                        store_path: self.store_path.clone(),
                    });
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// One worker connection, from handshake to disconnect. Any protocol or
/// I/O error just drops the connection — the lease sweep and the
/// disconnect release make worker failure a non-event.
fn handle_worker(
    mut stream: TcpStream,
    conn: u64,
    shared: &Arc<Mutex<Shared>>,
    fingerprint: &str,
    campaign: &str,
) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut lines = BufReader::new(reader).lines();

    // Handshake: first line must be a matching Hello.
    let worker_name = match lines.next() {
        Some(Ok(line)) => match Msg::decode(&line) {
            Ok(Msg::Hello {
                schema,
                worker,
                fingerprint: fp,
            }) => {
                let reason = if schema != FABRIC_SCHEMA {
                    Some(format!("protocol version '{schema}' != '{FABRIC_SCHEMA}'"))
                } else if fp != fingerprint {
                    Some(format!(
                        "grid fingerprint {fp} != {fingerprint} — worker expanded a \
                         different campaign spec"
                    ))
                } else {
                    None
                };
                if let Some(reason) = reason {
                    let _ = send(&mut stream, &Msg::Reject { reason });
                    return;
                }
                worker
            }
            _ => {
                let _ = send(
                    &mut stream,
                    &Msg::Reject {
                        reason: "expected hello".into(),
                    },
                );
                return;
            }
        },
        _ => return,
    };
    {
        let Ok(mut s) = shared.lock() else { return };
        s.workers_seen += 1;
        let total = s.total;
        if s.progress {
            eprintln!("[serve] worker '{worker_name}' connected ({total} cells)");
        }
    }
    if send(
        &mut stream,
        &Msg::Welcome {
            campaign: campaign.into(),
            cells: shared.lock().map(|s| s.total).unwrap_or(0),
        },
    )
    .is_err()
    {
        return;
    }

    for line in lines {
        let Ok(line) = line else { break };
        let msg = match Msg::decode(&line) {
            Ok(m) => m,
            Err(_) => break, // desynced connection: drop it
        };
        let reply = {
            let Ok(mut s) = shared.lock() else { break };
            match msg {
                Msg::Claim => {
                    if s.drained() {
                        Some(Msg::Drained)
                    } else if let Some(&cell) = s.pending.iter().next() {
                        s.pending.remove(&cell);
                        let deadline = Instant::now() + s.lease;
                        s.leases.insert(cell, (conn, deadline));
                        Some(Msg::Lease {
                            cell,
                            lease_ms: s.lease.as_millis() as u64,
                        })
                    } else {
                        // Everything left is leased out; poll back soon so a
                        // reclaimed cell is picked up promptly.
                        let retry_ms = (s.lease.as_millis() as u64 / 4).clamp(50, 1000);
                        Some(Msg::Wait { retry_ms })
                    }
                }
                Msg::Result {
                    cell,
                    line,
                    elapsed_secs,
                    trials,
                } => {
                    s.leases.remove(&cell);
                    s.pending.remove(&cell);
                    let duplicate = s.written.contains(&cell) || s.parked.contains_key(&cell);
                    // The embedded id must agree — a mismatch means a buggy
                    // or hostile worker, and the record is dropped (the cell
                    // stays pending via the lease sweep).
                    let id_ok = parse_flat(&line)
                        .ok()
                        .and_then(|obj| get(&obj, "cell").and_then(JsonScalar::as_u64))
                        == Some(cell);
                    if !duplicate && id_ok {
                        s.parked.insert(
                            cell,
                            Parked {
                                line,
                                trials,
                                elapsed_secs,
                            },
                        );
                        s.cells_ingested += 1;
                        if s.flush().is_err() {
                            break; // store write failed; main loop will stall visibly
                        }
                        if s.progress {
                            eprintln!(
                                "[serve] cell {cell} from '{worker_name}' ({}/{})",
                                s.written.len(),
                                s.total
                            );
                        }
                    } else if !duplicate {
                        s.pending.insert(cell);
                    }
                    None
                }
                Msg::Telemetry { line } => {
                    // Ingest record lines only; the worker's own sink header
                    // is superseded by the server's.
                    if s.sink.is_some() {
                        let is_record = parse_flat(&line)
                            .ok()
                            .is_some_and(|obj| get(&obj, "record").is_some());
                        if is_record {
                            if let Some(sink) = s.sink.as_mut() {
                                let _ = writeln!(sink, "{line}");
                            }
                        }
                    }
                    None
                }
                // Anything else from a worker is a protocol violation.
                _ => break,
            }
        };
        if let Some(reply) = reply {
            let done = matches!(reply, Msg::Drained);
            if send(&mut stream, &reply).is_err() || done {
                break;
            }
        }
    }

    // Disconnect (or violation): whatever this worker held goes back.
    if let Ok(mut s) = shared.lock() {
        s.release_conn(conn);
    }
}

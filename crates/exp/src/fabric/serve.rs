//! The `stabcon serve` daemon: lease cells to connecting workers, re-claim
//! leases whose worker died, and assemble the canonical store.
//!
//! The server is the online counterpart of the batch shard/merge flow. It
//! expands the campaign once, validates every worker's grid fingerprint in
//! the [`super::protocol`] handshake, then hands out cell *ids* under
//! expiring leases. Because every cell line is a pure function of its spec,
//! a dead host costs nothing but wall clock: its leased cells return to the
//! pending set (on disconnect immediately, on a hang when the lease
//! expires) and the re-run by another worker produces the identical bytes.
//! A *slow* worker is not a dead one: [`Msg::Renew`] heartbeats push the
//! lease deadline out while the cell runs, so only workers that stop
//! heartbeating lose their lease. Duplicate results — the original worker
//! limping back (possibly over a fresh connection) after its result was
//! already ingested — are deduplicated; first ingest wins and is exact,
//! and the dedupe count is reported in the [`ServeOutcome`].
//!
//! All lease deadlines are [`Instant`]s — the OS **monotonic** clock — so a
//! wall-clock step (NTP correction, manual `date`, DST) can never
//! mass-expire live leases or stretch them indefinitely.
//!
//! The lease/park/flush bookkeeping lives in [`ServeState`], a pure state
//! machine decoupled from sockets and files: the connection handlers
//! translate wire frames into state transitions, and property tests drive
//! arbitrary hostile interleavings (duplicate results, reconnects, expired
//! leases) against [`ServeState::check_invariants`] directly.
//!
//! Results are parked and flushed to the store as a contiguous prefix in
//! cell-index order (the same discipline as the in-order chunk merger
//! inside `run_cell`), so a completed serve store is byte-identical to the
//! single-host `stabcon campaign run` store. The store handle is a
//! [`store::StoreWriter`], so `--durability {none,cell,batch}` applies the
//! same fsync policy here as in the single-host runner, and a `kill -9`'d
//! server restarted with `--resume` repairs any torn tail on open and
//! finishes the campaign.
//!
//! Worker telemetry frames ([`Msg::Telemetry`]) are ingested as the live
//! progress stream — but only lines that fully validate as
//! `stabcon-telemetry/1` records (shipped worker sink *headers* and torn or
//! malformed lines are dropped and counted), so a hostile or desynced
//! worker can never corrupt the server's sink.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stabcon_util::jsonl::{get, parse_flat, JsonObj, JsonScalar};

use crate::campaign::CampaignSpec;
use crate::store::{self, Durability, StoreHeader, StoreWriter};
use crate::telemetry::{self, TELEMETRY_SCHEMA};

use super::protocol::{Msg, SpecDescriptor, FABRIC_SCHEMA, FABRIC_SCHEMA_V2};
use super::queue::{
    job_store_path, jobs_journal_path, open_journal, Job, JobQueue, JobState, JournalEvent,
    QueueConfig,
};

/// Serve knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How long a worker may sit on a leased cell without heartbeating
    /// before the server hands the cell to someone else ([`Msg::Renew`]
    /// extends the deadline by this much each time).
    pub lease: Duration,
    /// Print a progress line per ingested cell to stderr.
    pub progress: bool,
    /// Telemetry sink: worker-shipped snapshot/cell_profile records land
    /// here under a server-written `stabcon-telemetry/1` header.
    pub telemetry: Option<PathBuf>,
    /// Continue an existing store (skip its cells) instead of refusing it.
    pub resume: bool,
    /// Fsync policy for the assembled store (see [`store::Durability`]).
    pub durability: Durability,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            lease: Duration::from_secs(60),
            progress: false,
            telemetry: None,
            resume: false,
            durability: Durability::None,
        }
    }
}

/// What a serve run assembled.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Cells in the grid.
    pub cells_total: u64,
    /// Cells ingested from workers by this invocation.
    pub cells_ingested: u64,
    /// Cells already in the store at start (resume).
    pub cells_skipped: u64,
    /// Workers whose handshake succeeded.
    pub workers_seen: u64,
    /// Leases returned to the pending set (worker died or hung past the
    /// lease deadline).
    pub leases_reclaimed: u64,
    /// Lease heartbeats honored (deadline extensions).
    pub leases_renewed: u64,
    /// Duplicate [`Msg::Result`] frames ignored (reconnect resubmissions
    /// and re-runs of reclaimed leases; first ingest wins).
    pub results_deduped: u64,
    /// Telemetry lines dropped for failing `stabcon-telemetry/1` record
    /// validation (torn frames, shipped headers, malformed workers).
    pub telemetry_dropped: u64,
    /// Workers that announced a graceful drain ([`Msg::Goodbye`]).
    pub goodbyes: u64,
    /// The assembled store path.
    pub store_path: PathBuf,
}

/// One ingested-but-not-yet-flushed result.
#[derive(Debug, Clone, PartialEq)]
pub struct Parked {
    /// The raw store cell line.
    pub line: String,
    /// Trials the cell ran (timings sidecar).
    pub trials: u64,
    /// Worker-reported wall clock (timings sidecar).
    pub elapsed_secs: f64,
}

/// What [`ServeState::ingest`] did with a result frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Fresh result, parked for in-order flushing.
    Parked,
    /// The cell was already parked or written; frame ignored, dedupe
    /// counter bumped.
    Duplicate,
    /// The embedded line's cell id disagreed with the frame's — buggy or
    /// hostile worker; record dropped, cell back to pending.
    Rejected,
}

/// The serve daemon's pure lease/ingest state machine: which cells are
/// pending, leased (to which connection, until which monotonic deadline),
/// parked awaiting their flush turn, or written. No sockets, no files —
/// the connection handlers call into it under a lock, and property tests
/// drive hostile interleavings against it directly.
#[derive(Debug)]
pub struct ServeState {
    /// Cells nobody is working on.
    pending: BTreeSet<u64>,
    /// Leased cells: id → (connection, monotonic deadline).
    leases: BTreeMap<u64, (u64, Instant)>,
    /// Ingested results waiting for their turn in canonical order.
    parked: BTreeMap<u64, Parked>,
    /// Cells already flushed to the store file.
    written: BTreeSet<u64>,
    /// Smallest id that might still need writing (flush cursor).
    cursor: u64,
    total: u64,
    lease: Duration,
    /// Workers whose handshake succeeded.
    pub workers_seen: u64,
    /// Leases returned to pending (disconnect or expiry).
    pub leases_reclaimed: u64,
    /// Heartbeat extensions honored.
    pub leases_renewed: u64,
    /// Duplicate result frames ignored.
    pub results_deduped: u64,
    /// Result frames rejected for id mismatch.
    pub results_rejected: u64,
    /// Telemetry lines dropped by record validation.
    pub telemetry_dropped: u64,
    /// Graceful-drain goodbyes received.
    pub goodbyes: u64,
    /// Results accepted (parked) by this invocation.
    pub cells_ingested: u64,
}

impl ServeState {
    /// Fresh state for a `total`-cell grid with `done` cells already in the
    /// store (resume) and the given lease duration.
    pub fn new(total: u64, done: BTreeSet<u64>, lease: Duration) -> Self {
        let mut cursor = 0u64;
        while done.contains(&cursor) {
            cursor += 1;
        }
        Self {
            pending: (0..total).filter(|id| !done.contains(id)).collect(),
            leases: BTreeMap::new(),
            parked: BTreeMap::new(),
            written: done,
            cursor,
            total,
            lease,
            workers_seen: 0,
            leases_reclaimed: 0,
            leases_renewed: 0,
            results_deduped: 0,
            results_rejected: 0,
            telemetry_dropped: 0,
            goodbyes: 0,
            cells_ingested: 0,
        }
    }

    /// Every cell is in the store.
    pub fn drained(&self) -> bool {
        self.written.len() as u64 == self.total
    }

    /// Cells flushed so far.
    pub fn written_len(&self) -> u64 {
        self.written.len() as u64
    }

    /// Total cells in the grid.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cells nobody is working on.
    pub fn pending_len(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Cells currently leased out.
    pub fn leased_len(&self) -> u64 {
        self.leases.len() as u64
    }

    /// Ingested cells waiting for their flush turn.
    pub fn parked_len(&self) -> u64 {
        self.parked.len() as u64
    }

    /// Whether `cell` is currently leased, and to which connection.
    pub fn lease_holder(&self, cell: u64) -> Option<u64> {
        self.leases.get(&cell).map(|&(conn, _)| conn)
    }

    /// Answer a claim from `conn` at monotonic time `now`.
    pub fn claim(&mut self, conn: u64, now: Instant) -> Msg {
        if self.drained() {
            Msg::Drained
        } else if let Some(&cell) = self.pending.iter().next() {
            self.pending.remove(&cell);
            self.leases.insert(cell, (conn, now + self.lease));
            Msg::Lease {
                cell,
                lease_ms: self.lease.as_millis() as u64,
            }
        } else {
            // Everything left is leased out; poll back soon so a reclaimed
            // cell is picked up promptly.
            Msg::Wait {
                retry_ms: (self.lease.as_millis() as u64 / 4).clamp(50, 1000),
            }
        }
    }

    /// Heartbeat: push `cell`'s deadline to `now + lease` — but only if
    /// `conn` still holds the lease. A renewal for a reclaimed (or never
    /// granted) lease is ignored: the original worker lost it, and its
    /// eventual duplicate result will be deduped instead.
    pub fn renew(&mut self, conn: u64, cell: u64, now: Instant) {
        if let Some(entry) = self.leases.get_mut(&cell) {
            if entry.0 == conn {
                entry.1 = now + self.lease;
                self.leases_renewed += 1;
            }
        }
    }

    /// Ingest one result frame. `id_ok` is whether the embedded store
    /// line's `cell` field matches `cell` (the caller parses the line; the
    /// state machine stays serialization-free).
    pub fn ingest(&mut self, cell: u64, parked: Parked, id_ok: bool) -> Ingest {
        self.leases.remove(&cell);
        self.pending.remove(&cell);
        if self.written.contains(&cell) || self.parked.contains_key(&cell) {
            self.results_deduped += 1;
            return Ingest::Duplicate;
        }
        if !id_ok || cell >= self.total {
            // Buggy or hostile worker: drop the record. An in-range cell
            // goes back to pending so a healthy worker re-runs it.
            if cell < self.total {
                self.pending.insert(cell);
            }
            self.results_rejected += 1;
            return Ingest::Rejected;
        }
        self.parked.insert(cell, parked);
        self.cells_ingested += 1;
        Ingest::Parked
    }

    /// Pop the next parked result that extends the store's contiguous
    /// prefix, marking it written. Call in a loop after each ingest; `None`
    /// means the prefix can't grow yet.
    pub fn pop_flushable(&mut self) -> Option<(u64, Parked)> {
        loop {
            if self.written.contains(&self.cursor) {
                self.cursor += 1;
                continue;
            }
            let parked = self.parked.remove(&self.cursor)?;
            self.written.insert(self.cursor);
            return Some((self.cursor, parked));
        }
    }

    /// Return every lease owned by `conn` to the pending set (disconnect).
    /// Returns the reclaimed cell ids so callers can log each one.
    pub fn release_conn(&mut self, conn: u64) -> Vec<u64> {
        let cells: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, &(owner, _))| owner == conn)
            .map(|(&c, _)| c)
            .collect();
        for &c in &cells {
            self.leases.remove(&c);
            self.pending.insert(c);
            self.leases_reclaimed += 1;
        }
        cells
    }

    /// Return every lease whose monotonic deadline has passed to the
    /// pending set. Heartbeats ([`ServeState::renew`]) move deadlines, so
    /// only silent workers expire. Returns the reclaimed cell ids so
    /// callers can log each one.
    pub fn sweep_expired(&mut self, now: Instant) -> Vec<u64> {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, &(_, deadline))| now >= deadline)
            .map(|(&c, _)| c)
            .collect();
        for &c in &expired {
            self.leases.remove(&c);
            self.pending.insert(c);
            self.leases_reclaimed += 1;
        }
        expired
    }

    /// Structural invariants, for property tests: every cell of the grid
    /// is in exactly one of {pending, leased, parked, written}, the flush
    /// cursor never passes an unwritten cell, and written cells are never
    /// simultaneously pending/leased/parked.
    pub fn check_invariants(&self) -> Result<(), String> {
        for id in 0..self.total {
            let places = [
                self.pending.contains(&id),
                self.leases.contains_key(&id),
                self.parked.contains_key(&id),
                self.written.contains(&id),
            ];
            let count = places.iter().filter(|&&p| p).count();
            if count != 1 {
                return Err(format!(
                    "cell {id} is in {count} sets (pending={}, leased={}, parked={}, written={})",
                    places[0], places[1], places[2], places[3]
                ));
            }
        }
        for id in 0..self.cursor.min(self.total) {
            if !self.written.contains(&id) {
                return Err(format!("cursor {} passed unwritten cell {id}", self.cursor));
            }
        }
        if self.parked.keys().any(|&id| id >= self.total) {
            return Err("out-of-range cell parked".into());
        }
        Ok(())
    }
}

/// Everything the accept loop and the per-connection handlers share: the
/// pure state machine plus the I/O it drives.
struct Shared {
    state: ServeState,
    store: StoreWriter,
    timings: File,
    sink: Option<File>,
    progress: bool,
}

impl Shared {
    /// Flush parked results that extend the store's contiguous prefix.
    fn flush(&mut self) -> Result<(), String> {
        while let Some((cell, r)) = self.state.pop_flushable() {
            self.store
                .append(&r.line)
                .map_err(|e| format!("append cell {cell}: {e}"))?;
            telemetry::append_timing(&mut self.timings, cell, r.trials, r.elapsed_secs)?;
        }
        Ok(())
    }
}

/// A bound (but not yet running) serve daemon.
pub struct Server {
    listener: TcpListener,
    header: StoreHeader,
    campaign: String,
    store_path: PathBuf,
}

fn send(stream: &mut TcpStream, msg: &Msg) -> std::io::Result<()> {
    stream.write_all(msg.encode().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

impl Server {
    /// Bind the daemon: expand `spec` (the fingerprint every worker must
    /// match) and listen on `addr` (`host:port`; port 0 picks a free one —
    /// read it back with [`Server::local_addr`]).
    pub fn bind(addr: &str, spec: &CampaignSpec, store: &Path) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("serve: bind {addr}: {e}"))?;
        Ok(Self {
            listener,
            header: spec.header(),
            campaign: spec.name.clone(),
            store_path: store.to_path_buf(),
        })
    }

    /// The bound address (resolves a `:0` port).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("serve: local_addr: {e}"))
    }

    /// Run until every cell of the grid is in the store, then return.
    ///
    /// Accepts connections forever while running; each worker gets a
    /// handler thread. A worker that disconnects mid-lease has its cells
    /// re-claimed immediately; one that stops heartbeating loses them when
    /// the lease expires.
    pub fn run(self, cfg: &ServeConfig) -> Result<ServeOutcome, String> {
        let (file, done) =
            store::open_for_append(&self.store_path, &self.header, cfg.resume, cfg.durability)?;
        let timings = telemetry::open_timings(&self.store_path, cfg.resume)?;
        let total = self.header.cells;
        let cells_skipped = done.len() as u64;
        let sink = match &cfg.telemetry {
            Some(p) => {
                let mut f = File::create(p)
                    .map_err(|e| format!("{}: create telemetry sink: {e}", p.display()))?;
                let header = JsonObj::new()
                    .str_field("schema", TELEMETRY_SCHEMA)
                    .str_field("campaign", &self.campaign)
                    .u64_field("threads", 0)
                    .u64_field("cells", total)
                    .u64_field(
                        "trials_planned",
                        (total - cells_skipped) * self.header.trials,
                    )
                    .finish();
                writeln!(f, "{header}")
                    .map_err(|e| format!("{}: write telemetry header: {e}", p.display()))?;
                Some(f)
            }
            None => None,
        };

        let shared = Arc::new(Mutex::new(Shared {
            state: ServeState::new(total, done, cfg.lease),
            store: file,
            timings,
            sink,
            progress: cfg.progress,
        }));

        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("serve: set_nonblocking: {e}"))?;
        let fingerprint = format!("{:016x}", self.header.fingerprint);
        let mut conn_id = 0u64;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conn_id += 1;
                    let conn = conn_id;
                    let shared = Arc::clone(&shared);
                    let fingerprint = fingerprint.clone();
                    let campaign = self.campaign.clone();
                    std::thread::spawn(move || {
                        handle_worker(stream, conn, &shared, &fingerprint, &campaign);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("serve: accept: {e}")),
            }
            {
                let mut s = shared.lock().map_err(|_| "serve: state poisoned")?;
                s.state.sweep_expired(Instant::now());
                if s.state.drained() {
                    if let Some(sink) = s.sink.as_mut() {
                        let _ = sink.flush();
                    }
                    s.store
                        .finish()
                        .map_err(|e| format!("serve: sync store on finish: {e}"))?;
                    return Ok(ServeOutcome {
                        cells_total: total,
                        cells_ingested: s.state.cells_ingested,
                        cells_skipped,
                        workers_seen: s.state.workers_seen,
                        leases_reclaimed: s.state.leases_reclaimed,
                        leases_renewed: s.state.leases_renewed,
                        results_deduped: s.state.results_deduped,
                        telemetry_dropped: s.state.telemetry_dropped,
                        goodbyes: s.state.goodbyes,
                        store_path: self.store_path.clone(),
                    });
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// One worker connection, from handshake to disconnect. Any protocol or
/// I/O error just drops the connection — the lease sweep and the
/// disconnect release make worker failure a non-event.
fn handle_worker(
    mut stream: TcpStream,
    conn: u64,
    shared: &Arc<Mutex<Shared>>,
    fingerprint: &str,
    campaign: &str,
) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut lines = BufReader::new(reader).lines();

    // Handshake: first line must be a matching Hello.
    let worker_name = match lines.next() {
        Some(Ok(line)) => match Msg::decode(&line) {
            Ok(Msg::Hello {
                schema,
                worker,
                fingerprint: fp,
            }) => {
                let reason = if schema != FABRIC_SCHEMA {
                    Some(format!("protocol version '{schema}' != '{FABRIC_SCHEMA}'"))
                } else if fp != fingerprint {
                    Some(format!(
                        "grid fingerprint {fp} != {fingerprint} — worker expanded a \
                         different campaign spec"
                    ))
                } else {
                    None
                };
                if let Some(reason) = reason {
                    let _ = send(&mut stream, &Msg::Reject { reason });
                    return;
                }
                worker
            }
            _ => {
                let _ = send(
                    &mut stream,
                    &Msg::Reject {
                        reason: "expected hello".into(),
                    },
                );
                return;
            }
        },
        _ => return,
    };
    {
        let Ok(mut s) = shared.lock() else { return };
        s.state.workers_seen += 1;
        let total = s.state.total();
        if s.progress {
            eprintln!("[serve] worker '{worker_name}' connected ({total} cells)");
        }
    }
    if send(
        &mut stream,
        &Msg::Welcome {
            campaign: campaign.into(),
            cells: shared.lock().map(|s| s.state.total()).unwrap_or(0),
        },
    )
    .is_err()
    {
        return;
    }

    for line in lines {
        let Ok(line) = line else { break };
        let msg = match Msg::decode(&line) {
            Ok(m) => m,
            Err(_) => break, // desynced connection: drop it
        };
        let reply = {
            let Ok(mut s) = shared.lock() else { break };
            match msg {
                Msg::Claim => Some(s.state.claim(conn, Instant::now())),
                Msg::Renew { cell } => {
                    s.state.renew(conn, cell, Instant::now());
                    None
                }
                Msg::Result {
                    cell,
                    line,
                    elapsed_secs,
                    trials,
                } => {
                    // The embedded id must agree — a mismatch means a buggy
                    // or hostile worker, and the record is dropped (the
                    // cell goes back to pending).
                    let id_ok = parse_flat(&line)
                        .ok()
                        .and_then(|obj| get(&obj, "cell").and_then(JsonScalar::as_u64))
                        == Some(cell);
                    let parked = Parked {
                        line,
                        trials,
                        elapsed_secs,
                    };
                    match s.state.ingest(cell, parked, id_ok) {
                        Ingest::Parked => {
                            if s.flush().is_err() {
                                break; // store write failed; stall visibly
                            }
                            if s.progress {
                                eprintln!(
                                    "[serve] cell {cell} from '{worker_name}' ({}/{})",
                                    s.state.written_len(),
                                    s.state.total()
                                );
                            }
                        }
                        Ingest::Duplicate if s.progress => {
                            eprintln!("[serve] duplicate cell {cell} from '{worker_name}' ignored");
                        }
                        Ingest::Duplicate | Ingest::Rejected => {}
                    }
                    None
                }
                Msg::Telemetry { line } => {
                    // Ingest only lines that fully validate as telemetry
                    // records; shipped worker headers and torn/malformed
                    // lines are dropped so the sink always stays valid.
                    if s.sink.is_some() {
                        if telemetry::validate_record_line(&line).is_ok() {
                            if let Some(sink) = s.sink.as_mut() {
                                let _ = writeln!(sink, "{line}");
                            }
                        } else {
                            s.state.telemetry_dropped += 1;
                        }
                    }
                    None
                }
                Msg::Goodbye => {
                    s.state.goodbyes += 1;
                    if s.progress {
                        eprintln!("[serve] worker '{worker_name}' drained gracefully");
                    }
                    break;
                }
                // Anything else from a worker is a protocol violation.
                _ => break,
            }
        };
        if let Some(reply) = reply {
            let done = matches!(reply, Msg::Drained);
            if send(&mut stream, &reply).is_err() || done {
                break;
            }
        }
    }

    // Disconnect (or violation, or goodbye): whatever this worker held
    // goes back.
    if let Ok(mut s) = shared.lock() {
        s.state.release_conn(conn);
    }
}

// ---------------------------------------------------------------------------
// Queue mode: the long-lived multi-campaign daemon (`stabcon serve --queue`).
// ---------------------------------------------------------------------------

/// Queue-mode serve knobs.
#[derive(Clone)]
pub struct QueueServeConfig {
    /// Cell lease duration (same heartbeat semantics as [`ServeConfig`]).
    pub lease: Duration,
    /// Print per-lease and per-flush progress lines (accept / reject /
    /// expire / done events are always logged).
    pub progress: bool,
    /// Replay an existing jobs journal instead of refusing it.
    pub resume: bool,
    /// Fsync policy for the journal and every per-job store.
    pub durability: Durability,
    /// Campaigns running concurrently (rest wait in FIFO order).
    pub max_active: usize,
    /// Live jobs one client may hold (admission control).
    pub quota: usize,
    /// Exit once the queue holds at least one job and all are terminal
    /// (batch drains: `--resume --exit-when-idle` finishes parked work).
    pub exit_when_idle: bool,
    /// SIGTERM hook: when the flag flips, stop dealing leases, refuse
    /// submissions, wait for in-flight leases to settle, and exit with the
    /// queue parked durably in the journal.
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl Default for QueueServeConfig {
    fn default() -> Self {
        Self {
            lease: Duration::from_secs(60),
            progress: false,
            resume: false,
            durability: Durability::None,
            max_active: 4,
            quota: 4,
            exit_when_idle: false,
            shutdown: None,
        }
    }
}

/// What a queue-mode daemon run left behind.
#[derive(Debug, Clone)]
pub struct QueueOutcome {
    /// Jobs the queue has ever seen (including replayed records).
    pub jobs: u64,
    /// Jobs still queued at exit (parked for the next `--resume`).
    pub queued: u64,
    /// Jobs still running/draining at exit (parked likewise).
    pub running: u64,
    /// Jobs fully written to their stores.
    pub done: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Jobs that failed to activate.
    pub failed: u64,
    /// Connections whose handshake succeeded (workers and clients).
    pub workers_seen: u64,
    /// Whether the daemon exited on the shutdown flag (vs idle).
    pub halted: bool,
    /// The jobs journal path.
    pub journal_path: PathBuf,
}

/// Per-active-job file handles: the store plus its timings sidecar.
struct JobIo {
    store: StoreWriter,
    timings: File,
}

/// Everything queue-mode connections share: the pure [`JobQueue`] plus the
/// journal and per-job store handles it drives.
struct QShared {
    queue: JobQueue,
    stores: BTreeMap<u64, JobIo>,
    journal: StoreWriter,
    out: PathBuf,
    durability: Durability,
    progress: bool,
    workers_seen: u64,
}

/// A job's display name: the built spec's name, else what the descriptor
/// would call it.
fn job_name(job: &Job) -> String {
    job.spec
        .as_ref()
        .map(|s| s.name.clone())
        .or_else(|| job.descriptor.name.clone())
        .unwrap_or_else(|| job.descriptor.preset.clone())
}

impl QShared {
    fn journal_event(&mut self, ev: &JournalEvent) -> Result<(), String> {
        self.journal
            .append(&ev.to_line())
            .map_err(|e| format!("jobs journal append: {e}"))
    }

    /// Fill free activation slots from the FIFO head. An activation
    /// failure fails that job and moves on — one bad store never wedges
    /// the queue.
    fn activate_ready(&mut self, now: Instant) {
        while let Some(id) = self.queue.next_activation() {
            if let Err(e) = self.activate(id, now) {
                eprintln!("serve: job {id} failed — {e}");
                self.queue.fail(id, now);
                if let Err(e) = self.journal_event(&JournalEvent::State {
                    job: id,
                    state: JobState::Failed,
                }) {
                    eprintln!("serve: job {id} failure not journaled — {e}");
                }
            }
        }
    }

    /// Activate one queued job: journal the transition *first* (so a crash
    /// between journal and store open replays as a resumable Running job,
    /// and [`store::open_for_append`] creates the missing store fresh),
    /// then open its store/timings and hand the done-set to the queue.
    fn activate(&mut self, id: u64, now: Instant) -> Result<(), String> {
        let (header, resume) = {
            let job = self.queue.job(id).ok_or_else(|| format!("unknown job {id}"))?;
            let spec = job
                .spec
                .as_ref()
                .ok_or_else(|| "descriptor no longer builds".to_string())?;
            (spec.header(), job.resume_store)
        };
        self.journal_event(&JournalEvent::State {
            job: id,
            state: JobState::Running,
        })?;
        let path = job_store_path(&self.out, id);
        let (store, done) = store::open_for_append(&path, &header, resume, self.durability)?;
        let timings = telemetry::open_timings(&path, resume)?;
        self.stores.insert(id, JobIo { store, timings });
        let done_len = done.len();
        self.queue.start(id, done, now)?;
        eprintln!(
            "serve: job {id} running — store {} ({done_len}/{} cells already present)",
            path.display(),
            header.cells
        );
        // A resumed store that was already complete flips straight to Done.
        self.flush_job(id, now)
    }

    /// Ingest one result frame for one job; flush if it parked.
    fn ingest_result(
        &mut self,
        job: u64,
        cell: u64,
        line: String,
        elapsed_secs: f64,
        trials: u64,
        now: Instant,
    ) -> Result<(), String> {
        let id_ok = parse_flat(&line)
            .ok()
            .and_then(|obj| get(&obj, "cell").and_then(JsonScalar::as_u64))
            == Some(cell);
        let parked = Parked {
            line,
            trials,
            elapsed_secs,
        };
        if self.queue.ingest(job, cell, parked, id_ok, now) == Ingest::Parked {
            self.flush_job(job, now)?;
        }
        Ok(())
    }

    /// Flush one job's parked results that extend its store's contiguous
    /// prefix; journal + close the store when the final flush finishes it.
    fn flush_job(&mut self, id: u64, now: Instant) -> Result<(), String> {
        if !self.stores.contains_key(&id) {
            return Ok(());
        }
        let mut flushed = 0u64;
        while let Some((cell, r)) = self.queue.pop_flushable(id, now) {
            let io = self.stores.get_mut(&id).expect("checked above");
            io.store
                .append(&r.line)
                .map_err(|e| format!("job {id}: append cell {cell}: {e}"))?;
            telemetry::append_timing(&mut io.timings, cell, r.trials, r.elapsed_secs)?;
            flushed += 1;
        }
        if flushed > 0 && self.progress {
            if let Some(job) = self.queue.job(id) {
                eprintln!(
                    "serve: job {id} flushed {flushed} cells ({}/{})",
                    job.written(),
                    job.cells_total
                );
            }
        }
        self.finalize_done(id, now)
    }

    /// If `id` just drained to [`JobState::Done`], journal it, sync and
    /// close its store, and log the completion.
    fn finalize_done(&mut self, id: u64, now: Instant) -> Result<(), String> {
        let Some(job) = self.queue.job(id) else {
            return Ok(());
        };
        if job.state != JobState::Done {
            return Ok(());
        }
        let total = job.cells_total;
        let elapsed = job.elapsed_secs(now);
        if let Some(mut io) = self.stores.remove(&id) {
            io.store
                .finish()
                .map_err(|e| format!("job {id}: sync store on finish: {e}"))?;
            self.journal_event(&JournalEvent::State {
                job: id,
                state: JobState::Done,
            })?;
            eprintln!("serve: job {id} done — {total} cells in {elapsed:.1}s");
        }
        Ok(())
    }

    /// Admit (or refuse) one submission: journal *before* acknowledging,
    /// so every `Accepted` the client ever sees survives a daemon crash.
    fn handle_submit(
        &mut self,
        client: &str,
        spec: &SpecDescriptor,
        fingerprint: &str,
        now: Instant,
    ) -> Msg {
        match self.queue.submit(client, spec, fingerprint) {
            Ok((id, cells)) => {
                let fp = self.queue.job(id).expect("just admitted").fingerprint;
                let ev = JournalEvent::Submit {
                    job: id,
                    client: client.into(),
                    spec: spec.clone(),
                    fingerprint: fp,
                    cells,
                };
                if let Err(e) = self.journal_event(&ev) {
                    self.queue.fail(id, now);
                    eprintln!("serve: job {id} rejected for '{client}': internal — {e}");
                    return Msg::Rejected {
                        code: "internal".into(),
                        reason: e,
                    };
                }
                let store = job_store_path(&self.out, id).display().to_string();
                eprintln!("serve: job {id} accepted from '{client}' ({cells} cells) — store {store}");
                self.activate_ready(now);
                Msg::Accepted { job: id, cells, store }
            }
            Err(rej) => {
                eprintln!(
                    "serve: submit rejected for '{client}': {} — {}",
                    rej.code, rej.reason
                );
                rej.to_msg()
            }
        }
    }

    /// Cancel a job: journal the transition, close its store (the partial
    /// file stays on disk), free the activation slot.
    fn handle_cancel(&mut self, job: u64, now: Instant) -> Msg {
        match self.queue.cancel(job, now) {
            Ok(state) => {
                if let Err(e) = self.journal_event(&JournalEvent::State { job, state }) {
                    eprintln!("serve: job {job} cancel not journaled — {e}");
                }
                if let Some(mut io) = self.stores.remove(&job) {
                    let _ = io.store.finish();
                }
                eprintln!("serve: job {job} cancelled — partial store kept on disk");
                self.activate_ready(now);
                Msg::Cancelled {
                    job,
                    state: state.label().into(),
                }
            }
            Err(rej) => {
                eprintln!(
                    "serve: cancel job {job} rejected: {} — {}",
                    rej.code, rej.reason
                );
                rej.to_msg()
            }
        }
    }

    /// The status plane: one [`Msg::StatusReport`] followed by exactly
    /// `jobs` × [`Msg::JobStatus`] frames (all jobs, or the one requested).
    fn status_frames(&self, job: Option<u64>, now: Instant) -> Vec<Msg> {
        let selected: Vec<&Job> = match job {
            Some(id) => match self.queue.job(id) {
                Some(j) => vec![j],
                None => {
                    return vec![Msg::Rejected {
                        code: "unknown-job".into(),
                        reason: format!("no job {id} in the queue"),
                    }]
                }
            },
            None => self.queue.jobs().collect(),
        };
        let c = self.queue.counts();
        let mut frames = vec![Msg::StatusReport {
            accepting: self.queue.accepting(),
            queued: c.queued,
            running: c.running,
            done: c.done,
            cancelled: c.cancelled,
            failed: c.failed,
            jobs: selected.len() as u64,
        }];
        for j in selected {
            frames.push(Msg::JobStatus {
                job: j.id,
                name: job_name(j),
                state: j.state.label().into(),
                client: j.client.clone(),
                cells: j.cells_total,
                written: j.written(),
                trials: j.trials_ingested,
                elapsed_secs: j.elapsed_secs(now),
            });
        }
        frames
    }

    /// Sync everything on the way out and summarize the queue.
    fn outcome(&mut self, halted: bool) -> Result<QueueOutcome, String> {
        for (id, io) in self.stores.iter_mut() {
            io.store
                .finish()
                .map_err(|e| format!("job {id}: sync store on exit: {e}"))?;
        }
        self.journal
            .finish()
            .map_err(|e| format!("sync jobs journal on exit: {e}"))?;
        let c = self.queue.counts();
        Ok(QueueOutcome {
            jobs: self.queue.jobs().count() as u64,
            queued: c.queued,
            running: c.running,
            done: c.done,
            cancelled: c.cancelled,
            failed: c.failed,
            workers_seen: self.workers_seen,
            halted,
            journal_path: jobs_journal_path(&self.out),
        })
    }
}

/// A bound (but not yet running) queue-mode daemon.
pub struct QueueServer {
    listener: TcpListener,
    out: PathBuf,
}

/// Which protocol a queue-mode connection negotiated in its Hello.
#[derive(Clone, Copy)]
enum ConnMode {
    /// `stabcon-fabric/2`: submissions, status, cancel, and any-campaign
    /// claims ([`Msg::Lease2`]/[`Msg::Result2`]).
    Unpinned,
    /// `stabcon-fabric/1`: the Hello's grid fingerprint pinned this
    /// connection to one job; it speaks pure `/1` frames.
    Pinned(u64),
}

impl QueueServer {
    /// Bind the daemon on `addr`. `out` is the store *prefix*: job `N`'s
    /// store lands at `<out>.job-N.jsonl`, the journal at
    /// `<out>.jobs.jsonl`.
    pub fn bind(addr: &str, out: &Path) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("serve: bind {addr}: {e}"))?;
        Ok(Self {
            listener,
            out: out.to_path_buf(),
        })
    }

    /// The bound address (resolves a `:0` port).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("serve: local_addr: {e}"))
    }

    /// Run the daemon: open (or replay) the journal, then accept
    /// submissions, lease cells, and flush stores until the shutdown flag
    /// flips (drain leases, park the queue, exit) or — with
    /// `exit_when_idle` — until every job the queue has seen is terminal.
    pub fn run(self, cfg: &QueueServeConfig) -> Result<QueueOutcome, String> {
        let journal_path = jobs_journal_path(&self.out);
        let (journal, events) = open_journal(&journal_path, cfg.resume, cfg.durability)?;
        let mut queue = JobQueue::new(QueueConfig {
            max_active: cfg.max_active,
            quota: cfg.quota,
            lease: cfg.lease,
        });
        queue.replay(&events)?;
        if !events.is_empty() {
            let c = queue.counts();
            eprintln!(
                "serve: journal replayed — {} jobs ({} queued, {} done, {} cancelled, {} failed)",
                queue.jobs().count(),
                c.queued,
                c.done,
                c.cancelled,
                c.failed
            );
        }
        let shared = Arc::new(Mutex::new(QShared {
            queue,
            stores: BTreeMap::new(),
            journal,
            out: self.out.clone(),
            durability: cfg.durability,
            progress: cfg.progress,
            workers_seen: 0,
        }));
        {
            let mut q = shared.lock().map_err(|_| "serve: state poisoned")?;
            q.activate_ready(Instant::now());
        }

        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("serve: set_nonblocking: {e}"))?;
        // Exit-when-idle linger: long enough for every connected worker to
        // wake from a Wait sleep, claim once more, and hear Drained —
        // instead of finding a dead socket and burning its retry budget.
        let retry_ms = (cfg.lease.as_millis() as u64 / 4).clamp(50, 1000);
        let grace = Duration::from_millis(retry_ms * 2 + 200);
        let mut idle_since: Option<Instant> = None;
        let mut conn_id = 0u64;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conn_id += 1;
                    let conn = conn_id;
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        handle_queue_conn(stream, conn, &shared);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("serve: accept: {e}")),
            }
            {
                let mut q = shared.lock().map_err(|_| "serve: state poisoned")?;
                let now = Instant::now();
                for (job, cell) in q.queue.sweep_expired(now) {
                    eprintln!("serve: job {job} cell {cell} lease expired — reclaimed");
                }
                q.activate_ready(now);
                let halt_requested = cfg
                    .shutdown
                    .as_ref()
                    .is_some_and(|f| f.load(Ordering::Relaxed));
                if halt_requested && !q.queue.halted() {
                    q.queue.halt();
                    eprintln!(
                        "serve: halt requested — draining leases, parking queue, \
                         refusing submissions"
                    );
                }
                if q.queue.halted() && q.queue.leases_settled() {
                    return q.outcome(true);
                }
                if cfg.exit_when_idle && q.queue.jobs().next().is_some() && q.queue.idle() {
                    match idle_since {
                        None => {
                            // Stop accepting so claims answer Drained, and
                            // linger so connected workers hear it.
                            q.queue.set_accepting(false);
                            idle_since = Some(now);
                            eprintln!("serve: queue idle — draining workers before exit");
                        }
                        Some(since) if now.duration_since(since) >= grace => {
                            return q.outcome(false);
                        }
                        Some(_) => {}
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// One queue-mode connection, from version-negotiating handshake to
/// disconnect. `/2` Hellos get the full submission/status/claim plane;
/// `/1` Hellos are pinned to the queued job matching their fingerprint and
/// speak the original worker protocol unchanged.
fn handle_queue_conn(mut stream: TcpStream, conn: u64, shared: &Arc<Mutex<QShared>>) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut lines = BufReader::new(reader).lines();

    let (mode, worker_name) = match lines.next() {
        Some(Ok(line)) => match Msg::decode(&line) {
            Ok(Msg::Hello {
                schema,
                worker,
                fingerprint,
            }) => {
                if schema == FABRIC_SCHEMA_V2 {
                    (ConnMode::Unpinned, worker)
                } else if schema == FABRIC_SCHEMA {
                    let fp = match u64::from_str_radix(&fingerprint, 16) {
                        Ok(fp) => fp,
                        Err(e) => {
                            let _ = send(
                                &mut stream,
                                &Msg::Reject {
                                    reason: format!("unparsable fingerprint: {e}"),
                                },
                            );
                            return;
                        }
                    };
                    let pinned = shared
                        .lock()
                        .ok()
                        .and_then(|q| q.queue.job_by_fingerprint(fp));
                    match pinned {
                        Some(id) => (ConnMode::Pinned(id), worker),
                        None => {
                            let _ = send(
                                &mut stream,
                                &Msg::Reject {
                                    reason: format!(
                                        "no live campaign with grid fingerprint {fingerprint} \
                                         in the queue"
                                    ),
                                },
                            );
                            return;
                        }
                    }
                } else {
                    let _ = send(
                        &mut stream,
                        &Msg::Reject {
                            reason: format!(
                                "protocol version '{schema}' is neither '{FABRIC_SCHEMA}' \
                                 nor '{FABRIC_SCHEMA_V2}'"
                            ),
                        },
                    );
                    return;
                }
            }
            _ => {
                let _ = send(
                    &mut stream,
                    &Msg::Reject {
                        reason: "expected hello".into(),
                    },
                );
                return;
            }
        },
        _ => return,
    };

    let welcome = {
        let Ok(mut q) = shared.lock() else { return };
        q.workers_seen += 1;
        match mode {
            ConnMode::Pinned(id) => {
                let Some(job) = q.queue.job(id) else { return };
                Msg::Welcome {
                    campaign: job_name(job),
                    cells: job.cells_total,
                }
            }
            ConnMode::Unpinned => Msg::Welcome {
                campaign: "queue".into(),
                cells: q.queue.jobs().filter(|j| !j.state.terminal()).count() as u64,
            },
        }
    };
    if send(&mut stream, &welcome).is_err() {
        return;
    }

    for line in lines {
        let Ok(line) = line else { break };
        let Ok(msg) = Msg::decode(&line) else { break }; // desynced: drop
        let now = Instant::now();
        let (replies, quit) = {
            let Ok(mut q) = shared.lock() else { break };
            match (mode, msg) {
                (ConnMode::Unpinned, Msg::Claim) => {
                    let reply = q.queue.claim(conn, now);
                    if let Msg::Lease2 { job, cell, .. } = &reply {
                        if q.progress {
                            eprintln!("serve: job {job} cell {cell} leased to '{worker_name}'");
                        }
                    }
                    (vec![reply], false)
                }
                (ConnMode::Pinned(id), Msg::Claim) => {
                    let reply = q.queue.claim_pinned(conn, id, now);
                    if let Msg::Lease { cell, .. } = &reply {
                        if q.progress {
                            eprintln!("serve: job {id} cell {cell} leased to '{worker_name}'");
                        }
                    }
                    (vec![reply], false)
                }
                (ConnMode::Unpinned, Msg::Renew2 { job, cell }) => {
                    q.queue.renew(conn, job, cell, now);
                    (vec![], false)
                }
                (ConnMode::Pinned(id), Msg::Renew { cell }) => {
                    q.queue.renew(conn, id, cell, now);
                    (vec![], false)
                }
                (
                    ConnMode::Unpinned,
                    Msg::Result2 {
                        job,
                        cell,
                        line,
                        elapsed_secs,
                        trials,
                    },
                ) => {
                    let quit = match q.ingest_result(job, cell, line, elapsed_secs, trials, now)
                    {
                        Ok(()) => false,
                        Err(e) => {
                            eprintln!("serve: job {job} flush failed — {e}");
                            true // store write failed; stall visibly
                        }
                    };
                    q.activate_ready(now); // a finished job frees a slot
                    (vec![], quit)
                }
                (
                    ConnMode::Pinned(id),
                    Msg::Result {
                        cell,
                        line,
                        elapsed_secs,
                        trials,
                    },
                ) => {
                    let quit = match q.ingest_result(id, cell, line, elapsed_secs, trials, now) {
                        Ok(()) => false,
                        Err(e) => {
                            eprintln!("serve: job {id} flush failed — {e}");
                            true
                        }
                    };
                    q.activate_ready(now);
                    (vec![], quit)
                }
                (
                    ConnMode::Unpinned,
                    Msg::Submit {
                        client,
                        spec,
                        fingerprint,
                    },
                ) => (vec![q.handle_submit(&client, &spec, &fingerprint, now)], false),
                (ConnMode::Unpinned, Msg::Status { job }) => (q.status_frames(job, now), false),
                (ConnMode::Unpinned, Msg::Cancel { job }) => {
                    (vec![q.handle_cancel(job, now)], false)
                }
                // Telemetry has no sink in queue mode; dropped silently.
                (_, Msg::Telemetry { .. }) => (vec![], false),
                (_, Msg::Goodbye) => (vec![], true),
                // Anything else on this connection is a protocol violation.
                _ => (vec![], true),
            }
        };
        let mut dead = false;
        for reply in &replies {
            let drained = matches!(reply, Msg::Drained);
            if send(&mut stream, reply).is_err() || drained {
                dead = true;
                break;
            }
        }
        if dead || quit {
            break;
        }
    }

    // Disconnect (or violation, or goodbye): whatever this connection held
    // goes back to its jobs' pending sets.
    if let Ok(mut q) = shared.lock() {
        q.queue.release_conn(conn, Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(total: u64) -> ServeState {
        ServeState::new(total, BTreeSet::new(), Duration::from_millis(500))
    }

    fn parked(cell: u64) -> Parked {
        Parked {
            line: format!("{{\"kind\": \"cell\", \"cell\": {cell}}}"),
            trials: 4,
            elapsed_secs: 0.5,
        }
    }

    #[test]
    fn renew_extends_only_the_holders_lease() {
        let mut s = state(2);
        let t0 = Instant::now();
        let Msg::Lease { cell, .. } = s.claim(1, t0) else {
            panic!("expected lease")
        };
        // Without a heartbeat the lease expires...
        let after = t0 + Duration::from_millis(600);
        // ...but a renewal from the holder moves the deadline.
        s.renew(1, cell, t0 + Duration::from_millis(400));
        s.sweep_expired(after);
        assert_eq!(s.leases_reclaimed, 0, "heartbeat kept the lease alive");
        assert_eq!(s.leases_renewed, 1);
        // A renewal from a *different* connection is ignored.
        s.renew(2, cell, after + Duration::from_secs(10));
        assert_eq!(s.leases_renewed, 1);
        // Silence past the renewed deadline expires it.
        s.sweep_expired(t0 + Duration::from_secs(2));
        assert_eq!(s.leases_reclaimed, 1);
        s.check_invariants().expect("invariants");
    }

    #[test]
    fn expiry_is_monotonic_deadline_based() {
        // Deadlines are Instants: sweeping with a `now` *before* the
        // deadline never expires, at/after always does — there is no
        // wall-clock involvement to step.
        let mut s = state(1);
        let t0 = Instant::now();
        s.claim(1, t0);
        s.sweep_expired(t0 + Duration::from_millis(499));
        assert_eq!(s.leases_reclaimed, 0);
        s.sweep_expired(t0 + Duration::from_millis(500));
        assert_eq!(s.leases_reclaimed, 1);
        s.check_invariants().expect("invariants");
    }

    #[test]
    fn duplicate_results_across_reconnects_are_counted_once_each() {
        let mut s = state(2);
        let t0 = Instant::now();
        let Msg::Lease { cell, .. } = s.claim(1, t0) else {
            panic!("expected lease")
        };
        assert_eq!(s.ingest(cell, parked(cell), true), Ingest::Parked);
        // The same worker resubmits after a reconnect (conn 2), twice.
        assert_eq!(s.ingest(cell, parked(cell), true), Ingest::Duplicate);
        assert_eq!(s.ingest(cell, parked(cell), true), Ingest::Duplicate);
        assert_eq!(s.results_deduped, 2);
        assert_eq!(s.cells_ingested, 1);
        // Flush, then a late re-run of the written cell arrives: still dup.
        let flushed = s.pop_flushable().expect("flushable");
        assert_eq!(flushed.0, cell);
        assert_eq!(s.ingest(cell, parked(cell), true), Ingest::Duplicate);
        assert_eq!(s.results_deduped, 3);
        s.check_invariants().expect("invariants");
    }

    #[test]
    fn mismatched_or_out_of_range_results_are_rejected() {
        let mut s = state(2);
        let t0 = Instant::now();
        let Msg::Lease { cell, .. } = s.claim(1, t0) else {
            panic!("expected lease")
        };
        assert_eq!(s.ingest(cell, parked(cell), false), Ingest::Rejected);
        assert_eq!(s.results_rejected, 1);
        s.check_invariants().expect("rejected cell back to pending");
        // Out-of-range cell id: dropped without poisoning the sets.
        assert_eq!(s.ingest(99, parked(99), true), Ingest::Rejected);
        s.check_invariants().expect("invariants");
    }

    #[test]
    fn flush_emits_a_contiguous_prefix_in_order() {
        let mut s = state(3);
        let t0 = Instant::now();
        for conn in 1..=3 {
            s.claim(conn, t0);
        }
        // Results arrive out of order: 2, 0, 1.
        s.ingest(2, parked(2), true);
        assert!(s.pop_flushable().is_none(), "cell 0 missing: no flush yet");
        s.ingest(0, parked(0), true);
        assert_eq!(s.pop_flushable().map(|(c, _)| c), Some(0));
        assert!(s.pop_flushable().is_none(), "cell 1 missing");
        s.ingest(1, parked(1), true);
        assert_eq!(s.pop_flushable().map(|(c, _)| c), Some(1));
        assert_eq!(s.pop_flushable().map(|(c, _)| c), Some(2));
        assert!(s.pop_flushable().is_none());
        assert!(s.drained());
        s.check_invariants().expect("invariants");
    }
}

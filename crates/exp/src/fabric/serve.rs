//! The `stabcon serve` daemon: lease cells to connecting workers, re-claim
//! leases whose worker died, and assemble the canonical store.
//!
//! The server is the online counterpart of the batch shard/merge flow. It
//! expands the campaign once, validates every worker's grid fingerprint in
//! the [`super::protocol`] handshake, then hands out cell *ids* under
//! expiring leases. Because every cell line is a pure function of its spec,
//! a dead host costs nothing but wall clock: its leased cells return to the
//! pending set (on disconnect immediately, on a hang when the lease
//! expires) and the re-run by another worker produces the identical bytes.
//! A *slow* worker is not a dead one: [`Msg::Renew`] heartbeats push the
//! lease deadline out while the cell runs, so only workers that stop
//! heartbeating lose their lease. Duplicate results — the original worker
//! limping back (possibly over a fresh connection) after its result was
//! already ingested — are deduplicated; first ingest wins and is exact,
//! and the dedupe count is reported in the [`ServeOutcome`].
//!
//! All lease deadlines are [`Instant`]s — the OS **monotonic** clock — so a
//! wall-clock step (NTP correction, manual `date`, DST) can never
//! mass-expire live leases or stretch them indefinitely.
//!
//! The lease/park/flush bookkeeping lives in [`ServeState`], a pure state
//! machine decoupled from sockets and files: the connection handlers
//! translate wire frames into state transitions, and property tests drive
//! arbitrary hostile interleavings (duplicate results, reconnects, expired
//! leases) against [`ServeState::check_invariants`] directly.
//!
//! Results are parked and flushed to the store as a contiguous prefix in
//! cell-index order (the same discipline as the in-order chunk merger
//! inside `run_cell`), so a completed serve store is byte-identical to the
//! single-host `stabcon campaign run` store. The store handle is a
//! [`store::StoreWriter`], so `--durability {none,cell,batch}` applies the
//! same fsync policy here as in the single-host runner, and a `kill -9`'d
//! server restarted with `--resume` repairs any torn tail on open and
//! finishes the campaign.
//!
//! Worker telemetry frames ([`Msg::Telemetry`]) are ingested as the live
//! progress stream — but only lines that fully validate as
//! `stabcon-telemetry/1` records (shipped worker sink *headers* and torn or
//! malformed lines are dropped and counted), so a hostile or desynced
//! worker can never corrupt the server's sink.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stabcon_util::jsonl::{get, parse_flat, JsonObj, JsonScalar};

use crate::campaign::CampaignSpec;
use crate::store::{self, Durability, StoreHeader, StoreWriter};
use crate::telemetry::{self, TELEMETRY_SCHEMA};

use super::protocol::{Msg, FABRIC_SCHEMA};

/// Serve knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How long a worker may sit on a leased cell without heartbeating
    /// before the server hands the cell to someone else ([`Msg::Renew`]
    /// extends the deadline by this much each time).
    pub lease: Duration,
    /// Print a progress line per ingested cell to stderr.
    pub progress: bool,
    /// Telemetry sink: worker-shipped snapshot/cell_profile records land
    /// here under a server-written `stabcon-telemetry/1` header.
    pub telemetry: Option<PathBuf>,
    /// Continue an existing store (skip its cells) instead of refusing it.
    pub resume: bool,
    /// Fsync policy for the assembled store (see [`store::Durability`]).
    pub durability: Durability,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            lease: Duration::from_secs(60),
            progress: false,
            telemetry: None,
            resume: false,
            durability: Durability::None,
        }
    }
}

/// What a serve run assembled.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Cells in the grid.
    pub cells_total: u64,
    /// Cells ingested from workers by this invocation.
    pub cells_ingested: u64,
    /// Cells already in the store at start (resume).
    pub cells_skipped: u64,
    /// Workers whose handshake succeeded.
    pub workers_seen: u64,
    /// Leases returned to the pending set (worker died or hung past the
    /// lease deadline).
    pub leases_reclaimed: u64,
    /// Lease heartbeats honored (deadline extensions).
    pub leases_renewed: u64,
    /// Duplicate [`Msg::Result`] frames ignored (reconnect resubmissions
    /// and re-runs of reclaimed leases; first ingest wins).
    pub results_deduped: u64,
    /// Telemetry lines dropped for failing `stabcon-telemetry/1` record
    /// validation (torn frames, shipped headers, malformed workers).
    pub telemetry_dropped: u64,
    /// Workers that announced a graceful drain ([`Msg::Goodbye`]).
    pub goodbyes: u64,
    /// The assembled store path.
    pub store_path: PathBuf,
}

/// One ingested-but-not-yet-flushed result.
#[derive(Debug, Clone, PartialEq)]
pub struct Parked {
    /// The raw store cell line.
    pub line: String,
    /// Trials the cell ran (timings sidecar).
    pub trials: u64,
    /// Worker-reported wall clock (timings sidecar).
    pub elapsed_secs: f64,
}

/// What [`ServeState::ingest`] did with a result frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Fresh result, parked for in-order flushing.
    Parked,
    /// The cell was already parked or written; frame ignored, dedupe
    /// counter bumped.
    Duplicate,
    /// The embedded line's cell id disagreed with the frame's — buggy or
    /// hostile worker; record dropped, cell back to pending.
    Rejected,
}

/// The serve daemon's pure lease/ingest state machine: which cells are
/// pending, leased (to which connection, until which monotonic deadline),
/// parked awaiting their flush turn, or written. No sockets, no files —
/// the connection handlers call into it under a lock, and property tests
/// drive hostile interleavings against it directly.
#[derive(Debug)]
pub struct ServeState {
    /// Cells nobody is working on.
    pending: BTreeSet<u64>,
    /// Leased cells: id → (connection, monotonic deadline).
    leases: BTreeMap<u64, (u64, Instant)>,
    /// Ingested results waiting for their turn in canonical order.
    parked: BTreeMap<u64, Parked>,
    /// Cells already flushed to the store file.
    written: BTreeSet<u64>,
    /// Smallest id that might still need writing (flush cursor).
    cursor: u64,
    total: u64,
    lease: Duration,
    /// Workers whose handshake succeeded.
    pub workers_seen: u64,
    /// Leases returned to pending (disconnect or expiry).
    pub leases_reclaimed: u64,
    /// Heartbeat extensions honored.
    pub leases_renewed: u64,
    /// Duplicate result frames ignored.
    pub results_deduped: u64,
    /// Result frames rejected for id mismatch.
    pub results_rejected: u64,
    /// Telemetry lines dropped by record validation.
    pub telemetry_dropped: u64,
    /// Graceful-drain goodbyes received.
    pub goodbyes: u64,
    /// Results accepted (parked) by this invocation.
    pub cells_ingested: u64,
}

impl ServeState {
    /// Fresh state for a `total`-cell grid with `done` cells already in the
    /// store (resume) and the given lease duration.
    pub fn new(total: u64, done: BTreeSet<u64>, lease: Duration) -> Self {
        let mut cursor = 0u64;
        while done.contains(&cursor) {
            cursor += 1;
        }
        Self {
            pending: (0..total).filter(|id| !done.contains(id)).collect(),
            leases: BTreeMap::new(),
            parked: BTreeMap::new(),
            written: done,
            cursor,
            total,
            lease,
            workers_seen: 0,
            leases_reclaimed: 0,
            leases_renewed: 0,
            results_deduped: 0,
            results_rejected: 0,
            telemetry_dropped: 0,
            goodbyes: 0,
            cells_ingested: 0,
        }
    }

    /// Every cell is in the store.
    pub fn drained(&self) -> bool {
        self.written.len() as u64 == self.total
    }

    /// Cells flushed so far.
    pub fn written_len(&self) -> u64 {
        self.written.len() as u64
    }

    /// Total cells in the grid.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether `cell` is currently leased, and to which connection.
    pub fn lease_holder(&self, cell: u64) -> Option<u64> {
        self.leases.get(&cell).map(|&(conn, _)| conn)
    }

    /// Answer a claim from `conn` at monotonic time `now`.
    pub fn claim(&mut self, conn: u64, now: Instant) -> Msg {
        if self.drained() {
            Msg::Drained
        } else if let Some(&cell) = self.pending.iter().next() {
            self.pending.remove(&cell);
            self.leases.insert(cell, (conn, now + self.lease));
            Msg::Lease {
                cell,
                lease_ms: self.lease.as_millis() as u64,
            }
        } else {
            // Everything left is leased out; poll back soon so a reclaimed
            // cell is picked up promptly.
            Msg::Wait {
                retry_ms: (self.lease.as_millis() as u64 / 4).clamp(50, 1000),
            }
        }
    }

    /// Heartbeat: push `cell`'s deadline to `now + lease` — but only if
    /// `conn` still holds the lease. A renewal for a reclaimed (or never
    /// granted) lease is ignored: the original worker lost it, and its
    /// eventual duplicate result will be deduped instead.
    pub fn renew(&mut self, conn: u64, cell: u64, now: Instant) {
        if let Some(entry) = self.leases.get_mut(&cell) {
            if entry.0 == conn {
                entry.1 = now + self.lease;
                self.leases_renewed += 1;
            }
        }
    }

    /// Ingest one result frame. `id_ok` is whether the embedded store
    /// line's `cell` field matches `cell` (the caller parses the line; the
    /// state machine stays serialization-free).
    pub fn ingest(&mut self, cell: u64, parked: Parked, id_ok: bool) -> Ingest {
        self.leases.remove(&cell);
        self.pending.remove(&cell);
        if self.written.contains(&cell) || self.parked.contains_key(&cell) {
            self.results_deduped += 1;
            return Ingest::Duplicate;
        }
        if !id_ok || cell >= self.total {
            // Buggy or hostile worker: drop the record. An in-range cell
            // goes back to pending so a healthy worker re-runs it.
            if cell < self.total {
                self.pending.insert(cell);
            }
            self.results_rejected += 1;
            return Ingest::Rejected;
        }
        self.parked.insert(cell, parked);
        self.cells_ingested += 1;
        Ingest::Parked
    }

    /// Pop the next parked result that extends the store's contiguous
    /// prefix, marking it written. Call in a loop after each ingest; `None`
    /// means the prefix can't grow yet.
    pub fn pop_flushable(&mut self) -> Option<(u64, Parked)> {
        loop {
            if self.written.contains(&self.cursor) {
                self.cursor += 1;
                continue;
            }
            let parked = self.parked.remove(&self.cursor)?;
            self.written.insert(self.cursor);
            return Some((self.cursor, parked));
        }
    }

    /// Return every lease owned by `conn` to the pending set (disconnect).
    pub fn release_conn(&mut self, conn: u64) {
        let cells: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, &(owner, _))| owner == conn)
            .map(|(&c, _)| c)
            .collect();
        for c in cells {
            self.leases.remove(&c);
            self.pending.insert(c);
            self.leases_reclaimed += 1;
        }
    }

    /// Return every lease whose monotonic deadline has passed to the
    /// pending set. Heartbeats ([`ServeState::renew`]) move deadlines, so
    /// only silent workers expire.
    pub fn sweep_expired(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, &(_, deadline))| now >= deadline)
            .map(|(&c, _)| c)
            .collect();
        for c in expired {
            self.leases.remove(&c);
            self.pending.insert(c);
            self.leases_reclaimed += 1;
        }
    }

    /// Structural invariants, for property tests: every cell of the grid
    /// is in exactly one of {pending, leased, parked, written}, the flush
    /// cursor never passes an unwritten cell, and written cells are never
    /// simultaneously pending/leased/parked.
    pub fn check_invariants(&self) -> Result<(), String> {
        for id in 0..self.total {
            let places = [
                self.pending.contains(&id),
                self.leases.contains_key(&id),
                self.parked.contains_key(&id),
                self.written.contains(&id),
            ];
            let count = places.iter().filter(|&&p| p).count();
            if count != 1 {
                return Err(format!(
                    "cell {id} is in {count} sets (pending={}, leased={}, parked={}, written={})",
                    places[0], places[1], places[2], places[3]
                ));
            }
        }
        for id in 0..self.cursor.min(self.total) {
            if !self.written.contains(&id) {
                return Err(format!("cursor {} passed unwritten cell {id}", self.cursor));
            }
        }
        if self.parked.keys().any(|&id| id >= self.total) {
            return Err("out-of-range cell parked".into());
        }
        Ok(())
    }
}

/// Everything the accept loop and the per-connection handlers share: the
/// pure state machine plus the I/O it drives.
struct Shared {
    state: ServeState,
    store: StoreWriter,
    timings: File,
    sink: Option<File>,
    progress: bool,
}

impl Shared {
    /// Flush parked results that extend the store's contiguous prefix.
    fn flush(&mut self) -> Result<(), String> {
        while let Some((cell, r)) = self.state.pop_flushable() {
            self.store
                .append(&r.line)
                .map_err(|e| format!("append cell {cell}: {e}"))?;
            telemetry::append_timing(&mut self.timings, cell, r.trials, r.elapsed_secs)?;
        }
        Ok(())
    }
}

/// A bound (but not yet running) serve daemon.
pub struct Server {
    listener: TcpListener,
    header: StoreHeader,
    campaign: String,
    store_path: PathBuf,
}

fn send(stream: &mut TcpStream, msg: &Msg) -> std::io::Result<()> {
    stream.write_all(msg.encode().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

impl Server {
    /// Bind the daemon: expand `spec` (the fingerprint every worker must
    /// match) and listen on `addr` (`host:port`; port 0 picks a free one —
    /// read it back with [`Server::local_addr`]).
    pub fn bind(addr: &str, spec: &CampaignSpec, store: &Path) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("serve: bind {addr}: {e}"))?;
        Ok(Self {
            listener,
            header: spec.header(),
            campaign: spec.name.clone(),
            store_path: store.to_path_buf(),
        })
    }

    /// The bound address (resolves a `:0` port).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("serve: local_addr: {e}"))
    }

    /// Run until every cell of the grid is in the store, then return.
    ///
    /// Accepts connections forever while running; each worker gets a
    /// handler thread. A worker that disconnects mid-lease has its cells
    /// re-claimed immediately; one that stops heartbeating loses them when
    /// the lease expires.
    pub fn run(self, cfg: &ServeConfig) -> Result<ServeOutcome, String> {
        let (file, done) =
            store::open_for_append(&self.store_path, &self.header, cfg.resume, cfg.durability)?;
        let timings = telemetry::open_timings(&self.store_path, cfg.resume)?;
        let total = self.header.cells;
        let cells_skipped = done.len() as u64;
        let sink = match &cfg.telemetry {
            Some(p) => {
                let mut f = File::create(p)
                    .map_err(|e| format!("{}: create telemetry sink: {e}", p.display()))?;
                let header = JsonObj::new()
                    .str_field("schema", TELEMETRY_SCHEMA)
                    .str_field("campaign", &self.campaign)
                    .u64_field("threads", 0)
                    .u64_field("cells", total)
                    .u64_field(
                        "trials_planned",
                        (total - cells_skipped) * self.header.trials,
                    )
                    .finish();
                writeln!(f, "{header}")
                    .map_err(|e| format!("{}: write telemetry header: {e}", p.display()))?;
                Some(f)
            }
            None => None,
        };

        let shared = Arc::new(Mutex::new(Shared {
            state: ServeState::new(total, done, cfg.lease),
            store: file,
            timings,
            sink,
            progress: cfg.progress,
        }));

        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("serve: set_nonblocking: {e}"))?;
        let fingerprint = format!("{:016x}", self.header.fingerprint);
        let mut conn_id = 0u64;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conn_id += 1;
                    let conn = conn_id;
                    let shared = Arc::clone(&shared);
                    let fingerprint = fingerprint.clone();
                    let campaign = self.campaign.clone();
                    std::thread::spawn(move || {
                        handle_worker(stream, conn, &shared, &fingerprint, &campaign);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("serve: accept: {e}")),
            }
            {
                let mut s = shared.lock().map_err(|_| "serve: state poisoned")?;
                s.state.sweep_expired(Instant::now());
                if s.state.drained() {
                    if let Some(sink) = s.sink.as_mut() {
                        let _ = sink.flush();
                    }
                    s.store
                        .finish()
                        .map_err(|e| format!("serve: sync store on finish: {e}"))?;
                    return Ok(ServeOutcome {
                        cells_total: total,
                        cells_ingested: s.state.cells_ingested,
                        cells_skipped,
                        workers_seen: s.state.workers_seen,
                        leases_reclaimed: s.state.leases_reclaimed,
                        leases_renewed: s.state.leases_renewed,
                        results_deduped: s.state.results_deduped,
                        telemetry_dropped: s.state.telemetry_dropped,
                        goodbyes: s.state.goodbyes,
                        store_path: self.store_path.clone(),
                    });
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// One worker connection, from handshake to disconnect. Any protocol or
/// I/O error just drops the connection — the lease sweep and the
/// disconnect release make worker failure a non-event.
fn handle_worker(
    mut stream: TcpStream,
    conn: u64,
    shared: &Arc<Mutex<Shared>>,
    fingerprint: &str,
    campaign: &str,
) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut lines = BufReader::new(reader).lines();

    // Handshake: first line must be a matching Hello.
    let worker_name = match lines.next() {
        Some(Ok(line)) => match Msg::decode(&line) {
            Ok(Msg::Hello {
                schema,
                worker,
                fingerprint: fp,
            }) => {
                let reason = if schema != FABRIC_SCHEMA {
                    Some(format!("protocol version '{schema}' != '{FABRIC_SCHEMA}'"))
                } else if fp != fingerprint {
                    Some(format!(
                        "grid fingerprint {fp} != {fingerprint} — worker expanded a \
                         different campaign spec"
                    ))
                } else {
                    None
                };
                if let Some(reason) = reason {
                    let _ = send(&mut stream, &Msg::Reject { reason });
                    return;
                }
                worker
            }
            _ => {
                let _ = send(
                    &mut stream,
                    &Msg::Reject {
                        reason: "expected hello".into(),
                    },
                );
                return;
            }
        },
        _ => return,
    };
    {
        let Ok(mut s) = shared.lock() else { return };
        s.state.workers_seen += 1;
        let total = s.state.total();
        if s.progress {
            eprintln!("[serve] worker '{worker_name}' connected ({total} cells)");
        }
    }
    if send(
        &mut stream,
        &Msg::Welcome {
            campaign: campaign.into(),
            cells: shared.lock().map(|s| s.state.total()).unwrap_or(0),
        },
    )
    .is_err()
    {
        return;
    }

    for line in lines {
        let Ok(line) = line else { break };
        let msg = match Msg::decode(&line) {
            Ok(m) => m,
            Err(_) => break, // desynced connection: drop it
        };
        let reply = {
            let Ok(mut s) = shared.lock() else { break };
            match msg {
                Msg::Claim => Some(s.state.claim(conn, Instant::now())),
                Msg::Renew { cell } => {
                    s.state.renew(conn, cell, Instant::now());
                    None
                }
                Msg::Result {
                    cell,
                    line,
                    elapsed_secs,
                    trials,
                } => {
                    // The embedded id must agree — a mismatch means a buggy
                    // or hostile worker, and the record is dropped (the
                    // cell goes back to pending).
                    let id_ok = parse_flat(&line)
                        .ok()
                        .and_then(|obj| get(&obj, "cell").and_then(JsonScalar::as_u64))
                        == Some(cell);
                    let parked = Parked {
                        line,
                        trials,
                        elapsed_secs,
                    };
                    match s.state.ingest(cell, parked, id_ok) {
                        Ingest::Parked => {
                            if s.flush().is_err() {
                                break; // store write failed; stall visibly
                            }
                            if s.progress {
                                eprintln!(
                                    "[serve] cell {cell} from '{worker_name}' ({}/{})",
                                    s.state.written_len(),
                                    s.state.total()
                                );
                            }
                        }
                        Ingest::Duplicate if s.progress => {
                            eprintln!("[serve] duplicate cell {cell} from '{worker_name}' ignored");
                        }
                        Ingest::Duplicate | Ingest::Rejected => {}
                    }
                    None
                }
                Msg::Telemetry { line } => {
                    // Ingest only lines that fully validate as telemetry
                    // records; shipped worker headers and torn/malformed
                    // lines are dropped so the sink always stays valid.
                    if s.sink.is_some() {
                        if telemetry::validate_record_line(&line).is_ok() {
                            if let Some(sink) = s.sink.as_mut() {
                                let _ = writeln!(sink, "{line}");
                            }
                        } else {
                            s.state.telemetry_dropped += 1;
                        }
                    }
                    None
                }
                Msg::Goodbye => {
                    s.state.goodbyes += 1;
                    if s.progress {
                        eprintln!("[serve] worker '{worker_name}' drained gracefully");
                    }
                    break;
                }
                // Anything else from a worker is a protocol violation.
                _ => break,
            }
        };
        if let Some(reply) = reply {
            let done = matches!(reply, Msg::Drained);
            if send(&mut stream, &reply).is_err() || done {
                break;
            }
        }
    }

    // Disconnect (or violation, or goodbye): whatever this worker held
    // goes back.
    if let Ok(mut s) = shared.lock() {
        s.state.release_conn(conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(total: u64) -> ServeState {
        ServeState::new(total, BTreeSet::new(), Duration::from_millis(500))
    }

    fn parked(cell: u64) -> Parked {
        Parked {
            line: format!("{{\"kind\": \"cell\", \"cell\": {cell}}}"),
            trials: 4,
            elapsed_secs: 0.5,
        }
    }

    #[test]
    fn renew_extends_only_the_holders_lease() {
        let mut s = state(2);
        let t0 = Instant::now();
        let Msg::Lease { cell, .. } = s.claim(1, t0) else {
            panic!("expected lease")
        };
        // Without a heartbeat the lease expires...
        let after = t0 + Duration::from_millis(600);
        // ...but a renewal from the holder moves the deadline.
        s.renew(1, cell, t0 + Duration::from_millis(400));
        s.sweep_expired(after);
        assert_eq!(s.leases_reclaimed, 0, "heartbeat kept the lease alive");
        assert_eq!(s.leases_renewed, 1);
        // A renewal from a *different* connection is ignored.
        s.renew(2, cell, after + Duration::from_secs(10));
        assert_eq!(s.leases_renewed, 1);
        // Silence past the renewed deadline expires it.
        s.sweep_expired(t0 + Duration::from_secs(2));
        assert_eq!(s.leases_reclaimed, 1);
        s.check_invariants().expect("invariants");
    }

    #[test]
    fn expiry_is_monotonic_deadline_based() {
        // Deadlines are Instants: sweeping with a `now` *before* the
        // deadline never expires, at/after always does — there is no
        // wall-clock involvement to step.
        let mut s = state(1);
        let t0 = Instant::now();
        s.claim(1, t0);
        s.sweep_expired(t0 + Duration::from_millis(499));
        assert_eq!(s.leases_reclaimed, 0);
        s.sweep_expired(t0 + Duration::from_millis(500));
        assert_eq!(s.leases_reclaimed, 1);
        s.check_invariants().expect("invariants");
    }

    #[test]
    fn duplicate_results_across_reconnects_are_counted_once_each() {
        let mut s = state(2);
        let t0 = Instant::now();
        let Msg::Lease { cell, .. } = s.claim(1, t0) else {
            panic!("expected lease")
        };
        assert_eq!(s.ingest(cell, parked(cell), true), Ingest::Parked);
        // The same worker resubmits after a reconnect (conn 2), twice.
        assert_eq!(s.ingest(cell, parked(cell), true), Ingest::Duplicate);
        assert_eq!(s.ingest(cell, parked(cell), true), Ingest::Duplicate);
        assert_eq!(s.results_deduped, 2);
        assert_eq!(s.cells_ingested, 1);
        // Flush, then a late re-run of the written cell arrives: still dup.
        let flushed = s.pop_flushable().expect("flushable");
        assert_eq!(flushed.0, cell);
        assert_eq!(s.ingest(cell, parked(cell), true), Ingest::Duplicate);
        assert_eq!(s.results_deduped, 3);
        s.check_invariants().expect("invariants");
    }

    #[test]
    fn mismatched_or_out_of_range_results_are_rejected() {
        let mut s = state(2);
        let t0 = Instant::now();
        let Msg::Lease { cell, .. } = s.claim(1, t0) else {
            panic!("expected lease")
        };
        assert_eq!(s.ingest(cell, parked(cell), false), Ingest::Rejected);
        assert_eq!(s.results_rejected, 1);
        s.check_invariants().expect("rejected cell back to pending");
        // Out-of-range cell id: dropped without poisoning the sets.
        assert_eq!(s.ingest(99, parked(99), true), Ingest::Rejected);
        s.check_invariants().expect("invariants");
    }

    #[test]
    fn flush_emits_a_contiguous_prefix_in_order() {
        let mut s = state(3);
        let t0 = Instant::now();
        for conn in 1..=3 {
            s.claim(conn, t0);
        }
        // Results arrive out of order: 2, 0, 1.
        s.ingest(2, parked(2), true);
        assert!(s.pop_flushable().is_none(), "cell 0 missing: no flush yet");
        s.ingest(0, parked(0), true);
        assert_eq!(s.pop_flushable().map(|(c, _)| c), Some(0));
        assert!(s.pop_flushable().is_none(), "cell 1 missing");
        s.ingest(1, parked(1), true);
        assert_eq!(s.pop_flushable().map(|(c, _)| c), Some(1));
        assert_eq!(s.pop_flushable().map(|(c, _)| c), Some(2));
        assert!(s.pop_flushable().is_none());
        assert!(s.drained());
        s.check_invariants().expect("invariants");
    }
}

//! Deterministic partitioning of a campaign's expanded cell list.
//!
//! A shard is a subset of cell *ids* — never a change to any cell's spec or
//! seed — so every shard store's records are byte-identical to the lines
//! the single-host run would have written for the same cells.

use std::path::{Path, PathBuf};

/// Which slice of the expanded cell list a host runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSelection {
    /// Shard `index` of `count`: the balanced contiguous range
    /// `[index·total/count, (index+1)·total/count)`. Parsed from `i/k`.
    Index {
        /// Zero-based shard index (`< count`).
        index: u64,
        /// Total shard count (`≥ 1`).
        count: u64,
    },
    /// Explicit inclusive cell-id ranges, e.g. `0-3,7,12-15`. Kept sorted
    /// and non-overlapping (the parser rejects overlap).
    Ranges(Vec<(u64, u64)>),
}

impl ShardSelection {
    /// Parse a `--shard` argument: either `i/k` (shard `i` of `k`) or a
    /// comma-separated list of cell ids / inclusive ranges (`0-3,7`).
    ///
    /// Rejects `k = 0`, `i ≥ k`, inverted ranges, and overlapping manual
    /// ranges — a silent overlap would make two hosts run the same cells
    /// and the merge refuse their stores much later, far from the typo.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some((i, k)) = s.split_once('/') {
            let index: u64 = i
                .trim()
                .parse()
                .map_err(|e| format!("--shard: bad index '{i}': {e}"))?;
            let count: u64 = k
                .trim()
                .parse()
                .map_err(|e| format!("--shard: bad count '{k}': {e}"))?;
            if count == 0 {
                return Err("--shard: count must be ≥ 1 (got 0/0-style spec)".into());
            }
            if index >= count {
                return Err(format!(
                    "--shard: index {index} out of range for {count} shard(s) \
                     (indices are 0-based: 0..{})",
                    count - 1
                ));
            }
            return Ok(ShardSelection::Index { index, count });
        }
        let mut ranges = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (lo, hi) = match part.split_once('-') {
                Some((lo, hi)) => (
                    lo.trim()
                        .parse()
                        .map_err(|e| format!("--shard: bad range start '{lo}': {e}"))?,
                    hi.trim()
                        .parse()
                        .map_err(|e| format!("--shard: bad range end '{hi}': {e}"))?,
                ),
                None => {
                    let id: u64 = part
                        .parse()
                        .map_err(|e| format!("--shard: bad cell id '{part}': {e}"))?;
                    (id, id)
                }
            };
            if lo > hi {
                return Err(format!("--shard: inverted range {lo}-{hi}"));
            }
            ranges.push((lo, hi));
        }
        if ranges.is_empty() {
            return Err("--shard: empty selection".into());
        }
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            let ((alo, ahi), (blo, bhi)) = (pair[0], pair[1]);
            if blo <= ahi {
                return Err(format!(
                    "--shard: overlapping ranges {alo}-{ahi} and {blo}-{bhi} \
                     — each cell may appear in exactly one shard"
                ));
            }
        }
        Ok(ShardSelection::Ranges(ranges))
    }

    /// The contiguous cell-id range `[lo, hi)` of shard `index` of `count`
    /// over `total` cells: balanced to within one cell, covering exactly
    /// `0..total` across all shards.
    pub fn range_of(index: u64, count: u64, total: u64) -> (u64, u64) {
        (index * total / count, (index + 1) * total / count)
    }

    /// Whether cell `id` belongs to this shard of a `total`-cell grid.
    pub fn contains(&self, id: u64, total: u64) -> bool {
        match self {
            ShardSelection::Index { index, count } => {
                let (lo, hi) = Self::range_of(*index, *count, total);
                (lo..hi).contains(&id)
            }
            ShardSelection::Ranges(ranges) => {
                id < total && ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&id))
            }
        }
    }

    /// Validate against the grid size: manual ranges must stay inside the
    /// grid (an out-of-bounds range is a typo, not an empty shard).
    pub fn validate(&self, total: u64) -> Result<(), String> {
        match self {
            ShardSelection::Index { .. } => Ok(()),
            ShardSelection::Ranges(ranges) => {
                for &(lo, hi) in ranges {
                    if hi >= total {
                        return Err(format!(
                            "--shard: range {lo}-{hi} exceeds the grid ({total} cells, \
                             ids 0..{})",
                            total.saturating_sub(1)
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Filesystem-safe label for shard store paths.
    pub fn label(&self) -> String {
        match self {
            ShardSelection::Index { index, count } => format!("{index}-of-{count}"),
            ShardSelection::Ranges(ranges) => {
                let parts: Vec<String> = ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        if lo == hi {
                            lo.to_string()
                        } else {
                            format!("{lo}-{hi}")
                        }
                    })
                    .collect();
                format!("cells-{}", parts.join("+"))
            }
        }
    }
}

/// The per-shard store path for a campaign output path:
/// `<out>.shard-<label>.jsonl` (e.g. `store.jsonl.shard-1-of-3.jsonl`).
/// Appending (like the timings sidecar does) keeps every shard's artifacts
/// groupable by the `<out>` prefix.
pub fn shard_store_path(out: &Path, shard: &ShardSelection) -> PathBuf {
    let mut os = out.as_os_str().to_owned();
    os.push(format!(".shard-{}.jsonl", shard.label()));
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_index_form() {
        assert_eq!(
            ShardSelection::parse("1/3").expect("parse"),
            ShardSelection::Index { index: 1, count: 3 }
        );
        assert_eq!(
            ShardSelection::parse("0/1").expect("parse"),
            ShardSelection::Index { index: 0, count: 1 }
        );
    }

    #[test]
    fn rejects_malformed_index_form() {
        for bad in ["3/3", "5/2", "0/0", "1/0", "x/3", "1/y", "-1/3"] {
            let err = ShardSelection::parse(bad).expect_err(bad);
            assert!(err.contains("--shard"), "{bad}: {err}");
        }
    }

    #[test]
    fn parses_manual_ranges_and_rejects_overlap() {
        assert_eq!(
            ShardSelection::parse("0-3,7,12-15").expect("parse"),
            ShardSelection::Ranges(vec![(0, 3), (7, 7), (12, 15)])
        );
        // Unordered input is normalized…
        assert_eq!(
            ShardSelection::parse("7,0-3").expect("parse"),
            ShardSelection::Ranges(vec![(0, 3), (7, 7)])
        );
        // …overlap (even after sorting) is rejected.
        for bad in ["0-3,2-5", "0-3,3", "5,5", "4-2"] {
            let err = ShardSelection::parse(bad).expect_err(bad);
            assert!(
                err.contains("overlap") || err.contains("inverted"),
                "{bad}: {err}"
            );
        }
        assert!(ShardSelection::parse("").is_err());
    }

    #[test]
    fn index_ranges_partition_the_grid_exactly() {
        for total in [0u64, 1, 4, 5, 24, 1000] {
            for count in [1u64, 2, 3, 5, 7] {
                let mut seen = 0u64;
                let mut prev_hi = 0u64;
                for index in 0..count {
                    let (lo, hi) = ShardSelection::range_of(index, count, total);
                    assert_eq!(lo, prev_hi, "gap at shard {index}/{count} of {total}");
                    assert!(hi >= lo);
                    // Balanced to within one cell.
                    assert!(hi - lo <= total / count + 1);
                    seen += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(prev_hi, total);
                assert_eq!(seen, total, "{count} shards of {total} cells");
            }
        }
    }

    #[test]
    fn contains_matches_range_of() {
        let shard = ShardSelection::Index { index: 1, count: 3 };
        let (lo, hi) = ShardSelection::range_of(1, 3, 24);
        for id in 0..24 {
            assert_eq!(shard.contains(id, 24), (lo..hi).contains(&id));
        }
        let manual = ShardSelection::parse("0-2,9").expect("parse");
        assert!(manual.contains(0, 24) && manual.contains(9, 24));
        assert!(!manual.contains(3, 24));
        assert!(!manual.contains(9, 9), "ids outside the grid never match");
    }

    #[test]
    fn validate_rejects_out_of_grid_manual_ranges() {
        let manual = ShardSelection::parse("20-30").expect("parse");
        assert!(manual.validate(24).unwrap_err().contains("exceeds"));
        assert!(manual.validate(31).is_ok());
        assert!(ShardSelection::parse("2/3")
            .expect("parse")
            .validate(1)
            .is_ok());
    }

    #[test]
    fn shard_paths_are_derived_from_out() {
        let shard = ShardSelection::Index { index: 1, count: 3 };
        assert_eq!(
            shard_store_path(Path::new("store.jsonl"), &shard),
            PathBuf::from("store.jsonl.shard-1-of-3.jsonl")
        );
        let manual = ShardSelection::parse("0-3,7").expect("parse");
        assert_eq!(
            shard_store_path(Path::new("s.jsonl"), &manual),
            PathBuf::from("s.jsonl.shard-cells-0-3+7.jsonl")
        );
    }
}

//! The `stabcon work` side of the fabric: connect to a `stabcon serve`
//! daemon, claim cells, run them on the local thread pool, and stream
//! results (and telemetry) back.
//!
//! The worker expands the campaign spec **locally** and proves it did with
//! the grid fingerprint in the [`Msg::Hello`] handshake — the server never
//! ships cell specs over the wire, only cell *ids*, so the determinism
//! story is identical to the batch shard flow: every record the worker
//! produces is the exact line a single-host run would have written.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stabcon_par::ThreadPool;

use crate::campaign::CampaignSpec;
use crate::cell::{chunk_for, run_cell_monitored};
use crate::store;
use crate::telemetry::CampaignTelemetry;

use super::protocol::{Msg, FABRIC_SCHEMA};

/// Worker knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Local worker threads for the shared pool.
    pub threads: usize,
    /// Display name sent in the handshake (shows up in the server's
    /// progress lines).
    pub name: String,
    /// Trials per scheduler chunk; `None` auto-tunes per cell.
    pub chunk: Option<u64>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            threads: stabcon_par::default_threads(),
            name: "worker".into(),
            chunk: None,
        }
    }
}

/// What a worker session ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Cells completed and shipped.
    pub cells_run: u64,
    /// Trials executed.
    pub trials_run: u64,
}

/// A telemetry sink that ships each complete line to the server as a
/// [`Msg::Telemetry`] frame instead of writing a local file. Buffers until
/// a newline so partial `write` calls never tear a frame, and shares the
/// connection mutex with the protocol sends so frames stay line-atomic.
struct FrameWriter {
    stream: Arc<Mutex<TcpStream>>,
    buf: Vec<u8>,
}

impl Write for FrameWriter {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let rest = self.buf.split_off(pos + 1);
            self.buf.pop(); // the newline
            let line = String::from_utf8(std::mem::replace(&mut self.buf, rest))
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            send_locked(&self.stream, &Msg::Telemetry { line })?;
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn send_locked(stream: &Arc<Mutex<TcpStream>>, msg: &Msg) -> std::io::Result<()> {
    let mut s = stream
        .lock()
        .map_err(|_| std::io::Error::other("connection poisoned"))?;
    s.write_all(msg.encode().as_bytes())?;
    s.write_all(b"\n")?;
    s.flush()
}

/// Connect to a `stabcon serve` daemon at `addr` and work until the server
/// reports the campaign drained.
pub fn run_worker(
    addr: &str,
    spec: &CampaignSpec,
    cfg: &WorkerConfig,
) -> Result<WorkerOutcome, String> {
    let cells = spec.expand();
    let header = spec.header();
    let stream = TcpStream::connect(addr).map_err(|e| format!("work: connect {addr}: {e}"))?;
    let reader = stream
        .try_clone()
        .map_err(|e| format!("work: clone connection: {e}"))?;
    let mut lines = BufReader::new(reader).lines();
    let stream = Arc::new(Mutex::new(stream));

    let mut recv = || -> Result<Msg, String> {
        let line = lines
            .next()
            .ok_or("work: server closed the connection")?
            .map_err(|e| format!("work: read: {e}"))?;
        Msg::decode(&line)
    };

    send_locked(
        &stream,
        &Msg::Hello {
            schema: FABRIC_SCHEMA.into(),
            worker: cfg.name.clone(),
            fingerprint: format!("{:016x}", header.fingerprint),
        },
    )
    .map_err(|e| format!("work: hello: {e}"))?;
    match recv()? {
        Msg::Welcome {
            cells: server_cells,
            ..
        } => {
            if server_cells != cells.len() as u64 {
                return Err(format!(
                    "work: server grid has {server_cells} cells, local expansion {} — \
                     fingerprint collision?",
                    cells.len()
                ));
            }
        }
        Msg::Reject { reason } => return Err(format!("work: rejected: {reason}")),
        other => return Err(format!("work: unexpected handshake reply {other:?}")),
    }

    let pool = ThreadPool::new(cfg.threads);
    let mut outcome = WorkerOutcome {
        cells_run: 0,
        trials_run: 0,
    };
    loop {
        send_locked(&stream, &Msg::Claim).map_err(|e| format!("work: claim: {e}"))?;
        match recv()? {
            Msg::Lease { cell, .. } => {
                let cell = cells
                    .get(cell as usize)
                    .filter(|c| c.id == cell)
                    .ok_or_else(|| format!("work: leased unknown cell {cell}"))?;
                // Telemetry streams to the server; progress printing stays
                // off (the server renders progress for the whole campaign).
                let mut tel = CampaignTelemetry::create_with_sink(
                    &spec.name,
                    pool.threads().max(1),
                    cells.len() as u64,
                    cell.trials,
                    false,
                    Some(Box::new(FrameWriter {
                        stream: Arc::clone(&stream),
                        buf: Vec::new(),
                    })),
                )?;
                let chunk = cfg
                    .chunk
                    .unwrap_or_else(|| chunk_for(cell.trials, cfg.threads));
                tel.begin_cell(cell);
                let started = Instant::now();
                let agg = run_cell_monitored(&pool, cell, chunk, Some(&mut tel));
                let elapsed_secs = started.elapsed().as_secs_f64();
                tel.end_cell(cell, agg.trials(), elapsed_secs);
                tel.finish();
                send_locked(
                    &stream,
                    &Msg::Result {
                        cell: cell.id,
                        line: store::cell_line(cell, &agg),
                        elapsed_secs,
                        trials: agg.trials(),
                    },
                )
                .map_err(|e| format!("work: ship cell {}: {e}", cell.id))?;
                outcome.cells_run += 1;
                outcome.trials_run += agg.trials();
            }
            Msg::Wait { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 5000)));
            }
            Msg::Drained => return Ok(outcome),
            Msg::Reject { reason } => return Err(format!("work: rejected: {reason}")),
            other => return Err(format!("work: unexpected server message {other:?}")),
        }
    }
}

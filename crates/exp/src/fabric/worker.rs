//! The `stabcon work` side of the fabric: connect to a `stabcon serve`
//! daemon, claim cells, run them on the local thread pool, and stream
//! results (and telemetry) back.
//!
//! The worker expands the campaign spec **locally** and proves it did with
//! the grid fingerprint in the [`Msg::Hello`] handshake — the server never
//! ships cell specs over the wire, only cell *ids*, so the determinism
//! story is identical to the batch shard flow: every record the worker
//! produces is the exact line a single-host run would have written.
//!
//! ## WAN hardening
//!
//! The worker is built to survive a hostile network between it and the
//! server:
//!
//! * **Reconnect with backoff.** Any session-level failure — refused
//!   connect, mid-frame disconnect, torn or garbled reply — tears the
//!   session down and dials again, with capped exponential backoff and
//!   deterministic jitter (a [`hash3`] draw keyed by the worker name, so
//!   two workers restarting together don't thundering-herd the server).
//!   The consecutive-failure budget is [`WorkerConfig::retries`]; any
//!   successfully decoded server reply resets it.
//! * **Idempotent resubmission.** A completed cell's [`Msg::Result`] is
//!   held until the server provably consumed it (a reply to a *later*
//!   frame on the same connection — TCP ordering — proves the bytes
//!   arrived). If the connection dies first, the next session resends the
//!   frame; the server dedupes, so the store is byte-identical either way.
//! * **Lease heartbeats.** While a cell runs, a background thread sends
//!   fire-and-forget [`Msg::Renew`] frames every third of the lease, so a
//!   slow cell on a live worker never gets re-leased out from under it.
//! * **Graceful drain.** On SIGTERM (the binary installs a handler that
//!   calls [`request_drain`]) or a test-injected drain flag, the worker
//!   finishes the cell in flight, ships its result, says [`Msg::Goodbye`],
//!   and exits cleanly instead of mid-frame.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Lines, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stabcon_par::ThreadPool;
use stabcon_util::rng::hash3;

use crate::campaign::CampaignSpec;
use crate::cell::{chunk_for, run_cell_monitored, CellSpec};
use crate::store;
use crate::telemetry::CampaignTelemetry;

use super::protocol::{Msg, SpecDescriptor, FABRIC_SCHEMA, FABRIC_SCHEMA_V2};

/// Process-wide graceful-drain flag, set by the SIGTERM handler in the
/// `stabcon` binary (signal handlers can only touch static state).
static DRAIN: AtomicBool = AtomicBool::new(false);

/// Request a graceful drain of every worker in this process: finish the
/// cell in flight, ship its result, send [`Msg::Goodbye`], and return.
/// Async-signal-safe (a single atomic store) — the `stabcon work` SIGTERM
/// handler is exactly this call.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Worker knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Local worker threads for the shared pool.
    pub threads: usize,
    /// Display name sent in the handshake (shows up in the server's
    /// progress lines).
    pub name: String,
    /// Trials per scheduler chunk; `None` auto-tunes per cell.
    pub chunk: Option<u64>,
    /// Consecutive session failures (failed connects, dead handshakes,
    /// torn replies) tolerated before giving up. Any successfully decoded
    /// server reply resets the count.
    pub retries: u32,
    /// Base reconnect backoff in milliseconds; doubles per consecutive
    /// failure (capped at 64× and 30 s) with deterministic ±50% jitter.
    pub backoff_ms: u64,
    /// Extra drain flag ORed with the process-wide SIGTERM flag, so tests
    /// (and embedders) can drain one worker without draining the process.
    pub drain: Option<Arc<AtomicBool>>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            threads: stabcon_par::default_threads(),
            name: "worker".into(),
            chunk: None,
            retries: 5,
            backoff_ms: 200,
            drain: None,
        }
    }
}

impl WorkerConfig {
    fn drain_requested(&self) -> bool {
        DRAIN.load(Ordering::SeqCst)
            || self
                .drain
                .as_ref()
                .is_some_and(|f| f.load(Ordering::SeqCst))
    }
}

/// What a worker session ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Cells completed and shipped.
    pub cells_run: u64,
    /// Trials executed.
    pub trials_run: u64,
    /// Sessions re-established after a lost connection.
    pub reconnects: u64,
    /// The worker left because a drain was requested (SIGTERM or the
    /// [`WorkerConfig::drain`] flag), not because the campaign drained.
    pub drained_early: bool,
}

/// A telemetry sink that ships each complete line to the server as a
/// [`Msg::Telemetry`] frame instead of writing a local file. Buffers until
/// a newline so partial `write` calls never tear a frame, and shares the
/// connection mutex with the protocol sends so frames stay line-atomic.
struct FrameWriter {
    stream: Arc<Mutex<TcpStream>>,
    buf: Vec<u8>,
}

impl Write for FrameWriter {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let rest = self.buf.split_off(pos + 1);
            self.buf.pop(); // the newline
            let line = String::from_utf8(std::mem::replace(&mut self.buf, rest))
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            send_locked(&self.stream, &Msg::Telemetry { line })?;
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn send_locked(stream: &Arc<Mutex<TcpStream>>, msg: &Msg) -> std::io::Result<()> {
    let mut s = stream
        .lock()
        .map_err(|_| std::io::Error::other("connection poisoned"))?;
    s.write_all(msg.encode().as_bytes())?;
    s.write_all(b"\n")?;
    s.flush()
}

/// Reconnect backoff for consecutive failure number `attempt` (1-based):
/// `base · 2^min(attempt-1, 6)`, jittered to ±50% by a deterministic
/// [`hash3`] draw keyed on the worker name (distinct workers de-sync, the
/// same worker is reproducible), capped at 30 s.
fn backoff_delay(name_seed: u64, attempt: u32, base_ms: u64) -> Duration {
    let base = base_ms
        .max(1)
        .saturating_mul(1 << (attempt.saturating_sub(1)).min(6));
    let word = hash3(name_seed, 0xbac0ff, attempt as u64);
    let factor = 0.5 + (word >> 11) as f64 / (1u64 << 53) as f64; // [0.5, 1.5)
    Duration::from_millis(((base as f64 * factor) as u64).clamp(1, 30_000))
}

/// FNV-1a of the worker name: the jitter seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Sleep in 25 ms slices so a drain request cuts the wait short.
fn interruptible_sleep(total: Duration, cfg: &WorkerConfig) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !cfg.drain_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Why a session ended.
enum SessionEnd {
    /// Server reported every cell done.
    CampaignDrained,
    /// A drain was requested locally; Goodbye sent.
    DrainRequested,
}

/// A session-level failure: tear down and reconnect.
struct SessionLost(String);

/// A fatal refusal: retrying cannot help (handshake reject, grid
/// mismatch).
struct Fatal(String);

enum WorkErr {
    Lost(SessionLost),
    Fatal(Fatal),
}

impl From<SessionLost> for WorkErr {
    fn from(e: SessionLost) -> Self {
        WorkErr::Lost(e)
    }
}
impl From<Fatal> for WorkErr {
    fn from(e: Fatal) -> Self {
        WorkErr::Fatal(e)
    }
}

/// Keeps [`Msg::Renew`] heartbeats flowing for one leased cell; stops (and
/// joins) on drop, so a finished or failed cell never heartbeats a lease
/// it no longer wants.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// `renew` is the frame to repeat — [`Msg::Renew`] for a `/1` session,
    /// [`Msg::Renew2`] (job-tagged) for a `/2` one.
    fn start(stream: Arc<Mutex<TcpStream>>, renew: Msg, lease_ms: u64) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // A third of the lease keeps two renewals of headroom before the
        // deadline even if one frame is delayed.
        let interval = Duration::from_millis((lease_ms / 3).clamp(50, 5000));
        let handle = std::thread::spawn(move || {
            let mut next = Instant::now() + interval;
            while !stop2.load(Ordering::SeqCst) {
                if Instant::now() >= next {
                    // Fire-and-forget: a send failure means the session is
                    // dying, which the main loop notices on its own.
                    if send_locked(&stream, &renew).is_err() {
                        return;
                    }
                    next = Instant::now() + interval;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One established, handshake-validated connection to the server.
struct Session {
    stream: Arc<Mutex<TcpStream>>,
    lines: Lines<BufReader<TcpStream>>,
}

impl Session {
    fn recv(&mut self) -> Result<Msg, SessionLost> {
        let line = self
            .lines
            .next()
            .ok_or_else(|| SessionLost("server closed the connection".into()))?
            .map_err(|e| SessionLost(format!("read: {e}")))?;
        Msg::decode(&line).map_err(SessionLost)
    }

    fn send(&self, msg: &Msg) -> Result<(), SessionLost> {
        send_locked(&self.stream, msg).map_err(|e| SessionLost(format!("send: {e}")))
    }
}

/// Dial and handshake. Connect errors are session-level (the server may be
/// restarting); a [`Msg::Reject`] or grid-size mismatch is fatal.
/// `expect_cells` validates the Welcome's cell count against the local
/// expansion (`/1` sessions only — an unpinned `/2` Welcome reports the
/// live job count instead).
fn connect_session(
    addr: &str,
    name: &str,
    schema: &str,
    fingerprint: &str,
    expect_cells: Option<u64>,
) -> Result<Session, WorkErr> {
    let stream =
        TcpStream::connect(addr).map_err(|e| SessionLost(format!("connect {addr}: {e}")))?;
    let reader = stream
        .try_clone()
        .map_err(|e| SessionLost(format!("clone connection: {e}")))?;
    let mut session = Session {
        stream: Arc::new(Mutex::new(stream)),
        lines: BufReader::new(reader).lines(),
    };
    session.send(&Msg::Hello {
        schema: schema.into(),
        worker: name.into(),
        fingerprint: fingerprint.into(),
    })?;
    match session.recv()? {
        Msg::Welcome {
            cells: server_cells,
            ..
        } => {
            if let Some(local_cells) = expect_cells {
                if server_cells != local_cells {
                    return Err(Fatal(format!(
                        "server grid has {server_cells} cells, local expansion {local_cells} — \
                         fingerprint collision?"
                    ))
                    .into());
                }
            }
        }
        Msg::Reject { reason } => return Err(Fatal(format!("rejected: {reason}")).into()),
        other => {
            return Err(SessionLost(format!("unexpected handshake reply {other:?}")).into());
        }
    }
    Ok(session)
}

/// Run one leased cell and build its (unshipped) result frame —
/// [`Msg::Result`] for a `/1` session, [`Msg::Result2`] when `job` tags
/// the lease. Heartbeats flow for the whole computation.
#[allow(clippy::too_many_arguments)]
fn run_leased_cell(
    session: &Session,
    pool: &ThreadPool,
    spec: &CampaignSpec,
    cells: &[CellSpec],
    cell: &CellSpec,
    lease_ms: u64,
    job: Option<u64>,
    cfg: &WorkerConfig,
) -> Result<Msg, String> {
    let renew = match job {
        Some(job) => Msg::Renew2 { job, cell: cell.id },
        None => Msg::Renew { cell: cell.id },
    };
    let _heartbeat = Heartbeat::start(Arc::clone(&session.stream), renew, lease_ms);
    // Telemetry streams to the server; progress printing stays off (the
    // server renders progress for the whole campaign).
    let mut tel = CampaignTelemetry::create_with_sink(
        &spec.name,
        pool.threads().max(1),
        cells.len() as u64,
        cell.trials,
        false,
        Some(Box::new(FrameWriter {
            stream: Arc::clone(&session.stream),
            buf: Vec::new(),
        })),
    )?;
    let chunk = cfg
        .chunk
        .unwrap_or_else(|| chunk_for(cell.trials, cfg.threads));
    tel.begin_cell(cell);
    let started = Instant::now();
    let agg = run_cell_monitored(pool, cell, chunk, Some(&mut tel));
    let elapsed_secs = started.elapsed().as_secs_f64();
    tel.end_cell(cell, agg.trials(), elapsed_secs);
    tel.finish();
    let line = store::cell_line(cell, &agg);
    let trials = agg.trials();
    Ok(match job {
        Some(job) => Msg::Result2 {
            job,
            cell: cell.id,
            line,
            elapsed_secs,
            trials,
        },
        None => Msg::Result {
            cell: cell.id,
            line,
            elapsed_secs,
            trials,
        },
    })
}

/// The in-flight state that must survive a reconnect.
struct Progress {
    outcome: WorkerOutcome,
    /// A completed cell's Result frame not yet provably consumed by the
    /// server. Resent at the top of every new session (the server
    /// dedupes), cleared when a later frame on the same connection gets a
    /// reply.
    pending: Option<Msg>,
}

/// Drive one session until the campaign drains, a drain is requested, or
/// the session is lost. Updates `progress` in place so nothing is lost on
/// a reconnect.
fn run_session(
    session: &mut Session,
    pool: &ThreadPool,
    spec: &CampaignSpec,
    cells: &[CellSpec],
    cfg: &WorkerConfig,
    progress: &mut Progress,
    attempts: &mut u32,
) -> Result<SessionEnd, WorkErr> {
    // The handshake reply proved the server is talking to us.
    *attempts = 0;
    // Idempotent resubmission: if a Result was completed but never provably
    // consumed, it goes out first. A followup reply on this connection
    // proves (by TCP ordering) the server read it; duplicates are deduped
    // server-side, so resending is always safe and never loses work.
    if let Some(result) = progress.pending.clone() {
        session.send(&result)?;
    }
    loop {
        if cfg.drain_requested() {
            // Best-effort goodbye; the session is ending either way.
            let _ = session.send(&Msg::Goodbye);
            return Ok(SessionEnd::DrainRequested);
        }
        session.send(&Msg::Claim)?;
        let reply = session.recv()?;
        // A decoded reply to a frame sent *after* the pending Result means
        // the server consumed the Result bytes: drop the copy.
        progress.pending = None;
        *attempts = 0;
        match reply {
            Msg::Lease { cell, lease_ms } => {
                let cell = cells
                    .get(cell as usize)
                    .filter(|c| c.id == cell)
                    .ok_or_else(|| Fatal(format!("leased unknown cell {cell}")))?;
                let result =
                    run_leased_cell(session, pool, spec, cells, cell, lease_ms, None, cfg)
                        .map_err(Fatal)?;
                let trials = match &result {
                    Msg::Result { trials, .. } => *trials,
                    _ => unreachable!("run_leased_cell returns Msg::Result"),
                };
                // The cell is done: remember the frame *before* trying to
                // ship it, so a send failure reships it next session.
                progress.pending = Some(result.clone());
                progress.outcome.cells_run += 1;
                progress.outcome.trials_run += trials;
                session.send(&result)?;
            }
            Msg::Wait { retry_ms } => {
                interruptible_sleep(Duration::from_millis(retry_ms.clamp(10, 5000)), cfg);
            }
            Msg::Drained => return Ok(SessionEnd::CampaignDrained),
            Msg::Reject { reason } => return Err(Fatal(format!("rejected: {reason}")).into()),
            other => return Err(SessionLost(format!("unexpected server message {other:?}")).into()),
        }
    }
}

/// Connect to a `stabcon serve` daemon at `addr` and work until the server
/// reports the campaign drained (or a graceful drain is requested).
///
/// Session failures — refused connects, dropped connections, torn frames —
/// are retried with capped exponential backoff up to
/// [`WorkerConfig::retries`] consecutive times; completed-but-unshipped
/// results survive the reconnect and are resubmitted idempotently.
pub fn run_worker(
    addr: &str,
    spec: &CampaignSpec,
    cfg: &WorkerConfig,
) -> Result<WorkerOutcome, String> {
    let cells = spec.expand();
    let header = spec.header();
    let fingerprint = format!("{:016x}", header.fingerprint);
    let seed = name_seed(&cfg.name);
    let pool = ThreadPool::new(cfg.threads);
    let mut progress = Progress {
        outcome: WorkerOutcome {
            cells_run: 0,
            trials_run: 0,
            reconnects: 0,
            drained_early: false,
        },
        pending: None,
    };
    let mut attempts: u32 = 0;
    let mut sessions_seen: u64 = 0;
    loop {
        if cfg.drain_requested() {
            progress.outcome.drained_early = true;
            return Ok(progress.outcome);
        }
        let lost = match connect_session(
            addr,
            &cfg.name,
            FABRIC_SCHEMA,
            &fingerprint,
            Some(cells.len() as u64),
        ) {
            Ok(mut session) => {
                sessions_seen += 1;
                if sessions_seen > 1 {
                    progress.outcome.reconnects += 1;
                }
                match run_session(
                    &mut session,
                    &pool,
                    spec,
                    &cells,
                    cfg,
                    &mut progress,
                    &mut attempts,
                ) {
                    Ok(SessionEnd::CampaignDrained) => return Ok(progress.outcome),
                    Ok(SessionEnd::DrainRequested) => {
                        progress.outcome.drained_early = true;
                        return Ok(progress.outcome);
                    }
                    Err(WorkErr::Fatal(Fatal(msg))) => return Err(format!("work: {msg}")),
                    Err(WorkErr::Lost(e)) => e,
                }
            }
            Err(WorkErr::Fatal(Fatal(msg))) => return Err(format!("work: {msg}")),
            Err(WorkErr::Lost(e)) => e,
        };
        attempts += 1;
        if attempts > cfg.retries {
            return Err(format!(
                "work: {addr}: gave up after {attempts} consecutive session failures \
                 (last: {}) — raise --retries/--backoff-ms for flakier links",
                lost.0
            ));
        }
        let delay = backoff_delay(seed, attempts, cfg.backoff_ms);
        eprintln!(
            "work: session with {addr} lost (attempt {attempts}/{}): {} — retrying in {}ms",
            cfg.retries,
            lost.0,
            delay.as_millis()
        );
        interruptible_sleep(delay, cfg);
    }
}

/// One job's locally built-and-verified grid, cached across leases so the
/// any-campaign worker expands each campaign once.
struct JobGrid {
    spec: CampaignSpec,
    cells: Vec<CellSpec>,
}

/// Build (or fetch) the grid for a leased job, verifying that the locally
/// computed fingerprint matches the server's — the `/1` determinism
/// handshake, per job instead of per connection. A mismatch is fatal: the
/// two sides would write different bytes.
fn grid_for<'a>(
    grids: &'a mut HashMap<u64, JobGrid>,
    job: u64,
    desc: &SpecDescriptor,
    fingerprint: &str,
) -> Result<&'a JobGrid, Fatal> {
    match grids.entry(job) {
        std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
        std::collections::hash_map::Entry::Vacant(e) => {
            let spec = desc
                .build()
                .map_err(|err| Fatal(format!("job {job}: descriptor does not build: {err}")))?;
            let local = format!("{:016x}", spec.fingerprint());
            if local != fingerprint {
                return Err(Fatal(format!(
                    "job {job}: server grid fingerprint {fingerprint} != local {local} — \
                     server and worker built different campaigns from the same descriptor"
                )));
            }
            let cells = spec.expand();
            Ok(e.insert(JobGrid { spec, cells }))
        }
    }
}

/// Drive one unpinned (`/2`) session: leases arrive tagged with a job id
/// and carry that job's descriptor + fingerprint; results ship back as
/// [`Msg::Result2`]. Everything else — pending-result resubmission, drain,
/// backoff bookkeeping — matches [`run_session`].
fn run_session_any(
    session: &mut Session,
    pool: &ThreadPool,
    grids: &mut HashMap<u64, JobGrid>,
    cfg: &WorkerConfig,
    progress: &mut Progress,
    attempts: &mut u32,
) -> Result<SessionEnd, WorkErr> {
    *attempts = 0;
    if let Some(result) = progress.pending.clone() {
        session.send(&result)?;
    }
    loop {
        if cfg.drain_requested() {
            let _ = session.send(&Msg::Goodbye);
            return Ok(SessionEnd::DrainRequested);
        }
        session.send(&Msg::Claim)?;
        let reply = session.recv()?;
        progress.pending = None;
        *attempts = 0;
        match reply {
            Msg::Lease2 {
                job,
                cell,
                lease_ms,
                spec,
                fingerprint,
            } => {
                let grid = grid_for(grids, job, &spec, &fingerprint).map_err(WorkErr::Fatal)?;
                let cell = grid
                    .cells
                    .get(cell as usize)
                    .filter(|c| c.id == cell)
                    .ok_or_else(|| Fatal(format!("job {job}: leased unknown cell {cell}")))?;
                let result = run_leased_cell(
                    session,
                    pool,
                    &grid.spec,
                    &grid.cells,
                    cell,
                    lease_ms,
                    Some(job),
                    cfg,
                )
                .map_err(Fatal)?;
                let trials = match &result {
                    Msg::Result2 { trials, .. } => *trials,
                    _ => unreachable!("run_leased_cell with a job returns Msg::Result2"),
                };
                progress.pending = Some(result.clone());
                progress.outcome.cells_run += 1;
                progress.outcome.trials_run += trials;
                session.send(&result)?;
            }
            Msg::Wait { retry_ms } => {
                interruptible_sleep(Duration::from_millis(retry_ms.clamp(10, 5000)), cfg);
            }
            Msg::Drained => return Ok(SessionEnd::CampaignDrained),
            Msg::Reject { reason } => return Err(Fatal(format!("rejected: {reason}")).into()),
            other => return Err(SessionLost(format!("unexpected server message {other:?}")).into()),
        }
    }
}

/// Connect to a queue-mode `stabcon serve` daemon at `addr` and work on
/// *whatever campaigns it has*: the `/2` handshake carries no fingerprint,
/// and each [`Msg::Lease2`] ships its job's spec descriptor, which the
/// worker builds and fingerprint-verifies locally before running a single
/// trial. Runs until the daemon reports the queue drained (or a graceful
/// drain is requested); reconnect/backoff/resubmission semantics match
/// [`run_worker`].
pub fn run_worker_any(addr: &str, cfg: &WorkerConfig) -> Result<WorkerOutcome, String> {
    let seed = name_seed(&cfg.name);
    let pool = ThreadPool::new(cfg.threads);
    let mut grids: HashMap<u64, JobGrid> = HashMap::new();
    let mut progress = Progress {
        outcome: WorkerOutcome {
            cells_run: 0,
            trials_run: 0,
            reconnects: 0,
            drained_early: false,
        },
        pending: None,
    };
    let mut attempts: u32 = 0;
    let mut sessions_seen: u64 = 0;
    loop {
        if cfg.drain_requested() {
            progress.outcome.drained_early = true;
            return Ok(progress.outcome);
        }
        let lost = match connect_session(addr, &cfg.name, FABRIC_SCHEMA_V2, "", None) {
            Ok(mut session) => {
                sessions_seen += 1;
                if sessions_seen > 1 {
                    progress.outcome.reconnects += 1;
                }
                match run_session_any(
                    &mut session,
                    &pool,
                    &mut grids,
                    cfg,
                    &mut progress,
                    &mut attempts,
                ) {
                    Ok(SessionEnd::CampaignDrained) => return Ok(progress.outcome),
                    Ok(SessionEnd::DrainRequested) => {
                        progress.outcome.drained_early = true;
                        return Ok(progress.outcome);
                    }
                    Err(WorkErr::Fatal(Fatal(msg))) => return Err(format!("work: {msg}")),
                    Err(WorkErr::Lost(e)) => e,
                }
            }
            Err(WorkErr::Fatal(Fatal(msg))) => return Err(format!("work: {msg}")),
            Err(WorkErr::Lost(e)) => e,
        };
        attempts += 1;
        if attempts > cfg.retries {
            return Err(format!(
                "work: {addr}: gave up after {attempts} consecutive session failures \
                 (last: {}) — raise --retries/--backoff-ms for flakier links",
                lost.0
            ));
        }
        let delay = backoff_delay(seed, attempts, cfg.backoff_ms);
        eprintln!(
            "work: session with {addr} lost (attempt {attempts}/{}): {} — retrying in {}ms",
            cfg.retries,
            lost.0,
            delay.as_millis()
        );
        interruptible_sleep(delay, cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_jittered_and_caps() {
        let seed = name_seed("host-1");
        let base = backoff_delay(seed, 1, 200);
        assert!(
            base >= Duration::from_millis(100) && base < Duration::from_millis(300),
            "attempt 1 near the base: {base:?}"
        );
        // Deterministic: the same (name, attempt) always draws the same
        // delay; a different worker name draws a different one.
        assert_eq!(backoff_delay(seed, 1, 200), base);
        assert_ne!(backoff_delay(name_seed("host-2"), 1, 200), base);
        // Roughly doubles per attempt...
        let later = backoff_delay(seed, 4, 200);
        assert!(later > base, "attempt 4 ({later:?}) > attempt 1 ({base:?})");
        // ...but the exponent stops at 2^6 and the delay at 30 s.
        for attempt in [7, 10, 100, u32::MAX] {
            assert!(backoff_delay(seed, attempt, 200) <= Duration::from_secs(30));
        }
        assert_eq!(
            backoff_delay(seed, 20, 200),
            backoff_delay(seed, 20, 200),
            "cap region still deterministic"
        );
    }

    #[test]
    fn drain_flag_is_per_config_or_global() {
        let flag = Arc::new(AtomicBool::new(false));
        let cfg = WorkerConfig {
            drain: Some(Arc::clone(&flag)),
            ..WorkerConfig::default()
        };
        assert!(!cfg.drain_requested());
        flag.store(true, Ordering::SeqCst);
        assert!(cfg.drain_requested());
        // The injected flag does not leak into other configs.
        assert!(!WorkerConfig::default().drain_requested());
    }
}

//! # stabcon-exp
//!
//! Campaign orchestration for the `stabcon` workspace: reproducing the
//! paper's results table means millions of trials over a grid of
//! populations, protocols, engines, and adversaries — this crate owns that
//! sweep so the drivers in `stabcon-analysis` don't each hand-roll one.
//!
//! * [`campaign`] — [`campaign::CampaignSpec`] expands a cartesian grid
//!   into cells; [`campaign::run_campaign`] executes them with
//!   checkpoint/resume against a JSONL store.
//! * [`cell`] — one grid cell, sharded into chunks on the shared
//!   [`stabcon_par::ThreadPool`]; trial seeds derive from the cell seed, so
//!   results are independent of thread count and chunking.
//! * [`aggregate`] — streaming per-cell aggregation into exact
//!   [`stabcon_util::stats::SparseCounts`] sketches; **bit-identical** to
//!   materializing every `RunResult` (the property tests assert this).
//! * [`observer`] — [`observer::TrialObserver`]: trajectory-derived extra
//!   metrics (last-unsettled round, drift growth samples, stability
//!   excursions), reduced worker-side and folded per channel.
//! * [`metrics`] — [`metrics::HitMetric`] / [`metrics::ConvergenceStats`],
//!   shared with `stabcon-analysis`.
//! * [`store`] — the append-only JSONL result store with torn-tail
//!   recovery; a resumed campaign reproduces the uninterrupted store
//!   byte-for-byte.
//! * [`report`] — Figure-1-style tables rendered from a store.
//! * [`presets`] — named grids for the `stabcon` CLI
//!   (`stabcon campaign run/resume/report`).
//! * [`telemetry`] — observation-only campaign telemetry: live progress,
//!   per-cell phase profiles, the `--telemetry` JSONL sink, and the
//!   timings sidecar. Stores are byte-identical with telemetry on or off.
//! * [`fabric`] — the multi-host campaign fabric: deterministic sharding
//!   (`--shard i/k`), fingerprint-checked byte-identical merge, and the
//!   lease-based `stabcon serve` / `stabcon work` daemon pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod campaign;
pub mod cell;
pub mod fabric;
pub mod metrics;
pub mod observer;
pub mod presets;
pub mod report;
pub mod store;
pub mod telemetry;

pub use aggregate::{
    fold_net_totals, CellAggregate, ChannelAggregate, ChunkAggregate, TrialMetrics,
};
pub use campaign::{
    run_campaign, sqrt_budget, BudgetSpec, CampaignOutcome, CampaignSpec, InitSpec, RunConfig,
};
pub use cell::{chunk_for, run_cell, run_cell_monitored, sweep_stats, CellSpec};
pub use fabric::{merge_stores, run_worker, MergeOutcome, ServeConfig, Server, ShardSelection};
pub use metrics::{ConvergenceStats, HitMetric};
pub use observer::{ChannelKind, ChannelSpec, FloatMoments, TrialExtras, TrialObserver};
pub use telemetry::{check_telemetry, CampaignTelemetry, CellProfile};

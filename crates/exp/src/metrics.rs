//! Per-trial metrics and the convergence summary every sweep reports.
//!
//! These types used to live in `stabcon-analysis`; the campaign subsystem
//! owns them now (and `stabcon_analysis::experiment` re-exports them) so
//! streaming aggregation and materialized sweeps share one definition.

use stabcon_core::runner::RunResult;
use stabcon_util::stats::Quantiles;

use crate::aggregate::{CellAggregate, TrialMetrics};
use crate::observer::TrialObserver;

/// Which hitting time a sweep aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitMetric {
    /// First round with full consensus (support 1) — the no-adversary
    /// "stable consensus" metric.
    Consensus,
    /// Start of the sustained almost-stable window — the adversarial
    /// metric (falls back to consensus when it was recorded first).
    AlmostStable,
}

impl HitMetric {
    /// Extract the metric from one run.
    pub fn of(&self, r: &RunResult) -> Option<u64> {
        match self {
            HitMetric::Consensus => r.consensus_round,
            HitMetric::AlmostStable => r.almost_stable_round.or(r.consensus_round),
        }
    }

    /// Store / table label.
    pub fn label(&self) -> &'static str {
        match self {
            HitMetric::Consensus => "consensus",
            HitMetric::AlmostStable => "almost-stable",
        }
    }
}

/// Aggregated convergence behaviour of a batch of trials.
#[derive(Debug, Clone)]
pub struct ConvergenceStats {
    /// Total trials.
    pub trials: u64,
    /// Trials that hit the metric within the round budget.
    pub hits: u64,
    /// Trials that exhausted `max_rounds` without hitting.
    pub timeouts: u64,
    /// Quantiles of the hitting time over successful trials (`None` when
    /// no trial hit).
    pub rounds: Option<Quantiles>,
    /// Fraction of trials whose winner was an initial value.
    pub validity_rate: f64,
}

impl ConvergenceStats {
    /// Aggregate a batch under the chosen metric.
    ///
    /// Routed through the same streaming [`CellAggregate`] fold the
    /// campaign scheduler uses, so materialized and streamed sweeps are
    /// bit-identical.
    pub fn from_results(results: &[RunResult], metric: HitMetric) -> Self {
        let mut agg = CellAggregate::new();
        for r in results {
            agg.push(&TrialMetrics::capture(r, TrialObserver::None));
        }
        agg.convergence(metric)
    }

    /// Mean hitting time (`NaN` if nothing hit — callers print "—").
    pub fn mean(&self) -> f64 {
        self.rounds.as_ref().map(|q| q.mean).unwrap_or(f64::NAN)
    }

    /// 95th percentile hitting time.
    pub fn p95(&self) -> f64 {
        self.rounds.as_ref().map(|q| q.p95).unwrap_or(f64::NAN)
    }

    /// Fraction of trials that hit.
    pub fn hit_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_core::init::InitialCondition;
    use stabcon_core::runner::SimSpec;
    use stabcon_util::rng::derive_seed;

    #[test]
    fn from_results_aggregates_sanely() {
        let spec = SimSpec::new(256).init(InitialCondition::TwoBins { left: 128 });
        let results: Vec<RunResult> = (0..16)
            .map(|i| spec.run_seeded(derive_seed(7, i)))
            .collect();
        let stats = ConvergenceStats::from_results(&results, HitMetric::Consensus);
        assert_eq!(stats.trials, 16);
        assert_eq!(stats.hits, 16, "all two-bin runs must converge");
        assert_eq!(stats.timeouts, 0);
        assert!(stats.validity_rate == 1.0);
        let q = stats.rounds.expect("hits recorded");
        assert!(q.mean > 0.0 && q.mean < 200.0);
        assert!(q.p95 >= q.p50);
    }

    #[test]
    fn metric_fallback() {
        let spec = SimSpec::new(128).init(InitialCondition::TwoBins { left: 64 });
        for i in 0..4 {
            let r = spec.run_seeded(derive_seed(9, i));
            assert_eq!(
                HitMetric::AlmostStable.of(&r),
                HitMetric::Consensus
                    .of(&r)
                    .map(|c| r.almost_stable_round.unwrap_or(c))
            );
        }
    }

    #[test]
    fn empty_batch_is_safe() {
        let stats = ConvergenceStats::from_results(&[], HitMetric::Consensus);
        assert_eq!(stats.trials, 0);
        assert_eq!(stats.hit_rate(), 0.0);
        assert!(stats.mean().is_nan());
    }
}

//! Trial observers: trajectory-derived extra metrics, folded worker-side.
//!
//! [`ExtraMetric::LastUnsettledRound`](crate) started life as a single
//! post-hoc scalar bolted onto [`crate::aggregate::TrialMetrics`]. The
//! drift and stability drivers need more: *per-round* samples (one-step
//! imbalance growth) and post-hit excursion statistics. A [`TrialObserver`]
//! generalizes the idea into a small protocol:
//!
//! * the observer declares up to [`MAX_CHANNELS`] named channels
//!   ([`ChannelSpec`]), each either integer-valued (folded into an exact
//!   [`SparseCounts`] sketch) or float-valued (folded into trial-order
//!   [`FloatMoments`]);
//! * for every finished trial, [`TrialObserver::capture`] walks the run's
//!   per-round observables ([`RoundObs`]) **inside the worker** and reduces
//!   them to one [`TrialExtras`] — the trajectory is dropped with the
//!   `RunResult`, so a million-trial cell never materializes a million
//!   trajectories;
//! * the scheduler folds `TrialExtras` into the cell aggregate in global
//!   trial order, so every channel is bit-identical across thread counts
//!   and chunk sizes (integer channels are order-independent outright;
//!   float channels fold per-trial partials in a fixed canonical order).
//!
//! Observers are enum-dispatched: a cell is a value that crosses threads
//! and gets fingerprinted into the result store, so the observer must be
//! `Copy`, comparable, and nameable — a trait object is none of those.

use stabcon_core::runner::{RoundObs, RunResult};

/// Maximum channels one observer may declare (keeps [`TrialExtras`] a small
/// fixed-size `Copy` value on the worker → scheduler channel).
pub const MAX_CHANNELS: usize = 5;

/// How a channel's samples are aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Integer samples, folded into an exact [`SparseCounts`] sketch
    /// (order-independent; full distribution retained).
    ///
    /// [`SparseCounts`]: stabcon_util::stats::SparseCounts
    Int,
    /// Float samples, folded into [`FloatMoments`] (count/sum/min/max) in
    /// canonical trial order.
    Float,
}

/// One named extra-metric channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Store field stem: the JSONL record uses `extra_<name>_count`,
    /// `extra_<name>_mean`, … (snake_case, stable across releases).
    pub name: &'static str,
    /// Aggregation kind.
    pub kind: ChannelKind,
}

/// Exact streaming moments of a float-valued sample stream.
///
/// Merging is *not* reassociated: the cell fold merges per-trial partials in
/// global trial order, which makes the result a pure function of the cell
/// spec (independent of threads/chunking) even though f64 addition is
/// non-associative.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FloatMoments {
    /// Samples folded.
    pub count: u64,
    /// Running sum (trial order).
    pub sum: f64,
    /// Smallest sample (`+inf` placeholder when empty).
    pub min: f64,
    /// Largest sample (`-inf` placeholder when empty).
    pub max: f64,
}

impl FloatMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Fold another accumulator in (call in canonical order).
    pub fn merge(&mut self, other: &FloatMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Whether no sample was folded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One trial's contribution to one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialChannel {
    /// Integer channel: at most one sample per trial (`None` = no sample).
    Int(Option<u64>),
    /// Float channel: the trial's per-round samples, already reduced.
    Float(FloatMoments),
}

/// Everything one trial emits for its observer's channels, as a fixed-size
/// `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialExtras {
    len: u8,
    vals: [TrialChannel; MAX_CHANNELS],
}

impl Default for TrialExtras {
    fn default() -> Self {
        Self::none()
    }
}

impl TrialExtras {
    /// No channels (the [`TrialObserver::None`] case).
    pub fn none() -> Self {
        Self {
            len: 0,
            vals: [TrialChannel::Int(None); MAX_CHANNELS],
        }
    }

    /// Build from a channel slice.
    ///
    /// # Panics
    /// Panics if more than [`MAX_CHANNELS`] channels are given.
    pub fn from_slice(channels: &[TrialChannel]) -> Self {
        assert!(channels.len() <= MAX_CHANNELS, "too many observer channels");
        let mut out = Self::none();
        out.len = channels.len() as u8;
        out.vals[..channels.len()].copy_from_slice(channels);
        out
    }

    /// The populated channels, in declaration order.
    pub fn channels(&self) -> &[TrialChannel] {
        &self.vals[..self.len as usize]
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the observer declared no channels.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A per-trial observer: reduces one finished run (including its per-round
/// trajectory, when recorded) to a fixed set of extra-metric channels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TrialObserver {
    /// No extra metrics.
    #[default]
    None,
    /// The last round in which more than one value was present (the
    /// minimum-rule counterexample's metric). One integer channel,
    /// `last_unsettled`. Requires trajectory recording; without it the
    /// trial contributes no sample (the sentinel the sketch skips — see
    /// [`TrialObserver::capture`]).
    LastUnsettledRound,
    /// One-step imbalance drift (Lemmas 12/15): for every consecutive
    /// trajectory pair with positive imbalance `Δ_t`, sample the growth
    /// ratio `Δ_{t+1}/Δ_t` (float channel `drift_ratio`) and the indicator
    /// `Δ_{t+1} ≥ (4/3)·Δ_t` (float channel `drift_growth`, so its mean is
    /// the growth probability). Requires trajectory recording.
    DriftGrowth,
    /// Post-stabilization excursion statistics (E12): the raw
    /// almost-stable hit round (`stable_round`, *no* consensus fallback),
    /// the runner's exact maximum post-hit disagreement
    /// (`post_disagreement`), and the number of post-hit rounds whose
    /// plurality left more than `threshold` balls disagreeing
    /// (`excursion_rounds`, trajectory-derived).
    StabilityExcursions {
        /// Population size (disagreement = `n -` plurality count).
        n: u64,
        /// Excursion threshold in balls (typically the spec's
        /// almost-stability threshold `⌈factor·T⌉`).
        threshold: u64,
    },
    /// Message-engine network totals: requests sent, responses delivered,
    /// legs dropped (inbox overflow + link/crash loss), peak in-flight
    /// queue depth, and partition-cut losses, summed over the trial. Five
    /// integer channels from `RunResult::net_totals` — no trajectory
    /// needed; trials on non-message engines contribute no samples.
    NetTotals,
}

const LAST_UNSETTLED_CHANNELS: [ChannelSpec; 1] = [ChannelSpec {
    name: "last_unsettled",
    kind: ChannelKind::Int,
}];
const DRIFT_CHANNELS: [ChannelSpec; 2] = [
    ChannelSpec {
        name: "drift_ratio",
        kind: ChannelKind::Float,
    },
    ChannelSpec {
        name: "drift_growth",
        kind: ChannelKind::Float,
    },
];
const NET_CHANNELS: [ChannelSpec; 5] = [
    ChannelSpec {
        name: "net_requests",
        kind: ChannelKind::Int,
    },
    ChannelSpec {
        name: "net_delivered",
        kind: ChannelKind::Int,
    },
    ChannelSpec {
        name: "net_dropped",
        kind: ChannelKind::Int,
    },
    ChannelSpec {
        name: "net_in_flight",
        kind: ChannelKind::Int,
    },
    ChannelSpec {
        name: "net_partitioned",
        kind: ChannelKind::Int,
    },
];
const STABILITY_CHANNELS: [ChannelSpec; 3] = [
    ChannelSpec {
        name: "stable_round",
        kind: ChannelKind::Int,
    },
    ChannelSpec {
        name: "post_disagreement",
        kind: ChannelKind::Int,
    },
    ChannelSpec {
        name: "excursion_rounds",
        kind: ChannelKind::Int,
    },
];

impl TrialObserver {
    /// The channels this observer emits, in order.
    pub fn channels(&self) -> &'static [ChannelSpec] {
        match self {
            TrialObserver::None => &[],
            TrialObserver::LastUnsettledRound => &LAST_UNSETTLED_CHANNELS,
            TrialObserver::DriftGrowth => &DRIFT_CHANNELS,
            TrialObserver::StabilityExcursions { .. } => &STABILITY_CHANNELS,
            TrialObserver::NetTotals => &NET_CHANNELS,
        }
    }

    /// Whether any declared channel is float-valued. Float sums are not
    /// associative, so the chunk scheduler keeps those per-trial (see
    /// [`crate::aggregate::ChunkAggregate`]).
    pub fn has_float_channels(&self) -> bool {
        self.channels()
            .iter()
            .any(|c| matches!(c.kind, ChannelKind::Float))
    }

    /// Whether the observer reads per-round observables — when true, the
    /// cell's `SimSpec` must have `record_trajectory(true)` (the campaign
    /// expander and the [`crate::cell::CellSpec::observer`] builder set it).
    pub fn needs_trajectory(&self) -> bool {
        // NetTotals reads the runner-accumulated `net_totals` scalar, not
        // the per-round trajectory.
        !matches!(self, TrialObserver::None | TrialObserver::NetTotals)
    }

    /// A stable label, hashed into the campaign fingerprint (parameters
    /// included — a different threshold is a different campaign).
    pub fn label(&self) -> String {
        match self {
            TrialObserver::None => "none".into(),
            TrialObserver::LastUnsettledRound => "last-unsettled".into(),
            TrialObserver::DriftGrowth => "drift-growth".into(),
            TrialObserver::StabilityExcursions { n, threshold } => {
                format!("excursions(n={n},thr={threshold})")
            }
            TrialObserver::NetTotals => "net-totals".into(),
        }
    }

    /// Reduce one finished run to this observer's channels.
    ///
    /// Never panics: a trajectory-needing observer on a run without a
    /// recorded trajectory emits the no-sample sentinel on every
    /// trajectory-derived channel (`Int(None)` / empty `Float`), which the
    /// aggregate simply does not fold — the pre-observer code paths used to
    /// panic here (see the `last_unsettled_*` tests).
    pub fn capture(&self, r: &RunResult) -> TrialExtras {
        match self {
            TrialObserver::None => TrialExtras::none(),
            TrialObserver::LastUnsettledRound => {
                let last = r.trajectory.as_ref().map(|t| {
                    t.iter()
                        .filter(|obs| obs.support > 1)
                        .map(|obs| obs.round)
                        .max()
                        .unwrap_or(0)
                });
                TrialExtras::from_slice(&[TrialChannel::Int(last)])
            }
            TrialObserver::DriftGrowth => {
                let mut ratio = FloatMoments::new();
                let mut growth = FloatMoments::new();
                if let Some(t) = r.trajectory.as_ref() {
                    for w in t.windows(2) {
                        let (d0, d1) = (w[0].imbalance, w[1].imbalance);
                        if d0 > 0.0 {
                            ratio.push(d1 / d0);
                            growth.push(f64::from(u8::from(d1 >= (4.0 / 3.0) * d0)));
                        }
                    }
                }
                TrialExtras::from_slice(&[TrialChannel::Float(ratio), TrialChannel::Float(growth)])
            }
            TrialObserver::StabilityExcursions { n, threshold } => {
                let hit = r.almost_stable_round;
                let post = hit.and(r.max_disagreement_after_stable);
                let excursions = match (hit, r.trajectory.as_ref()) {
                    (Some(h), Some(t)) => Some(
                        t.iter()
                            .filter(|obs| obs.round > h && disagreement(*n, obs) > *threshold)
                            .count() as u64,
                    ),
                    _ => None,
                };
                TrialExtras::from_slice(&[
                    TrialChannel::Int(hit),
                    TrialChannel::Int(post),
                    TrialChannel::Int(excursions),
                ])
            }
            TrialObserver::NetTotals => {
                let t = r.net_totals;
                TrialExtras::from_slice(&[
                    TrialChannel::Int(t.map(|m| m.requests)),
                    TrialChannel::Int(t.map(|m| m.delivered)),
                    TrialChannel::Int(t.map(|m| m.dropped + m.link_dropped)),
                    TrialChannel::Int(t.map(|m| m.in_flight)),
                    TrialChannel::Int(t.map(|m| m.partition_dropped)),
                ])
            }
        }
    }
}

/// Balls not in the round's plurality bin — a lower bound on disagreement
/// with any single value.
fn disagreement(n: u64, obs: &RoundObs) -> u64 {
    n.saturating_sub(obs.plurality_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_core::init::InitialCondition;
    use stabcon_core::runner::SimSpec;

    #[test]
    fn float_moments_fold_and_merge() {
        let mut a = FloatMoments::new();
        assert!(a.is_empty());
        assert!(a.mean().is_nan());
        for x in [2.0, 8.0, 5.0] {
            a.push(x);
        }
        assert_eq!((a.count, a.sum, a.min, a.max), (3, 15.0, 2.0, 8.0));
        let mut b = FloatMoments::new();
        b.push(1.0);
        a.merge(&b);
        assert_eq!((a.count, a.min), (4, 1.0));
        let mut empty = FloatMoments::new();
        empty.merge(&a);
        assert_eq!(empty, a, "merge into empty adopts the other side");
    }

    #[test]
    fn observer_channel_declarations() {
        assert!(TrialObserver::None.channels().is_empty());
        assert!(!TrialObserver::None.needs_trajectory());
        for obs in [
            TrialObserver::LastUnsettledRound,
            TrialObserver::DriftGrowth,
            TrialObserver::StabilityExcursions {
                n: 64,
                threshold: 4,
            },
        ] {
            assert!(obs.needs_trajectory(), "{}", obs.label());
            assert!(!obs.channels().is_empty());
            assert!(obs.channels().len() <= MAX_CHANNELS);
        }
        // NetTotals reads runner scalars, not the trajectory.
        let net = TrialObserver::NetTotals;
        assert!(!net.needs_trajectory());
        assert_eq!(net.channels().len(), 5);
        assert!(!net.has_float_channels());
        // Parameters are part of the label (and hence the fingerprint).
        assert_ne!(
            TrialObserver::StabilityExcursions {
                n: 64,
                threshold: 4
            }
            .label(),
            TrialObserver::StabilityExcursions {
                n: 64,
                threshold: 5
            }
            .label(),
        );
    }

    #[test]
    fn net_totals_reads_message_run_metrics() {
        use stabcon_core::engine::{EngineSpec, MessageConfig};
        let n = 256;
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .engine(EngineSpec::Message(MessageConfig::default()))
            .max_rounds(5)
            .full_horizon(true);
        let r = spec.run_seeded(7);
        let totals = r.net_totals.expect("message run records net totals");
        let extras = TrialObserver::NetTotals.capture(&r);
        assert_eq!(
            extras.channels(),
            &[
                TrialChannel::Int(Some(totals.requests)),
                TrialChannel::Int(Some(totals.delivered)),
                TrialChannel::Int(Some(totals.dropped + totals.link_dropped)),
                TrialChannel::Int(Some(totals.in_flight)),
                TrialChannel::Int(Some(totals.partition_dropped)),
            ]
        );
        assert!(totals.requests > 0);

        // A dense run has no net totals: every channel is the no-sample
        // sentinel rather than a panic.
        let dense = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .max_rounds(2)
            .run_seeded(7);
        for ch in TrialObserver::NetTotals.capture(&dense).channels() {
            assert_eq!(*ch, TrialChannel::Int(None));
        }
    }

    #[test]
    fn drift_growth_reads_consecutive_imbalances() {
        let n = 4096;
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 - 128 })
            .max_rounds(1)
            .record_trajectory(true);
        let r = spec.run_seeded(3);
        let extras = TrialObserver::DriftGrowth.capture(&r);
        let TrialChannel::Float(ratio) = extras.channels()[0] else {
            panic!("ratio channel must be float");
        };
        assert_eq!(ratio.count, 1, "one step → one growth sample");
        let traj = r.trajectory.expect("recorded");
        assert_eq!(ratio.sum, traj[1].imbalance / traj[0].imbalance);
    }

    #[test]
    fn stability_excursions_without_hit_emits_nothing() {
        // Tied two bins with a generous balancer and a tiny round budget:
        // no almost-stable hit, so every channel is the no-sample sentinel.
        let n = 1024;
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .adversary(stabcon_core::adversary::AdversarySpec::Balancer, 512)
            .max_rounds(3)
            .full_horizon(true)
            .record_trajectory(true);
        let r = spec.run_seeded(1);
        assert!(r.almost_stable_round.is_none(), "{r:?}");
        let extras = TrialObserver::StabilityExcursions {
            n: n as u64,
            threshold: 4,
        }
        .capture(&r);
        for ch in extras.channels() {
            assert_eq!(*ch, TrialChannel::Int(None));
        }
    }
}

//! Named campaign grids for the `stabcon` CLI.

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::protocol::ProtocolSpec;

use crate::campaign::{BudgetSpec, CampaignSpec, InitSpec};

/// Preset names accepted by [`preset`].
pub const PRESET_NAMES: [&str; 4] = ["smoke", "figure1-small", "figure1", "duel"];

/// Look up a named campaign grid.
///
/// * `smoke` — the [`CampaignSpec::default`] grid (seconds; CI).
/// * `figure1-small` — Figure 1 rows 1–2 at test scale: {two-bins,
///   all-distinct} × {none, balancer, median-pusher, random} adversaries
///   with the canonical `⌊√n/4⌋` budget.
/// * `figure1` — the same grid at paper scale (n up to 2¹⁶, 100 trials).
/// * `duel` — protocol × adversary robustness grid (median vs 3-majority
///   vs voter under balancer/random pressure).
pub fn preset(name: &str) -> Option<CampaignSpec> {
    let adversary_axis = vec![
        (AdversarySpec::None, BudgetSpec::Zero),
        (AdversarySpec::Balancer, BudgetSpec::SqrtOver4),
        (AdversarySpec::MedianPusher, BudgetSpec::SqrtOver4),
        (AdversarySpec::Random, BudgetSpec::SqrtOver4),
    ];
    match name {
        "smoke" => Some(CampaignSpec::default()),
        "figure1-small" => Some(CampaignSpec {
            name: "figure1-small".into(),
            seed: 0xF161,
            trials: 12,
            ns: vec![256, 512, 1024],
            inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
            adversaries: adversary_axis,
            ..CampaignSpec::default()
        }),
        "figure1" => Some(CampaignSpec {
            name: "figure1".into(),
            seed: 0xF162,
            trials: 100,
            ns: (10..=16).map(|e| 1usize << e).collect(),
            inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
            adversaries: adversary_axis,
            ..CampaignSpec::default()
        }),
        "duel" => Some(CampaignSpec {
            name: "duel".into(),
            seed: 0xD0E1,
            trials: 24,
            ns: vec![1024, 4096],
            inits: vec![InitSpec::UniformRandom(8)],
            protocols: vec![
                ProtocolSpec::Median,
                ProtocolSpec::Majority,
                ProtocolSpec::Voter,
            ],
            adversaries: vec![
                (AdversarySpec::None, BudgetSpec::Zero),
                (AdversarySpec::Balancer, BudgetSpec::SqrtOver4),
                (AdversarySpec::Random, BudgetSpec::SqrtOver4),
            ],
            ..CampaignSpec::default()
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_expands() {
        for name in PRESET_NAMES {
            let spec = preset(name).expect(name);
            let cells = spec.expand();
            assert!(!cells.is_empty(), "{name} expands to nothing");
            // Distinct seeds per cell.
            let seeds: std::collections::HashSet<u64> = cells.iter().map(|c| c.seed).collect();
            assert_eq!(seeds.len(), cells.len(), "{name}: colliding cell seeds");
        }
        assert!(preset("nope").is_none());
    }

    #[test]
    fn figure1_small_matches_the_sweep_scale() {
        let spec = preset("figure1-small").expect("preset");
        assert_eq!(spec.ns, vec![256, 512, 1024]);
        assert_eq!(spec.expand().len(), 3 * 2 * 4);
    }
}

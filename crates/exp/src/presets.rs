//! Named campaign grids for the `stabcon` CLI.

use stabcon_core::adversary::AdversarySpec;
use stabcon_core::engine::{EngineSpec, MessageConfig, Rejoin, ScenarioSpec};
use stabcon_core::protocol::ProtocolSpec;

use crate::campaign::{BudgetSpec, CampaignSpec, InitSpec};
use crate::observer::TrialObserver;

/// Preset names accepted by [`preset`].
pub const PRESET_NAMES: [&str; 7] = [
    "smoke",
    "figure1-small",
    "figure1",
    "duel",
    "theorems",
    "robustness-small",
    "hostile-net",
];

/// Look up a named campaign grid.
///
/// * `smoke` — the [`CampaignSpec::default`] grid (seconds; CI).
/// * `figure1-small` — Figure 1 rows 1–2 at test scale: {two-bins,
///   all-distinct} × {none, balancer, median-pusher, random} adversaries
///   with the canonical `⌊√n/4⌋` budget.
/// * `figure1` — the same grid at paper scale (n up to 2¹⁶, 100 trials).
/// * `duel` — protocol × adversary robustness grid (median vs 3-majority
///   vs voter under balancer/random pressure).
/// * `theorems` — Theorem 2's constant-`m` grid (E4): `m ∈ {2, 3}` equal
///   bins × {balancer, random} adversaries at the canonical budget.
/// * `robustness-small` — the §6 tournament at test scale: five protocols
///   × five adversaries on a uniform 5-value instance.
/// * `hostile-net` — the median rule on the message engine across network
///   faults: clean network, latency, link drops, a healing partition,
///   adversarial churn, and a Byzantine responder minority, with the
///   net-totals observer recording delivery/drop columns.
pub fn preset(name: &str) -> Option<CampaignSpec> {
    let adversary_axis = vec![
        (AdversarySpec::None, BudgetSpec::Zero),
        (AdversarySpec::Balancer, BudgetSpec::SqrtOver4),
        (AdversarySpec::MedianPusher, BudgetSpec::SqrtOver4),
        (AdversarySpec::Random, BudgetSpec::SqrtOver4),
    ];
    match name {
        "smoke" => Some(CampaignSpec::default()),
        "figure1-small" => Some(CampaignSpec {
            name: "figure1-small".into(),
            seed: 0xF161,
            trials: 12,
            ns: vec![256, 512, 1024],
            inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
            adversaries: adversary_axis,
            ..CampaignSpec::default()
        }),
        "figure1" => Some(CampaignSpec {
            name: "figure1".into(),
            seed: 0xF162,
            trials: 100,
            ns: (10..=16).map(|e| 1usize << e).collect(),
            inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
            adversaries: adversary_axis,
            ..CampaignSpec::default()
        }),
        "duel" => Some(CampaignSpec {
            name: "duel".into(),
            seed: 0xD0E1,
            trials: 24,
            ns: vec![1024, 4096],
            inits: vec![InitSpec::UniformRandom(8)],
            protocols: vec![
                ProtocolSpec::Median,
                ProtocolSpec::Majority,
                ProtocolSpec::Voter,
            ],
            adversaries: vec![
                (AdversarySpec::None, BudgetSpec::Zero),
                (AdversarySpec::Balancer, BudgetSpec::SqrtOver4),
                (AdversarySpec::Random, BudgetSpec::SqrtOver4),
            ],
            ..CampaignSpec::default()
        }),
        "theorems" => Some(CampaignSpec {
            name: "theorems".into(),
            seed: 0x7E04,
            trials: 16,
            ns: vec![256, 512, 1024],
            inits: vec![InitSpec::MBinsEqual(2), InitSpec::MBinsEqual(3)],
            adversaries: vec![
                (AdversarySpec::Balancer, BudgetSpec::SqrtOver4),
                (AdversarySpec::Random, BudgetSpec::SqrtOver4),
            ],
            ..CampaignSpec::default()
        }),
        "robustness-small" => Some(CampaignSpec {
            name: "robustness-small".into(),
            seed: 0x0B57,
            trials: 8,
            ns: vec![256, 512],
            inits: vec![InitSpec::UniformRandom(5)],
            protocols: vec![
                ProtocolSpec::Median,
                ProtocolSpec::KMedian(4),
                ProtocolSpec::Majority,
                ProtocolSpec::Voter,
                ProtocolSpec::Min,
            ],
            adversaries: vec![
                (AdversarySpec::None, BudgetSpec::Zero),
                (AdversarySpec::Random, BudgetSpec::SqrtOver4),
                (AdversarySpec::Balancer, BudgetSpec::SqrtOver4),
                (AdversarySpec::MedianPusher, BudgetSpec::SqrtOver4),
                (AdversarySpec::Stubborn, BudgetSpec::SqrtOver4),
            ],
            max_rounds: Some(1500),
            ..CampaignSpec::default()
        }),
        "hostile-net" => Some(CampaignSpec {
            name: "hostile-net".into(),
            seed: 0x4057,
            trials: 12,
            ns: vec![512, 1024],
            inits: vec![InitSpec::TwoBinsHalf],
            protocols: vec![ProtocolSpec::Median],
            engines: vec![EngineSpec::Message(MessageConfig::default())],
            scenarios: vec![
                ScenarioSpec::clean(),
                ScenarioSpec::clean().with_latency(1, 3),
                ScenarioSpec::clean().with_drop_per_mille(50),
                ScenarioSpec::clean().with_partition(500, 5, 40),
                ScenarioSpec::clean().with_churn(32, 5, 40, Rejoin::Adversarial),
                ScenarioSpec::clean().with_byzantine(16),
            ],
            max_rounds: Some(1200),
            observer: TrialObserver::NetTotals,
            ..CampaignSpec::default()
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_expands() {
        for name in PRESET_NAMES {
            let spec = preset(name).expect(name);
            let cells = spec.expand();
            assert!(!cells.is_empty(), "{name} expands to nothing");
            // Distinct seeds per cell.
            let seeds: std::collections::HashSet<u64> = cells.iter().map(|c| c.seed).collect();
            assert_eq!(seeds.len(), cells.len(), "{name}: colliding cell seeds");
        }
        assert!(preset("nope").is_none());
    }

    #[test]
    fn new_presets_expand_to_the_expected_grids() {
        let theorems = preset("theorems").expect("preset");
        // 3 populations × 2 m-values × 2 adversaries, all adversarial.
        let cells = theorems.expand();
        assert_eq!(cells.len(), 3 * 2 * 2);
        assert!(cells
            .iter()
            .all(|c| c.metric == crate::HitMetric::AlmostStable));

        let robustness = preset("robustness-small").expect("preset");
        // 2 populations × 5 protocols × 5 adversaries.
        assert_eq!(robustness.expand().len(), 2 * 5 * 5);

        let hostile = preset("hostile-net").expect("preset");
        // 2 populations × 6 scenarios on the single message engine.
        let cells = hostile.expand();
        assert_eq!(cells.len(), 2 * 6);
        assert_eq!(hostile.observer, TrialObserver::NetTotals);
        // ≥ 3 distinct fault axes beyond the clean cell.
        let scen_labels: std::collections::HashSet<&str> = cells
            .iter()
            .map(|c| {
                c.labels
                    .iter()
                    .find(|(k, _)| k == "scenario")
                    .expect("scenario label")
                    .1
                    .as_str()
            })
            .collect();
        assert!(scen_labels.len() >= 4, "{scen_labels:?}");
        assert!(scen_labels.contains("none"));
    }

    #[test]
    fn figure1_small_matches_the_sweep_scale() {
        let spec = preset("figure1-small").expect("preset");
        assert_eq!(spec.ns, vec![256, 512, 1024]);
        assert_eq!(spec.expand().len(), 3 * 2 * 4);
    }
}

//! Render a result store as the paper-style results table.

use std::collections::BTreeMap;

use stabcon_util::jsonl::{get, FlatObject, JsonScalar};
use stabcon_util::table::{fmt_sig, Table};

use crate::store::LoadedStore;

/// Label columns shown when present in the records, in order.
const AXIS_COLUMNS: [&str; 7] = [
    "n",
    "init",
    "protocol",
    "engine",
    "scenario",
    "adversary",
    "T",
];

fn cell_text(obj: &FlatObject, key: &str) -> String {
    match get(obj, key) {
        Some(JsonScalar::Str(s)) => s.clone(),
        Some(JsonScalar::Int(x)) => x.to_string(),
        Some(JsonScalar::Num(x)) => fmt_sig(*x),
        Some(JsonScalar::Bool(b)) => b.to_string(),
        Some(JsonScalar::Null) | None => "—".into(),
    }
}

fn int_text(obj: &FlatObject, key: &str) -> String {
    match get(obj, key).and_then(|v| v.as_u64()) {
        Some(x) => x.to_string(),
        None => "—".into(),
    }
}

fn float_text(obj: &FlatObject, key: &str) -> String {
    match get(obj, key).and_then(|v| v.as_f64()) {
        Some(x) => fmt_sig(x),
        None => "—".into(),
    }
}

fn percent(obj: &FlatObject, key: &str) -> String {
    match get(obj, key).and_then(|v| v.as_f64()) {
        Some(x) => format!("{:.0}", x * 100.0),
        None => "—".into(),
    }
}

/// The Figure-1-style campaign table: one row per completed cell, axis
/// labels plus hit rate and hitting-time summary.
pub fn report_table(loaded: &LoadedStore) -> Table {
    report_table_with_timings(loaded, None)
}

/// [`report_table`] with optional wall-clock columns joined in.
///
/// `timings` maps cell id to `(elapsed_secs, trials_per_sec)` — usually
/// [`crate::telemetry::load_timings`] on the store's sidecar. When present,
/// two extra columns (`secs`, `trials/s`) appear; cells missing a timing
/// (e.g. a store copied without its sidecar) render as `—`.
pub fn report_table_with_timings(
    loaded: &LoadedStore,
    timings: Option<&BTreeMap<u64, (f64, f64)>>,
) -> Table {
    let title = match &loaded.header {
        Some(h) => format!(
            "campaign '{}' — {} of {} cells, {} trials/cell, seed {:#x}",
            h.name,
            loaded.cells.len(),
            h.cells,
            h.trials,
            h.seed
        ),
        None => format!("campaign (headerless store) — {} cells", loaded.cells.len()),
    };
    let axes: Vec<&str> = AXIS_COLUMNS
        .iter()
        .copied()
        .filter(|k| loaded.cells.iter().any(|c| get(c, k).is_some()))
        .collect();
    // Observer extras: every `extra_<name>_mean` field present in any cell
    // becomes a `<name>` column (rendered as its mean), in first-seen order.
    let mut extra_stems: Vec<String> = Vec::new();
    for obj in &loaded.cells {
        for (k, _) in obj.iter() {
            if let Some(stem) = k
                .strip_prefix("extra_")
                .and_then(|rest| rest.strip_suffix("_mean"))
            {
                if !extra_stems.iter().any(|s| s == stem) {
                    extra_stems.push(stem.to_string());
                }
            }
        }
    }
    let mut headers: Vec<&str> = vec!["cell"];
    headers.extend(&axes);
    headers.extend(["metric", "hit%", "mean", "p50", "p95", "max", "valid%"]);
    headers.extend(extra_stems.iter().map(|s| s.as_str()));
    if timings.is_some() {
        headers.extend(["secs", "trials/s"]);
    }
    let mut table = Table::new(title, &headers);
    for obj in &loaded.cells {
        let mut row = vec![int_text(obj, "cell")];
        for k in &axes {
            row.push(cell_text(obj, k));
        }
        row.push(cell_text(obj, "metric"));
        row.push(percent(obj, "hit_rate"));
        for k in ["mean", "p50", "p95", "max"] {
            row.push(float_text(obj, k));
        }
        row.push(percent(obj, "validity_rate"));
        for stem in &extra_stems {
            row.push(float_text(obj, &format!("extra_{stem}_mean")));
        }
        if let Some(map) = timings {
            match get(obj, "cell")
                .and_then(JsonScalar::as_u64)
                .and_then(|id| map.get(&id))
            {
                Some((secs, rate)) => {
                    row.push(format!("{secs:.2}"));
                    row.push(format!("{rate:.0}"));
                }
                None => {
                    row.push("—".into());
                    row.push("—".into());
                }
            }
        }
        table.push_row(row);
    }
    if let Some(h) = &loaded.header {
        let present: std::collections::BTreeSet<u64> = loaded.done_ids().into_iter().collect();
        if (present.len() as u64) < h.cells {
            // Spell the coverage out — a shard store or a partial serve
            // store must never read as a complete campaign.
            let missing: Vec<u64> = (0..h.cells).filter(|id| !present.contains(id)).collect();
            table.push_note(format!(
                "partial store: cells {}/{} — missing {} (`stabcon campaign resume` \
                 continues it; `stabcon campaign merge` stitches shards)",
                present.len(),
                h.cells,
                crate::fabric::merge::format_id_ranges(&missing, 8)
            ));
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignSpec, RunConfig};
    use crate::observer::TrialObserver;
    use crate::store;

    #[test]
    fn report_renders_observer_extras_as_columns() {
        let dir = std::env::temp_dir().join("stabcon-report-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("{}-extras.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let spec = CampaignSpec {
            trials: 4,
            ns: vec![96],
            observer: TrialObserver::LastUnsettledRound,
            ..CampaignSpec::default()
        };
        run_campaign(&spec, &path, &RunConfig::default()).expect("run");
        let loaded = store::load(&path).expect("load");
        let text = report_table(&loaded).to_text();
        assert!(text.contains("last_unsettled"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_flags_partial_store_with_coverage() {
        let dir = std::env::temp_dir().join("stabcon-report-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("{}-partial.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let spec = CampaignSpec {
            trials: 4,
            ns: vec![64],
            ..CampaignSpec::default()
        };
        let cfg = RunConfig {
            max_cells: Some(1),
            ..RunConfig::default()
        };
        run_campaign(&spec, &path, &cfg).expect("run");
        let loaded = store::load(&path).expect("load");
        let text = report_table(&loaded).to_text();
        assert!(text.contains("partial store: cells 1/2"), "{text}");
        assert!(text.contains("missing 1"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_renders_completed_store() {
        let dir = std::env::temp_dir().join("stabcon-report-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("{}-report.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let spec = CampaignSpec {
            trials: 4,
            ns: vec![64],
            ..CampaignSpec::default()
        };
        run_campaign(&spec, &path, &RunConfig::default()).expect("run");
        let loaded = store::load(&path).expect("load");
        let table = report_table(&loaded);
        assert_eq!(table.len(), 2);
        let text = table.to_text();
        assert!(text.contains("two-bins-half"), "{text}");
        assert!(text.contains("consensus"), "{text}");
        assert!(!text.contains("incomplete"), "{text}");
        std::fs::remove_file(&path).ok();
    }
}

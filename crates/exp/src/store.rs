//! The append-only JSONL result store.
//!
//! Line 0 is a campaign header (name, seed, grid fingerprint); every
//! following line is one completed cell's streamed aggregate. Cells are
//! appended in cell order; a killed campaign leaves at worst one torn
//! trailing line, which [`load`] detects and [`recover`] truncates away
//! (and syncs the truncation), so `resume` reproduces the uninterrupted
//! store byte-for-byte.
//!
//! How much of the store survives a crash harder than a process kill —
//! power loss, `kill -9` racing the page cache — is the [`Durability`]
//! policy: `none` (flush to the OS only, the historical behavior), `cell`
//! (`fsync` after every appended record), or `batch` (`fsync` every
//! [`BATCH_SYNC_CELLS`] records and on finish). All three policies write
//! identical bytes; they differ only in when those bytes are forced to
//! stable storage. [`StoreWriter`] owns the policy so every appender (the
//! single-host runner and the fabric's serve daemon) applies it uniformly.
//!
//! Records are *flat* JSON objects (scalars only) written through
//! [`stabcon_util::jsonl`], with floats in shortest-roundtrip form: the
//! store is lossless and deterministic, never timestamped.

use std::collections::BTreeSet;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;

use stabcon_util::jsonl::{get, parse_flat, FlatObject, JsonObj};

use crate::aggregate::{CellAggregate, ChannelAggregate};
use crate::cell::CellSpec;
use crate::observer::ChannelKind;

/// Store schema identifier.
///
/// `/2`: cell records grew observer extra-channel fields and the grid
/// fingerprint now covers the observer, so `/1` stores (pre-observer) are
/// rejected up front with a schema message rather than a misleading
/// fingerprint mismatch.
///
/// `/3`: cells carry a `scenario` axis label (network-fault grid axis) and
/// the net-totals observer channels; `/2` stores predate the axis and are
/// rejected up front for the same reason.
pub const SCHEMA: &str = "stabcon-campaign/3";

/// The campaign header record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHeader {
    /// Campaign name.
    pub name: String,
    /// Campaign master seed.
    pub seed: u64,
    /// Trials per cell.
    pub trials: u64,
    /// Total cells in the grid.
    pub cells: u64,
    /// Fingerprint of the expanded grid (see
    /// [`crate::campaign::CampaignSpec::fingerprint`]).
    pub fingerprint: u64,
}

impl StoreHeader {
    /// Render the header line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonObj::new()
            .str_field("kind", "campaign")
            .str_field("schema", SCHEMA)
            .str_field("name", &self.name)
            .u64_field("seed", self.seed)
            .u64_field("trials", self.trials)
            .u64_field("cells", self.cells)
            .str_field("fingerprint", &format!("{:016x}", self.fingerprint))
            .finish()
    }

    fn from_fields(obj: &FlatObject) -> Result<Self, String> {
        let str_of = |k: &str| {
            get(obj, k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("header: missing string field '{k}'"))
        };
        let u64_of = |k: &str| {
            get(obj, k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("header: missing integer field '{k}'"))
        };
        let schema = str_of("schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported store schema '{schema}'"));
        }
        let fingerprint = u64::from_str_radix(&str_of("fingerprint")?, 16)
            .map_err(|e| format!("header: bad fingerprint: {e}"))?;
        Ok(Self {
            name: str_of("name")?,
            seed: u64_of("seed")?,
            trials: u64_of("trials")?,
            cells: u64_of("cells")?,
            fingerprint,
        })
    }
}

/// Render one completed cell's record line (no trailing newline).
pub fn cell_line(cell: &CellSpec, agg: &CellAggregate) -> String {
    let stats = agg.convergence(cell.metric);
    let mut obj = JsonObj::new()
        .str_field("kind", "cell")
        .u64_field("cell", cell.id)
        .u64_field("seed", cell.seed)
        .u64_field("trials", agg.trials())
        .str_field("metric", cell.metric.label());
    for (k, v) in &cell.labels {
        obj = obj.str_field(k, v);
    }
    obj = obj
        .u64_field("hits", stats.hits)
        .u64_field("timeouts", stats.timeouts)
        .f64_field("hit_rate", stats.hit_rate())
        .f64_field("validity_rate", stats.validity_rate);
    match &stats.rounds {
        Some(q) => {
            obj = obj
                .f64_field("mean", q.mean)
                .f64_field("p50", q.p50)
                .f64_field("p90", q.p90)
                .f64_field("p95", q.p95)
                .f64_field("p99", q.p99)
                .f64_field("max", q.max);
        }
        None => {
            for k in ["mean", "p50", "p90", "p95", "p99", "max"] {
                obj = obj.null_field(k);
            }
        }
    }
    obj = obj.u64_field("rounds_total", agg.rounds_total());
    // Observer channels: one `extra_<name>_*` field group per channel, in
    // declaration order. `count` is always written (so a resumed store is
    // byte-identical even when a channel happens to collect no samples);
    // the summaries are `null` when empty, numbers otherwise — integer
    // channels keep `max`/`min` as exact integers, float channels use
    // shortest-roundtrip floats throughout.
    for (spec, channel) in cell.observer.channels().iter().zip(agg.extras()) {
        let stem = |suffix: &str| format!("extra_{}_{suffix}", spec.name);
        obj = obj.u64_field(&stem("count"), channel.count());
        obj = obj.f64_field(&stem("mean"), channel.mean());
        match channel {
            ChannelAggregate::Int(counts) => {
                for (suffix, v) in [("min", counts.min()), ("max", counts.max())] {
                    obj = match v {
                        Some(v) => obj.u64_field(&stem(suffix), v),
                        None => obj.null_field(&stem(suffix)),
                    };
                }
            }
            ChannelAggregate::Float(_) => {
                for (suffix, v) in [("min", channel.min()), ("max", channel.max())] {
                    obj = match v {
                        Some(v) => obj.f64_field(&stem(suffix), v),
                        None => obj.null_field(&stem(suffix)),
                    };
                }
            }
        }
        debug_assert_eq!(
            matches!(channel, ChannelAggregate::Int(_)),
            spec.kind == ChannelKind::Int,
            "channel kind drifted from the observer declaration"
        );
    }
    obj.finish()
}

/// `batch` durability syncs after this many appended records (and on
/// [`StoreWriter::finish`]).
pub const BATCH_SYNC_CELLS: u32 = 16;

/// When appended store records are forced to stable storage.
///
/// Orthogonal to byte-identity: the bytes are the same under every policy,
/// only the crash window differs. `none` survives a process kill (the OS
/// holds the flushed bytes) but can lose buffered records to power loss or
/// an unsynced host crash; `cell` bounds loss to the record being appended
/// at the instant of the crash; `batch` bounds it to the last
/// [`BATCH_SYNC_CELLS`] records at ~1/16th of the fsync cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Flush each record to the OS, never `fsync` (historical behavior).
    #[default]
    None,
    /// `fsync` after every appended record.
    Cell,
    /// `fsync` every [`BATCH_SYNC_CELLS`] records and on finish.
    Batch,
}

impl Durability {
    /// Parse a `--durability` CLI value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(Durability::None),
            "cell" => Ok(Durability::Cell),
            "batch" => Ok(Durability::Batch),
            other => Err(format!(
                "--durability: unknown mode '{other}' (expected none|cell|batch)"
            )),
        }
    }

    /// The CLI label.
    pub fn label(&self) -> &'static str {
        match self {
            Durability::None => "none",
            Durability::Cell => "cell",
            Durability::Batch => "batch",
        }
    }
}

/// An open store plus its [`Durability`] policy: every append goes through
/// [`StoreWriter::append`] so the policy is applied uniformly by the
/// single-host runner and the serve daemon alike.
#[derive(Debug)]
pub struct StoreWriter {
    file: std::fs::File,
    durability: Durability,
    /// Records appended since the last sync (batch policy).
    unsynced: u32,
}

impl StoreWriter {
    /// Wrap an already-open append handle.
    pub fn new(file: std::fs::File, durability: Durability) -> Self {
        Self {
            file,
            durability,
            unsynced: 0,
        }
    }

    /// Append one pre-rendered record line (adds the newline), flush, and
    /// sync per the policy.
    pub fn append(&mut self, line: &str) -> std::io::Result<()> {
        append_line(&mut self.file, line)?;
        self.unsynced += 1;
        match self.durability {
            Durability::None => Ok(()),
            Durability::Cell => self.sync(),
            Durability::Batch => {
                if self.unsynced >= BATCH_SYNC_CELLS {
                    self.sync()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// End-of-run sync: a no-op under `none`, a final `fsync` under `cell`
    /// (idempotent) and `batch` (flushes the partial batch).
    pub fn finish(&mut self) -> std::io::Result<()> {
        match self.durability {
            Durability::None => Ok(()),
            Durability::Cell | Durability::Batch => {
                if self.unsynced > 0 {
                    self.sync()
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Name the first field on which two headers disagree — "fingerprint
/// mismatch" alone misdirects when e.g. only the trial count changed.
pub fn describe_mismatch(stored: &StoreHeader, requested: &StoreHeader) -> String {
    if stored.name != requested.name {
        format!("name '{}' vs '{}'", stored.name, requested.name)
    } else if stored.seed != requested.seed {
        format!("seed {:#x} vs {:#x}", stored.seed, requested.seed)
    } else if stored.trials != requested.trials {
        format!("trials {} vs {}", stored.trials, requested.trials)
    } else if stored.cells != requested.cells {
        format!("cells {} vs {}", stored.cells, requested.cells)
    } else {
        format!(
            "grid fingerprint {:016x} vs {:016x}",
            stored.fingerprint, requested.fingerprint
        )
    }
}

/// Open (or create) a store for appending cells under `header`.
///
/// Fresh opens refuse an existing file; with `resume` the stored header is
/// validated against `header`, any torn tail is **truncated away and the
/// truncation synced** before the append handle opens (see [`recover`] —
/// the repair happens on open, it is not merely tolerated on read), and
/// the ids of cells already present are returned so the caller can skip
/// them. Used by both `run_campaign` and the fabric's `serve` daemon.
pub fn open_for_append(
    path: &Path,
    header: &StoreHeader,
    resume: bool,
    durability: Durability,
) -> Result<(StoreWriter, BTreeSet<u64>), String> {
    let mut done = BTreeSet::new();
    let file = if path.exists() {
        if !resume {
            return Err(format!(
                "{}: store exists — use resume (or a fresh path)",
                path.display()
            ));
        }
        let loaded = load(path)?;
        match &loaded.header {
            Some(h) if h == header => {
                done.extend(loaded.done_ids());
                recover(path, &loaded).map_err(|e| format!("recover: {e}"))?;
                OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("open: {e}"))?
            }
            Some(h) => {
                return Err(format!(
                    "{}: store was produced by a different campaign spec ({} — stored vs requested)",
                    path.display(),
                    describe_mismatch(h, header)
                ));
            }
            None => {
                // Nothing valid in the file: restart it.
                let mut f = std::fs::File::create(path).map_err(|e| format!("create: {e}"))?;
                append_line(&mut f, &header.to_line()).map_err(|e| format!("write header: {e}"))?;
                f
            }
        }
    } else {
        let mut f = std::fs::File::create(path).map_err(|e| format!("create: {e}"))?;
        append_line(&mut f, &header.to_line()).map_err(|e| format!("write header: {e}"))?;
        f
    };
    let mut writer = StoreWriter::new(file, durability);
    if durability != Durability::None {
        // The header (or repaired prefix) must be stable before any cell
        // lands on top of it; also best-effort sync the directory entry so
        // a freshly created store survives a host crash.
        writer.sync().map_err(|e| format!("sync: {e}"))?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok((writer, done))
}

/// A store read back from disk.
#[derive(Debug, Clone, Default)]
pub struct LoadedStore {
    /// The header, if the first line parsed as one.
    pub header: Option<StoreHeader>,
    /// Completed cell records, in file order.
    pub cells: Vec<FlatObject>,
    /// Byte length of the valid prefix (everything after it is a torn or
    /// corrupt tail).
    pub valid_len: u64,
}

impl LoadedStore {
    /// Ids of the cells present in the valid prefix.
    pub fn done_ids(&self) -> Vec<u64> {
        self.cells
            .iter()
            .filter_map(|c| get(c, "cell").and_then(|v| v.as_u64()))
            .collect()
    }
}

/// Read a store, stopping at the first torn or unparsable line.
pub fn load(path: &Path) -> Result<LoadedStore, String> {
    // Bytes, not `read_to_string`: a kill mid-append can tear a multi-byte
    // UTF-8 sequence at the end of the file, and that tail must be
    // recovered from, not reported as an I/O error.
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = LoadedStore::default();
    for raw in bytes.split_inclusive(|&b| b == b'\n') {
        if raw.last() != Some(&b'\n') {
            break; // torn tail from an interrupted append
        }
        let Ok(line) = std::str::from_utf8(raw) else {
            break; // torn multi-byte character
        };
        let Ok(obj) = parse_flat(line.trim_end()) else {
            break; // corrupt tail
        };
        let kind = get(&obj, "kind").and_then(|v| v.as_str()).unwrap_or("");
        match kind {
            "campaign" if out.header.is_none() && out.cells.is_empty() => {
                match StoreHeader::from_fields(&obj) {
                    Ok(h) => out.header = Some(h),
                    Err(e) => return Err(e),
                }
            }
            "cell" if out.header.is_some() => out.cells.push(obj),
            _ => break,
        }
        out.valid_len += line.len() as u64;
    }
    Ok(out)
}

/// Truncate `path` to the valid prefix found by [`load`], discarding a torn
/// tail so appends resume from a clean record boundary.
///
/// The truncation is a single `ftruncate` to a record boundary — there is
/// no window in which the file holds a *different* partial record — and it
/// is `fsync`ed before returning, so a crash immediately after repair
/// cannot resurrect the torn tail.
pub fn recover(path: &Path, loaded: &LoadedStore) -> std::io::Result<()> {
    let actual = std::fs::metadata(path)?.len();
    if actual != loaded.valid_len {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(loaded.valid_len)?;
        f.sync_all()?;
    }
    Ok(())
}

/// Append one pre-rendered record line (adds the newline) and flush.
pub fn append_line(file: &mut std::fs::File, line: &str) -> std::io::Result<()> {
    file.write_all(line.as_bytes())?;
    file.write_all(b"\n")?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HitMetric;
    use stabcon_core::init::InitialCondition;
    use stabcon_core::runner::SimSpec;
    use stabcon_par::ThreadPool;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("stabcon-store-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn sample_lines() -> (StoreHeader, String, String) {
        let header = StoreHeader {
            name: "t".into(),
            seed: 7,
            trials: 4,
            cells: 2,
            fingerprint: 0xABCD,
        };
        let pool = ThreadPool::new(1);
        let cell = CellSpec::new(
            SimSpec::new(64).init(InitialCondition::TwoBins { left: 32 }),
            4,
            9,
        )
        .label("n", "64")
        .metric(HitMetric::Consensus);
        let agg = crate::cell::run_cell(&pool, &cell, 2);
        let line_a = cell_line(&cell, &agg);
        let mut cell_b = CellSpec::new(
            SimSpec::new(96).init(InitialCondition::TwoBins { left: 48 }),
            4,
            11,
        )
        .label("n", "96")
        .metric(HitMetric::Consensus);
        cell_b.id = 1;
        let agg_b = crate::cell::run_cell(&pool, &cell_b, 2);
        (header, line_a, cell_line(&cell_b, &agg_b))
    }

    #[test]
    fn round_trip_and_torn_tail_recovery() {
        let (header, line_a, _) = sample_lines();
        let path = tmp("roundtrip.jsonl");
        let full = format!("{}\n{}\n", header.to_line(), line_a);
        std::fs::write(&path, format!("{full}{{\"kind\": \"cell\", \"cel")).expect("write");

        let loaded = load(&path).expect("load");
        assert_eq!(loaded.header.as_ref(), Some(&header));
        assert_eq!(loaded.cells.len(), 1);
        assert_eq!(loaded.done_ids(), vec![0]);
        assert_eq!(loaded.valid_len, full.len() as u64);

        recover(&path, &loaded).expect("recover");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), full);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_offset_of_the_final_record_repairs_on_open() {
        // Simulate a crash torn anywhere inside the final record (every
        // byte offset, including the trailing newline): `open_for_append`
        // must truncate back to the last record boundary, and appending
        // the lost cell again must reproduce the clean store exactly.
        let (header, line_a, line_b) = sample_lines();
        let prefix = format!("{}\n{}\n", header.to_line(), line_a);
        let full = format!("{prefix}{line_b}\n");
        let path = tmp("tear-sweep.jsonl");
        let final_record_len = line_b.len() + 1;
        for cut in 0..final_record_len {
            std::fs::write(&path, &full.as_bytes()[..prefix.len() + cut]).expect("write");
            let (mut w, done) =
                open_for_append(&path, &header, true, Durability::Cell).expect("open repairs");
            assert_eq!(
                std::fs::read_to_string(&path).expect("read"),
                prefix,
                "cut at {cut}: torn tail must be gone after open"
            );
            assert_eq!(done.into_iter().collect::<Vec<_>>(), vec![0]);
            w.append(&line_b).expect("append");
            w.finish().expect("finish");
            assert_eq!(
                std::fs::read_to_string(&path).expect("read"),
                full,
                "cut at {cut}: re-appended store must match the clean run"
            );
        }
        // The boundary case: the file ends exactly at the record boundary
        // (nothing torn) — open must not truncate anything.
        std::fs::write(&path, &full).expect("write");
        let (_, done) = open_for_append(&path, &header, true, Durability::Batch).expect("open");
        assert_eq!(done.len(), 2);
        assert_eq!(std::fs::read_to_string(&path).expect("read"), full);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn durability_policies_write_identical_bytes() {
        let (header, line_a, line_b) = sample_lines();
        let mut outputs = Vec::new();
        for durability in [Durability::None, Durability::Cell, Durability::Batch] {
            let path = tmp(&format!("durability-{}.jsonl", durability.label()));
            std::fs::remove_file(&path).ok();
            let (mut w, _) = open_for_append(&path, &header, false, durability).expect("open");
            w.append(&line_a).expect("append a");
            w.append(&line_b).expect("append b");
            w.finish().expect("finish");
            outputs.push(std::fs::read(&path).expect("read"));
            std::fs::remove_file(&path).ok();
        }
        assert_eq!(outputs[0], outputs[1], "cell durability changed the bytes");
        assert_eq!(outputs[0], outputs[2], "batch durability changed the bytes");
    }

    #[test]
    fn durability_parse_round_trips() {
        for d in [Durability::None, Durability::Cell, Durability::Batch] {
            assert_eq!(Durability::parse(d.label()), Ok(d));
        }
        assert!(Durability::parse("paranoid").unwrap_err().contains("mode"));
    }

    #[test]
    fn old_schema_is_rejected_by_name() {
        // A pre-observer `/1` store must fail with the schema in the
        // message, not a confusing fingerprint mismatch downstream.
        let path = tmp("oldschema.jsonl");
        std::fs::write(
            &path,
            "{\"kind\": \"campaign\", \"schema\": \"stabcon-campaign/1\", \"name\": \"t\", \
             \"seed\": 7, \"trials\": 4, \"cells\": 2, \"fingerprint\": \"00000000000000ab\"}\n",
        )
        .expect("write");
        let err = load(&path).expect_err("old schema must not load");
        assert!(err.contains("stabcon-campaign/1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_must_come_first() {
        let (_, line_a, _) = sample_lines();
        let path = tmp("headerless.jsonl");
        std::fs::write(&path, format!("{line_a}\n")).expect("write");
        let loaded = load(&path).expect("load");
        assert!(loaded.header.is_none());
        assert_eq!(loaded.valid_len, 0, "cells before a header are invalid");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn observer_extras_round_trip_through_the_store() {
        use crate::observer::TrialObserver;
        let n = 1024usize;
        let pool = ThreadPool::new(2);
        let observer = TrialObserver::StabilityExcursions {
            n: n as u64,
            threshold: 8,
        };
        let sim = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .adversary(stabcon_core::adversary::AdversarySpec::Random, 2)
            .max_rounds(400)
            .full_horizon(true);
        let cell = CellSpec::new(sim, 6, 0xE12).observer(observer);
        let agg = crate::cell::run_cell(&pool, &cell, 2);
        let line = cell_line(&cell, &agg);
        let obj = parse_flat(&line).expect("parse");
        // Every channel writes its field group, values matching the
        // in-memory aggregate exactly.
        for (i, spec) in observer.channels().iter().enumerate() {
            let stem = |s: &str| format!("extra_{}_{s}", spec.name);
            let channel = &agg.extras()[i];
            assert_eq!(
                get(&obj, &stem("count")).and_then(|v| v.as_u64()),
                Some(channel.count()),
                "{line}"
            );
            if channel.count() > 0 {
                assert_eq!(
                    get(&obj, &stem("mean")).and_then(|v| v.as_f64()),
                    Some(channel.mean()),
                    "{line}"
                );
                assert_eq!(
                    get(&obj, &stem("max")).and_then(|v| v.as_f64()),
                    channel.max(),
                    "{line}"
                );
            } else {
                assert_eq!(
                    get(&obj, &stem("mean")),
                    Some(&stabcon_util::jsonl::JsonScalar::Null),
                    "{line}"
                );
            }
        }
        // A float channel round-trips too (drift observer).
        let sim = SimSpec::new(2048)
            .init(InitialCondition::TwoBins { left: 960 })
            .max_rounds(1);
        let cell = CellSpec::new(sim, 5, 0xD1F).observer(TrialObserver::DriftGrowth);
        let agg = crate::cell::run_cell(&pool, &cell, 2);
        let obj = parse_flat(&cell_line(&cell, &agg)).expect("parse");
        let ratio = agg.float_extra(0).expect("ratio channel");
        assert_eq!(
            get(&obj, "extra_drift_ratio_mean").and_then(|v| v.as_f64()),
            Some(ratio.mean())
        );
        assert_eq!(
            get(&obj, "extra_drift_ratio_count").and_then(|v| v.as_u64()),
            Some(ratio.count)
        );
    }

    #[test]
    fn cell_line_has_summary_fields() {
        let (_, line, _) = sample_lines();
        let obj = parse_flat(&line).expect("parse");
        for k in ["cell", "trials", "hits", "mean", "p95", "validity_rate"] {
            assert!(get(&obj, k).is_some(), "missing {k} in {line}");
        }
        assert_eq!(get(&obj, "n").and_then(|v| v.as_str()), Some("64"));
    }
}

//! Campaign telemetry: live progress lines, per-cell phase profiles, the
//! JSONL telemetry sink, and the per-cell timings sidecar.
//!
//! Everything here is **observation-only**: the campaign store is
//! byte-identical with telemetry on or off, at any thread count (pinned by
//! `tests/telemetry_props.rs`). The flow:
//!
//! * [`CampaignTelemetry`] wraps a shared [`MetricRegistry`] (one slot per
//!   worker) for one campaign invocation. Creating it flips the global
//!   `stabcon-obs` enable flag, which arms the phase timers inside the
//!   dense kernel, the runner, and the message engine.
//! * `run_cell` workers record per-trial counters and durations into their
//!   slot; the in-order chunk merger calls
//!   [`CampaignTelemetry::on_chunk_merged`], which throttles periodic
//!   snapshot records to the sink and progress lines to stderr.
//! * Each completed cell appends one `cell_profile` record (phase nanos,
//!   net counters, trial-duration quantiles) and one timings sidecar line
//!   (`elapsed_secs`/`trials_per_sec` — kept *out* of the fingerprinted
//!   store; `stabcon campaign report --timings` joins them back by cell id).
//!
//! ## Telemetry JSONL schema (`stabcon-telemetry/1`)
//!
//! Line 1 is a header: `schema`, `campaign`, `threads`, `cells`,
//! `trials_planned`. Every further line is flat JSON with a `record` field:
//!
//! * `record = "snapshot"` — periodic, at most ~2/s: `cell`, `trials_done`,
//!   `trials_total`, `elapsed_secs`, `trials_per_sec`, `chunks_issued`,
//!   `chunks_merged`, `cursor_lag`, `eta_secs`, `workers`,
//!   `worker_trials_min`, `worker_trials_max`.
//! * `record = "cell_profile"` — one per completed cell: `cell`, `trials`,
//!   `elapsed_secs`, `trials_per_sec`, `rounds`, one `phase_<name>_nanos`
//!   per [`stabcon_obs::Phase`], the `net_*` counters, the in-flight peak
//!   gauge, and `trial_p50_nanos`/`trial_p99_nanos` (power-of-2-bucket
//!   quantile lower bounds).
//!
//! [`check_telemetry`] validates a file against this schema (the
//! `stabcon telemetry check` subcommand CI runs on the smoke campaign).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use stabcon_obs::{self as obs, Counter, Gauge, Hist, MetricRegistry, Phase, Snapshot};
use stabcon_util::jsonl::{get, parse_flat, JsonObj, JsonScalar};
use stabcon_util::table::Table;

use crate::cell::CellSpec;

/// Version tag of the telemetry sink (line 1 of every telemetry file).
pub const TELEMETRY_SCHEMA: &str = "stabcon-telemetry/1";

/// Version tag of the timings sidecar.
pub const TIMINGS_SCHEMA: &str = "stabcon-timings/1";

/// Minimum seconds between periodic snapshot emissions.
const EMIT_INTERVAL_SECS: f64 = 0.5;

/// The timings sidecar path for a store: `<store>.timings.jsonl`.
/// A separate file keeps wall-clock data out of the byte-identical,
/// fingerprinted store.
pub fn timings_path(store: &Path) -> PathBuf {
    let mut os = store.as_os_str().to_owned();
    os.push(".timings.jsonl");
    PathBuf::from(os)
}

/// One completed cell's wall-clock/phase profile (also serialized as the
/// sink's `cell_profile` record).
#[derive(Debug, Clone)]
pub struct CellProfile {
    /// Cell id.
    pub cell: u64,
    /// Trials the cell ran.
    pub trials: u64,
    /// Wall-clock seconds for the cell.
    pub elapsed_secs: f64,
    /// `trials / elapsed_secs`.
    pub trials_per_sec: f64,
    /// Simulation rounds executed across all trials.
    pub rounds: u64,
    /// Accumulated nanoseconds per phase, indexed by `Phase as usize`.
    pub phase_nanos: [u64; obs::PHASE_COUNT],
    /// Lower bound of the bucket holding the median trial duration.
    pub trial_p50_nanos: u64,
    /// Lower bound of the bucket holding the p99 trial duration.
    pub trial_p99_nanos: u64,
}

/// Approximate quantile from power-of-2 buckets: the lower bound of the
/// bucket containing the `q`-quantile sample (0 when empty).
fn hist_quantile(buckets: &[u64; obs::HIST_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (b, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            return obs::bucket_low(b);
        }
    }
    obs::bucket_low(obs::HIST_BUCKETS - 1)
}

fn fmt_eta(secs: f64) -> String {
    if !secs.is_finite() {
        return "—".into();
    }
    let s = secs.max(0.0) as u64;
    if s >= 3600 {
        format!("{}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
    } else {
        format!("{}:{:02}", s / 60, s % 60)
    }
}

/// Telemetry state for one campaign invocation. Construct with
/// [`CampaignTelemetry::create`] (arms the global instrumentation flag),
/// drive with `begin_cell`/`on_chunk_merged`/`end_cell`, and consume with
/// [`CampaignTelemetry::finish`] (disarms the flag, returns the profiles).
pub struct CampaignTelemetry {
    registry: Arc<MetricRegistry>,
    snap: Snapshot,
    sink: Option<BufWriter<Box<dyn Write + Send>>>,
    progress: bool,
    campaign_started: Instant,
    cells_total: u64,
    trials_planned: u64,
    /// Trials finished in *completed* cells this invocation.
    trials_done_prior: u64,
    cell_id: u64,
    cell_trials: u64,
    cell_started: Instant,
    last_emit: Instant,
    profiles: Vec<CellProfile>,
}

impl CampaignTelemetry {
    /// Arm telemetry for a campaign invocation: `workers` registry slots,
    /// progress lines to stderr when `progress`, and (optionally) a JSONL
    /// sink at `sink_path` (truncated — snapshots describe this run, not
    /// the store's history). Flips the global `stabcon-obs` flag on.
    pub fn create(
        campaign: &str,
        workers: usize,
        cells_total: u64,
        trials_planned: u64,
        progress: bool,
        sink_path: Option<&Path>,
    ) -> Result<Self, String> {
        let sink: Option<Box<dyn Write + Send>> = match sink_path {
            Some(p) => {
                Some(Box::new(File::create(p).map_err(|e| {
                    format!("{}: create telemetry sink: {e}", p.display())
                })?))
            }
            None => None,
        };
        Self::create_with_sink(
            campaign,
            workers,
            cells_total,
            trials_planned,
            progress,
            sink,
        )
    }

    /// [`CampaignTelemetry::create`] with an arbitrary sink writer instead
    /// of a file path — the fabric worker streams its sink lines over the
    /// connection to `stabcon serve` as the live progress protocol.
    pub fn create_with_sink(
        campaign: &str,
        workers: usize,
        cells_total: u64,
        trials_planned: u64,
        progress: bool,
        sink: Option<Box<dyn Write + Send>>,
    ) -> Result<Self, String> {
        let sink = match sink {
            Some(w) => {
                let mut w = BufWriter::new(w);
                let header = JsonObj::new()
                    .str_field("schema", TELEMETRY_SCHEMA)
                    .str_field("campaign", campaign)
                    .u64_field("threads", workers as u64)
                    .u64_field("cells", cells_total)
                    .u64_field("trials_planned", trials_planned)
                    .finish();
                writeln!(w, "{header}").map_err(|e| format!("write telemetry header: {e}"))?;
                Some(w)
            }
            None => None,
        };
        obs::set_enabled(true);
        let now = Instant::now();
        Ok(Self {
            registry: Arc::new(MetricRegistry::new(workers)),
            snap: Snapshot::new(workers),
            sink,
            progress,
            campaign_started: now,
            cells_total,
            trials_planned,
            trials_done_prior: 0,
            cell_id: 0,
            cell_trials: 0,
            cell_started: now,
            last_emit: now,
            profiles: Vec::new(),
        })
    }

    /// The shared registry (workers clone this and record into their slot).
    pub fn registry(&self) -> Arc<MetricRegistry> {
        Arc::clone(&self.registry)
    }

    /// Start a cell: zero the registry so profiles stay per-cell.
    pub fn begin_cell(&mut self, cell: &CellSpec) {
        self.registry.reset();
        self.cell_id = cell.id;
        self.cell_trials = cell.trials;
        self.cell_started = Instant::now();
    }

    /// Called by the chunk merger after each in-order merge; throttles a
    /// snapshot record to the sink and a progress line to stderr.
    pub fn on_chunk_merged(&mut self, trials_done: u64, chunks_issued: u64, chunks_merged: u64) {
        let lag = chunks_issued.saturating_sub(chunks_merged);
        self.registry.handle(0).gauge_set(Gauge::CursorLag, lag);
        if self.last_emit.elapsed().as_secs_f64() < EMIT_INTERVAL_SECS {
            return;
        }
        self.last_emit = Instant::now();
        self.registry.snapshot_into(&mut self.snap);

        let cell_elapsed = self.cell_started.elapsed().as_secs_f64();
        let cell_rate = trials_done as f64 / cell_elapsed.max(1e-9);
        let done_overall = self.trials_done_prior + trials_done;
        let overall_rate =
            done_overall as f64 / self.campaign_started.elapsed().as_secs_f64().max(1e-9);
        let eta_secs = self.trials_planned.saturating_sub(done_overall) as f64 / overall_rate;

        let per_worker: Vec<u64> = self
            .snap
            .workers()
            .iter()
            .map(|w| w.counter(Counter::Trials))
            .collect();
        let active = per_worker.iter().filter(|&&t| t > 0).count() as u64;
        let w_min = per_worker.iter().copied().min().unwrap_or(0);
        let w_max = per_worker.iter().copied().max().unwrap_or(0);

        if let Some(sink) = self.sink.as_mut() {
            let line = JsonObj::new()
                .str_field("record", "snapshot")
                .u64_field("cell", self.cell_id)
                .u64_field("trials_done", trials_done)
                .u64_field("trials_total", self.cell_trials)
                .fixed_field("elapsed_secs", cell_elapsed, 3)
                .fixed_field("trials_per_sec", cell_rate, 1)
                .u64_field("chunks_issued", chunks_issued)
                .u64_field("chunks_merged", chunks_merged)
                .u64_field("cursor_lag", lag)
                .fixed_field(
                    "eta_secs",
                    if eta_secs.is_finite() { eta_secs } else { -1.0 },
                    1,
                )
                .u64_field("workers", active)
                .u64_field("worker_trials_min", w_min)
                .u64_field("worker_trials_max", w_max)
                .finish();
            let _ = writeln!(sink, "{line}");
        }
        if self.progress {
            eprintln!(
                "[cell {}/{}] {}/{} trials ({:.0}%) | {:.0} trials/s | workers {} ({}..{}) | lag {} | eta {}",
                self.cell_id + 1,
                self.cells_total,
                trials_done,
                self.cell_trials,
                100.0 * trials_done as f64 / self.cell_trials.max(1) as f64,
                cell_rate,
                active,
                w_min,
                w_max,
                lag,
                fmt_eta(eta_secs),
            );
        }
    }

    /// Finish a cell: fold its registry into a [`CellProfile`], emit the
    /// `cell_profile` record, and advance the campaign ETA baseline.
    pub fn end_cell(&mut self, cell: &CellSpec, trials: u64, elapsed_secs: f64) {
        self.registry.snapshot_into(&mut self.snap);
        let t = self.snap.total();
        let profile = CellProfile {
            cell: cell.id,
            trials,
            elapsed_secs,
            trials_per_sec: trials as f64 / elapsed_secs.max(1e-9),
            rounds: t.counter(Counter::Rounds),
            phase_nanos: {
                let mut p = [0u64; obs::PHASE_COUNT];
                for ph in Phase::ALL {
                    p[ph as usize] = t.phase_nanos(ph);
                }
                p
            },
            trial_p50_nanos: hist_quantile(t.hist_buckets(Hist::TrialNanos), 0.50),
            trial_p99_nanos: hist_quantile(t.hist_buckets(Hist::TrialNanos), 0.99),
        };
        if let Some(sink) = self.sink.as_mut() {
            let mut line = JsonObj::new()
                .str_field("record", "cell_profile")
                .u64_field("cell", profile.cell)
                .u64_field("trials", profile.trials)
                .fixed_field("elapsed_secs", profile.elapsed_secs, 3)
                .fixed_field("trials_per_sec", profile.trials_per_sec, 1)
                .u64_field("rounds", profile.rounds);
            for ph in Phase::ALL {
                line = line.u64_field(
                    &format!("phase_{}_nanos", ph.name()),
                    profile.phase_nanos[ph as usize],
                );
            }
            for c in [
                Counter::NetRequests,
                Counter::NetDelivered,
                Counter::NetDropped,
                Counter::NetLinkDropped,
                Counter::NetPartitionDropped,
                Counter::NetForged,
            ] {
                line = line.u64_field(c.name(), t.counter(c));
            }
            line = line
                .u64_field(
                    Gauge::NetInFlightPeak.name(),
                    t.gauge(Gauge::NetInFlightPeak),
                )
                .u64_field("trial_p50_nanos", profile.trial_p50_nanos)
                .u64_field("trial_p99_nanos", profile.trial_p99_nanos);
            let _ = writeln!(sink, "{}", line.finish());
            let _ = sink.flush();
        }
        self.trials_done_prior += trials;
        self.profiles.push(profile);
    }

    /// Disarm instrumentation, flush the sink, and hand back the per-cell
    /// profiles for the CLI's final table.
    pub fn finish(mut self) -> Vec<CellProfile> {
        if let Some(sink) = self.sink.as_mut() {
            let _ = sink.flush();
        }
        obs::set_enabled(false);
        std::mem::take(&mut self.profiles)
    }
}

/// Render the final per-cell phase-profile table the CLI prints after a
/// telemetry-enabled campaign: per-cell wall clock, throughput, and each
/// kernel phase's share of the summed phase time.
pub fn profile_table(profiles: &[CellProfile]) -> Table {
    let phases: Vec<Phase> = Phase::ALL
        .iter()
        .copied()
        .filter(|p| !matches!(p, Phase::Trial))
        .collect();
    let mut headers: Vec<&str> = vec!["cell", "trials", "secs", "trials/s", "rounds"];
    headers.extend(phases.iter().map(|p| p.name()));
    headers.push("trial p50");
    let mut table = Table::new(
        "per-cell phase profile (share of timed kernel phases)",
        &headers,
    );
    for p in profiles {
        let kernel_total: u64 = phases.iter().map(|ph| p.phase_nanos[*ph as usize]).sum();
        let mut row = vec![
            p.cell.to_string(),
            p.trials.to_string(),
            format!("{:.2}", p.elapsed_secs),
            format!("{:.0}", p.trials_per_sec),
            p.rounds.to_string(),
        ];
        for ph in &phases {
            let nanos = p.phase_nanos[*ph as usize];
            row.push(if kernel_total == 0 {
                "—".into()
            } else {
                format!("{:.0}%", 100.0 * nanos as f64 / kernel_total as f64)
            });
        }
        row.push(format!("{:.2}ms", p.trial_p50_nanos as f64 / 1e6));
        table.push_row(row);
    }
    table
}

// ---------------------------------------------------------------------------
// Timings sidecar.
// ---------------------------------------------------------------------------

/// Open the timings sidecar for a store: truncated with a fresh header on a
/// new run, appended (header written only if missing) on resume.
pub fn open_timings(store: &Path, resume: bool) -> Result<File, String> {
    let path = timings_path(store);
    let fresh = !resume || !path.exists();
    let mut file = OpenOptions::new()
        .create(true)
        .append(resume)
        .write(true)
        .truncate(!resume)
        .open(&path)
        .map_err(|e| format!("{}: open timings sidecar: {e}", path.display()))?;
    if fresh {
        let header = JsonObj::new().str_field("schema", TIMINGS_SCHEMA).finish();
        writeln!(file, "{header}").map_err(|e| format!("{}: write header: {e}", path.display()))?;
    }
    Ok(file)
}

/// Append one completed cell's timing line.
pub fn append_timing(
    file: &mut File,
    cell: u64,
    trials: u64,
    elapsed_secs: f64,
) -> Result<(), String> {
    let line = JsonObj::new()
        .u64_field("cell", cell)
        .u64_field("trials", trials)
        .fixed_field("elapsed_secs", elapsed_secs, 3)
        .fixed_field("trials_per_sec", trials as f64 / elapsed_secs.max(1e-9), 1)
        .finish();
    writeln!(file, "{line}").map_err(|e| format!("timings append: {e}"))?;
    file.flush().map_err(|e| format!("timings flush: {e}"))
}

/// Load a timings sidecar into `cell id → (elapsed_secs, trials_per_sec)`.
/// Missing file or torn lines simply yield fewer entries (timings are
/// advisory; the store stays the source of truth). Duplicate ids keep the
/// last line (a cell re-run after an interrupted store append).
pub fn load_timings(store: &Path) -> BTreeMap<u64, (f64, f64)> {
    let mut out = BTreeMap::new();
    let Ok(file) = File::open(timings_path(store)) else {
        return out;
    };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        let Ok(obj) = parse_flat(&line) else { continue };
        let (Some(cell), Some(secs), Some(rate)) = (
            get(&obj, "cell").and_then(JsonScalar::as_u64),
            get(&obj, "elapsed_secs").and_then(JsonScalar::as_f64),
            get(&obj, "trials_per_sec").and_then(JsonScalar::as_f64),
        ) else {
            continue;
        };
        out.insert(cell, (secs, rate));
    }
    out
}

// ---------------------------------------------------------------------------
// Schema check.
// ---------------------------------------------------------------------------

/// What [`check_telemetry`] found in a valid file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryCheck {
    /// Periodic snapshot records.
    pub snapshots: u64,
    /// Per-cell profile records.
    pub cell_profiles: u64,
}

fn require_u64(obj: &stabcon_util::jsonl::FlatObject, key: &str) -> Result<u64, String> {
    get(obj, key)
        .and_then(JsonScalar::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn require_f64(obj: &stabcon_util::jsonl::FlatObject, key: &str) -> Result<(), String> {
    get(obj, key)
        .and_then(JsonScalar::as_f64)
        .map(|_| ())
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

/// Which record type a validated telemetry line is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryRecord {
    /// A periodic `snapshot` record.
    Snapshot,
    /// A per-cell `cell_profile` record.
    CellProfile,
}

/// Validate one `stabcon-telemetry/1` *record* line (not the header):
/// flat JSON, a known `record` kind, and every required field present with
/// the right type. This is the per-line core of [`check_telemetry`], and
/// the gate `stabcon serve` applies to worker-shipped [`Telemetry`] frames
/// before ingesting them into its sink — a torn, interleaved, or malformed
/// frame fails here and is dropped instead of corrupting the sink.
///
/// [`Telemetry`]: crate::fabric::Msg::Telemetry
pub fn validate_record_line(line: &str) -> Result<TelemetryRecord, String> {
    let obj = parse_flat(line)?;
    match get(&obj, "record").and_then(JsonScalar::as_str) {
        Some("snapshot") => {
            for key in [
                "cell",
                "trials_done",
                "trials_total",
                "chunks_issued",
                "chunks_merged",
                "cursor_lag",
                "workers",
                "worker_trials_min",
                "worker_trials_max",
            ] {
                require_u64(&obj, key)?;
            }
            require_f64(&obj, "elapsed_secs")?;
            require_f64(&obj, "trials_per_sec")?;
            require_f64(&obj, "eta_secs")?;
            Ok(TelemetryRecord::Snapshot)
        }
        Some("cell_profile") => {
            for key in [
                "cell",
                "trials",
                "rounds",
                "trial_p50_nanos",
                "trial_p99_nanos",
            ] {
                require_u64(&obj, key)?;
            }
            for ph in Phase::ALL {
                require_u64(&obj, &format!("phase_{}_nanos", ph.name()))?;
            }
            for c in [
                Counter::NetRequests,
                Counter::NetDelivered,
                Counter::NetDropped,
                Counter::NetLinkDropped,
                Counter::NetPartitionDropped,
                Counter::NetForged,
            ] {
                require_u64(&obj, c.name())?;
            }
            require_u64(&obj, Gauge::NetInFlightPeak.name())?;
            require_f64(&obj, "elapsed_secs")?;
            require_f64(&obj, "trials_per_sec")?;
            Ok(TelemetryRecord::CellProfile)
        }
        Some(other) => Err(format!("unknown record type '{other}'")),
        None => Err("missing 'record' field".into()),
    }
}

/// Validate a telemetry file against the `stabcon-telemetry/1` schema:
/// header line first, then flat `snapshot` / `cell_profile` records with
/// their required fields. Returns the record counts on success.
pub fn check_telemetry(path: &Path) -> Result<TelemetryCheck, String> {
    let file =
        File::open(path).map_err(|e| format!("{}: open telemetry file: {e}", path.display()))?;
    let mut lines = BufReader::new(file).lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| format!("{}: empty telemetry file", path.display()))?;
    let header = header.map_err(|e| format!("line 1: {e}"))?;
    let header = parse_flat(&header).map_err(|e| format!("line 1: {e}"))?;
    match get(&header, "schema").and_then(JsonScalar::as_str) {
        Some(TELEMETRY_SCHEMA) => {}
        Some(other) => return Err(format!("line 1: schema '{other}' != '{TELEMETRY_SCHEMA}'")),
        None => return Err("line 1: missing 'schema' field".into()),
    }
    require_u64(&header, "threads").map_err(|e| format!("line 1: {e}"))?;
    require_u64(&header, "cells").map_err(|e| format!("line 1: {e}"))?;
    require_u64(&header, "trials_planned").map_err(|e| format!("line 1: {e}"))?;

    let mut check = TelemetryCheck {
        snapshots: 0,
        cell_profiles: 0,
    };
    for (i, line) in lines {
        let ln = i + 1;
        let line = line.map_err(|e| format!("line {ln}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        match validate_record_line(&line).map_err(|e| format!("line {ln}: {e}"))? {
            TelemetryRecord::Snapshot => check.snapshots += 1,
            TelemetryRecord::CellProfile => check.cell_profiles += 1,
        }
    }
    if check.cell_profiles == 0 {
        return Err(format!(
            "{}: no cell_profile records (campaign produced no cells?)",
            path.display()
        ));
    }
    Ok(check)
}

/// Read just the `schema` tag from a JSONL file's first line, for CLI
/// auto-detection: `stabcon telemetry check` accepts both a telemetry sink
/// (`stabcon-telemetry/1`) and a timings sidecar (`stabcon-timings/1`) and
/// dispatches on this.
pub fn peek_schema(path: &Path) -> Result<String, String> {
    let file = File::open(path).map_err(|e| format!("{}: open: {e}", path.display()))?;
    let mut first = String::new();
    BufReader::new(file)
        .read_line(&mut first)
        .map_err(|e| format!("{}: read line 1: {e}", path.display()))?;
    if first.trim().is_empty() {
        return Err(format!("{}: empty file", path.display()));
    }
    let obj = parse_flat(first.trim_end()).map_err(|e| format!("line 1: {e}"))?;
    get(&obj, "schema")
        .and_then(JsonScalar::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{}: line 1 has no 'schema' field", path.display()))
}

/// What [`check_timings`] found in a valid timings sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingsCheck {
    /// Record lines (excluding the header).
    pub lines: u64,
    /// Distinct cell ids.
    pub cells: u64,
    /// Lines superseded by a later line for the same cell — re-runs after
    /// an interrupted append; readers keep the last line per cell.
    pub duplicates: u64,
}

/// Validate a `stabcon-timings/1` sidecar: header line first, then one
/// flat record per cell with `cell`/`trials` integers and
/// `elapsed_secs`/`trials_per_sec` numbers. Duplicate cell ids are legal
/// (last wins, as [`load_timings`] resolves them) and are counted.
pub fn check_timings(path: &Path) -> Result<TimingsCheck, String> {
    let file =
        File::open(path).map_err(|e| format!("{}: open timings file: {e}", path.display()))?;
    let mut lines = BufReader::new(file).lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| format!("{}: empty timings file", path.display()))?;
    let header = header.map_err(|e| format!("line 1: {e}"))?;
    let header = parse_flat(&header).map_err(|e| format!("line 1: {e}"))?;
    match get(&header, "schema").and_then(JsonScalar::as_str) {
        Some(TIMINGS_SCHEMA) => {}
        Some(other) => return Err(format!("line 1: schema '{other}' != '{TIMINGS_SCHEMA}'")),
        None => return Err("line 1: missing 'schema' field".into()),
    }

    let mut check = TimingsCheck {
        lines: 0,
        cells: 0,
        duplicates: 0,
    };
    let mut seen = std::collections::BTreeSet::new();
    for (i, line) in lines {
        let ln = i + 1;
        let line = line.map_err(|e| format!("line {ln}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat(&line).map_err(|e| format!("line {ln}: {e}"))?;
        let cell = require_u64(&obj, "cell").map_err(|e| format!("line {ln}: {e}"))?;
        require_u64(&obj, "trials").map_err(|e| format!("line {ln}: {e}"))?;
        require_f64(&obj, "elapsed_secs").map_err(|e| format!("line {ln}: {e}"))?;
        require_f64(&obj, "trials_per_sec").map_err(|e| format!("line {ln}: {e}"))?;
        check.lines += 1;
        if !seen.insert(cell) {
            check.duplicates += 1;
        }
    }
    check.cells = seen.len() as u64;
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("stabcon-telemetry-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn hist_quantile_reads_bucket_lows() {
        let mut buckets = [0u64; obs::HIST_BUCKETS];
        assert_eq!(hist_quantile(&buckets, 0.5), 0, "empty histogram");
        buckets[obs::bucket_of(100)] = 10;
        buckets[obs::bucket_of(1 << 20)] = 1;
        assert_eq!(
            hist_quantile(&buckets, 0.5),
            obs::bucket_low(obs::bucket_of(100))
        );
        assert_eq!(
            hist_quantile(&buckets, 0.99),
            obs::bucket_low(obs::bucket_of(1 << 20))
        );
    }

    #[test]
    fn eta_formatting() {
        assert_eq!(fmt_eta(f64::INFINITY), "—");
        assert_eq!(fmt_eta(65.0), "1:05");
        assert_eq!(fmt_eta(3723.0), "1:02:03");
    }

    #[test]
    fn timings_sidecar_roundtrip() {
        let store = tmp("timings-roundtrip.jsonl");
        std::fs::remove_file(timings_path(&store)).ok();
        let mut f = open_timings(&store, false).expect("open");
        append_timing(&mut f, 0, 100, 2.0).expect("append");
        append_timing(&mut f, 1, 100, 4.0).expect("append");
        drop(f);
        // Resume appends; a re-run cell's later line wins.
        let mut f = open_timings(&store, true).expect("reopen");
        append_timing(&mut f, 1, 100, 5.0).expect("append");
        drop(f);
        let map = load_timings(&store);
        assert_eq!(map.len(), 2);
        assert_eq!(map[&0], (2.0, 50.0));
        assert_eq!(map[&1], (5.0, 20.0));
        // A fresh (non-resume) open truncates.
        let f = open_timings(&store, false).expect("truncate");
        drop(f);
        assert!(load_timings(&store).is_empty());
        std::fs::remove_file(timings_path(&store)).ok();
    }

    #[test]
    fn missing_timings_sidecar_is_empty() {
        assert!(load_timings(Path::new("/nonexistent/store.jsonl")).is_empty());
    }

    #[test]
    fn check_rejects_bad_files() {
        let p = tmp("telemetry-bad.jsonl");
        std::fs::write(&p, "").expect("write");
        assert!(check_telemetry(&p).unwrap_err().contains("empty"));
        std::fs::write(&p, "{\"schema\":\"other/9\"}\n").expect("write");
        assert!(check_telemetry(&p).unwrap_err().contains("schema"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn record_validation_rejects_torn_and_foreign_lines() {
        // A full snapshot record passes.
        let good = JsonObj::new()
            .str_field("record", "snapshot")
            .u64_field("cell", 0)
            .u64_field("trials_done", 8)
            .u64_field("trials_total", 64)
            .fixed_field("elapsed_secs", 0.5, 3)
            .fixed_field("trials_per_sec", 16.0, 1)
            .u64_field("chunks_issued", 2)
            .u64_field("chunks_merged", 1)
            .u64_field("cursor_lag", 1)
            .fixed_field("eta_secs", 3.5, 1)
            .u64_field("workers", 2)
            .u64_field("worker_trials_min", 3)
            .u64_field("worker_trials_max", 5)
            .finish();
        assert_eq!(
            validate_record_line(&good).expect("valid snapshot"),
            TelemetryRecord::Snapshot
        );
        // Any torn prefix of it fails — never panics, never passes.
        for cut in 0..good.len() {
            assert!(
                validate_record_line(&good[..cut]).is_err(),
                "torn prefix of len {cut} must not validate"
            );
        }
        // A shipped header (valid JSON, no 'record') fails.
        assert!(validate_record_line("{\"schema\": \"stabcon-telemetry/1\"}").is_err());
        // An unknown record kind fails.
        assert!(validate_record_line("{\"record\": \"warp\"}").is_err());
    }

    #[test]
    fn timings_check_counts_cells_and_last_wins_duplicates() {
        let store = tmp("timings-check.jsonl");
        std::fs::remove_file(timings_path(&store)).ok();
        let mut f = open_timings(&store, false).expect("open");
        append_timing(&mut f, 0, 100, 2.0).expect("append");
        append_timing(&mut f, 1, 100, 4.0).expect("append");
        append_timing(&mut f, 1, 100, 5.0).expect("append"); // re-run: last wins
        drop(f);
        let check = check_timings(&timings_path(&store)).expect("valid sidecar");
        assert_eq!(
            check,
            TimingsCheck {
                lines: 3,
                cells: 2,
                duplicates: 1
            }
        );
        assert_eq!(
            peek_schema(&timings_path(&store)).expect("schema"),
            TIMINGS_SCHEMA
        );
        // A telemetry header peeks as the telemetry schema.
        let p = tmp("peek-telemetry.jsonl");
        std::fs::write(&p, "{\"schema\": \"stabcon-telemetry/1\"}\n").expect("write");
        assert_eq!(peek_schema(&p).expect("schema"), TELEMETRY_SCHEMA);
        // A timings file with a wrong-schema header is refused.
        assert!(check_timings(&p).unwrap_err().contains("schema"));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(timings_path(&store)).ok();
    }
}

//! Checkpoint/resume determinism: a campaign interrupted after `k` cells
//! and resumed — at a different thread count and chunk size, even with a
//! torn trailing write — produces a result store **byte-identical** to an
//! uninterrupted run.

use std::path::PathBuf;

use proptest::prelude::*;
use stabcon_core::adversary::AdversarySpec;
use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::{BudgetSpec, InitSpec};

const THREAD_CHOICES: [usize; 3] = [1, 2, 8];
const CHUNK_CHOICES: [u64; 3] = [1, 3, 32];

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stabcon-campaign-props");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

/// 8 cells: 2 populations × 2 inits × 2 adversaries (one flips the metric
/// to almost-stable, exercising both label/metric paths in the store).
fn grid(seed: u64) -> CampaignSpec {
    CampaignSpec {
        name: "prop".into(),
        seed,
        trials: 6,
        ns: vec![64, 96],
        inits: vec![InitSpec::TwoBinsHalf, InitSpec::UniformRandom(4)],
        adversaries: vec![
            (AdversarySpec::None, BudgetSpec::Zero),
            (AdversarySpec::Random, BudgetSpec::Fixed(2)),
        ],
        ..CampaignSpec::default()
    }
}

fn run_full(spec: &CampaignSpec, path: &PathBuf, threads: usize, chunk: u64) -> Vec<u8> {
    std::fs::remove_file(path).ok();
    let outcome = run_campaign(
        spec,
        path,
        &RunConfig {
            threads,
            chunk: Some(chunk),
            max_cells: None,
            resume: false,
            ..RunConfig::default()
        },
    )
    .expect("uninterrupted run");
    assert!(outcome.complete());
    std::fs::read(path).expect("read store")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn interrupted_and_resumed_store_is_byte_identical(
        seed in 0u64..1_000,
        k in 0u64..=8,
        t_ref in 0usize..3,
        t_partial in 0usize..3,
        t_resume in 0usize..3,
        c_partial in 0usize..3,
        c_resume in 0usize..3,
        tear in any::<bool>(),
    ) {
        let spec = grid(seed);
        let tag = format!("{seed}-{k}-{t_ref}{t_partial}{t_resume}{c_partial}{c_resume}{tear}");

        // Reference: one uninterrupted run.
        let ref_path = tmp(&format!("ref-{tag}"));
        let reference = run_full(&spec, &ref_path, THREAD_CHOICES[t_ref], CHUNK_CHOICES[0]);

        // Interrupted run: stop after k cells, at an arbitrary
        // thread-count/chunking combination.
        let path = tmp(&format!("int-{tag}"));
        std::fs::remove_file(&path).ok();
        let partial = run_campaign(&spec, &path, &RunConfig {
            threads: THREAD_CHOICES[t_partial],
            chunk: Some(CHUNK_CHOICES[c_partial]),
            max_cells: Some(k),
            resume: false,
            ..RunConfig::default()
        }).expect("interrupted run");
        prop_assert_eq!(partial.cells_run, k.min(8));

        // A kill mid-append leaves a torn trailing line; resume must
        // truncate it away.
        if tear {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"{\"kind\": \"cell\", \"cel").expect("tear");
        }

        // Resume at yet another thread-count/chunking combination.
        let resumed = run_campaign(&spec, &path, &RunConfig {
            threads: THREAD_CHOICES[t_resume],
            chunk: Some(CHUNK_CHOICES[c_resume]),
            max_cells: None,
            resume: true,
            ..RunConfig::default()
        }).expect("resume");
        prop_assert!(resumed.complete());
        prop_assert_eq!(resumed.cells_skipped, k.min(8));

        let bytes = std::fs::read(&path).expect("read store");
        prop_assert_eq!(
            &bytes, &reference,
            "resumed store differs from uninterrupted run (k={}, tear={})", k, tear
        );

        std::fs::remove_file(&ref_path).ok();
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn thread_counts_1_2_8_all_reproduce_the_same_store() {
    let spec = grid(0xD00D);
    let mut stores = Vec::new();
    for &threads in &THREAD_CHOICES {
        let path = tmp(&format!("threads-{threads}"));
        stores.push(run_full(&spec, &path, threads, 7));
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(stores[0], stores[1], "threads=1 vs threads=2");
    assert_eq!(stores[0], stores[2], "threads=1 vs threads=8");
}

//! Chunk-partial merge exactness: folding a cell's trials into
//! [`ChunkAggregate`] partials over an **arbitrary** split and merging the
//! partials in chunk order must be bit-identical to one sequential
//! [`CellAggregate::push`] fold — for every observer, including the
//! float-channel ones whose sums would drift under re-association if the
//! partials folded them worker-side.
//!
//! This is the algebra the persistent-worker scheduler rests on; the
//! end-to-end version (through `run_cell`, threads, and real chunking)
//! lives in `observer_props.rs`.

use proptest::prelude::*;
use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_exp::{
    CellAggregate, CellSpec, ChunkAggregate, HitMetric, TrialMetrics, TrialObserver,
};
use stabcon_util::rng::derive_seed;

fn cell_for(observer_ix: usize, n: usize, trials: u64, seed: u64) -> CellSpec {
    match observer_ix {
        0 => CellSpec::new(
            SimSpec::new(n).init(InitialCondition::UniformRandom { m: 5 }),
            trials,
            seed,
        ),
        1 => CellSpec::new(
            SimSpec::new(n).init(InitialCondition::UniformRandom { m: 4 }),
            trials,
            seed,
        )
        .observer(TrialObserver::LastUnsettledRound),
        2 => CellSpec::new(
            SimSpec::new(n)
                .init(InitialCondition::TwoBins {
                    left: n / 2 - n / 16,
                })
                .max_rounds(3),
            trials,
            seed,
        )
        .observer(TrialObserver::DriftGrowth),
        _ => {
            let sim = SimSpec::new(n)
                .init(InitialCondition::TwoBins { left: n / 2 })
                .adversary(AdversarySpec::Random, 2)
                .max_rounds(60)
                .full_horizon(true);
            let threshold = sim.disagreement_threshold();
            CellSpec::new(sim, trials, seed)
                .metric(HitMetric::AlmostStable)
                .observer(TrialObserver::StabilityExcursions {
                    n: n as u64,
                    threshold,
                })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn merge_of_arbitrary_chunk_splits_equals_sequential_fold(
        observer_ix in 0usize..4,
        seed in 0u64..1_000,
        trials in 1u64..28,
        // Chunk boundary pattern: cut after trial i when bit i is set.
        cuts in any::<u32>(),
    ) {
        let cell = cell_for(observer_ix, 128, trials, seed);
        let metrics: Vec<TrialMetrics> = (0..trials)
            .map(|i| {
                let r = cell.sim.run_seeded(derive_seed(cell.seed, i));
                TrialMetrics::capture(&r, cell.observer)
            })
            .collect();

        let mut sequential = CellAggregate::new();
        for m in &metrics {
            sequential.push(m);
        }

        let collect_floats = cell.observer.has_float_channels();
        let mut merged = CellAggregate::new();
        let mut part = ChunkAggregate::new(collect_floats);
        for (i, m) in metrics.iter().enumerate() {
            part.push(m);
            if cuts & (1 << (i % 32)) != 0 {
                merged.merge(&part);
                part = ChunkAggregate::new(collect_floats);
            }
        }
        merged.merge(&part);

        prop_assert_eq!(
            &merged,
            &sequential,
            "observer {} split {:#034b}",
            cell.observer.label(),
            cuts
        );
    }
}

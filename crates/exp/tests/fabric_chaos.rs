//! Chaos integration for the fabric: a serve daemon and two workers talk
//! through the deterministic chaos proxy — delayed flushes, duplicated
//! frames, torn writes, mid-frame disconnects — and the assembled store is
//! still byte-identical to the clean single-host run, at every seed.
//!
//! Also here: the crash-safety acceptance test. A `stabcon serve`
//! subprocess is `kill -9`'d mid-campaign, its store tail is truncated
//! mid-record (the torn write a crash can leave), and a restarted server
//! with `--resume` repairs the tail and completes the campaign to the
//! exact reference bytes.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::fabric::{run_worker, ChaosProxy, ChaosSpec, ServeConfig, Server, WorkerConfig};
use stabcon_exp::presets::preset;
use stabcon_exp::store::Durability;
use stabcon_exp::telemetry::timings_path;
use stabcon_exp::InitSpec;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stabcon-fabric-chaos");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

fn cleanup(store: &PathBuf) {
    std::fs::remove_file(store).ok();
    std::fs::remove_file(timings_path(store)).ok();
}

/// 4 quick cells.
fn grid() -> CampaignSpec {
    CampaignSpec {
        name: "chaos-it".into(),
        seed: 0xC4A0,
        trials: 4,
        ns: vec![64, 96],
        inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
        ..CampaignSpec::default()
    }
}

/// Run one full campaign — serve + 2 retrying workers — through a chaos
/// proxy seeded with `seed`, and return the assembled store bytes.
fn campaign_through_chaos(spec: &CampaignSpec, seed: u64, tag: &str) -> Vec<u8> {
    let store = tmp(tag);
    cleanup(&store);

    let server = Server::bind("127.0.0.1:0", spec, &store).expect("bind serve");
    let serve_addr = server.local_addr().expect("serve addr").to_string();
    let serve_cfg = ServeConfig {
        // Generous against injected delays; heartbeats carry slow cells.
        lease: Duration::from_secs(2),
        durability: Durability::Cell,
        ..ServeConfig::default()
    };
    let serve_thread = std::thread::spawn(move || server.run(&serve_cfg));

    let proxy = ChaosProxy::bind("127.0.0.1:0", &serve_addr, ChaosSpec::mild(seed))
        .expect("bind chaos proxy");
    let proxy_addr = proxy.local_addr().expect("proxy addr").to_string();
    let stop = proxy.stop_handle();
    let proxy_thread = std::thread::spawn(move || proxy.run());

    // Two workers, both through the proxy, both with a deep retry budget —
    // every mid-frame cut costs a reconnect, never the campaign. The drain
    // flag stops them promptly once the server has everything (a worker
    // mid-reconnect when the campaign drains would otherwise spend its
    // whole retry budget against a gone server).
    let drain = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let spec = spec.clone();
            let addr = proxy_addr.clone();
            let drain = Arc::clone(&drain);
            std::thread::spawn(move || {
                run_worker(
                    &addr,
                    &spec,
                    &WorkerConfig {
                        threads: 2,
                        name: format!("chaos-worker-{i}"),
                        retries: 100,
                        backoff_ms: 20,
                        drain: Some(drain),
                        ..WorkerConfig::default()
                    },
                )
            })
        })
        .collect();

    let served = serve_thread
        .join()
        .expect("serve thread")
        .expect("serve outcome");
    assert_eq!(served.cells_total, 4);
    assert_eq!(served.cells_ingested, 4);

    // Workers may still be mid-retry against a gone server; their errors
    // are expected — the store is the contract.
    drain.store(true, Ordering::SeqCst);
    for w in workers {
        let _ = w.join().expect("worker thread");
    }
    stop.store(true, Ordering::SeqCst);
    let _ = proxy_thread.join().expect("proxy thread");

    let bytes = std::fs::read(&store).expect("read chaos store");
    cleanup(&store);
    bytes
}

#[test]
fn chaos_campaign_store_is_byte_identical_at_any_seed() {
    let spec = grid();

    let reference_path = tmp("chaos-reference");
    cleanup(&reference_path);
    run_campaign(&spec, &reference_path, &RunConfig::default()).expect("single-host run");
    let reference = std::fs::read(&reference_path).expect("read reference");
    cleanup(&reference_path);

    for seed in [11u64, 23, 37] {
        let bytes = campaign_through_chaos(&spec, seed, &format!("chaos-{seed}"));
        assert_eq!(
            bytes, reference,
            "chaos seed {seed}: store differs from the clean single-host run"
        );
    }
}

/// Poll until `path` has at least `lines` newline-terminated lines (or
/// panic after `timeout`).
fn wait_for_lines(path: &PathBuf, lines: usize, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let have = std::fs::read(path)
            .map(|b| b.iter().filter(|&&c| c == b'\n').count())
            .unwrap_or(0);
        if have >= lines {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {lines} lines in {} (have {have})",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn kill_dash_nine_server_resumes_from_a_truncated_tail() {
    // The spec must be expressible as CLI flags so the subprocess expands
    // the same grid (fingerprint handshake pins this).
    let spec = {
        let mut s = preset("smoke").expect("smoke preset");
        s.trials = 4;
        s.seed = 0xFEED;
        s.ns = vec![64, 96];
        s.name = "kill9".into();
        s
    };

    let reference_path = tmp("kill9-reference");
    cleanup(&reference_path);
    run_campaign(&spec, &reference_path, &RunConfig::default()).expect("single-host run");
    let reference = std::fs::read(&reference_path).expect("read reference");
    let total_cells = String::from_utf8_lossy(&reference).lines().count() - 1;

    let store = tmp("kill9-store");
    cleanup(&store);

    // A free port for the subprocess (bind :0, read it back, release it).
    let port = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe port")
        .local_addr()
        .expect("probe addr")
        .port();
    let addr = format!("127.0.0.1:{port}");

    // Phase 1: a real `stabcon serve` subprocess with per-cell fsync.
    let mut child = Command::new(env!("CARGO_BIN_EXE_stabcon"))
        .args([
            "serve",
            "--out",
            store.to_str().expect("utf8 path"),
            "--listen",
            &addr,
            "--lease-secs",
            "2",
            "--durability",
            "cell",
            "--preset",
            "smoke",
            "--trials",
            "4",
            "--seed",
            "0xFEED",
            "--ns",
            "64,96",
            "--name",
            "kill9",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve subprocess");

    // A drainable worker feeds it until the store holds a couple of cells.
    let drain = Arc::new(AtomicBool::new(false));
    let worker = {
        let spec = spec.clone();
        let addr = addr.clone();
        let drain = Arc::clone(&drain);
        std::thread::spawn(move || {
            run_worker(
                &addr,
                &spec,
                &WorkerConfig {
                    threads: 2,
                    name: "kill9-worker".into(),
                    retries: 100,
                    backoff_ms: 50,
                    drain: Some(drain),
                    ..WorkerConfig::default()
                },
            )
        })
    };
    wait_for_lines(&store, 3, Duration::from_secs(60)); // header + 2 cells
    drain.store(true, Ordering::SeqCst);
    let _ = worker.join().expect("worker thread");

    // kill -9: no atexit, no flush, no goodbye. (If the campaign already
    // completed, the server exited on its own — the torn-tail repair below
    // is exercised either way.)
    let _ = child.kill();
    let _ = child.wait();

    // Simulate the torn tail a crash mid-append can leave: chop the last
    // record off mid-line. Every byte offset of the final record is
    // unit-tested in store.rs; here one representative cut proves the
    // end-to-end path.
    let bytes = std::fs::read(&store).expect("read crashed store");
    assert!(bytes.len() > 5);
    std::fs::write(&store, &bytes[..bytes.len() - 5]).expect("tear the tail");

    // Phase 2: restart with --resume (in-process this time): the torn
    // tail is repaired on open, the lost cell re-leased, the campaign
    // completed.
    let server = Server::bind("127.0.0.1:0", &spec, &store).expect("rebind");
    let addr2 = server.local_addr().expect("addr").to_string();
    let serve_cfg = ServeConfig {
        lease: Duration::from_secs(2),
        resume: true,
        durability: Durability::Cell,
        ..ServeConfig::default()
    };
    let serve_thread = std::thread::spawn(move || server.run(&serve_cfg));
    let outcome = run_worker(
        &addr2,
        &spec,
        &WorkerConfig {
            threads: 2,
            name: "kill9-finisher".into(),
            ..WorkerConfig::default()
        },
    )
    .expect("finishing worker");
    let served = serve_thread
        .join()
        .expect("serve thread")
        .expect("resume outcome");

    assert!(
        outcome.cells_run >= 1,
        "the torn cell (at least) is re-run after the repair"
    );
    assert_eq!(served.cells_total as usize, total_cells);
    assert_eq!(
        served.cells_skipped + served.cells_ingested,
        served.cells_total,
        "resume skips exactly the surviving records"
    );
    assert_eq!(
        std::fs::read(&store).expect("read resumed store"),
        reference,
        "kill -9 + torn tail + resume must still converge to the reference bytes"
    );

    cleanup(&store);
    cleanup(&reference_path);
}

//! Property tests for the `stabcon-fabric/1` wire protocol: every message
//! survives an encode→decode round trip — including payload strings with
//! quotes, backslashes, newlines, control bytes, and non-ASCII — and every
//! encoding is exactly one line, so the line-oriented framing can never
//! tear a message.

use proptest::prelude::*;
use stabcon_exp::fabric::{Msg, FABRIC_SCHEMA};

/// Escaping stress pool: quotes, backslashes, newlines, control characters,
/// multi-byte UTF-8, JSON-significant punctuation.
const NASTY: [&str; 8] = [
    "",
    "plain worker-1",
    "he said \"hi\"",
    "back\\slash\\",
    "line\nbreak\ttab",
    "\r bell\u{1}del\u{7f}",
    "κόσμε 🦀 consensus",
    "{\"cell\": 3}, [1,2]:",
];

/// A string mixing two pool entries with a numeric tail — deterministic in
/// its inputs, covering the pool pairwise across cases.
fn nasty(a: usize, b: usize, tail: u64) -> String {
    format!("{}{}{tail}", NASTY[a % NASTY.len()], NASTY[b % NASTY.len()])
}

fn build_msg(kind: usize, x: u64, y: u64, a: usize, b: usize) -> Msg {
    match kind {
        0 => Msg::Hello {
            schema: FABRIC_SCHEMA.into(),
            worker: nasty(a, b, x),
            fingerprint: format!("{y:016x}"),
        },
        1 => Msg::Welcome {
            campaign: nasty(a, b, x),
            cells: y,
        },
        2 => Msg::Reject {
            reason: nasty(a, b, x),
        },
        3 => Msg::Claim,
        4 => Msg::Lease {
            cell: x,
            lease_ms: y,
        },
        5 => Msg::Wait { retry_ms: x },
        6 => Msg::Drained,
        7 => Msg::Telemetry {
            line: nasty(a, b, x),
        },
        _ => Msg::Result {
            cell: x,
            line: nasty(a, b, x),
            // Finite by construction: JSON has no NaN/inf, and the writer
            // maps non-finite to null (which decode rejects).
            elapsed_secs: (y % 1_000_000_000) as f64 / 1024.0,
            trials: y,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_round_trips(
        kind in 0usize..9,
        x in any::<u64>(),
        y in any::<u64>(),
        a in 0usize..NASTY.len(),
        b in 0usize..NASTY.len(),
    ) {
        let msg = build_msg(kind, x, y, a, b);
        let wire = msg.encode();
        prop_assert!(!wire.contains('\n'), "framing: one line per message: {:?}", wire);
        let back = Msg::decode(&wire).expect("decode");
        prop_assert_eq!(back, msg, "wire: {}", wire);
    }

    /// Whatever bytes arrive, decode never panics — it returns a message
    /// or an error. Garbage lines are assembled from the same nasty pool
    /// plus raw numeric noise so quoting is frequently unbalanced.
    #[test]
    fn decode_never_panics(
        a in 0usize..NASTY.len(),
        b in 0usize..NASTY.len(),
        x in any::<u64>(),
        cut in 0usize..64,
    ) {
        let garbage = format!("{}{}{x}", NASTY[a], NASTY[b]);
        let _ = Msg::decode(&garbage);
        // Also every prefix-truncation of a valid message (torn line).
        let wire = build_msg(a % 9, x, x, a, b).encode();
        let mut cut = cut.min(wire.len());
        while !wire.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = Msg::decode(&wire[..cut]);
    }
}

#[test]
fn unknown_and_malformed_kinds_are_rejected() {
    assert!(Msg::decode("{\"kind\": \"warp\"}")
        .unwrap_err()
        .contains("unknown"));
    assert!(Msg::decode("{\"cell\": 3}").unwrap_err().contains("kind"));
    assert!(Msg::decode("").is_err());
    assert!(Msg::decode("{\"kind\": \"lease\", \"cell\": 1}")
        .unwrap_err()
        .contains("lease_ms"));
    // Non-finite elapsed encodes as null, which decode refuses — a broken
    // worker clock cannot smuggle a null into the timings sidecar.
    let bad = Msg::Result {
        cell: 0,
        line: "{}".into(),
        elapsed_secs: f64::NAN,
        trials: 1,
    };
    assert!(Msg::decode(&bad.encode())
        .unwrap_err()
        .contains("elapsed_secs"));
}

#[test]
fn store_and_telemetry_lines_survive_the_wire_verbatim() {
    // The byte-identity story rests on this: a Result frame's embedded
    // store line comes back exactly, bytes for bytes.
    let store_line = "{\"kind\": \"cell\", \"cell\": 3, \"n\": \"128\", \
                      \"mean\": 9.75, \"p50\": 10, \"max\": null}";
    let msg = Msg::Result {
        cell: 3,
        line: store_line.into(),
        elapsed_secs: 0.25,
        trials: 8,
    };
    match Msg::decode(&msg.encode()).expect("decode") {
        Msg::Result { line, .. } => assert_eq!(line, store_line),
        other => panic!("wrong kind: {other:?}"),
    }
}
